"""Fig. 12 — runtime of the five evaluation methods on U1-U10.

Paper shape to reproduce: GENTOP fastest of the on-top-of-engine trio;
NAIVE competitive only when the selected node set is small (U2) and
degrading when it is large (U1, U4); TD-BU paying extra for complex
qualifiers (U7-U10); the copy-and-update baseline carrying the full
snapshot cost on every query.
"""

import pytest

from repro.bench.harness import METHOD_ORDER, METHODS, smoke_rounds
from repro.xmark.queries import QUERY_IDS, insert_transform


@pytest.mark.parametrize("method", METHOD_ORDER)
@pytest.mark.parametrize("uid", QUERY_IDS)
def test_fig12(benchmark, small_tree, uid, method):
    query = insert_transform(uid)
    benchmark.group = f"fig12-{uid}"
    benchmark.pedantic(
        METHODS[method], args=(small_tree, query),
        rounds=smoke_rounds(3, 1), iterations=1,
    )
