"""Fig. 13(a-d) — scalability with document size for U2, U4, U7, U10.

Paper shape to reproduce: NAIVE super-linear where the affected portion
grows with the file (U4/U7/U10) but linear when |$xp| is fixed (U2);
GENTOP, TD-BU and twoPassSAX linear; the snapshot baseline linear with
a larger constant.
"""

import pytest

from repro.bench.harness import (
    DATASET_SEED,
    METHOD_ORDER,
    METHODS,
    dataset,
    smoke_factor,
    smoke_rounds,
)
from repro.xmark.queries import insert_transform

FACTORS = sorted({smoke_factor(f) for f in (0.002, 0.008, 0.02)})
QUERIES = ["U2", "U4", "U7", "U10"]


@pytest.mark.parametrize("method", METHOD_ORDER)
@pytest.mark.parametrize("factor", FACTORS)
@pytest.mark.parametrize("uid", QUERIES)
def test_fig13(benchmark, uid, factor, method):
    tree = dataset(factor, seed=DATASET_SEED)
    query = insert_transform(uid)
    benchmark.group = f"fig13-{uid}-factor{factor}"
    benchmark.pedantic(
        METHODS[method], args=(tree, query),
        rounds=smoke_rounds(2, 1), iterations=1,
    )
