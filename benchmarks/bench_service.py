"""Service benchmarks: batched concurrent serving vs a serial
one-request-at-a-time baseline, and snapshot isolation under load.

The workload is the Fig-12 user-query mix over an XMark document
(factor 0.1 ≈ 10.4 MB at full size), served to 16 concurrent clients
with a writer committing between rounds so the per-version memo
cannot carry answers across versions:

* **serial baseline** — every request pins its snapshot and evaluates
  individually (:meth:`~repro.service.service.QueryService.
  query_direct`): the one-request-at-a-time server with no batching
  and no cross-request result reuse.
* **batched service** — the same total request list through the
  batching scheduler: identical in-flight requests coalesce into one
  evaluation per (document, version, query) and the memo serves
  repeats within a version.  The acceptance bar is ≥ 4× the serial
  baseline's throughput (asserted at full size; informational in
  smoke mode, where evaluation is microseconds and scheduling
  overhead dominates).

The isolation experiment hammers the same service with paired-marker
commits (two staged inserts committed atomically) and asserts no
reader — all of them running through pinned MVCC snapshots — ever
observes an odd marker count, i.e. a torn or staged state.

Run with::

    PYTHONPATH=src python -m pytest benchmarks/bench_service.py -q -s
"""

import threading
import time

from repro.bench.harness import (
    DATASET_SEED,
    SMOKE,
    dataset,
    format_table,
    smoke_factor,
    smoke_rounds,
)
from repro.service import QueryService, ServiceConfig
from repro.xmark.queries import EMBEDDED_PATHS

FACTOR = smoke_factor(0.1)
CLIENTS = 16
ROUNDS = smoke_rounds(3, 1)

#: The Fig-12 query mix in FLWR form (the paper's U-paths as user
#: queries, same shapes bench_fig12_methods.py transforms against).
REQUESTS = [
    f"for $x in {EMBEDDED_PATHS[uid]} return $x"
    for uid in ("U1", "U2", "U3", "U4", "U8", "U9")
]

#: The between-rounds write: a tiny committed insert that bumps the
#: version (and thereby kills every memoized answer for it).
BUMP = (
    'transform copy $a := doc("xmark") modify do '
    "insert <served_round/> into $a/regions return $a"
)


def _fresh_service(**config) -> QueryService:
    service = QueryService(config=ServiceConfig(**config))
    service.store.put("xmark", dataset(FACTOR, seed=DATASET_SEED))
    return service


def _run_serial(service: QueryService) -> float:
    """The baseline: all CLIENTS × REQUESTS × ROUNDS requests, one at
    a time, a commit between rounds."""
    start = time.perf_counter()
    for _ in range(ROUNDS):
        for _ in range(CLIENTS):
            for text in REQUESTS:
                service.query_direct("xmark", text)
        service.commit("xmark", BUMP)
    return time.perf_counter() - start


def _run_batched(service: QueryService) -> float:
    """The same request list from CLIENTS concurrent client threads,
    through the batching scheduler; same commit between rounds."""
    errors: list = []

    def client():
        try:
            for text in REQUESTS:
                service.query("xmark", text)
        except Exception as exc:  # noqa: BLE001 - asserted below
            errors.append(exc)

    start = time.perf_counter()
    for _ in range(ROUNDS):
        threads = [threading.Thread(target=client) for _ in range(CLIENTS)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        service.commit("xmark", BUMP)
    elapsed = time.perf_counter() - start
    assert not errors, errors[:3]
    return elapsed


def test_batched_throughput_vs_serial_baseline():
    total = CLIENTS * len(REQUESTS) * ROUNDS

    serial_service = _fresh_service(batch_window=0.002)
    serial = _run_serial(serial_service)
    serial_service.close()

    batched_service = _fresh_service(batch_window=0.005, workers=4)
    batched = _run_batched(batched_service)
    metrics = batched_service.metrics()
    batched_service.close()

    rows = [
        ("serial (one at a time)", serial, total / serial, 1.0),
        ("batched (16 clients)", batched, total / batched, serial / batched),
    ]
    print()
    print(format_table(
        f"service throughput, Fig-12 mix x{CLIENTS} clients x{ROUNDS} rounds "
        f"(factor {FACTOR}, commit between rounds)",
        ["mode", "seconds", "req/s", "speedup"],
        [(n, f"{s:.3f}", f"{r:.0f}", f"{x:.2f}x") for n, s, r, x in rows],
    ))
    print(
        f"batched metrics: {metrics['evaluations']} evaluations for "
        f"{metrics['requests']} requests "
        f"({metrics['coalesced']} coalesced, {metrics['memo_hits']} memo hits, "
        f"{metrics['stale_reads']} stale reads)"
    )
    # Every request was answered from a pinned snapshot, and batching
    # actually collapsed work: far fewer evaluations than requests.
    assert metrics["requests"] == total
    assert metrics["snapshot_reads"] == total
    assert metrics["evaluations"] + metrics["memo_hits"] + metrics["coalesced"] >= total
    assert metrics["evaluations"] < total
    if not SMOKE:
        # The acceptance bar: coalescing + memoized fan-out must beat
        # one-at-a-time serving by at least 4x on the same hardware.
        assert batched * 4 <= serial, (
            f"batched {batched:.3f}s not 4x faster than serial {serial:.3f}s"
        )


def test_instrumentation_overhead_within_three_percent():
    """The telemetry substrate's acceptance bar: running the Fig-12
    batch mix with the metrics registry + sampled tracer on (the
    default) may cost at most 3% over the same service with
    ``metrics=False`` (every instrument a shared no-op, tracing off).

    Best-of-3 each way to damp scheduler noise; the bar is asserted at
    full size only (in smoke mode evaluations are microseconds and the
    batching window dominates both runs, so the ratio is noise).
    """

    def best_batched(**config) -> float:
        best = float("inf")
        for _ in range(3):
            service = _fresh_service(batch_window=0.005, workers=4, **config)
            best = min(best, _run_batched(service))
            service.close()
        return best

    enabled = best_batched()
    disabled = best_batched(metrics=False)
    overhead = (enabled / disabled - 1.0) * 100.0
    print()
    print(
        f"instrumentation overhead: enabled {enabled:.3f}s vs "
        f"disabled {disabled:.3f}s ({overhead:+.1f}%)"
    )
    if not SMOKE:
        assert enabled <= disabled * 1.03 + 0.005, (
            f"telemetry costs {overhead:.1f}% on the batch mix "
            f"(enabled {enabled:.3f}s vs disabled {disabled:.3f}s); "
            "the bar is 3%"
        )


def test_snapshot_isolation_under_load():
    """No reader ever sees a partially-committed or staged version:
    markers are inserted in atomically-committed pairs, so every
    committed version holds an even count."""
    service = _fresh_service(batch_window=0.0, workers=4)
    pair = [
        'transform copy $a := doc("xmark") modify do '
        "insert <iso_marker/> into $a/people return $a",
        'transform copy $a := doc("xmark") modify do '
        "insert <iso_marker/> into $a/regions return $a",
    ]
    readers_done = threading.Event()
    torn: list = []
    errors: list = []
    commits = [0]

    def writer():
        # At least one paired commit even if the readers (on a slow or
        # single-core host) finish their rounds first.
        while not readers_done.is_set() or commits[0] == 0:
            for text in pair:
                service.stage("xmark", text)
            service.commit("xmark")
            commits[0] += 1

    def reader():
        try:
            for _ in range(smoke_rounds(20, 5)):
                rows = service.query("xmark", "for $x in //iso_marker return $x")
                if len(rows) % 2:
                    torn.append(len(rows))
                # A staged-but-uncommitted preview must stay invisible
                # to plain reads; the staged flag flips it on.
        except Exception as exc:  # noqa: BLE001 - asserted below
            errors.append(exc)
        finally:
            readers_done.set()

    writer_thread = threading.Thread(target=writer)
    reader_threads = [threading.Thread(target=reader) for _ in range(4)]
    writer_thread.start()
    for thread in reader_threads:
        thread.start()
    for thread in reader_threads:
        thread.join()
    writer_thread.join()
    metrics = service.metrics()
    service.close()
    print()
    print(
        f"isolation hammer: {commits[0]} paired commits, "
        f"{metrics['snapshot_reads']} snapshot reads, "
        f"{metrics['stale_reads']} stale reads, 0 torn"
    )
    assert not errors, errors[:3]
    assert not torn, f"readers observed torn versions: {torn[:5]}"
    assert commits[0] >= 1
