"""Fig. 15(a-d) — Naive Composition vs the Compose Method on the four
(transform, user) pairs of Section 7.2.

Paper shape to reproduce: Compose consistently faster, with the widest
gap on (U9, U1) where the user query is largely disjoint from the
transform (the rewrite proves the update irrelevant and skips it
entirely); both methods linear in document size.
"""

import pytest

from repro.bench.harness import DATASET_SEED, dataset, smoke_factor, smoke_rounds
from repro.compose import compose, evaluate_composed, naive_compose
from repro.xmark.queries import composition_pairs

FACTORS = sorted({smoke_factor(f) for f in (0.005, 0.02)})
PAIRS = {f"{t}-{u}": (tq, uq) for t, u, tq, uq in composition_pairs()}


@pytest.mark.parametrize("factor", FACTORS)
@pytest.mark.parametrize("pair_id", sorted(PAIRS))
def test_fig15_naive_composition(benchmark, pair_id, factor):
    transform_query, user_query = PAIRS[pair_id]
    tree = dataset(factor, seed=DATASET_SEED)
    benchmark.group = f"fig15-{pair_id}-factor{factor}"
    benchmark.pedantic(
        naive_compose, args=(tree, user_query, transform_query),
        rounds=smoke_rounds(3, 1), iterations=1,
    )


@pytest.mark.parametrize("factor", FACTORS)
@pytest.mark.parametrize("pair_id", sorted(PAIRS))
def test_fig15_compose_method(benchmark, pair_id, factor):
    transform_query, user_query = PAIRS[pair_id]
    tree = dataset(factor, seed=DATASET_SEED)
    composed = compose(user_query, transform_query)
    benchmark.group = f"fig15-{pair_id}-factor{factor}"
    benchmark.pedantic(
        evaluate_composed, args=(tree, composed),
        rounds=smoke_rounds(3, 1), iterations=1,
    )
