"""The compiled runtime's acceptance bar: lazy-DFA ``topDown`` vs the
seed's frozenset ``nextStates`` runner.

Workload: the descendant-heavy Fig-12 embedded paths (U4, U5, U9, U10
all carry ``//``) as insert *and* delete transforms, over an XMark
document of at least 10 MB serialized (factor 0.25 ≈ 10.4 MB, ~384k
element nodes).  Both runners share one prebuilt selecting NFA per
query, so the comparison isolates exactly the refactor's claim: interned
state sets + memoized ``(set, symbol)`` transitions + compiled
qualifier closures vs per-node ``frozenset`` recomputation.

Methodology: best-of-N wall clock with a full ``gc.collect()`` before
each run and the cyclic collector paused *during* it — a gen-2
collection landing mid-run walks the whole multi-hundred-thousand-node
heap and can swamp the difference being measured (both runners allocate
the same output tree, so pausing is fair to both).

Bars (skipped in smoke mode, which only exercises the code paths):

* geometric-mean speedup >= 2x across the descendant-heavy suite;
* a prepared statement's second run reuses the cached DFA tables —
  zero new state sets, zero new transitions, and the engine's
  ``compiled_paths`` cache counts the hit.

Run standalone (prints the table, exits non-zero if a bar fails)::

    PYTHONPATH=src python benchmarks/bench_dfa.py            # full, 10 MB
    PYTHONPATH=src python benchmarks/bench_dfa.py --smoke    # tiny

or via pytest (the CI smoke job sets REPRO_BENCH_SMOKE=1)::

    PYTHONPATH=src python -m pytest benchmarks/bench_dfa.py -q -s
"""

from __future__ import annotations

import gc
import math
import time

from repro import Engine
from repro.automata.selecting import build_selecting_nfa
from repro.bench.harness import DATASET_SEED, SMOKE, dataset, format_table, smoke_rounds
from repro.transform.topdown import transform_topdown, transform_topdown_nfa
from repro.xmark.queries import delete_transform, insert_transform

#: Factor 0.25 serializes to ~10.4 MB — the bar's minimum document size.
FULL_FACTOR = 0.25
SMOKE_FACTOR = 0.002

#: The Fig-12 embedded paths containing ``//`` (descendant-heavy).
DESCENDANT_HEAVY = ["U4", "U5", "U9", "U10"]

REPEAT = smoke_rounds(3, 1)

#: The acceptance bar: geometric-mean speedup of the DFA runner.
SPEEDUP_BAR = 2.0


def _factor() -> float:
    return SMOKE_FACTOR if SMOKE else FULL_FACTOR


def _best_of(fn, repeat: int = REPEAT) -> float:
    best = float("inf")
    for _ in range(repeat):
        gc.collect()
        gc.disable()
        try:
            start = time.perf_counter()
            fn()
            best = min(best, time.perf_counter() - start)
        finally:
            gc.enable()
    return best


def _workload():
    for uid in DESCENDANT_HEAVY:
        yield f"ins-{uid}", insert_transform(uid)
        yield f"del-{uid}", delete_transform(uid)


def run_speedup_table(factor: float) -> tuple[list, float]:
    """Time both runners per query; returns (rows, geomean speedup)."""
    tree = dataset(factor, seed=DATASET_SEED)
    rows = []
    ratios = []
    for name, query in _workload():
        nfa = build_selecting_nfa(query.path)
        transform_topdown(tree, query, nfa=nfa)  # warm the DFA tables
        dfa_time = _best_of(lambda q=query, n=nfa: transform_topdown(tree, q, nfa=n))
        nfa_time = _best_of(lambda q=query, n=nfa: transform_topdown_nfa(tree, q, nfa=n))
        ratio = nfa_time / dfa_time
        ratios.append(ratio)
        rows.append((name, f"{nfa_time * 1000:.1f}", f"{dfa_time * 1000:.1f}",
                     f"{ratio:.2f}x"))
    geomean = math.exp(sum(math.log(r) for r in ratios) / len(ratios))
    return rows, geomean


def test_dfa_speedup_bar():
    factor = _factor()
    rows, geomean = run_speedup_table(factor)
    print()
    print(format_table(
        f"lazy-DFA vs frozenset topDown (xmark factor {factor}, "
        f"best of {REPEAT})",
        ["query", "frozenset ms", "dfa ms", "speedup"],
        rows,
    ))
    print(f"geometric mean speedup: {geomean:.2f}x (bar: {SPEEDUP_BAR}x)")
    if SMOKE:
        return  # smoke mode exercises the code paths, not the bar
    assert geomean >= SPEEDUP_BAR, (
        f"DFA runner only {geomean:.2f}x over the frozenset runner "
        f"(bar {SPEEDUP_BAR}x)"
    )


def test_prepared_rerun_zero_recompilation():
    """A prepared statement's re-run must reuse the compiled DFA tables.

    Observable three ways, all asserted: the engine memoizes the
    prepared object (cache hit counted), the CompiledPath bundle is the
    same object, and the DFA's own table counters do not move across
    the second run.
    """
    tree = dataset(SMOKE_FACTOR if SMOKE else 0.01, seed=DATASET_SEED)
    engine = Engine()
    text = str(insert_transform("U9"))
    prepared = engine.prepare_transform(text)
    prepared.run(tree, method="topdown")

    path_hits_before = engine.cache.compiled_paths.stats()["hits"]
    tables_before = prepared.compiled.stats()

    again = engine.prepare_transform(text)
    assert again is prepared, "re-preparation must be a cache hit"
    again.run(tree, method="topdown")

    tables_after = prepared.compiled.stats()
    assert tables_after == tables_before, (
        f"re-run recompiled DFA tables: {tables_before} -> {tables_after}"
    )
    # The second preparation hit the prepared-statement memo; preparing
    # the same path through a *different* text must hit compiled_paths.
    other_text = str(delete_transform("U9"))
    engine.prepare_transform(other_text)
    assert engine.cache.compiled_paths.stats()["hits"] > path_hits_before, (
        "the CompiledPath cache never counted a hit"
    )
    print()
    print(f"prepared re-run: DFA tables stable at {tables_after}")


def main(argv=None) -> int:
    import argparse

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke", action="store_true",
        help="tiny document, no acceptance bars (CI smoke)",
    )
    parser.add_argument(
        "--factor", type=float, default=None,
        help=f"override the XMark factor (default {FULL_FACTOR})",
    )
    args = parser.parse_args(argv)
    factor = args.factor if args.factor is not None else (
        SMOKE_FACTOR if args.smoke else FULL_FACTOR
    )
    rows, geomean = run_speedup_table(factor)
    print(format_table(
        f"lazy-DFA vs frozenset topDown (xmark factor {factor}, "
        f"best of {REPEAT})",
        ["query", "frozenset ms", "dfa ms", "speedup"],
        rows,
    ))
    print(f"geometric mean speedup: {geomean:.2f}x (bar: {SPEEDUP_BAR}x)")
    test_prepared_rerun_zero_recompilation()
    if args.smoke:
        return 0
    if geomean < SPEEDUP_BAR:
        print(f"FAIL: below the {SPEEDUP_BAR}x bar")
        return 1
    print("OK")
    return 0


if __name__ == "__main__":
    import sys

    sys.exit(main())
