"""Commit-path benchmark: spliced incremental commits vs full rebuild.

One small committed insert (a two-element audit record into
``regions/samerica``) against an XMark document, measured end to end —
commit plus the first post-commit snapshot pin, which is where the
rebuild path pays its deferred O(document) freeze:

* **splice** — the default ``ViewStore``: the staged update's select
  result becomes a handful of patches, the next frozen arena is spliced
  from the current one (untouched columns shared), and delta-scoped
  invalidation re-keys every cached result whose query is provably
  label-disjoint from the delta.
* **rebuild** — ``ViewStore(incremental_commits=False)``: the seed's
  destructive path (mutate the Node tree, bump the version, blanket
  cache purge, full columnar re-freeze on the next read).

The acceptance bar (full mode): the spliced commit is >= 5x faster,
with >= 50% of the unaffected cached results retained — both
counter-asserted against the commit receipt, and the two stores'
documents must serialize identically afterwards (splice == rebuild).

Run with::

    PYTHONPATH=src python -m pytest benchmarks/bench_commit.py -q -s
"""

import gc
import time

from repro.bench.harness import (
    DATASET_SEED,
    SMOKE,
    dataset,
    format_table,
    smoke_factor,
    smoke_rounds,
)
from repro.store import ViewStore
from repro.xmltree.node import deep_copy
from repro.xmltree.serializer import serialize

FACTOR = smoke_factor(0.1)  # ~10.4MB of XMark in full mode
ROUNDS = smoke_rounds(5, 2)

#: The small delta: one insert into a single regions subtree.
SMALL_COMMIT = (
    'transform copy $a := doc("xmark") modify do '
    "insert <audit><entry>delta</entry></audit> into $a/regions/samerica "
    "return $a"
)

#: Cached queries provably untouched by the delta (label sets disjoint
#: from {site, regions, samerica, audit, entry}) — these must survive.
RETAINED = [
    "for $x in people/person return $x/name",
    "for $x in people/person[@id = 'person0'] return $x",
    "for $x in open_auctions/open_auction[initial > 10] return $x/bidder",
    "for $x in closed_auctions/closed_auction return $x/price",
]

#: Cached queries that mention a delta label — these must drop.
DROPPED = [
    "for $x in regions//item return $x/location",
    "for $x in regions/samerica//item return $x",
]


def _stores() -> "tuple[ViewStore, ViewStore]":
    """Two stores over identical trees: the incremental default and the
    rebuild baseline.  The shared benchmark dataset is deep-copied —
    the rebuild path mutates its tree in place."""
    tree = dataset(FACTOR, seed=DATASET_SEED)
    spliced = ViewStore()
    spliced.put("xmark", deep_copy(tree))
    rebuild = ViewStore(incremental_commits=False)
    rebuild.put("xmark", deep_copy(tree))
    return spliced, rebuild


def _commit_and_pin(store: ViewStore) -> float:
    """Seconds for one staged small commit plus the first post-commit
    snapshot pin (where the rebuild path pays its arena re-freeze)."""
    store.stage("xmark", SMALL_COMMIT)
    gc.collect()  # keep collector pauses for prior rounds' garbage out
    start = time.perf_counter()
    store.commit("xmark")
    store.pin("xmark")
    return time.perf_counter() - start


def test_small_commit_splices_5x_faster_with_cache_retention():
    spliced_store, rebuild_store = _stores()
    # Warm both arenas so neither side pays the initial freeze inside
    # the timed region, then seed the result cache on both.
    for store in (spliced_store, rebuild_store):
        store.pin("xmark")
        for text in RETAINED + DROPPED:
            store.query("xmark", text)

    splice_times = []
    rebuild_times = []
    deltas = []
    for _ in range(ROUNDS):
        splice_times.append(_commit_and_pin(spliced_store))
        deltas.append(spliced_store.last_delta)
        rebuild_times.append(_commit_and_pin(rebuild_store))
        # Re-seed what the commits invalidated so every round observes
        # retention against a fully warmed cache.
        for store in (spliced_store, rebuild_store):
            for text in RETAINED + DROPPED:
                store.query("xmark", text)
    splice_s = min(splice_times)
    rebuild_s = min(rebuild_times)

    # --- The receipts: every commit really spliced, and delta-scoped
    # invalidation kept every provably-unaffected cached result.
    for delta in deltas:
        assert delta is not None and delta.spliced, delta
        assert delta.entries == 1 and delta.patches == 1, delta
        assert delta.results_kept >= len(RETAINED), delta
        assert delta.results_dropped >= len(DROPPED), delta
        kept_ratio = delta.results_kept / (
            delta.results_kept + delta.results_dropped
        )
        assert kept_ratio >= 0.5, delta
    doc = spliced_store.documents.get("xmark")
    assert doc.splices == ROUNDS

    # --- Structural sharing: the chain's newest entry shares its
    # untouched payload strings and attr tuples with its predecessor,
    # so it owns far less than the full (first) arena does.
    chain = spliced_store.chain_info("xmark")
    assert chain["length"] >= 2 and chain["splices"] == ROUNDS
    newest = chain["per_version"][-1]
    oldest = chain["per_version"][0]
    assert newest["shared_bytes"] > 0, chain
    assert newest["owned_bytes"] < oldest["owned_bytes"], chain

    # --- Splice == rebuild: both stores hold the same document.
    assert serialize(spliced_store.documents.get("xmark").root) == serialize(
        rebuild_store.documents.get("xmark").root
    )

    speedup = rebuild_s / splice_s if splice_s > 0 else float("inf")
    print()
    print(format_table(
        f"small-delta commit, factor {FACTOR} ({ROUNDS} rounds, best)",
        ["path", "ms", "speedup"],
        [
            ("rebuild (mutate+refreeze)", f"{rebuild_s * 1000:.2f}", "1.0x"),
            ("splice (delta arena)", f"{splice_s * 1000:.2f}", f"{speedup:.1f}x"),
        ],
    ))
    last = deltas[-1]
    print(
        f"  retention: {last.results_kept} results kept / "
        f"{last.results_dropped} dropped; delta touched "
        f"{last.touched_nodes} node(s) of {len(doc.chain.latest().arena)}"
    )
    # The acceptance bar (informational at smoke sizes, where the
    # document is a few hundred nodes and constant overheads dominate).
    if not SMOKE:
        assert splice_s * 5 <= rebuild_s, (
            f"splice {splice_s:.4f}s not 5x faster than rebuild {rebuild_s:.4f}s"
        )


def test_wal_fsync_overhead_is_bounded(tmp_path):
    """Durability bar: an fsync'd write-ahead-logged commit stays
    within 1.5x of the no-WAL commit on the small-delta profile — the
    log costs one serialized-texts append and one fsync, never a
    rewrite of anything proportional to the document."""
    from repro.store.wal import WalWriter

    tree = dataset(FACTOR, seed=DATASET_SEED)
    walled = ViewStore()
    walled.put("xmark", deep_copy(tree))
    walled.wal = WalWriter(str(tmp_path / "wal.jsonl"))
    plain = ViewStore()
    plain.put("xmark", deep_copy(tree))
    for store in (walled, plain):
        store.pin("xmark")  # neither side pays the initial freeze

    wal_times = []
    plain_times = []
    for _ in range(ROUNDS):
        wal_times.append(_commit_and_pin(walled))
        plain_times.append(_commit_and_pin(plain))
    wal_s = min(wal_times)
    plain_s = min(plain_times)

    # The receipts: every walled commit really appended and fsync'd.
    stats = walled.wal.stats()
    assert stats["appends"] == ROUNDS and stats["fsyncs"] == ROUNDS, stats
    assert plain.wal is None

    ratio = wal_s / plain_s if plain_s > 0 else float("inf")
    print()
    print(format_table(
        f"small-delta commit durability, factor {FACTOR} "
        f"({ROUNDS} rounds, best)",
        ["path", "ms", "vs no-WAL"],
        [
            ("no WAL (in-memory)", f"{plain_s * 1000:.2f}", "1.00x"),
            ("WAL, fsync per commit", f"{wal_s * 1000:.2f}", f"{ratio:.2f}x"),
        ],
    ))
    # Informational at smoke sizes: on a tiny document the fsync is
    # the whole commit, so the ratio only means something in full mode.
    if not SMOKE:
        assert wal_s <= plain_s * 1.5, (
            f"WAL commit {wal_s:.4f}s exceeds 1.5x no-WAL {plain_s:.4f}s"
        )


def test_noop_commit_is_free():
    spliced_store, _ = _stores()
    doc = spliced_store.documents.get("xmark")
    spliced_store.query("xmark", RETAINED[0])
    before = doc.version
    assert spliced_store.commit("xmark") == before
    delta = spliced_store.last_delta
    assert delta.entries == 0 and delta.old_version == delta.new_version
    key = ("xmark", before, RETAINED[0])
    assert spliced_store.results.get(key) is not None, "no-op must not purge"
