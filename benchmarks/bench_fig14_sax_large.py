"""Fig. 14 — twoPassSAX on large on-disk documents.

Paper shape to reproduce: linear time in file size with small,
size-independent memory (the paper reports <5MB regardless of input;
our measured peak heap stays well under 1MB — see EXPERIMENTS.md).
The figure driver (``python -m repro.bench.figures fig14``) sweeps
larger factors and records memory; this suite keeps the bench run
short with two sizes per query.
"""

import pytest

from repro.bench.harness import DATASET_SEED, smoke_factor
from repro.transform.sax_twopass import transform_sax_file
from repro.xmark.generator import write_xmark_file
from repro.xmark.queries import insert_transform

FACTORS = sorted({smoke_factor(f) for f in (0.05, 0.1)})
QUERIES = ["U2", "U7"]

_files: dict = {}


@pytest.fixture(scope="session")
def xmark_file(tmp_path_factory):
    def get(factor: float) -> str:
        if factor not in _files:
            path = tmp_path_factory.mktemp("fig14") / f"xmark-{factor}.xml"
            write_xmark_file(str(path), factor, seed=DATASET_SEED)
            _files[factor] = str(path)
        return _files[factor]

    return get


@pytest.mark.parametrize("factor", FACTORS)
@pytest.mark.parametrize("uid", QUERIES)
def test_fig14(benchmark, tmp_path, xmark_file, uid, factor):
    in_path = xmark_file(factor)
    out_path = str(tmp_path / "out.xml")
    query = insert_transform(uid)
    benchmark.group = f"fig14-{uid}"
    benchmark.pedantic(
        transform_sax_file, args=(in_path, query, out_path), rounds=1, iterations=1
    )
