"""Open-loop load generator for a live ``repro serve``.

Drives the Fig-12 read mix (plus a sprinkling of committed writes) at
a **target QPS** against a running server and records the achieved
throughput and latency percentiles into ``BENCH_service.json`` — the
service's perf trajectory, one entry appended per run, so regressions
show up as a bent curve rather than a vanished number.

Open-loop means arrivals are *scheduled*: request *i* fires at
``start + i/qps`` regardless of how long earlier requests took, and
each latency is measured **from its scheduled arrival**, not from the
moment the client thread got around to sending it.  A server that
falls behind therefore shows the queueing delay it actually inflicts
(no coordinated omission).

Usage (the server must already be listening)::

    PYTHONPATH=src python -m repro serve --port 7007 &
    PYTHONPATH=src python benchmarks/loadgen.py --port 7007 \\
        --qps 200 --duration 10 --clients 8 --label nightly

The trajectory file is one JSON object::

    {"benchmark": "service-loadgen",
     "runs": [{"label": "nightly", "timestamp": …, "target_qps": 200,
               "achieved_qps": 198.2, "requests": 2000, "errors": 0,
               "retries": 0, "reconnects": 0, "retries_exhausted": 0,
               "writes": 40, "p50_ms": 1.9, "p95_ms": 4.2,
               "p99_ms": 7.8, "max_ms": 12.1, "duration_s": 10.09}, …]}

The module is importable (``run_load``/``append_run``): the loadgen
smoke test in ``tests/test_obs.py`` and the CI ``loadgen-smoke`` job
drive the same code paths this CLI does.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import threading
import time

if __package__ in (None, ""):  # direct execution without PYTHONPATH=src
    _SRC = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
    if _SRC not in sys.path:
        sys.path.insert(0, _SRC)

from repro.service.client import Client
from repro.service.errors import ServiceError
from repro.store.errors import StoreError
from repro.xmark.generator import generate
from repro.xmark.queries import EMBEDDED_PATHS
from repro.xmltree.serializer import serialize

#: The Fig-12 user-query mix (same shapes bench_service.py serves).
READS = [
    f"for $x in {EMBEDDED_PATHS[uid]} return $x"
    for uid in ("U1", "U2", "U3", "U4", "U8", "U9")
]

#: The mixed-in write: a tiny committed insert that bumps the version.
WRITE = (
    'transform copy $a := doc("{name}") modify do '
    "insert <loadgen_round/> into $a/regions return $a"
)


def ensure_document(
    client: Client, name: str, factor: float = 0.002, seed: int = 42
) -> None:
    """Load a generated XMark document over the wire unless the server
    already holds one under *name*."""
    stats = client.stats()
    if name in stats["store"]["documents"]:
        return
    client.load(name, xml=serialize(generate(factor, seed)), replace=True)


def percentile(sorted_values: list, q: float) -> float:
    """Exact linear-interpolated percentile of a pre-sorted list."""
    if not sorted_values:
        return float("nan")
    if len(sorted_values) == 1:
        return sorted_values[0]
    rank = q / 100.0 * (len(sorted_values) - 1)
    low = int(rank)
    high = min(low + 1, len(sorted_values) - 1)
    fraction = rank - low
    return sorted_values[low] + (sorted_values[high] - sorted_values[low]) * fraction


def run_load(
    host: str,
    port: int,
    *,
    qps: float,
    duration: float,
    clients: int = 4,
    target: str = "xmark",
    write_every: int = 50,
    write_ratio: float = 0.0,
    label: str = "",
) -> dict:
    """Drive the open-loop load and return one trajectory entry.

    Every ``write_every``-th scheduled request is a committed write
    (``0`` disables writes); the rest cycle through :data:`READS`.
    ``write_ratio`` (0.0–1.0) overrides ``write_every`` with a
    write-heavy mix profile: the commit-path trajectory wants writes
    dense enough (say 0.1–0.5) that splice latency and cache retention
    dominate the percentiles, which ``write_every``'s sparse fixed
    cadence cannot express.  Latencies are seconds from *scheduled
    arrival* to completion.
    """
    if qps <= 0:
        raise ValueError(f"qps must be positive, got {qps}")
    if not 0.0 <= write_ratio <= 1.0:
        raise ValueError(f"write-ratio must be in [0, 1], got {write_ratio}")
    total = max(1, int(qps * duration))
    clients = max(1, min(clients, total))
    outcomes: list = [None] * clients
    start = time.perf_counter() + 0.05  # let every thread reach its loop

    def worker(index: int) -> None:
        latencies: list = []
        errors = 0
        writes = 0
        client = Client(host, port)
        try:
            for j in range(index, total, clients):
                scheduled = start + j / qps
                delay = scheduled - time.perf_counter()
                if delay > 0:
                    time.sleep(delay)
                if write_ratio > 0.0:
                    # Evenly interleaved by schedule index: request j is
                    # a write when the running quota crosses an integer.
                    is_write = int((j + 1) * write_ratio) > int(j * write_ratio)
                else:
                    is_write = write_every > 0 and j % write_every == write_every - 1
                try:
                    if is_write:
                        client.commit(target, WRITE.format(name=target))
                        writes += 1
                    else:
                        client.query(target, READS[j % len(READS)])
                except (ServiceError, StoreError):
                    errors += 1
                latencies.append(time.perf_counter() - scheduled)
        finally:
            client.close()
        outcomes[index] = (latencies, errors, writes, dict(client.retry_stats))

    threads = [
        threading.Thread(target=worker, args=(index,), name=f"loadgen-{index}")
        for index in range(clients)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    elapsed = time.perf_counter() - start
    latencies = sorted(
        value for outcome in outcomes if outcome for value in outcome[0]
    )
    errors = sum(outcome[1] for outcome in outcomes if outcome)
    writes = sum(outcome[2] for outcome in outcomes if outcome)
    # The clients' self-healing counters: automatic idempotent-read
    # retries, socket reconnects, and retry budgets that ran out.  A
    # run with a healthy server reports zeros; a bent curve here dates
    # a transport regression even when the percentiles survived it.
    retry_stats = {"retries": 0, "reconnects": 0, "exhausted": 0}
    for outcome in outcomes:
        if outcome:
            for key in retry_stats:
                retry_stats[key] += outcome[3].get(key, 0)
    return {
        "label": label,
        "timestamp": time.time(),
        "target": target,
        "clients": clients,
        "target_qps": qps,
        "achieved_qps": len(latencies) / elapsed if elapsed > 0 else 0.0,
        "duration_s": round(elapsed, 4),
        "requests": len(latencies),
        "errors": errors,
        "retries": retry_stats["retries"],
        "reconnects": retry_stats["reconnects"],
        "retries_exhausted": retry_stats["exhausted"],
        "writes": writes,
        "write_ratio": write_ratio,
        "p50_ms": round(percentile(latencies, 50.0) * 1000.0, 4),
        "p95_ms": round(percentile(latencies, 95.0) * 1000.0, 4),
        "p99_ms": round(percentile(latencies, 99.0) * 1000.0, 4),
        "max_ms": round(latencies[-1] * 1000.0, 4) if latencies else float("nan"),
    }


def append_run(
    path: str, entry: dict, benchmark: str = "service-loadgen"
) -> dict:
    """Append one run entry to the trajectory file (created if absent,
    reset if unreadable); returns the written document."""
    doc = {"benchmark": benchmark, "runs": []}
    if os.path.exists(path):
        try:
            with open(path, "r", encoding="utf-8") as handle:
                found = json.load(handle)
            if isinstance(found, dict) and isinstance(found.get("runs"), list):
                doc = found
        except (OSError, json.JSONDecodeError):
            pass
    doc["runs"].append(entry)
    tmp = f"{path}.tmp"
    with open(tmp, "w", encoding="utf-8") as handle:
        json.dump(doc, handle, indent=2, sort_keys=True)
        handle.write("\n")
    os.replace(tmp, path)
    return doc


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="open-loop load generator for a running repro serve"
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, required=True)
    parser.add_argument("--qps", type=float, default=100.0, help="target requests/s")
    parser.add_argument("--duration", type=float, default=10.0, help="seconds")
    parser.add_argument("--clients", type=int, default=4, help="client connections")
    parser.add_argument("--target", default="xmark", help="document to query")
    parser.add_argument(
        "--factor", type=float, default=0.002,
        help="XMark factor used when the document must be loaded first",
    )
    parser.add_argument(
        "--write-every", type=int, default=50,
        help="every N-th request is a committed write (0: reads only)",
    )
    parser.add_argument(
        "--write-ratio", type=float, default=0.0,
        help="write-heavy mix: fraction of requests that are committed "
        "writes (overrides --write-every when > 0)",
    )
    parser.add_argument(
        "--out", default="BENCH_service.json", help="trajectory file to append to"
    )
    parser.add_argument("--label", default="", help="tag for this run's entry")
    args = parser.parse_args(argv)

    with Client(args.host, args.port) as client:
        client.ping()
        ensure_document(client, args.target, factor=args.factor)
    entry = run_load(
        args.host,
        args.port,
        qps=args.qps,
        duration=args.duration,
        clients=args.clients,
        target=args.target,
        write_every=args.write_every,
        write_ratio=args.write_ratio,
        label=args.label,
    )
    append_run(args.out, entry)
    print(
        f"loadgen: {entry['requests']} requests in {entry['duration_s']}s "
        f"({entry['achieved_qps']:.1f}/s of {args.qps:.0f} targeted), "
        f"{entry['writes']} writes, {entry['errors']} errors, "
        f"{entry['retries']} retries ({entry['retries_exhausted']} exhausted), "
        f"p50 {entry['p50_ms']}ms p95 {entry['p95_ms']}ms p99 {entry['p99_ms']}ms "
        f"-> {args.out}"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
