"""Streaming composition (beyond the paper — its future-work item 3).

Compares three ways to answer Q(Qt(T)) on an on-disk document:

* naive: parse the file into a tree, transform fully, run Q;
* composed: parse into a tree, run the Compose Method's output;
* streaming: never build the tree — two-pass transform events feed the
  streaming selector (`repro.streaming`).

Expected: the streaming pipeline loses on wall-clock at these sizes
(event processing in Python is slower than shared-subtree tree work)
but is the only one whose memory does not grow with the file — the
same trade-off as Fig. 12 vs Fig. 14 for the plain transform.
"""

import pytest

from repro.bench.harness import DATASET_SEED, smoke_factor, smoke_rounds
from repro.compose import compose, evaluate_composed, naive_compose
from repro.streaming import stream_compose_file
from repro.xmark.generator import write_xmark_file
from repro.xmark.queries import composition_pairs
from repro.xmltree import parse_file

FACTOR = smoke_factor(0.02)

PAIRS = {f"{t}-{u}": (tq, uq) for t, u, tq, uq in composition_pairs()}


@pytest.fixture(scope="session")
def on_disk(tmp_path_factory):
    path = tmp_path_factory.mktemp("streaming") / "xmark.xml"
    write_xmark_file(str(path), FACTOR, seed=DATASET_SEED)
    return str(path)


@pytest.mark.parametrize("pair_id", sorted(PAIRS))
def test_streaming_pipeline(benchmark, on_disk, pair_id):
    transform_query, user_query = PAIRS[pair_id]
    benchmark.group = f"streaming-{pair_id}"

    def run():
        return list(stream_compose_file(on_disk, user_query, transform_query))

    benchmark.pedantic(run, rounds=smoke_rounds(2, 1), iterations=1)


@pytest.mark.parametrize("pair_id", sorted(PAIRS))
def test_tree_composed(benchmark, on_disk, pair_id):
    transform_query, user_query = PAIRS[pair_id]
    benchmark.group = f"streaming-{pair_id}"
    composed = compose(user_query, transform_query)

    def run():
        tree = parse_file(on_disk)
        return evaluate_composed(tree, composed)

    benchmark.pedantic(run, rounds=smoke_rounds(2, 1), iterations=1)


@pytest.mark.parametrize("pair_id", sorted(PAIRS))
def test_tree_naive(benchmark, on_disk, pair_id):
    transform_query, user_query = PAIRS[pair_id]
    benchmark.group = f"streaming-{pair_id}"

    def run():
        tree = parse_file(on_disk)
        return naive_compose(tree, user_query, transform_query)

    benchmark.pedantic(run, rounds=smoke_rounds(2, 1), iterations=1)
