"""Shared fixtures for the figure benchmarks."""

import pytest

from repro.bench.harness import dataset


@pytest.fixture(scope="session")
def small_tree():
    """The Fig. 12 dataset (one factor, all queries)."""
    return dataset(0.005)
