"""Shared fixtures for the figure benchmarks."""

import pytest

from repro.bench.harness import DATASET_SEED, dataset, smoke_factor


@pytest.fixture(scope="session")
def small_tree():
    """The Fig. 12 dataset (one factor, all queries)."""
    return dataset(smoke_factor(0.005), seed=DATASET_SEED)
