"""Engine benchmarks: prepared re-execution and the auto planner.

Two acceptance bars for the prepared-statement API:

* **prepared vs. parse-per-call** — the old flat API re-parses the
  query text and rebuilds the automata on every call; a prepared
  transform pays that once.  Re-execution through the prepared object
  must be at least 5x faster than the parse-per-call loop.
* **auto vs. best fixed** — on the Fig-12 matrix (U1-U10 insert
  transforms over the XMark tree), the planner's ``auto`` choice must
  land within 1.5x of the best *fixed* method's total, without anyone
  telling it which method that is.

Run with::

    PYTHONPATH=src python -m pytest benchmarks/bench_engine.py -q -s
"""

import time

from repro import Engine, parse, parse_transform_query, transform_topdown
from repro.bench.harness import (
    DATASET_SEED,
    METHODS,
    SMOKE,
    dataset,
    format_table,
    smoke_factor,
    smoke_rounds,
)
from repro.xmark.queries import QUERY_IDS, insert_transform

FACTOR = smoke_factor(0.005)

#: A small document: re-execution cost is dominated by parse + compile
#: when the tree is cheap to transform — exactly the workload a
#: prepared statement exists for.
SMALL_DOC = (
    "<site><people>"
    "<person id='person1'><name>p1</name><profile><age>30</age>"
    "<interest><category><subcategory><topic><detail/></topic>"
    "</subcategory></category></interest>"
    "</profile></person>"
    "</people></site>"
)

#: A deliberately wordy query — a long document name, chunky literal
#: content and an eight-step path are all expensive to parse and
#: compile per call, while execution stays a narrow pruned walk.
_DOCNAME = "customer-catalog-snapshot-" + "-".join(
    f"shard{i:03d}" for i in range(40)
)
_NOTE = " ".join(["reviewed-by-the-nightly-batch-auditor"] * 12)
_POLICY = ";".join(f"rule{i}=allow" for i in range(60))
PREPARED_QUERY = (
    f'transform copy $a := doc("{_DOCNAME}") modify do '
    f'insert <checked status="reviewed" note="{_NOTE}" '
    f'policy="{_POLICY}"/> into '
    "$a/people/person[@id = 'person1']/profile/interest/category"
    "/subcategory/topic/detail return $a"
)

ROUNDS = smoke_rounds(300, 20)


def _best_of(repeats: int, fn) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def test_prepared_reexecution_at_least_5x_faster_than_parse_per_call():
    tree = parse(SMALL_DOC)

    def parse_per_call():
        for _ in range(ROUNDS):
            query = parse_transform_query(PREPARED_QUERY)
            transform_topdown(tree, query)  # builds its NFA per call

    engine = Engine()
    prepared = engine.prepare_transform(PREPARED_QUERY)
    prepared.run(tree)  # warm the plan path once

    def prepared_run():
        for _ in range(ROUNDS):
            prepared.run(tree)

    # One retry absorbs a noisy-scheduler round on shared CI runners:
    # both loops are same-process CPU-bound Python, so the *ratio* is
    # stable, but a single unlucky slice can still skew one side.
    for _attempt in range(2):
        per_call = _best_of(3, parse_per_call)
        prepared_time = _best_of(3, prepared_run)
        if prepared_time * 5 <= per_call:
            break

    print()
    print(format_table(
        f"prepared vs parse-per-call ({ROUNDS} executions)",
        ["mode", "ms", "speedup"],
        [
            ("parse per call", f"{per_call * 1000:.1f}", "1.0x"),
            ("prepared.run", f"{prepared_time * 1000:.1f}",
             f"{per_call / prepared_time:.1f}x"),
        ],
    ))
    if SMOKE:
        return  # smoke mode exercises the code paths, not the bar
    assert prepared_time * 5 <= per_call, (
        f"prepared {prepared_time:.4f}s not 5x faster than "
        f"parse-per-call {per_call:.4f}s"
    )


def test_auto_within_1p5x_of_best_fixed_method_on_fig12_matrix():
    tree = dataset(FACTOR, seed=DATASET_SEED)
    engine = Engine()
    queries = {uid: insert_transform(uid) for uid in QUERY_IDS}

    prepared = {
        uid: engine.prepare_transform(query)  # parsed query: no lossy text
        for uid, query in queries.items()
    }

    def run_auto():
        for p in prepared.values():
            p.run(tree)

    # One retry absorbs a noisy-scheduler round on shared CI runners
    # (same rationale as the 5x test above).
    for _attempt in range(2):
        fixed_totals = {}
        for name, fn in METHODS.items():
            def run_fixed(fn=fn):
                for query in queries.values():
                    fn(tree, query)
            fixed_totals[name] = _best_of(2, run_fixed)
        auto_total = _best_of(2, run_auto)
        if auto_total <= 1.5 * min(fixed_totals.values()):
            break

    best_name = min(fixed_totals, key=fixed_totals.get)
    best = fixed_totals[best_name]
    rows = [
        (name, f"{total * 1000:.1f}", f"{total / best:.2f}x")
        for name, total in sorted(fixed_totals.items(), key=lambda kv: kv[1])
    ]
    rows.append(("auto (planner)", f"{auto_total * 1000:.1f}",
                 f"{auto_total / best:.2f}x"))
    print()
    print(format_table(
        f"Fig-12 matrix totals (factor {FACTOR}, U1-U10 inserts)",
        ["method", "ms", "vs best"],
        rows,
    ))
    chosen = engine.planner.stats()["chosen"]
    print(f"planner choices: {chosen}")
    if SMOKE:
        return  # smoke mode exercises the code paths, not the bar
    assert auto_total <= 1.5 * best, (
        f"auto {auto_total:.4f}s exceeds 1.5x best fixed "
        f"({best_name} {best:.4f}s)"
    )
