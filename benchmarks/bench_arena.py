"""The columnar arena's acceptance bars: the arena backend vs the PR-3
DFA runner on the Fig-12 select/query workloads, plus the resident-
memory and snapshot contracts.

Workload, over an XMark document of at least 10 MB serialized (factor
0.25 ≈ 10.4 MB, ~500k nodes):

* **select** — the descendant-heavy Fig-12 embedded paths (U4, U5,
  U9, U10) run through ``run_select``: the PR-3 lazy-DFA walk over
  ``Element`` objects vs the arena walk over int columns
  (:func:`repro.automata.arena_run.select_indices`).  Both runners
  share one prebuilt selecting NFA per query — the same automaton,
  the same memoized move tables — so the comparison isolates exactly
  this PR's claim: dense pre-order columns vs Python object traversal.
* **query** — the Fig-11 user queries ``for $x in Ui return $x`` for
  the qualifier-bearing shapes: ``evaluate_query`` on the tree vs the
  arena evaluator's zero-thaw reference run (both identify the same
  result items; neither serializes).

Bars (relaxed in smoke mode, which only exercises the code paths):

* geometric-mean speedup >= 2x across the select+query suite;
* resident bytes per loaded document (tracemalloc): the arena load
  path must be >= 3x smaller than the Node parse — in smoke mode the
  regression guard still asserts arena <= Node bytes;
* **zero recompilation** — re-running a select on the warm arena adds
  no DFA state sets and no transitions (table counters stable);
* **zero-copy snapshots** — N store reads of one committed version
  share one frozen arena object (``arena_builds`` stays 1, the object
  is identical), and a commit rebuilds it exactly once.

Run standalone (prints the tables, exits non-zero if a bar fails)::

    PYTHONPATH=src python benchmarks/bench_arena.py            # full, 10 MB
    PYTHONPATH=src python benchmarks/bench_arena.py --smoke    # tiny

or via pytest (the CI smoke job sets REPRO_BENCH_SMOKE=1)::

    PYTHONPATH=src python -m pytest benchmarks/bench_arena.py -q -s
"""

from __future__ import annotations

import gc
import math
import time
import tracemalloc

from repro.automata.arena_run import select_indices
from repro.automata.selecting import build_selecting_nfa
from repro.bench.harness import DATASET_SEED, SMOKE, dataset, format_table, smoke_rounds
from repro.store.store import ViewStore
from repro.xmark.queries import EMBEDDED_PATHS, delete_transform, user_query_for
from repro.xmltree.arena import freeze
from repro.xmltree.serializer import write_file
from repro.xpath.parser import parse_xpath
from repro.xquery.arena_eval import ArenaEvaluator
from repro.xquery.evaluator import evaluate_query

#: Factor 0.25 serializes to ~10.4 MB — the bar's minimum document size.
FULL_FACTOR = 0.25
SMOKE_FACTOR = 0.002

#: The Fig-12 embedded paths containing ``//`` (descendant-heavy).
SELECT_SUITE = ["U4", "U5", "U9", "U10"]

#: The qualifier-bearing Fig-11 user-query shapes.
QUERY_SUITE = ["U2", "U3", "U7", "U8", "U9", "U10"]

REPEAT = smoke_rounds(3, 1)

#: The acceptance bars.
SPEEDUP_BAR = 2.0
MEMORY_BAR = 3.0


def _factor() -> float:
    return SMOKE_FACTOR if SMOKE else FULL_FACTOR


def _best_of(fn, repeat: int = REPEAT) -> float:
    best = float("inf")
    for _ in range(repeat):
        gc.collect()
        gc.disable()
        try:
            start = time.perf_counter()
            fn()
            best = min(best, time.perf_counter() - start)
        finally:
            gc.enable()
    return best


def run_speedup_table(factor: float) -> tuple[list, float]:
    """Time node vs arena per workload entry; returns (rows, geomean)."""
    tree = dataset(factor, seed=DATASET_SEED)
    arena = freeze(tree)
    rows = []
    ratios = []
    for uid in SELECT_SUITE:
        nfa = build_selecting_nfa(parse_xpath(EMBEDDED_PATHS[uid]))
        nfa.run_select(tree)            # warm the DFA tables
        select_indices(nfa, arena)      # ... and the arena closures
        node_time = _best_of(lambda: nfa.run_select(tree))
        arena_time = _best_of(lambda: select_indices(nfa, arena))
        ratio = node_time / arena_time
        ratios.append(ratio)
        rows.append((
            f"select-{uid}", f"{node_time * 1000:.1f}",
            f"{arena_time * 1000:.1f}", f"{ratio:.2f}x",
        ))
    for uid in QUERY_SUITE:
        query = user_query_for(uid)
        evaluator = ArenaEvaluator(arena)
        evaluate_query(tree, query)          # warm both paths
        evaluator.evaluate_refs(query)
        node_time = _best_of(lambda: evaluate_query(tree, query))
        arena_time = _best_of(lambda: evaluator.evaluate_refs(query))
        ratio = node_time / arena_time
        ratios.append(ratio)
        rows.append((
            f"query-{uid}", f"{node_time * 1000:.1f}",
            f"{arena_time * 1000:.1f}", f"{ratio:.2f}x",
        ))
    geomean = math.exp(sum(math.log(r) for r in ratios) / len(ratios))
    return rows, geomean


def run_memory_table(factor: float, tmp_path: str) -> tuple[list, float]:
    """Resident bytes of the two load paths; returns (rows, ratio)."""
    from repro.xmltree.parser import parse_file, parse_file_to_arena

    write_file(dataset(factor, seed=DATASET_SEED), tmp_path)
    tracemalloc.start()
    tree = parse_file(tmp_path)
    node_bytes, _ = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    nodes = tree.size()
    del tree
    tracemalloc.start()
    arena = parse_file_to_arena(tmp_path)
    arena_bytes, _ = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    assert len(arena) == nodes
    ratio = node_bytes / max(1, arena_bytes)
    rows = [
        ("node tree", f"{node_bytes}", f"{node_bytes / nodes:.0f}"),
        ("arena", f"{arena_bytes}", f"{arena_bytes / nodes:.0f}"),
    ]
    return rows, ratio


def test_arena_speedup_bar():
    factor = _factor()
    rows, geomean = run_speedup_table(factor)
    print()
    print(format_table(
        f"arena backend vs PR-3 DFA runner (xmark factor {factor}, "
        f"best of {REPEAT})",
        ["workload", "node ms", "arena ms", "speedup"],
        rows,
    ))
    print(f"geometric mean speedup: {geomean:.2f}x (bar: {SPEEDUP_BAR}x)")
    if SMOKE:
        return  # smoke mode exercises the code paths, not the bar
    assert geomean >= SPEEDUP_BAR, (
        f"arena backend only {geomean:.2f}x over the Node runners "
        f"(bar {SPEEDUP_BAR}x)"
    )


def test_arena_memory_bar(tmp_path="/tmp/bench_arena_doc.xml"):
    factor = _factor()
    import os

    if not isinstance(tmp_path, str):  # pytest passes a Path fixture
        tmp_path = str(tmp_path / "doc.xml")
    rows, ratio = run_memory_table(factor, tmp_path)
    print()
    print(format_table(
        f"resident bytes per loaded document (xmark factor {factor}, "
        "tracemalloc)",
        ["load path", "bytes", "bytes/node"],
        rows,
    ))
    print(f"node/arena ratio: {ratio:.2f}x (bar: {MEMORY_BAR}x)")
    if os.path.exists(tmp_path):
        os.unlink(tmp_path)
    if SMOKE:
        # The smoke-mode regression guard: the columnar load path must
        # never allocate more than the Node tree, at any size.
        assert ratio >= 1.0, (
            f"arena resident bytes regressed above the Node tree "
            f"({ratio:.2f}x)"
        )
        return
    assert ratio >= MEMORY_BAR, (
        f"arena only {ratio:.2f}x smaller than the Node tree "
        f"(bar {MEMORY_BAR}x)"
    )


def test_zero_recompilation_on_warm_arena():
    """A warm re-run adds no DFA state sets, moves or arena closures."""
    tree = dataset(SMOKE_FACTOR if SMOKE else 0.01, seed=DATASET_SEED)
    arena = freeze(tree)
    nfa = build_selecting_nfa(parse_xpath(EMBEDDED_PATHS["U9"]))
    first = select_indices(nfa, arena)
    tables_before = nfa.dfa().stats()
    again = select_indices(nfa, arena)
    assert again == first
    tables_after = nfa.dfa().stats()
    assert tables_after == tables_before, (
        f"warm arena re-run recompiled DFA tables: "
        f"{tables_before} -> {tables_after}"
    )
    print()
    print(f"warm arena re-run: DFA tables stable at {tables_after}")


def test_zero_copy_snapshots():
    """N reads of one committed version share one frozen arena object."""
    store = ViewStore()
    store.put("db", dataset(SMOKE_FACTOR if SMOKE else 0.01, seed=DATASET_SEED))
    doc = store.documents.get("db")
    queries = [
        "for $x in regions//item[location = 'United States'] return $x",
        "for $x in people/person return $x/name",
        "for $x in //keyword return $x",
    ]
    for _ in range(3):
        for text in queries:
            store.query("db", text)
            store.query_serialized("db", text)
    assert doc.arena_builds == 1, (
        f"{doc.arena_builds} arena builds for one committed version "
        "(zero-copy snapshot contract: exactly 1)"
    )
    with doc.lock:
        snapshot = doc.arena()
        assert doc.arena() is snapshot, "reads must share one object"
    # A commit splices the next snapshot from the current one — the
    # initial freeze stays the only full column build.
    store.commit("db", str(delete_transform("U5")))
    for text in queries:
        store.query("db", text)
    assert doc.arena_builds == 1 and doc.splices == 1, (
        f"{doc.arena_builds} arena builds / {doc.splices} splices after "
        "one commit (expected the commit to splice, not rebuild)"
    )
    print()
    print(
        f"zero-copy snapshots: {store.arena_reads} arena reads, "
        f"{doc.arena_builds} build(s) + {doc.splices} splice(s)"
    )


def main(argv=None) -> int:
    import argparse

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke", action="store_true",
        help="tiny document, no acceptance bars (CI smoke)",
    )
    parser.add_argument(
        "--factor", type=float, default=None,
        help=f"override the XMark factor (default {FULL_FACTOR})",
    )
    args = parser.parse_args(argv)
    factor = args.factor if args.factor is not None else (
        SMOKE_FACTOR if args.smoke else FULL_FACTOR
    )
    rows, geomean = run_speedup_table(factor)
    print(format_table(
        f"arena backend vs PR-3 DFA runner (xmark factor {factor}, "
        f"best of {REPEAT})",
        ["workload", "node ms", "arena ms", "speedup"],
        rows,
    ))
    print(f"geometric mean speedup: {geomean:.2f}x (bar: {SPEEDUP_BAR}x)")
    mem_rows, mem_ratio = run_memory_table(factor, "/tmp/bench_arena_doc.xml")
    print()
    print(format_table(
        "resident bytes per loaded document (tracemalloc)",
        ["load path", "bytes", "bytes/node"],
        mem_rows,
    ))
    print(f"node/arena ratio: {mem_ratio:.2f}x (bar: {MEMORY_BAR}x)")
    test_zero_recompilation_on_warm_arena()
    test_zero_copy_snapshots()
    if args.smoke:
        return 0
    failed = []
    if geomean < SPEEDUP_BAR:
        failed.append(f"speedup {geomean:.2f}x < {SPEEDUP_BAR}x")
    if mem_ratio < MEMORY_BAR:
        failed.append(f"memory {mem_ratio:.2f}x < {MEMORY_BAR}x")
    if failed:
        print("FAIL: " + "; ".join(failed))
        return 1
    print("OK")
    return 0


if __name__ == "__main__":
    import sys

    sys.exit(main(None))
