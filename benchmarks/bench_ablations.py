"""Ablations — how much does each design lever contribute?

* pruning: topDown vs topDown-without-pruning (Fig. 3's empty-state
  shortcut) — the paper's "traverse only the necessary part".
* membership: NAIVE (linear scan, as written in Fig. 2) vs NAIVE with
  an O(1) node-set index (an engine that optimizes ``n ∈ $xp``).

Expected: pruning dominates on selective queries (U2); the indexed
membership removes NAIVE's quadratic blow-up on broad queries (U1) but
still rebuilds the whole tree, so topDown stays ahead.
"""

import pytest

from repro.transform import (
    transform_naive,
    transform_naive_xquery,
    transform_topdown,
)
from repro.transform.ablations import (
    transform_naive_indexed,
    transform_topdown_no_pruning,
)
from repro.bench.harness import DATASET_SEED, dataset, smoke_factor, smoke_rounds
from repro.xmark.queries import insert_transform

VARIANTS = {
    "topdown": transform_topdown,
    "topdown-no-pruning": transform_topdown_no_pruning,
    "naive-linear-scan": transform_naive,
    "naive-indexed": transform_naive_indexed,
    # The literal Fig. 2 rewriting executed on the XQuery program layer
    # (interpretation overhead on top of naive's cost model).
    "naive-xquery-rewrite": transform_naive_xquery,
}

QUERIES = ["U1", "U2", "U4", "U9"]


@pytest.mark.parametrize("variant", sorted(VARIANTS))
@pytest.mark.parametrize("uid", QUERIES)
def test_ablation(benchmark, uid, variant):
    tree = dataset(smoke_factor(0.01), seed=DATASET_SEED)
    query = insert_transform(uid)
    benchmark.group = f"ablation-{uid}"
    benchmark.pedantic(
        VARIANTS[variant], args=(tree, query),
        rounds=smoke_rounds(3, 1), iterations=1,
    )
