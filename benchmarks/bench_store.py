"""Store benchmarks: cold vs. warm caches, and view-stack depth scaling.

Two experiments on an XMark document held resident in a
:class:`repro.ViewStore`:

* **cold vs. warm** — the same request mix served twice.  The first
  pass parses queries, builds automata, composes plans and evaluates;
  the second pass is answered from the result cache (plans would be
  reused even on a cache miss).  The warm pass must be at least 5x
  faster — in practice it is orders of magnitude faster.
* **depth scaling** — one query against view stacks of growing depth,
  result cache disabled, showing the per-layer cost of chaining the
  structure-sharing transforms under the composed outer layer.

Run with::

    PYTHONPATH=src python -m pytest benchmarks/bench_store.py -q -s
"""

import time

import pytest

from repro.bench.harness import (
    DATASET_SEED,
    SMOKE,
    dataset,
    format_table,
    smoke_factor,
    smoke_rounds,
)
from repro.store import MaterializationPolicy, ViewStore
from repro.xmark.queries import delete_transform, insert_transform, rename_transform

FACTOR = smoke_factor(0.005)

#: The request mix: user queries U1/U4/U8 in FLWR form.
REQUESTS = [
    "for $x in people/person[@id = 'person10'] return $x",
    "for $x in regions//item[location = 'United States'] return $x/name",
    "for $x in open_auctions/open_auction[initial > 10] return $x/bidder",
]

ROUNDS = smoke_rounds(4, 2)


def _fresh_store(policy=None) -> ViewStore:
    store = ViewStore(policy=policy)
    store.put("xmark", dataset(FACTOR, seed=DATASET_SEED))
    store.define_view("nodesc", "xmark", str(delete_transform("U5")))
    store.define_view("flagged", "nodesc", str(insert_transform("U9")))
    return store


def _serve(store: ViewStore, target: str) -> float:
    start = time.perf_counter()
    for request in REQUESTS:
        store.query(target, request)
    return time.perf_counter() - start


def test_cold_vs_warm_cache():
    store = _fresh_store(policy=MaterializationPolicy(enabled=False))
    cold = _serve(store, "flagged")
    warm_rounds = [_serve(store, "flagged") for _ in range(ROUNDS)]
    warm = min(warm_rounds)
    rows = [
        ("cold (parse+compose+evaluate)", cold * 1000, 1.0),
        ("warm (result cache)", warm * 1000, cold / warm),
    ]
    print()
    print(format_table(
        f"store cold vs warm ({len(REQUESTS)} queries, depth-2 stack, "
        f"factor {FACTOR})",
        ["pass", "ms", "speedup"],
        [(name, f"{ms:.2f}", f"{ratio:.0f}x") for name, ms, ratio in rows],
    ))
    stats = store.results.stats()
    assert stats["hits"] >= len(REQUESTS) * ROUNDS
    # The acceptance bar: warm-cache serving is at least 5x faster
    # (informational in smoke mode, where everything is tiny).
    if not SMOKE:
        assert warm * 5 <= cold, f"warm {warm:.4f}s not 5x faster than cold {cold:.4f}s"


def test_compiled_plans_reused_across_result_misses():
    """Even when a result cannot be reused, the compiled plans survive —
    only evaluation is paid again.  The commit is spliced and its
    invalidation delta-scoped: only the requests whose labels intersect
    the deleted person subtree drop (U1 names ``person``; U4's
    ``/name`` collides with ``person/name``), and each re-evaluation is
    a plan-cache hit, never a rebuild."""
    store = _fresh_store(policy=MaterializationPolicy(enabled=False))
    _serve(store, "flagged")
    built_once = store.compiled.plans.stats()["misses"]
    delta = store.commit_delta(
        "xmark",
        'transform copy $a := doc("xmark") modify do '
        "delete $a/people/person[@id = 'person10'] return $a",
    )
    assert delta.spliced, delta
    assert delta.results_dropped >= 1 and delta.results_kept >= 1, delta
    _serve(store, "flagged")
    assert store.compiled.plans.stats()["misses"] == built_once
    assert store.compiled.plans.stats()["hits"] >= delta.results_dropped


@pytest.mark.parametrize("max_depth", [6])
def test_view_stack_depth_scaling(max_depth):
    store = ViewStore(policy=MaterializationPolicy(enabled=False))
    store.put("xmark", dataset(FACTOR, seed=DATASET_SEED))
    # The bidder query: none of the stacked transforms touch auctions,
    # so the answer stays non-empty at every depth.
    request = REQUESTS[2]
    base = "xmark"
    rows = []
    for depth in range(1, max_depth + 1):
        name = f"v{depth}"
        # Alternate cheap relabelings so every layer really transforms.
        transform = rename_transform("U2", f"renamed{depth}") if depth % 2 \
            else delete_transform("U6")
        store.define_view(name, base, str(transform))
        base = name
        store.results.invalidate()
        start = time.perf_counter()
        result = store.query(name, request)
        elapsed = time.perf_counter() - start
        reference = store.query_naive(name, request)
        assert result and len(result) == len(reference)
        rows.append((str(depth), f"{elapsed * 1000:.2f}", str(len(result))))
    print()
    print(format_table(
        f"view-stack depth scaling (factor {FACTOR}, result cache cleared)",
        ["depth", "ms/query", "results"],
        rows,
    ))
