"""Hypothetical ("what-if") queries over an auction site.

A transform query is XQuery syntax for the classical hypothetical query
"Q when {U}": evaluate Q as if update U had been applied, without
applying it.  This example asks decision-support questions against an
XMark-shaped auction document:

* What would the bidder counts look like if all low bids (increase
  below a threshold) were purged?
* How many descriptions survive if verbose parlist descriptions are
  replaced with a placeholder?

Run with::

    python examples/hypothetical_queries.py
"""

from repro import (
    evaluate,
    generate_xmark,
    parse_transform_query,
    parse_xpath,
    transform_twopass,
)


def count(tree, path: str) -> int:
    return len(evaluate(tree, parse_xpath(path)))


def main() -> None:
    site = generate_xmark(0.005, seed=11)
    open_auctions = count(site, "open_auctions/open_auction")
    bidders = count(site, "open_auctions/open_auction/bidder")
    print(f"auction site: {open_auctions} open auctions, {bidders} bidders")

    # What if every bid with increase < 10 were purged?
    for threshold in (5, 10, 20):
        purge = parse_transform_query(
            'transform copy $a := doc("site") modify do '
            f"delete $a/open_auctions/open_auction/bidder[increase < {threshold}] "
            "return $a"
        )
        hypothetical = transform_twopass(site, purge)
        remaining = count(hypothetical, "open_auctions/open_auction/bidder")
        print(
            f"  when bids under {threshold:2d} are purged: "
            f"{remaining:3d} of {bidders} bidders remain"
        )

    # The stored site is untouched between scenarios — each question is
    # answered against the same base document.
    assert count(site, "open_auctions/open_auction/bidder") == bidders

    # What if verbose descriptions were collapsed to a placeholder?
    collapse = parse_transform_query(
        'transform copy $a := doc("site") modify do '
        "replace $a//description[parlist] with <description>omitted</description> "
        "return $a"
    )
    hypothetical = transform_twopass(site, collapse)
    before = count(site, "//description[parlist]")
    after = count(hypothetical, "//description[parlist]")
    print(f"collapsing parlist descriptions: {before} verbose before, {after} after")

    # And a rename scenario: vocabulary migration without touching data.
    migrate = parse_transform_query(
        'transform copy $a := doc("site") modify do '
        "rename $a/people/person as member return $a"
    )
    hypothetical = transform_twopass(site, migrate)
    print(
        f"schema migration preview: {count(hypothetical, 'people/member')} member "
        f"elements would replace {count(site, 'people/person')} person elements"
    )


if __name__ == "__main__":
    main()
