"""A live client session against the concurrent query service.

By default this example boots its own ``repro serve`` equivalent
in-process on an ephemeral port, then drives it exactly the way a
remote client would — load a document over the wire, stack a view,
fire concurrent queries (watch them coalesce), stage-and-preview an
update, commit it, and read the serving metrics back.

Point it at an already-running server instead with::

    python examples/service_client.py --connect 127.0.0.1:7007

(which is what the CI smoke job does after booting ``repro serve``).
"""

import sys
import threading

from repro.service import Client, QueryService, ServiceConfig, ServiceServer
from repro.store import StoreError

CATALOG = """
<db>
  <part>
    <pname>keyboard</pname>
    <supplier><sname>HP</sname><price>12</price><country>US</country></supplier>
    <supplier><sname>Dell</sname><price>20</price><country>A</country></supplier>
  </part>
  <part>
    <pname>mouse</pname>
    <supplier><sname>HP</sname><price>8</price><country>A</country></supplier>
  </part>
</db>
"""

HIDE_A_PRICES = (
    'transform copy $a := doc("catalog") modify do '
    "delete $a//supplier[country = 'A']/price return $a"
)


def drive(host: str, port: int) -> None:
    with Client(host, port, timeout=30.0) as db:
        print(f"connected to {host}:{port} -> ping: {db.ping()}")

        # 1. Load a document over the wire and define a view on it.
        info = db.load("catalog", xml=CATALOG)
        print(f"loaded {info['name']!r} v{info['version']} ({info['nodes']} nodes)")
        view = db.defview("public", "catalog", HIDE_A_PRICES)
        print(f"defined view {view['name']!r} over {view['base']!r}")

        # 2. Concurrent identical queries: each runs on its own
        #    connection, and the server's dispatch window coalesces
        #    them into (at most a few) evaluations.
        text = "for $x in part/supplier[price < 15] return $x"
        results, workers = [], []
        for _ in range(8):
            def one_shot():
                with Client(host, port, timeout=30.0) as c:
                    results.append(c.query("catalog", text))
            workers.append(threading.Thread(target=one_shot))
        for w in workers:
            w.start()
        for w in workers:
            w.join()
        assert all(r == results[0] for r in results)
        print(f"8 concurrent clients, identical query -> {len(results[0])} rows each")

        # 3. The view hides restricted prices; the document does not.
        public = db.query("public", "for $x in part/supplier return $x")
        assert not any("<price>8</price>" in row for row in public)
        print(f"view 'public' hides country-A prices ({len(public)} suppliers)")

        # 4. Hypothetical update: stage, preview, then commit.
        db.stage("catalog", 'transform copy $a := doc("catalog") modify do '
                            "delete $a/part[pname = 'mouse'] return $a")
        preview = db.query("catalog", "for $x in part return $x/pname", staged=True)
        committed_view = db.query("catalog", "for $x in part return $x/pname")
        print(f"staged preview sees {len(preview)} part(s); "
              f"committed state still has {len(committed_view)}")
        version = db.commit("catalog")
        print(f"committed: catalog now v{version['version']}")
        assert db.query("catalog", "for $x in part return $x/pname") == preview

        # 5. Typed errors cross the wire as their exception classes.
        try:
            db.query("no-such-doc", "for $x in a return $x")
        except StoreError as exc:
            print(f"typed error over the wire: {exc}")

        # 6. Serving metrics: snapshot reads, coalescing, batching.
        service_stats = db.stats()["service"]
        print(
            "metrics: "
            f"{service_stats['requests']} requests, "
            f"{service_stats['snapshot_reads']} snapshot reads, "
            f"{service_stats['evaluations']} evaluations, "
            f"{service_stats['coalesced']} coalesced, "
            f"{service_stats['memo_hits']} memo hits, "
            f"{service_stats['locked_reads']} locked reads"
        )
    print("session complete; the server keeps serving other clients")


def main() -> None:
    for arg in sys.argv[1:]:
        if arg.startswith("--connect"):
            address = arg.split("=", 1)[1] if "=" in arg else sys.argv[-1]
            host, _, port = address.partition(":")
            drive(host or "127.0.0.1", int(port))
            return
    # Self-hosted: boot an in-process server on an ephemeral port.
    service = QueryService(config=ServiceConfig(batch_window=0.01, workers=4))
    with ServiceServer(service) as server:
        host, port = server.address
        print(f"booted in-process server on {host}:{port}")
        drive(host, port)
    print("server shut down gracefully")


if __name__ == "__main__":
    main()
