"""Security views via transform queries (Example 1.1 / Section 4).

Scenario: one supplier catalog, several user groups, each with an
access-control policy denying price visibility for some set of
countries.  Materializing a view per group does not scale; instead each
group's view is a *virtual* transform query, and user queries are
composed with it so the stored document is read directly — the
composition only transforms the subtrees the query visits.

Run with::

    python examples/security_views.py
"""

from repro import (
    compose,
    evaluate_composed,
    naive_compose,
    parse,
    parse_transform_query,
    parse_user_query,
    serialize,
)

CATALOG = """
<db>
  <part>
    <pname>keyboard</pname>
    <supplier><sname>HP</sname><price>12</price><country>US</country></supplier>
    <supplier><sname>Dell</sname><price>20</price><country>A</country></supplier>
    <supplier><sname>Acme</sname><price>15</price><country>B</country></supplier>
  </part>
  <part>
    <pname>mouse</pname>
    <supplier><sname>HP</sname><price>8</price><country>A</country></supplier>
  </part>
</db>
"""

#: Per-group lists of countries whose prices must not be disclosed.
POLICIES = {
    "emea-analysts": ["A"],
    "apac-analysts": ["A", "B"],
    "auditors": [],  # full visibility
}


def view_for(countries: list) -> str:
    """The security-view transform query for one policy."""
    if not countries:
        condition = "country = 'none-denied'"
    else:
        condition = " or ".join(f"country = '{c}'" for c in countries)
    return (
        'transform copy $a := doc("db") modify do '
        f"delete $a//supplier[{condition}]/price return $a"
    )


def main() -> None:
    catalog = parse(CATALOG)
    # Every group asks the same question: keyboard suppliers and prices.
    question = parse_user_query("for $x in part[pname = 'keyboard']/supplier return $x")

    for group, countries in POLICIES.items():
        policy = parse_transform_query(view_for(countries))
        composed = compose(question, policy)
        answer = evaluate_composed(catalog, composed)
        print(f"group {group!r} (prices hidden for {countries or 'nobody'}):")
        for supplier in answer:
            print("   ", serialize(supplier))
        # The composed query and the materialize-then-query strategy
        # agree — but the composed one never copies the catalog.
        reference = naive_compose(catalog, question, policy)
        assert len(answer) == len(reference)
        print()

    assert "price" in serialize(catalog)
    print("the stored catalog still contains every price — views were virtual")


if __name__ == "__main__":
    main()
