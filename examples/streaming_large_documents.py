"""twoPassSAX on documents that never fit in memory (Section 6).

Generates an XMark-shaped file by streaming (the document is never held
as a tree), then evaluates a transform query on it file-to-file with
``twoPassSAX`` while sampling the Python heap: the peak stays bounded
by document depth — not document size — exactly the paper's Fig. 14
claim.  A DOM-style evaluation of the same file is measured alongside
for contrast.

Run with::

    python examples/streaming_large_documents.py [factor]

(default factor 0.05 ≈ a 2MB file; try 0.5 for ~20MB).
"""

import os
import sys
import tempfile
import time
import tracemalloc

from repro import (
    parse_file,
    parse_transform_query,
    transform_sax_file,
    transform_topdown,
    write_xmark_file,
)

QUERY = (
    'transform copy $a := doc("site") modify do '
    "insert <audited/> into $a/people/person[profile/age > 20] return $a"
)


def main() -> None:
    factor = float(sys.argv[1]) if len(sys.argv) > 1 else 0.05
    query = parse_transform_query(QUERY)
    workdir = tempfile.mkdtemp(prefix="streaming-example-")
    in_path = os.path.join(workdir, "site.xml")
    out_path = os.path.join(workdir, "site-transformed.xml")

    size = write_xmark_file(in_path, factor)
    print(f"generated {in_path}: {size / 1048576:.2f} MB (factor {factor})")

    # Streaming: bounded memory regardless of file size.
    tracemalloc.start()
    start = time.perf_counter()
    transform_sax_file(in_path, query, out_path)
    sax_seconds = time.perf_counter() - start
    _, sax_peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    out_size = os.path.getsize(out_path)
    print(
        f"twoPassSAX: {sax_seconds:.2f}s, peak heap "
        f"{sax_peak / 1048576:.2f} MB, output {out_size / 1048576:.2f} MB"
    )

    # DOM-style for contrast: the whole tree lives on the heap.
    tracemalloc.start()
    start = time.perf_counter()
    tree = parse_file(in_path)
    transform_topdown(tree, query)
    dom_seconds = time.perf_counter() - start
    _, dom_peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    print(f"DOM topDown: {dom_seconds:.2f}s, peak heap {dom_peak / 1048576:.2f} MB")
    print(
        f"memory ratio DOM/SAX: {dom_peak / sax_peak:.0f}x "
        "(and it grows with the file, while twoPassSAX stays flat)"
    )


if __name__ == "__main__":
    main()
