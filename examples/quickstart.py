"""Quickstart: transform queries in five minutes.

Run with::

    python examples/quickstart.py

Walks through the paper's running example (Fig. 1) the way the engine
API frames it: prepare a transform query once, let the cost-based
planner pick the evaluation strategy, execute it many times — then
peek underneath at the five equivalent algorithms the planner chooses
among, and confirm the source document is never modified.
"""

from repro import (
    Engine,
    deep_equal,
    parse,
    serialize,
    transform_sax,
    transform_topdown,
    transform_twopass,
)

DOCUMENT = """
<db>
  <part>
    <pname>keyboard</pname>
    <supplier><sname>HP</sname><price>12</price><country>US</country></supplier>
    <supplier><sname>Dell</sname><price>20</price><country>A</country></supplier>
  </part>
  <part>
    <pname>mouse</pname>
    <supplier><sname>HP</sname><price>8</price><country>A</country></supplier>
  </part>
</db>
"""


def show(title: str, tree) -> None:
    print(f"--- {title} ---")
    print(serialize(tree, indent="  "))


def main() -> None:
    doc = parse(DOCUMENT)
    show("original document", doc)

    # The engine prepares a query once (parse + automata) and plans the
    # evaluation strategy per input; .run() executes the plan.
    engine = Engine()

    # 1. Delete: a view of the catalog without any price information.
    #    (Example 1.1 of the paper — inexpressible in plain XPath,
    #    one line as a transform query.)
    no_prices = engine.prepare_transform(
        'transform copy $a := doc("db") modify do delete $a//price return $a'
    )
    show("delete $a//price", no_prices.run(doc))

    # The plan is inspectable: the cost table and the reasons.
    print("--- the plan ---")
    print(no_prices.explain(doc))
    print()

    # 2. Insert: add a review stub to every part.
    add_reviews = engine.prepare_transform(
        'transform copy $a := doc("db") modify do '
        "insert <reviews pending=\"true\"/> into $a/part return $a"
    )
    show("insert <reviews/> into $a/part", add_reviews.run(doc))

    # 3. Replace: hide prices of suppliers from country 'A' instead of
    #    removing them (a redaction-style security view).
    redact = engine.prepare_transform(
        'transform copy $a := doc("db") modify do '
        "replace $a//supplier[country = 'A']/price with <price>hidden</price> return $a"
    )
    show("replace qualifying prices", redact.run(doc))

    # 4. Rename: align vocabulary with a partner schema — chained onto
    #    the redaction with .then(): stage 2 sees stage 1's result.
    partner_view = redact.then(engine.prepare_transform(
        'transform copy $a := doc("db") modify do rename $a//sname as vendor return $a'
    ))
    show("redact, then rename (a prepared stack)", partner_view.run(doc))

    # Underneath, five evaluation algorithms — all semantically
    # identical; the planner picks one, and forcing any other gives
    # the same tree.
    reference = no_prices.run(doc)
    for method in ("topdown", "twopass", "naive", "copy", "sax"):
        assert deep_equal(no_prices.run(doc, method=method), reference)
    # The flat functions remain available for direct calls.
    for algorithm in (transform_topdown, transform_twopass, transform_sax):
        assert deep_equal(algorithm(doc, no_prices.query), reference)
    assert "price" in serialize(doc)
    print("all algorithms agree; the stored document was never modified")


if __name__ == "__main__":
    main()
