"""Quickstart: transform queries in five minutes.

Run with::

    python examples/quickstart.py

Walks through the paper's running example (Fig. 1): parsing a document,
writing transform queries for all four update kinds, evaluating them
with different algorithms, and confirming the source is never modified.
"""

from repro import (
    deep_equal,
    parse,
    parse_transform_query,
    serialize,
    transform_sax,
    transform_topdown,
    transform_twopass,
)

DOCUMENT = """
<db>
  <part>
    <pname>keyboard</pname>
    <supplier><sname>HP</sname><price>12</price><country>US</country></supplier>
    <supplier><sname>Dell</sname><price>20</price><country>A</country></supplier>
  </part>
  <part>
    <pname>mouse</pname>
    <supplier><sname>HP</sname><price>8</price><country>A</country></supplier>
  </part>
</db>
"""


def show(title: str, tree) -> None:
    print(f"--- {title} ---")
    print(serialize(tree, indent="  "))


def main() -> None:
    doc = parse(DOCUMENT)
    show("original document", doc)

    # 1. Delete: a view of the catalog without any price information.
    #    (Example 1.1 of the paper — inexpressible in plain XPath,
    #    one line as a transform query.)
    no_prices = parse_transform_query(
        'transform copy $a := doc("db") modify do delete $a//price return $a'
    )
    show("delete $a//price", transform_topdown(doc, no_prices))

    # 2. Insert: add a review stub to every part.
    add_reviews = parse_transform_query(
        'transform copy $a := doc("db") modify do '
        "insert <reviews pending=\"true\"/> into $a/part return $a"
    )
    show("insert <reviews/> into $a/part", transform_topdown(doc, add_reviews))

    # 3. Replace: hide prices of suppliers from country 'A' instead of
    #    removing them (a redaction-style security view).
    redact = parse_transform_query(
        'transform copy $a := doc("db") modify do '
        "replace $a//supplier[country = 'A']/price with <price>hidden</price> return $a"
    )
    show("replace qualifying prices", transform_topdown(doc, redact))

    # 4. Rename: align vocabulary with a partner schema.
    rename = parse_transform_query(
        'transform copy $a := doc("db") modify do rename $a//sname as vendor return $a'
    )
    show("rename $a//sname as vendor", transform_topdown(doc, rename))

    # All evaluation algorithms agree, and the source is untouched.
    for algorithm in (transform_topdown, transform_twopass, transform_sax):
        assert deep_equal(algorithm(doc, no_prices), transform_topdown(doc, no_prices))
    assert "price" in serialize(doc)
    print("all algorithms agree; the stored document was never modified")


if __name__ == "__main__":
    main()
