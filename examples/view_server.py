"""A security-view *server*: one resident catalog, a stack of virtual
views, many queries — the store keeps documents parsed, plans compiled,
and results cached across requests.

This is the service-shaped version of ``security_views.py``: instead of
re-parsing the catalog and re-composing the policy for every request,
a :class:`repro.ViewStore` holds the catalog once, the policies are
*stacked* views (``public`` hides restricted prices; ``partners`` is a
further view over ``public`` that renames supplier names away), and a
simulated request loop shows the compiled-plan and result caches doing
their job.  A commit then updates the catalog destructively and every
dependent view answer refreshes automatically.

Run with::

    python examples/view_server.py
"""

from repro import MaterializationPolicy, ViewStore, serialize

CATALOG = """
<db>
  <part>
    <pname>keyboard</pname>
    <supplier><sname>HP</sname><price>12</price><country>US</country></supplier>
    <supplier><sname>Dell</sname><price>20</price><country>A</country></supplier>
    <supplier><sname>Acme</sname><price>15</price><country>B</country></supplier>
  </part>
  <part>
    <pname>mouse</pname>
    <supplier><sname>HP</sname><price>8</price><country>A</country></supplier>
  </part>
</db>
"""

#: The simulated request mix: every group keeps asking these.
REQUESTS = [
    "for $x in part[pname = 'keyboard']/supplier return $x",
    "for $x in part/supplier[country = 'US'] return $x",
    "for $x in part where $x/supplier/price < 10 return $x/pname",
]

ROUNDS = 5


def main() -> None:
    store = ViewStore(policy=MaterializationPolicy(hot_threshold=10))
    store.put("catalog", CATALOG)

    # Layer 1: the public view deletes prices of restricted countries.
    store.define_view(
        "public",
        "catalog",
        'transform copy $a := doc("catalog") modify do '
        "delete $a//supplier[country = 'A' or country = 'B']/price return $a",
    )
    # Layer 2: partners additionally see suppliers anonymized.
    store.define_view(
        "partners",
        "public",
        'transform copy $a := doc("public") modify do '
        "rename $a//sname as vendor return $a",
    )

    print("serving", len(REQUESTS), "distinct queries x", ROUNDS, "rounds "
          "against the 'partners' view (stack depth 2):")
    for round_number in range(1, ROUNDS + 1):
        for request in REQUESTS:
            answer = store.query("partners", request)
            if round_number == 1:
                # Every answer agrees with materialize-then-query.
                reference = store.query_naive("partners", request)
                assert [serialize(x) for x in answer] == [
                    serialize(x) for x in reference
                ]
                for item in answer:
                    print("   ", serialize(item))
                print()

    results = store.results.stats()
    plans = store.compiled.plans.stats()
    total = results["hits"] + results["misses"]
    print(f"result cache: {results['hits']}/{total} hits "
          f"({results['hits'] / total:.0%} warm)")
    print(f"compiled plans built: {plans['misses']} "
          f"(one per distinct query, reused every round)")
    chosen = store.stats()["planner"]["chosen"]
    print(f"planner strategy choices for view layers: {chosen}")

    # The stored catalog is still intact — the views were virtual.
    assert "price" in serialize(store.documents.get("catalog").root)

    # Now HP discounts the keyboard: hypothetically first, then for real.
    discount = (
        'transform copy $a := doc("catalog") modify do '
        "replace $a//part[pname = 'keyboard']//price[. = 12] with <price>9</price> "
        "return $a"
    )
    store.stage("catalog", discount)
    preview = store.query("catalog", "for $x in part/supplier/price return $x",
                          include_staged=True)
    print("\nstaged preview of catalog prices:",
          [serialize(x) for x in preview])

    version = store.commit("catalog")
    print(f"committed catalog v{version}; dependent views refreshed:")
    for item in store.query("partners", REQUESTS[0]):
        print("   ", serialize(item))
    assert "<price>9</price>" in serialize(store.documents.get("catalog").root)


if __name__ == "__main__":
    main()
