"""Querying an "updated" virtual view without materializing it
(Section 1's third application, Section 4's machinery).

A user wants to pose an update against a virtual view and then query
the result.  With transform queries this needs no materialization:
write the desired update as a transform query Qt, compose the user
query Q with it, and evaluate the single composed query directly on the
stored document.  This example inspects the composed query text to show
what the Compose Method actually produces — including the compile-time
reasoning of Example 4.3/Q2 and the localized topDown call of Q3.

Run with::

    python examples/virtual_view_updates.py
"""

from repro import (
    compose,
    evaluate_composed,
    naive_compose,
    parse,
    parse_transform_query,
    parse_user_query,
    serialize,
)

DOCUMENT = """
<db>
  <a>
    <b><q>A</q><c>A</c><c>B</c></b>
    <b><c>C</c></b>
  </a>
  <a><b><c>E</c></b></a>
</db>
"""


def demo(title: str, transform_text: str, query_text: str, doc) -> None:
    transform_query = parse_transform_query(transform_text)
    user_query = parse_user_query(query_text)
    composed = compose(user_query, transform_query)
    print(f"--- {title} ---")
    print(f"Qt: {transform_query.update}")
    print(f"Q:  {query_text}")
    print(f"composed: {composed}")
    result = evaluate_composed(doc, composed)
    reference = naive_compose(doc, user_query, transform_query)
    assert len(result) == len(reference)
    print(f"answer ({len(result)} items): "
          + ", ".join(serialize(item) if hasattr(item, "label") else str(item)
                      for item in result))
    print()


def main() -> None:
    doc = parse(DOCUMENT)

    # Q1: the qualifier of the delete becomes a runtime branch.
    demo(
        "Q1 — delete with qualifier",
        'transform copy $r := doc("f") modify do delete $r/a/b[q = \'A\'] return $r',
        "for $x in a/b/c return $x",
        doc,
    )

    # Q2: the user's where-condition is decided at compile time — the
    # deletion makes c = 'A' statically false, so not(...) is true.
    demo(
        "Q2 — compile-time qualifier reasoning",
        'transform copy $r := doc("f") modify do delete $r/a/b/c return $r',
        "for $x in a/b where not($x/c = 'A') return $x",
        doc,
    )

    # Q3: an insert below the returned nodes forces a localized topDown
    # call — only the returned subtrees are transformed.
    demo(
        "Q3 — localized topDown on returned subtrees",
        'transform copy $r := doc("f") modify do insert <e>new</e> into $r/a//c return $r',
        "for $x in a/b return $x",
        doc,
    )

    # Disjointness: when the user query cannot see the update at all,
    # the composed query contains no transform machinery whatsoever.
    transform_query = parse_transform_query(
        'transform copy $r := doc("f") modify do delete $r/zzz/yyy return $r'
    )
    user_query = parse_user_query("for $x in a/b return $x")
    composed = compose(user_query, transform_query)
    print("--- disjoint update ---")
    print(f"composed: {composed}")
    assert "topDown" not in str(composed)
    print("the update was proven irrelevant at compile time")


if __name__ == "__main__":
    main()
