"""Unit and integration tests for the columnar arena backend: the
builder, the load paths, the serializer fast path, the engine wiring,
the store's zero-copy snapshots and the CLI."""

import pytest

from repro.engine.engine import Engine
from repro.engine.executor import run_tree_strategy
from repro.store.store import ViewStore
from repro.xmark.generator import generate
from repro.xmark.queries import delete_transform, insert_transform
from repro.xmltree.arena import (
    FrozenBuilder,
    arena_to_events,
    events_to_arena,
    freeze,
    thaw,
)
from repro.xmltree.node import deep_equal
from repro.xmltree.parser import XMLSyntaxError, parse, parse_to_arena
from repro.xmltree.sax import iter_sax_string, tree_to_events
from repro.xmltree.serializer import serialize, serialize_arena, write_arena_file, write_file

XML = (
    '<db><part id="p1"><pname>kb</pname><price>12</price>tail</part>'
    "<part><pname>mouse</pname><empty/></part><note>x &amp; y</note></db>"
)


class TestBuilder:
    def test_builder_drives_columns(self):
        builder = FrozenBuilder()
        builder.start("a", {"k": "v"})
        builder.text("hi")
        builder.start("b")
        builder.end()
        builder.end()
        arena = builder.finish()
        assert len(arena) == 3
        assert arena.label(0) == "a"
        assert arena.own_text(0) == "hi"
        assert arena.attrs_of(0) == {"k": "v"}
        assert list(arena.child_elements(0)) == [2]
        assert arena.parent[2] == 0 and arena.parent[1] == 0

    def test_unbalanced_input_is_rejected(self):
        builder = FrozenBuilder()
        builder.start("a")
        with pytest.raises(ValueError, match="unclosed"):
            builder.finish()

    def test_multiple_roots_are_rejected(self):
        builder = FrozenBuilder()
        builder.start("a")
        builder.end()
        with pytest.raises(ValueError, match="multiple root"):
            builder.start("b")

    def test_text_outside_root_is_rejected(self):
        builder = FrozenBuilder()
        with pytest.raises(ValueError, match="text outside"):
            builder.text("loose")

    def test_empty_input_is_rejected(self):
        with pytest.raises(ValueError, match="empty"):
            FrozenBuilder().finish()


class TestLoadPaths:
    def test_parser_load_path_matches_node_parse(self):
        tree = parse(XML)
        arena = parse_to_arena(XML)
        assert deep_equal(tree, thaw(arena))
        assert arena.sym == freeze(tree).sym

    def test_parser_load_path_keeps_error_behavior(self):
        with pytest.raises(XMLSyntaxError, match="mismatched end tag"):
            parse_to_arena("<a><b></c></a>")
        with pytest.raises(XMLSyntaxError, match="content after"):
            parse_to_arena("<a/><b/>")

    def test_sax_scanner_load_path(self):
        arena = events_to_arena(iter_sax_string(XML))
        assert deep_equal(parse(XML), thaw(arena))

    def test_arena_events_replay_identically(self):
        arena = parse_to_arena(XML)
        first = list(arena_to_events(arena))
        second = list(arena_to_events(arena))
        assert first == second
        assert first == list(tree_to_events(parse(XML)))


class TestSerializerFastPath:
    def test_serialize_arena_byte_identical(self):
        tree = parse(XML)
        arena = freeze(tree)
        assert serialize_arena(arena) == serialize(tree)

    def test_serialize_arena_pretty_falls_back(self):
        tree = parse(XML)
        arena = freeze(tree)
        assert serialize_arena(arena, indent="  ") == serialize(tree, indent="  ")

    def test_write_arena_file_matches_write_file(self, tmp_path):
        tree = generate(0.001, 42)
        arena = freeze(tree)
        node_path = tmp_path / "node.xml"
        arena_path = tmp_path / "arena.xml"
        write_file(tree, str(node_path))
        write_arena_file(arena, str(arena_path))
        assert node_path.read_bytes() == arena_path.read_bytes()


class TestEngineWiring:
    def test_transform_run_accepts_arena(self):
        tree = generate(0.001, 42)
        arena = freeze(tree)
        engine = Engine()
        prepared = engine.prepare_transform(str(delete_transform("U4")))
        want = prepared.run(tree)
        got = prepared.run(arena)
        assert deep_equal(want, got)

    def test_executor_thaws_arena_inputs(self):
        tree = generate(0.001, 42)
        arena = freeze(tree)
        query = insert_transform("U1")
        want = run_tree_strategy("topdown", tree, query)
        got = run_tree_strategy("topdown", arena, query)
        assert deep_equal(want, got)

    def test_run_to_file_takes_the_arena_native_path(self, tmp_path):
        tree = generate(0.001, 42)
        arena = freeze(tree)
        engine = Engine()
        prepared = engine.prepare_transform(str(insert_transform("U9")))
        node_out = tmp_path / "node.xml"
        arena_out = tmp_path / "arena.xml"
        prepared.run_to_file(tree_to_file(tree, tmp_path), node_out)
        prepared.run_to_file(arena, arena_out)
        assert node_out.read_bytes() == arena_out.read_bytes()
        plan = engine.planner.last_plan
        assert plan.backend == "arena"
        assert plan.strategy == "serialize"
        assert engine.planner.counters.get("serialize[arena]", 0) == 1
        # Pretty output thaws and takes the tree path, still correct.
        pretty_out = tmp_path / "pretty.xml"
        prepared.run_to_file(arena, pretty_out, pretty=True)
        assert b"  <" in pretty_out.read_bytes()

    def test_prepared_query_backend_dimension(self):
        tree = generate(0.001, 42)
        arena = freeze(tree)
        engine = Engine()
        prepared = engine.prepare_query(
            "for $x in regions//item[location = 'United States'] return $x"
        )
        want = prepared.run(tree)
        got = prepared.run(arena)
        assert len(want) == len(got)
        for a, b in zip(want, got):
            assert deep_equal(a, b)
        assert engine.planner.counters.get("scan[arena]", 0) == 1
        refs = prepared.run_refs(arena)
        assert all(isinstance(r, int) for r in refs)
        assert [serialize_arena(arena, r) for r in refs] == [
            serialize(node) for node in want
        ]

    def test_explain_shows_backend_and_arena_memory(self):
        tree = generate(0.001, 42)
        arena = freeze(tree)
        engine = Engine()
        prepared_q = engine.prepare_query("for $x in //keyword return $x")
        text = prepared_q.explain(arena)
        assert "backend: arena" in text
        assert "arena:" in text and "column bytes" in text
        assert "backend: node" in prepared_q.explain(tree)
        prepared_t = engine.prepare_transform(str(delete_transform("U5")))
        text = prepared_t.explain(arena)
        assert "frozen arena" in text
        assert "column bytes" in text


def tree_to_file(tree, tmp_path):
    path = tmp_path / "input.xml"
    write_file(tree, str(path))
    return str(path)


class TestStoreSnapshots:
    def _store(self):
        store = ViewStore()
        store.put("db", generate(0.001, 42))
        return store

    def test_reads_share_one_frozen_snapshot(self):
        store = self._store()
        doc = store.documents.get("db")
        queries = [
            "for $x in people/person return $x/name",
            "for $x in //keyword return $x",
            "for $x in regions//item return $x/location",
        ]
        for text in queries:
            store.query("db", text)
            store.query_serialized("db", text)
        assert doc.arena_builds == 1, "reads must share one zero-copy snapshot"
        assert store.arena_reads >= len(queries)
        with doc.lock:
            first = doc.arena()
            assert doc.arena() is first

    def test_query_matches_naive_oracle(self):
        store = self._store()
        text = "for $x in people/person where $x/profile/age > 20 return $x"
        want = store.query_naive("db", text)
        got = store.query("db", text)
        assert len(want) == len(got)
        for a, b in zip(want, got):
            assert deep_equal(a, b)

    def test_commit_invalidates_the_snapshot(self):
        store = self._store()
        doc = store.documents.get("db")
        with doc.lock:
            old_arena = doc.arena()
        before = store.query("db", "for $x in //keyword return $x")
        assert doc.arena_builds == 1
        store.commit("db", str(delete_transform("U5")))
        after = store.query("db", "for $x in //keyword return $x")
        with doc.lock:
            new_arena = doc.arena()
        assert new_arena is not old_arena, "commit must replace the snapshot"
        # A spliced commit installs the next arena directly (no rebuild);
        # only the destructive fallback pays a rebuild on the next read.
        assert doc.splices == 1 and doc.arena_builds == 1
        assert len(after) < len(before)
        want = store.query_naive("db", "for $x in //keyword return $x")
        assert len(after) == len(want)

    def test_query_serialized_matches_node_serialization(self):
        store = self._store()
        text = "for $x in regions//item[location = 'United States'] return $x"
        via_nodes = [serialize(item) for item in store.query("db", text)]
        via_arena = store.query_serialized("db", text)
        assert via_arena == via_nodes

    def test_staged_previews_bypass_the_snapshot(self):
        store = self._store()
        doc = store.documents.get("db")
        store.query("db", "for $x in //keyword return $x")
        builds = doc.arena_builds
        store.stage("db", str(delete_transform("U5")))
        staged = store.query(
            "db", "for $x in //keyword return $x", include_staged=True
        )
        committed = store.query("db", "for $x in //keyword return $x")
        assert len(staged) < len(committed)
        assert doc.arena_builds == builds, (
            "a staged preview must not rebuild the committed snapshot"
        )
        serialized = store.query_serialized(
            "db", "for $x in //keyword return $x", include_staged=True
        )
        assert len(serialized) == len(staged)

    def test_drop_then_reload_never_serves_stale_serialized_results(self):
        """A dropped-then-reloaded document restarts at version 1, so
        only the name-based invalidation protects the result caches —
        the serialized keys must match its ``key[0] == name`` predicate."""
        store = ViewStore()
        store.put("db", "<r><a>one</a></r>")
        text = "for $x in a return $x"
        assert store.query_serialized("db", text) == ["<a>one</a>"]
        assert [serialize(i) for i in store.query("db", text)] == ["<a>one</a>"]
        store.drop("db")
        store.put("db", "<r><a>two</a></r>")
        assert store.query_serialized("db", text) == ["<a>two</a>"]
        assert [serialize(i) for i in store.query("db", text)] == ["<a>two</a>"]

    def test_view_targets_keep_the_node_path(self):
        store = self._store()
        store.define_view("pub", "db", str(delete_transform("U5")))
        result = store.query("pub", "for $x in //keyword return $x")
        naive = store.query_naive("pub", "for $x in //keyword return $x")
        assert len(result) == len(naive)
        serialized = store.query_serialized("pub", "for $x in //keyword return $x")
        assert serialized == [serialize(item) for item in result]

    def test_stats_report_arena_memory(self):
        store = self._store()
        store.query("db", "for $x in //keyword return $x")
        stats = store.stats()
        info = stats["documents"]["db"]
        assert info["arena_builds"] == 1
        assert info["arena_bytes"] > 0
        assert info["arena_column_bytes"] > 0
        assert stats["arena_reads"] == 1
        assert "scan[arena]" in stats["planner"]["chosen"]


class TestCLI:
    def _write_doc(self, tmp_path):
        path = tmp_path / "doc.xml"
        write_file(generate(0.001, 42), str(path))
        return str(path)

    def test_query_command_prints_results_and_stats(self, tmp_path, capsys):
        from repro.cli import main

        doc = self._write_doc(tmp_path)
        code = main(
            ["query", "-q", "for $x in //keyword return $x", "-i", doc, "--stats"]
        )
        assert code == 0
        captured = capsys.readouterr()
        assert "<keyword>" in captured.out
        assert "backend: arena" in captured.err
        assert "peak memory:" in captured.err
        assert "column bytes" in captured.err

    def test_query_command_node_backend(self, tmp_path, capsys):
        from repro.cli import main

        doc = self._write_doc(tmp_path)
        code = main(
            [
                "query", "-q", "for $x in //keyword return $x",
                "-i", doc, "--backend", "node", "--stats",
            ]
        )
        assert code == 0
        captured = capsys.readouterr()
        assert "backend: node" in captured.err
        node_out = captured.out
        assert main(
            ["query", "-q", "for $x in //keyword return $x", "-i", doc]
        ) == 0
        assert capsys.readouterr().out == node_out

    def test_store_stat_reports_arena(self, tmp_path, capsys):
        from repro.cli import main

        doc = self._write_doc(tmp_path)
        state = str(tmp_path / "state")
        assert main(["store", "load", "-n", "db", "-i", doc, "--state", state]) == 0
        capsys.readouterr()
        assert main(["store", "stat", "--state", state]) == 0
        captured = capsys.readouterr()
        assert "arena snapshot:" in captured.out
        assert "column bytes" in captured.out


class TestStreamingReplaySource:
    def test_arena_is_a_replayable_source(self):
        from repro.streaming.select import stream_select
        from repro.xpath.parser import parse_xpath

        tree = generate(0.001, 42)
        arena = freeze(tree)
        path = parse_xpath("regions//item[location = 'United States']")
        via_arena = [serialize(n) for n in stream_select(arena, path)]
        via_events = [
            serialize(n) for n in stream_select(lambda: tree_to_events(tree), path)
        ]
        assert via_arena == via_events

    def test_one_shot_sources_still_raise(self):
        from repro.streaming.select import stream_select
        from repro.xpath.parser import parse_xpath

        tree = generate(0.001, 42)
        events = tree_to_events(tree)
        with pytest.raises(ValueError, match="two-pass|fresh"):
            list(stream_select(lambda: events, parse_xpath("//keyword")))


class TestMemoryFootprint:
    def test_arena_resident_bytes_beat_the_node_tree(self, tmp_path):
        """The smoke-sized memory-regression guard (the full 3x bar
        lives in benchmarks/bench_arena.py): loading a document as an
        arena must allocate no more than loading it as a Node tree."""
        import tracemalloc

        from repro.xmltree.parser import parse_file, parse_file_to_arena

        path = tmp_path / "doc.xml"
        write_file(generate(0.01, 42), str(path))

        tracemalloc.start()
        tree = parse_file(str(path))
        node_bytes, _ = tracemalloc.get_traced_memory()
        tracemalloc.stop()

        tracemalloc.start()
        arena = parse_file_to_arena(str(path))
        arena_bytes, _ = tracemalloc.get_traced_memory()
        tracemalloc.stop()

        assert deep_equal(tree, thaw(arena))
        assert arena_bytes <= node_bytes, (
            f"arena resident bytes regressed: {arena_bytes} > {node_bytes}"
        )
