"""Unit tests for the tree model (repro.xmltree.node)."""

import pytest

from repro.xmltree import Element, Text, deep_copy, deep_equal, element, text
from repro.xmltree.node import (
    collect_nodes,
    iter_text_values,
    labels_used,
    node_count,
)


@pytest.fixture
def sample():
    return element(
        "db",
        element(
            "part",
            element("pname", "keyboard"),
            element(
                "supplier",
                element("sname", "HP"),
                element("price", "12"),
                element("country", "US"),
            ),
        ),
        element("part", element("pname", "mouse")),
    )


class TestConstruction:
    def test_element_helper_strings_become_text(self):
        node = element("pname", "keyboard")
        assert len(node.children) == 1
        assert node.children[0].is_text
        assert node.children[0].value == "keyboard"

    def test_element_helper_attrs_kwargs(self):
        node = element("person", id="person0")
        assert node.attrs == {"id": "person0"}

    def test_element_helper_attrs_dict_and_kwargs_merge(self):
        node = element("person", attrs={"a": "1"}, id="person0")
        assert node.attrs == {"a": "1", "id": "person0"}

    def test_text_helper(self):
        node = text("hello")
        assert node.is_text and not node.is_element
        assert node.value == "hello"

    def test_element_flags(self):
        node = Element("x")
        assert node.is_element and not node.is_text

    def test_default_containers_not_shared(self):
        a, b = Element("x"), Element("y")
        a.children.append(Text("t"))
        a.attrs["k"] = "v"
        assert b.children == [] and b.attrs == {}


class TestNavigation:
    def test_child_elements_skips_text(self, sample):
        part = sample.children[0]
        labels = [c.label for c in part.child_elements()]
        assert labels == ["pname", "supplier"]

    def test_children_labeled(self, sample):
        assert len(list(sample.children_labeled("part"))) == 2
        assert list(sample.children_labeled("nope")) == []

    def test_descendants_or_self_preorder(self, sample):
        labels = [n.label for n in sample.descendants_or_self()]
        assert labels == [
            "db",
            "part",
            "pname",
            "supplier",
            "sname",
            "price",
            "country",
            "part",
            "pname",
        ]

    def test_descendants_excludes_self(self, sample):
        labels = [n.label for n in sample.descendants()]
        assert labels[0] == "part"
        assert "db" not in labels

    def test_own_text_concatenates_immediate_text(self):
        node = Element("x", {}, [Text("a"), Element("y"), Text("b")])
        assert node.own_text() == "ab"

    def test_own_text_ignores_descendant_text(self, sample):
        part = sample.children[0]
        assert part.own_text() == ""

    def test_first(self, sample):
        part = sample.children[0]
        assert part.first("pname").own_text() == "keyboard"
        assert part.first("zzz") is None


class TestMeasures:
    def test_size_counts_elements_and_text(self, sample):
        # 9 elements + 5 text leaves
        assert sample.size() == 14

    def test_depth(self, sample):
        assert sample.depth() == 4
        assert Element("leaf").depth() == 1


class TestDeepCopy:
    def test_copy_is_equal_but_disjoint(self, sample):
        dup = deep_copy(sample)
        assert deep_equal(sample, dup)
        assert dup is not sample
        assert dup.children[0] is not sample.children[0]

    def test_mutating_copy_leaves_original(self, sample):
        dup = deep_copy(sample)
        dup.children[0].label = "changed"
        assert sample.children[0].label == "part"

    def test_copy_text_node(self):
        t = Text("v")
        dup = deep_copy(t)
        assert dup is not t and dup.value == "v"

    def test_copy_very_deep_tree_no_recursion_error(self):
        node = Element("leaf")
        for _ in range(5000):
            node = Element("n", {}, [node])
        dup = deep_copy(node)
        assert deep_equal(node, dup)


class TestDeepEqual:
    def test_equal_trees(self, sample):
        assert deep_equal(sample, deep_copy(sample))

    def test_label_difference(self):
        assert not deep_equal(element("a"), element("b"))

    def test_attr_difference(self):
        assert not deep_equal(element("a", x="1"), element("a", x="2"))

    def test_attr_order_irrelevant(self):
        a = Element("a", {"x": "1", "y": "2"})
        b = Element("a", {"y": "2", "x": "1"})
        assert deep_equal(a, b)

    def test_child_order_matters(self):
        a = element("r", element("x"), element("y"))
        b = element("r", element("y"), element("x"))
        assert not deep_equal(a, b)

    def test_text_vs_element(self):
        assert not deep_equal(text("x"), element("x"))

    def test_text_values(self):
        assert deep_equal(text("x"), text("x"))
        assert not deep_equal(text("x"), text("y"))

    def test_child_count_difference(self):
        assert not deep_equal(element("r", element("x")), element("r"))


class TestAggregates:
    def test_collect_nodes_order(self, sample):
        nodes = collect_nodes(sample)
        assert nodes[0] is sample
        assert len(nodes) == 9

    def test_node_count_total_and_by_label(self, sample):
        assert node_count(sample) == 9
        assert node_count(sample, "part") == 2
        assert node_count(sample, "absent") == 0

    def test_labels_used(self, sample):
        assert labels_used(sample) == {
            "db",
            "part",
            "pname",
            "supplier",
            "sname",
            "price",
            "country",
        }

    def test_iter_text_values(self, sample):
        assert list(iter_text_values(sample)) == [
            "keyboard",
            "HP",
            "12",
            "US",
            "mouse",
        ]
