"""Smoke tests for the benchmark harness and figure drivers (tiny
factors — these verify wiring and result structure, not performance)."""

import pytest

from repro.bench.harness import (
    METHOD_ORDER,
    METHODS,
    clear_datasets,
    dataset,
    dataset_stats,
    format_table,
    time_call,
)
from repro.bench import figures
from repro.xmark.queries import QUERY_IDS


class TestHarness:
    def test_method_registry_complete(self):
        assert set(METHOD_ORDER) == set(METHODS)
        assert METHOD_ORDER == ["GalaXUpdate", "NAIVE", "TD-BU", "GENTOP", "twoPassSAX"]

    def test_dataset_cached(self):
        clear_datasets()
        first = dataset(0.001, seed=5)
        second = dataset(0.001, seed=5)
        assert first is second
        clear_datasets()

    def test_dataset_stats(self):
        stats = dataset_stats(0.001, seed=5)
        assert stats["persons"] >= 12
        assert stats["elements"] > 100

    def test_time_call_returns_positive(self):
        assert time_call(sum, [1, 2, 3], repeat=2) >= 0

    def test_format_table_alignment(self):
        table = format_table("t", ["a", "bb"], [["x", 1.0], ["yyyy", 2.5]])
        lines = table.splitlines()
        assert lines[0] == "t"
        assert "1.0000" in table and "yyyy" in table


class TestFigureDrivers:
    def test_fig12_structure(self):
        results = figures.fig12(factor=0.001, repeat=1)
        assert set(results["times"]) == set(QUERY_IDS)
        for uid in QUERY_IDS:
            assert set(results["times"][uid]) == set(METHOD_ORDER)
            assert all(v > 0 for v in results["times"][uid].values())

    def test_fig13_structure(self):
        results = figures.fig13(factors=[0.001, 0.002], queries=["U2"], repeat=1)
        series = results["times"]["U2"]
        assert all(len(times) == 2 for times in series.values())

    def test_fig14_structure(self, tmp_path):
        results = figures.fig14(
            factors=[0.01], queries=["U2"], workdir=str(tmp_path)
        )
        assert results["sizes"][0.01] > 0
        assert results["times"][0.01]["U2"] > 0
        assert results["memory"][0.01] < 50  # MB — flat, small heap

    def test_fig15_structure(self):
        results = figures.fig15(factors=[0.001], repeat=1)
        assert len(results["times"]) == 4
        for series in results["times"].values():
            assert "Naive Composition" in series and "Compose" in series

    def test_main_rejects_unknown_figure(self):
        assert figures.main(["nope"]) == 2
