"""The query service: MVCC snapshot reads, batching, worker pools,
and the line-protocol server/client.

The oracle for every read is the store's own serialized read path
(``query_serialized``) — the service must return the same strings
through the batcher, through the process pool, and over the wire.
"""

import threading
import time

import pytest

from repro import QueryService, ServiceConfig
from repro.service import (
    BadRequestError,
    Client,
    DeadlineError,
    OverloadedError,
    RetryExhaustedError,
    RetryPolicy,
    ServiceClosedError,
    ServiceServer,
    TransportError,
)
from repro.service.protocol import decode_line, encode_frame
from repro.store import StoreError, ViewStore
from repro.xmltree.arena import arena_from_columns, freeze
from repro.xmltree.parser import parse
from repro.xmltree.serializer import serialize_arena
from repro.xmltree.symbols import SymbolTable

CATALOG = (
    "<db><part><pname>kb</pname>"
    "<supplier><sname>HP</sname><price>12</price><country>A</country></supplier>"
    "<supplier><sname>Dell</sname><price>20</price><country>B</country></supplier>"
    "</part><part><pname>mouse</pname>"
    "<supplier><sname>HP</sname><price>8</price><country>A</country></supplier>"
    "</part></db>"
)

HIDE_A = (
    'transform copy $a := doc("db") modify do '
    "delete $a//supplier[country = 'A']/price return $a"
)

QUERIES = [
    "for $x in part return $x/pname",
    "for $x in part/supplier[price < 10] return $x",
    "for $x in part[pname = 'kb']/supplier return $x/sname",
]


@pytest.fixture
def service():
    svc = QueryService(config=ServiceConfig(batch_window=0.001))
    svc.put("db", CATALOG)
    yield svc
    svc.close()


# ----------------------------------------------------------------------
# MVCC snapshot reads
# ----------------------------------------------------------------------


def test_query_matches_store_oracle(service):
    for text in QUERIES:
        assert service.query("db", text) == service.store.query_serialized("db", text)


def test_view_and_staged_reads_fall_back_to_store(service):
    service.define_view("public", "db", HIDE_A)
    text = "for $x in part/supplier return $x"
    assert service.query("public", text) == service.store.query_serialized(
        "public", text
    )
    service.stage(
        "db",
        'transform copy $a := doc("db") modify do '
        "delete $a/part[pname = 'kb'] return $a",
    )
    staged = service.query("db", "for $x in part return $x/pname", staged=True)
    assert staged == ["<pname>mouse</pname>"]
    # ...while the committed state is unchanged for plain reads.
    assert service.query("db", "for $x in part return $x/pname") == [
        "<pname>kb</pname>",
        "<pname>mouse</pname>",
    ]
    assert service.metrics()["locked_reads"] == 2
    service.rollback("db")


def test_snapshot_pinned_reader_survives_commit(service):
    snapshot = service.store.pin("db")
    assert snapshot.version == 1
    service.commit(
        "db",
        'transform copy $a := doc("db") modify do '
        "delete $a/part[pname = 'kb'] return $a",
    )
    # The pinned arena still serializes the pre-commit document.
    assert "kb" in serialize_arena(snapshot.arena)
    assert service.store.pin("db").version == 2
    assert "kb" not in service.transform(
        "db", 'transform copy $a := doc("db") modify do '
        "rename $a//pname as name return $a"
    )


def test_pin_rejects_views(service):
    service.define_view("public", "db", HIDE_A)
    with pytest.raises(StoreError, match="cannot be pinned"):
        service.store.pin("public")


def test_commit_is_visible_to_later_reads(service):
    before = service.query("db", "for $x in part return $x/pname")
    service.commit(
        "db",
        'transform copy $a := doc("db") modify do '
        "delete $a/part[pname = 'mouse'] return $a",
    )
    after = service.query("db", "for $x in part return $x/pname")
    assert before == ["<pname>kb</pname>", "<pname>mouse</pname>"]
    assert after == ["<pname>kb</pname>"]


def test_unknown_target_raises_store_error(service):
    with pytest.raises(StoreError):
        service.query("nope", "for $x in a return $x")


def test_bad_query_text_raises_value_error(service):
    with pytest.raises(ValueError):
        service.query("db", "for $x in ][ return $x")


# ----------------------------------------------------------------------
# Batching: coalescing, memo, metrics
# ----------------------------------------------------------------------


def test_identical_concurrent_requests_coalesce():
    svc = QueryService(config=ServiceConfig(batch_window=0.05, workers=2))
    svc.put("db", CATALOG)
    text = QUERIES[1]
    results = []
    errors = []

    def reader():
        try:
            results.append(svc.query("db", text))
        except Exception as exc:  # noqa: BLE001 - assert below
            errors.append(exc)

    threads = [threading.Thread(target=reader) for _ in range(12)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert not errors
    assert len(results) == 12
    assert all(r == results[0] for r in results)
    m = svc.metrics()
    # All 12 pinned snapshots; far fewer evaluations than requests
    # (the window may split into a few batches, but every batch beyond
    # the first is served by coalescing or the per-version memo).
    assert m["snapshot_reads"] == 12
    assert m["evaluations"] <= 4
    assert m["coalesced"] + m["memo_hits"] >= 12 - 4
    svc.close()


def test_memo_serves_repeat_queries_until_commit(service):
    text = QUERIES[0]
    first = service.query("db", text)
    assert service.query("db", text) == first
    assert service.metrics()["memo_hits"] >= 1
    evaluations = service.metrics()["evaluations"]
    service.commit(
        "db",
        'transform copy $a := doc("db") modify do '
        "delete $a/part[pname = 'kb'] return $a",
    )
    assert service.query("db", text) == ["<pname>mouse</pname>"]
    assert service.metrics()["evaluations"] == evaluations + 1


# ----------------------------------------------------------------------
# Deadlines, admission control, shutdown
# ----------------------------------------------------------------------


def test_deadline_expired_in_queue(service):
    with pytest.raises(DeadlineError):
        service.query("db", QUERIES[2], deadline=1e-9)
    assert service.metrics()["deadline_misses"] == 1


def test_admission_control_sheds_with_typed_error():
    # A huge batch window stalls the dispatcher with its first request,
    # so the bounded queue fills and subsequent submissions shed.
    svc = QueryService(config=ServiceConfig(batch_window=5.0, max_queue=2, workers=1))
    svc.put("db", CATALOG)
    admitted = []
    with pytest.raises(OverloadedError):
        for index in range(10):
            admitted.append(
                svc.submit("db", f"for $x in part[price < {index}] return $x")
            )
    assert svc.metrics()["shed"] >= 1
    svc.close()  # graceful: everything admitted is still answered
    assert all(request.future.done() for request in admitted)


def test_close_rejects_new_requests_and_is_idempotent(service):
    service.close()
    with pytest.raises(ServiceClosedError):
        service.query("db", QUERIES[0])
    # Writes are refused too: after close() returns the store is
    # quiescent, which is what lets `repro serve` save durable state
    # without racing a straggling connection thread's commit.
    with pytest.raises(ServiceClosedError):
        service.commit(
            "db",
            'transform copy $a := doc("db") modify do '
            "delete $a/part[pname = 'kb'] return $a",
        )
    with pytest.raises(ServiceClosedError):
        service.put("db2", CATALOG)
    service.close()  # second close is a no-op


# ----------------------------------------------------------------------
# The process worker pool
# ----------------------------------------------------------------------


def test_process_mode_matches_thread_mode():
    try:
        svc = QueryService(config=ServiceConfig(mode="process", workers=2,
                                                batch_window=0.001))
    except ValueError as exc:  # pragma: no cover - sandboxed hosts
        pytest.skip(f"process pool unavailable: {exc}")
    try:
        svc.put("db", CATALOG)
        oracle = svc.store.query_serialized
        for text in QUERIES:
            assert svc.query("db", text) == oracle("db", text)
        # A commit bumps the version; workers must rebuild, not reuse.
        svc.commit(
            "db",
            'transform copy $a := doc("db") modify do '
            "delete $a/part[pname = 'kb'] return $a",
        )
        assert svc.query("db", "for $x in part return $x/pname") == [
            "<pname>mouse</pname>"
        ]
        with pytest.raises(ValueError):
            svc.query("db", "for $x in ][ return $x")
    finally:
        svc.close()


def test_drop_then_reload_never_serves_stale_caches():
    """A dropped-then-reloaded document restarts at version 1, so
    version-keyed caches would alias; the snapshot's process-unique
    arena uid must keep the memo (and, in process mode, the worker
    arena caches) from serving the old document's contents."""
    text = "for $x in part return $x/pname"
    for mode in ("thread", "process"):
        try:
            svc = QueryService(
                config=ServiceConfig(mode=mode, workers=2, batch_window=0.001)
            )
        except ValueError as exc:  # pragma: no cover - sandboxed hosts
            pytest.skip(f"process pool unavailable: {exc}")
        try:
            svc.put("db", CATALOG)
            assert "<pname>kb</pname>" in svc.query("db", text)
            svc.drop("db")
            svc.put("db", "<db><part><pname>trackball</pname></part></db>")
            assert svc.store.documents.get("db").version == 1  # the alias case
            assert svc.query("db", text) == ["<pname>trackball</pname>"]
        finally:
            svc.close()


def test_arena_columns_round_trip():
    arena = freeze(parse(CATALOG))
    rebuilt = arena_from_columns(arena.columns(), SymbolTable())
    assert serialize_arena(rebuilt) == serialize_arena(arena)
    assert rebuilt.n_elements == arena.n_elements
    # Remapped through a fresh table: ids are dense from zero again.
    assert rebuilt.symbols is not arena.symbols


# ----------------------------------------------------------------------
# The TCP server and client
# ----------------------------------------------------------------------


@pytest.fixture
def wire():
    svc = QueryService(config=ServiceConfig(batch_window=0.001))
    svc.put("db", CATALOG)
    server = ServiceServer(svc)
    host, port = server.start()
    client = Client(host, port, timeout=10.0)
    yield svc, server, client
    client.close()
    server.stop()


def test_wire_query_and_ping(wire):
    svc, _, client = wire
    assert client.ping() == "pong"
    for text in QUERIES:
        assert client.query("db", text) == svc.store.query_serialized("db", text)


def test_wire_full_session(wire):
    _, _, client = wire
    loaded = client.load("cat2", xml=CATALOG)
    assert loaded["name"] == "cat2" and loaded["version"] == 1
    view = client.defview("pub2", "cat2", HIDE_A.replace('doc("db")', 'doc("cat2")'))
    assert view["depth"] == 1
    rows = client.query("pub2", "for $x in part/supplier return $x")
    assert rows and all("<price>12</price>" not in row for row in rows)
    staged = client.stage(
        "cat2",
        'transform copy $a := doc("cat2") modify do '
        "delete $a/part[pname = 'kb'] return $a",
    )
    assert staged == {"name": "cat2", "staged": 1}
    preview = client.query("cat2", "for $x in part return $x/pname", staged=True)
    assert preview == ["<pname>mouse</pname>"]
    assert client.rollback("cat2") == {"name": "cat2", "dropped": 1}
    committed = client.commit(
        "cat2",
        'transform copy $a := doc("cat2") modify do '
        "delete $a/part[pname = 'mouse'] return $a",
    )
    assert committed["name"] == "cat2" and committed["version"] == 2
    assert committed["entries"] == 1
    assert client.query("cat2", "for $x in part return $x/pname") == ["<pname>kb</pname>"]
    transformed = client.transform(
        "cat2",
        'transform copy $a := doc("cat2") modify do '
        "rename $a//pname as name return $a",
    )
    assert "<name>kb</name>" in transformed


def test_wire_typed_errors(wire):
    _, _, client = wire
    with pytest.raises(StoreError, match="unknown document or view"):
        client.query("nope", "for $x in a return $x")
    with pytest.raises(BadRequestError, match="unknown op"):
        client.call("frobnicate")
    with pytest.raises(BadRequestError, match="needs a string"):
        client.call("query", target="db")  # missing text
    with pytest.raises(BadRequestError, match="deadline_ms"):
        client.call("query", target="db", text="for $x in part return $x",
                    deadline_ms=-5)


def test_wire_stats_frame(wire):
    svc, _, client = wire
    client.query("db", QUERIES[0])
    stats = client.stats()
    assert stats["service"]["requests"] >= 1
    assert "db" in stats["store"]["documents"]
    assert stats["service"]["mode"] == "thread"


def test_wire_concurrent_clients_coalesce(wire):
    svc, server, _ = wire
    host, port = server.address
    text = QUERIES[1]
    results = []
    errors = []

    def one_client():
        try:
            with Client(host, port, timeout=10.0) as c:
                results.append(c.query("db", text))
        except Exception as exc:  # noqa: BLE001 - assert below
            errors.append(exc)

    threads = [threading.Thread(target=one_client) for _ in range(8)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert not errors
    assert len(results) == 8 and all(r == results[0] for r in results)
    m = svc.metrics()
    assert m["coalesced"] + m["memo_hits"] >= 1


def test_protocol_frame_round_trip():
    frame = {"id": 7, "op": "query", "target": "db", "text": "for $x in a return $x"}
    assert decode_line(encode_frame(frame)) == frame
    with pytest.raises(BadRequestError, match="not valid JSON"):
        decode_line(b"{nope\n")
    with pytest.raises(BadRequestError, match="JSON object"):
        decode_line(b"[1, 2]\n")


def test_client_timeout_tears_down_the_desynchronized_connection():
    """A reply slower than the client's socket timeout leaves a late
    response in the stream; the client must tear the socket down
    (raising the typed loss error) rather than let the next call read
    the stale frame — and a reconnect must see fresh, in-order frames."""
    svc = QueryService(config=ServiceConfig(batch_window=0.5))
    svc.put("db", CATALOG)
    server = ServiceServer(svc)
    host, port = server.start()
    client = Client(host, port, timeout=0.05, retry=RetryPolicy(attempts=1))
    try:
        # The 0.5s dispatch window guarantees the reply misses 50ms.
        with pytest.raises(RetryExhaustedError, match="failed after 1 attempt"):
            client.query("db", QUERIES[0])
        assert client._file is None  # socket was torn down
        # The client stays usable: the next call reconnects with a
        # fresh stream (no stale frame to misread).
        client.timeout = 10.0
        assert client.ping() == "pong"
        assert client.retry_stats["reconnects"] == 1
        client.close()
        with pytest.raises(ServiceClosedError, match="client is closed"):
            client.ping()
    finally:
        client.close()
        server.stop()


def test_server_graceful_shutdown_drains():
    svc = QueryService(config=ServiceConfig(batch_window=0.001))
    svc.put("db", CATALOG)
    server = ServiceServer(svc)
    host, port = server.start()
    with Client(host, port) as client:
        assert client.ping() == "pong"
    server.stop()
    assert svc._closed
    # A stopped server either refuses the connect (TransportError from
    # Client.__init__) or accepts-then-closes (ResponseLostError, wrapped
    # in RetryExhaustedError once the ping retries run out).
    with pytest.raises((TransportError, RetryExhaustedError)):
        Client(host, port, retry=RetryPolicy(attempts=2, base_delay=0.01)).ping()


# ----------------------------------------------------------------------
# Snapshot isolation under concurrency (the MVCC property)
# ----------------------------------------------------------------------


def test_readers_never_observe_partial_commits():
    """The invariant: every commit inserts one marker into TWO places
    atomically, so any committed version has an even total count.  A
    reader that ever counts an odd number saw a torn (mid-commit or
    staged) state."""
    svc = QueryService(config=ServiceConfig(batch_window=0.0, workers=4))
    svc.put("db", "<db><left><l/></left><right><r/></right></db>")
    readers_done = threading.Event()
    violations = []
    errors = []
    read_counts = set()

    def writer():
        try:
            while not readers_done.is_set():
                svc.stage(
                    "db",
                    'transform copy $a := doc("db") modify do '
                    "insert <t/> into $a/left return $a",
                )
                svc.stage(
                    "db",
                    'transform copy $a := doc("db") modify do '
                    "insert <t/> into $a/right return $a",
                )
                svc.commit("db")
        except Exception as exc:  # noqa: BLE001 - assert below
            errors.append(exc)
            readers_done.set()

    def reader():
        try:
            # Self-pacing: keep reading until this hammer has actually
            # straddled at least one commit (on a single-core host the
            # thread interleaving is coarse enough that a fixed small
            # iteration count can land entirely inside one version).
            for iteration in range(400):
                rows = svc.query("db", "for $x in //t return $x")
                if len(rows) % 2:
                    violations.append(len(rows))
                read_counts.add(len(rows) // 2)
                if iteration >= 30 and len(read_counts) > 1:
                    break
        except Exception as exc:  # noqa: BLE001 - assert below
            errors.append(exc)
        finally:
            readers_done.set()

    writer_thread = threading.Thread(target=writer)
    reader_threads = [threading.Thread(target=reader) for _ in range(4)]
    writer_thread.start()
    for t in reader_threads:
        t.start()
    for t in reader_threads:
        t.join()
    writer_thread.join()
    svc.close()
    assert not errors
    assert not violations, f"readers saw torn commits: {violations}"
    assert len(read_counts) > 1, "hammer never overlapped distinct versions"


class TestClosedFlagDiscipline:
    """Regression: the closed flag is guarded by the admission lock.

    The seed read ``_closed`` bare from ``query_direct``, ``transform``
    and ``_check_open``; the reads now go through ``_is_closed()``
    under the admission lock (what ``repro lint``'s guarded-by checker
    enforces), so a close() on one thread is guaranteed visible to the
    next read or write on any other.
    """

    def test_every_entry_point_refuses_after_close(self):
        svc = QueryService()
        svc.put("db", CATALOG)
        svc.close()
        with pytest.raises(ServiceClosedError):
            svc.query_direct("db", "for $x in part return $x")
        with pytest.raises(ServiceClosedError):
            svc.transform("db", HIDE_A)
        with pytest.raises(ServiceClosedError):
            svc.submit("db", "for $x in part return $x")
        with pytest.raises(ServiceClosedError):
            svc.commit("db", HIDE_A)

    def test_closed_check_synchronizes_with_admission_lock(self):
        """_is_closed() actually takes the admission lock: a thread
        holding it stalls the check (the synchronization the bare read
        lacked)."""
        svc = QueryService()
        svc.put("db", CATALOG)
        try:
            results: list = []
            svc._admission_lock.acquire()
            probe = threading.Thread(
                target=lambda: results.append(svc._is_closed())
            )
            probe.start()
            probe.join(timeout=0.2)
            assert probe.is_alive(), "_is_closed() returned without the lock"
            svc._admission_lock.release()
            probe.join(timeout=2.0)
            assert results == [False]
        finally:
            if svc._admission_lock.locked():  # pragma: no cover - cleanup
                svc._admission_lock.release()
            svc.close()

    def test_close_during_reads_never_hangs_or_corrupts(self):
        """Races between readers and close() end in exactly two ways:
        a served result or ServiceClosedError — never a hang."""
        svc = QueryService()
        svc.put("db", CATALOG)
        expected = svc.store.query_serialized("db", "for $x in part/pname return $x")
        outcomes: list = []

        def reader():
            try:
                outcomes.append(
                    ("ok", svc.query_direct("db", "for $x in part/pname return $x"))
                )
            except ServiceClosedError:
                outcomes.append(("closed", None))

        threads = [threading.Thread(target=reader) for _ in range(8)]
        for t in threads[:4]:
            t.start()
        svc.close()
        for t in threads[4:]:
            t.start()
        for t in threads:
            t.join(timeout=5.0)
        assert not any(t.is_alive() for t in threads)
        for kind, value in outcomes:
            if kind == "ok":
                assert value == expected
