"""Unit tests for the SAX layer (streaming scanner and adapters)."""

import io

import pytest

from repro.xmltree import (
    EndDocument,
    EndElement,
    StartDocument,
    StartElement,
    TextEvent,
    XMLSyntaxError,
    deep_equal,
    element,
    events_to_text,
    events_to_tree,
    iter_sax_file,
    iter_sax_string,
    parse,
    serialize,
    tree_to_events,
)


class TestScanner:
    def test_simple_document_events(self):
        events = list(iter_sax_string("<a><b>x</b></a>"))
        assert events == [
            StartDocument(),
            StartElement("a"),
            StartElement("b"),
            TextEvent("x"),
            EndElement("b"),
            EndElement("a"),
            EndDocument(),
        ]

    def test_self_closing_emits_both(self):
        events = list(iter_sax_string("<a/>"))
        assert events == [StartDocument(), StartElement("a"), EndElement("a"), EndDocument()]

    def test_attributes(self):
        events = list(iter_sax_string('<a x="1" y=\'2\'/>'))
        assert events[1] == StartElement("a", {"x": "1", "y": "2"})

    def test_whitespace_stripped_by_default(self):
        events = list(iter_sax_string("<a>\n  <b/>\n</a>"))
        assert not any(isinstance(e, TextEvent) for e in events)

    def test_whitespace_kept_on_request(self):
        events = list(iter_sax_string("<a> <b/> </a>", strip_whitespace=False))
        texts = [e.value for e in events if isinstance(e, TextEvent)]
        assert texts == [" ", " "]

    def test_entities_decoded(self):
        events = list(iter_sax_string("<a>&lt;x&gt;</a>"))
        assert TextEvent("<x>") in events

    def test_comments_and_pis_skipped(self):
        events = list(iter_sax_string('<?xml version="1.0"?><a><!--c--><?pi?><b/></a>'))
        names = [e.name for e in events if isinstance(e, StartElement)]
        assert names == ["a", "b"]

    def test_cdata(self):
        events = list(iter_sax_string("<a><![CDATA[<&>]]></a>"))
        assert TextEvent("<&>") in events

    def test_doctype_skipped(self):
        events = list(iter_sax_string("<!DOCTYPE a><a/>"))
        assert events[1] == StartElement("a")

    @pytest.mark.parametrize(
        "bad",
        ["", "<a>", "</a>", "<a/><b/>", "text<a/>", "<a>x", "<a><!--x</a>"],
    )
    def test_malformed_raises(self, bad):
        with pytest.raises(XMLSyntaxError):
            list(iter_sax_string(bad))

    def test_chunk_boundary_robustness(self):
        # A document much larger than one read chunk, with tags likely
        # to straddle chunk boundaries.
        body = "".join(f'<item id="i{i}">value {i} &amp; more</item>' for i in range(20000))
        doc = f"<root>{body}</root>"
        starts = sum(1 for e in iter_sax_string(doc) if isinstance(e, StartElement))
        assert starts == 20001

    def test_file_streaming(self, tmp_path):
        path = tmp_path / "doc.xml"
        path.write_text("<a><b>x</b></a>", encoding="utf-8")
        events = list(iter_sax_file(str(path)))
        assert events[1] == StartElement("a")
        assert events[-1] == EndDocument()


class TestAdapters:
    def test_tree_to_events_round_trip(self):
        root = parse('<db><part id="p"><pname>kb</pname></part><part/></db>')
        rebuilt = events_to_tree(tree_to_events(root))
        assert deep_equal(root, rebuilt)

    def test_tree_to_events_no_document_wrapper(self):
        root = element("a", element("b"))
        events = list(tree_to_events(root, document=False))
        assert isinstance(events[0], StartElement)
        assert isinstance(events[-1], EndElement)

    def test_scanner_matches_parser(self):
        doc = '<db><part id="p1"><pname>key&amp;board</pname><price>12</price></part></db>'
        via_sax = events_to_tree(iter_sax_string(doc))
        via_dom = parse(doc)
        assert deep_equal(via_sax, via_dom)

    def test_events_to_text_round_trip(self):
        doc = '<db><part id="p1"><pname>key&amp;board</pname></part><part/></db>'
        text = events_to_text(iter_sax_string(doc))
        assert deep_equal(parse(text), parse(doc))

    def test_events_to_text_stream_output(self):
        out = io.StringIO()
        result = events_to_text(iter_sax_string("<a><b>x</b></a>"), out)
        assert result is None
        assert deep_equal(parse(out.getvalue()), parse("<a><b>x</b></a>"))

    def test_events_to_text_self_closes_empty(self):
        assert events_to_text(iter_sax_string("<a></a>")) == "<a/>"

    def test_events_to_tree_errors(self):
        with pytest.raises(XMLSyntaxError):
            events_to_tree([StartElement("a")])
        with pytest.raises(XMLSyntaxError):
            events_to_tree([EndElement("a")])
        with pytest.raises(XMLSyntaxError):
            events_to_tree([TextEvent("x")])
        with pytest.raises(XMLSyntaxError):
            events_to_tree([])

    def test_deep_tree_adapters_no_recursion_error(self):
        doc = "<n>" * 4000 + "</n>" * 4000
        root = events_to_tree(iter_sax_string(doc))
        text = events_to_text(tree_to_events(root))
        assert text.count("<n>") == 3999  # innermost serializes as <n/>
        assert deep_equal(parse(serialize(root)), root)
