"""The durability layer: atomic writes, dirty tracking, round trips."""

import os

import pytest

from repro import serialize
from repro.store import ViewStore, open_store, save_store

CATALOG = (
    "<db><part><pname>kb</pname>"
    "<supplier><sname>HP</sname><price>12</price></supplier></part></db>"
)

DELETE_PRICES = (
    'transform copy $a := doc("db") modify do delete $a//price return $a'
)


@pytest.fixture
def state_dir(tmp_path):
    store = ViewStore()
    store.put("db", CATALOG)
    store.define_view("public", "db", DELETE_PRICES)
    store.stage("db", DELETE_PRICES)
    save_store(store, str(tmp_path / "st"))
    return str(tmp_path / "st")


class TestRoundTrip:
    def test_everything_survives(self, state_dir):
        store = open_store(state_dir)
        assert store.documents.get("db").version == 1
        assert "public" in store.views
        assert store.log.has_staged("db")
        assert _texts(store.query("public", "for $x in part/supplier return $x")) == [
            "<supplier><sname>HP</sname></supplier>"
        ]

    def test_history_survives(self, state_dir):
        store = open_store(state_dir)
        store.rollback("db")
        store.commit("db", DELETE_PRICES)
        save_store(store, state_dir)
        again = open_store(state_dir)
        assert again.documents.get("db").version == 2
        assert len(again.log.history("db")) == 1
        assert "price" not in serialize(again.documents.get("db").root)


class TestDirtyTracking:
    def test_manifest_only_save_leaves_document_file_alone(self, state_dir):
        doc_path = os.path.join(state_dir, "doc-db-v1.xml")
        before = os.stat(doc_path).st_mtime_ns
        store = open_store(state_dir)
        store.stage("db", DELETE_PRICES)  # manifest-only change
        save_store(store, state_dir)
        assert os.stat(doc_path).st_mtime_ns == before

    def test_commit_writes_a_fresh_versioned_file(self, state_dir):
        store = open_store(state_dir)
        store.rollback("db")
        store.commit("db", DELETE_PRICES)
        save_store(store, state_dir)
        content = open(
            os.path.join(state_dir, "doc-db-v2.xml"), encoding="utf-8"
        ).read()
        assert "price" not in content
        # The superseded version's file was garbage-collected.
        assert not os.path.exists(os.path.join(state_dir, "doc-db-v1.xml"))

    def test_no_temp_files_left_behind(self, state_dir):
        store = open_store(state_dir)
        store.commit("db", DELETE_PRICES)
        save_store(store, state_dir)
        assert not [f for f in os.listdir(state_dir) if f.endswith(".tmp")]


def _texts(nodes):
    return [n if isinstance(n, str) else serialize(n) for n in nodes]
