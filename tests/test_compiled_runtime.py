"""The compiled runtime's plumbing: symbol interning, the CompiledPath
bundle, cache-counter observability, and the two-pass replayable-source
contract."""

import pytest

from repro import Engine, cli, parse
from repro.compiled import CompiledPath
from repro.lru import LRUCache
from repro.streaming.select import stream_select
from repro.transform.query import parse_transform_query
from repro.transform.sax_twopass import transform_sax_events
from repro.xmltree.sax import iter_sax_string, tree_to_events
from repro.xmltree.symbols import SymbolTable, global_symbols
from repro.xpath.parser import parse_xpath

DOC = (
    "<db><part><pname>kb</pname>"
    "<supplier><sname>HP</sname><price>12</price></supplier>"
    "</part><part><pname>mouse</pname></part></db>"
)

DELETE = (
    'transform copy $a := doc("db") modify do delete $a//price return $a'
)


class TestSymbolTable:
    def test_interning_is_dense_and_stable(self):
        table = SymbolTable()
        a = table.intern("part")
        b = table.intern("pname")
        assert (a, b) == (0, 1)
        assert table.intern("part") == a
        assert table.id_of("part") == a
        assert table.id_of("never-seen") is None
        assert len(table) == 2
        assert "part" in table

    def test_canonical_shares_one_string_object(self):
        table = SymbolTable()
        first = table.canonical("supplier")
        second = table.canonical("suppli" + "er")  # distinct object going in
        assert first is second

    def test_parser_populates_the_global_table(self):
        tree = parse("<totally-unique-label-xyz/>")
        table = global_symbols()
        assert table.id_of("totally-unique-label-xyz") is not None
        assert tree.label is table.canonical("totally-unique-label-xyz")

    def test_sax_scanner_populates_the_global_table(self):
        list(iter_sax_string("<sax-unique-label-abc><x/></sax-unique-label-abc>"))
        assert global_symbols().id_of("sax-unique-label-abc") is not None


class TestCompiledPath:
    def test_bundle_shares_cached_nfas(self):
        engine = Engine()
        prepared = engine.prepare_transform(DELETE)
        bundle = prepared.compiled
        assert isinstance(bundle, CompiledPath)
        assert bundle.selecting is prepared.selecting
        assert bundle.filtering is prepared.filtering
        assert bundle.selecting is engine.cache.selecting_nfa_for(bundle.path)

    def test_dfa_tables_survive_across_runs_and_preparations(self):
        engine = Engine()
        doc = parse(DOC)
        prepared = engine.prepare_transform(DELETE)
        prepared.run(doc, method="topdown")
        before = prepared.compiled.stats()
        assert before["selecting_dfa"]["moves"] > 0
        engine.prepare_transform(DELETE).run(doc, method="topdown")
        assert prepared.compiled.stats() == before

    def test_compiled_path_cache_is_surfaced_in_stats(self):
        engine = Engine()
        engine.prepare_transform(DELETE)
        stats = engine.cache.stats()
        assert "compiled_paths" in stats
        assert stats["compiled_paths"]["size"] == 1


class TestCounterObservability:
    def test_lru_counts_hits_misses_evictions(self):
        cache = LRUCache(2)
        assert cache.get("a") is None          # miss
        cache.put("a", 1)
        assert cache.get("a") == 1             # hit
        cache.put("b", 2)
        cache.put("c", 3)                      # evicts "a"
        stats = cache.stats()
        assert stats["hits"] == 1
        assert stats["misses"] == 1
        assert stats["evictions"] == 1

    def test_prepared_explain_surfaces_dfa_and_cache_counters(self):
        engine = Engine()
        doc = parse(DOC)
        prepared = engine.prepare_transform(DELETE)
        prepared.run(doc, method="topdown")
        explained = prepared.explain(doc)
        assert "selecting DFA:" in explained
        assert "interned state sets" in explained
        assert "memoized transitions" in explained
        assert "engine caches [hits/misses/evictions]:" in explained
        assert "compiled_paths" in explained

    def test_store_stat_cli_prints_cache_counters(self, tmp_path, capsys):
        doc_path = tmp_path / "db.xml"
        doc_path.write_text(DOC)
        state = str(tmp_path / "state")
        assert cli.main(
            ["store", "load", "-n", "db", "-i", str(doc_path), "--state", state]
        ) == 0
        capsys.readouterr()
        assert cli.main(["store", "stat", "--state", state]) == 0
        out = capsys.readouterr().out
        assert "caches [hits/misses/evictions]:" in out
        assert "results" in out
        assert "compiled_paths" in out


class TestReplayableSourceContract:
    def test_stream_select_rejects_a_one_shot_iterator(self):
        tree = parse(DOC)
        events = tree_to_events(tree)  # a single generator, not a factory
        with pytest.raises(ValueError, match="two-pass"):
            list(stream_select(lambda: events, parse_xpath("//price")))

    def test_stream_select_accepts_a_real_factory(self):
        tree = parse(DOC)
        matches = list(
            stream_select(lambda: tree_to_events(tree), parse_xpath("//price"))
        )
        assert len(matches) == 1
        assert matches[0].label == "price"

    def test_transform_sax_events_rejects_a_one_shot_iterator(self):
        tree = parse(DOC)
        events = tree_to_events(tree)
        query = parse_transform_query(DELETE)
        with pytest.raises(ValueError, match="twice"):
            list(transform_sax_events(lambda: events, query))

    def test_stream_select_detects_shared_iterator_behind_wrappers(self):
        """A source returning fresh wrapper objects around one shared
        iterator defeats the identity check; the empty-second-pass
        guard must still catch it — including on qualifier-free paths
        where ``Ld`` is empty."""
        import itertools

        tree = parse(DOC)
        shared = tree_to_events(tree)
        with pytest.raises(ValueError, match="second pass"):
            list(stream_select(
                lambda: itertools.chain(shared), parse_xpath("//price")
            ))

    def test_transform_sax_events_detects_shared_iterator_behind_wrappers(self):
        import itertools

        tree = parse(DOC)
        shared = tree_to_events(tree)
        query = parse_transform_query(DELETE)
        with pytest.raises(ValueError, match="second pass"):
            list(transform_sax_events(lambda: itertools.chain(shared), query))


class TestConcurrentDFA:
    def test_one_shared_automaton_serves_many_threads(self):
        """The lazy tables grow under a lock: hammering one automaton
        from many threads over documents with disjoint vocabularies
        (every thread interns new sets/moves) must agree with the
        single-threaded answers."""
        from concurrent.futures import ThreadPoolExecutor

        from repro.automata.selecting import build_selecting_nfa
        from repro.xpath.evaluator import evaluate

        path = parse_xpath("//part[pname = 'kb']//part")
        nfa = build_selecting_nfa(path)
        docs = []
        for i in range(16):
            docs.append(parse(
                f"<db><u{i}><part><pname>kb</pname>"
                f"<w{i}><part><pname>x</pname></part></w{i}>"
                f"</part></u{i}></db>"
            ))
        expected = [evaluate(doc, path) for doc in docs]
        with ThreadPoolExecutor(max_workers=8) as pool:
            for _ in range(5):
                results = list(pool.map(nfa.run_select, docs))
                assert results == expected
