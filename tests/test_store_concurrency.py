"""Concurrency hardening: MVCC snapshot isolation on the store, cache
counter exactness under thread hammers, prepared-statement sharing,
and cross-process state-directory locking."""

import json
import multiprocessing
import os
import threading

import pytest

from repro import Engine
from repro.compiled import CompiledCache
from repro.lru import LRUCache
from repro.store import (
    CorruptStateError,
    StateLockedError,
    ViewStore,
    locked_state,
    open_store,
    save_store,
)
from repro.store.state import MANIFEST_NAME, StateLock

TRANSFORM = (
    'transform copy $a := doc("db") modify do '
    "delete $a//supplier[country = 'A']/price return $a"
)

PAIRED_INSERTS = [
    'transform copy $a := doc("db") modify do '
    "insert <t/> into $a/left return $a",
    'transform copy $a := doc("db") modify do '
    "insert <t/> into $a/right return $a",
]


# ----------------------------------------------------------------------
# Reader/writer hammer on the store itself
# ----------------------------------------------------------------------


def test_store_readers_only_observe_committed_versions():
    """Each commit applies TWO staged inserts atomically; a reader that
    counts an odd number of ``<t/>`` saw a staged preview or a torn
    mid-commit tree."""
    store = ViewStore()
    store.put("db", "<db><left><l/></left><right><r/></right></db>")
    readers_done = threading.Event()
    torn = []
    errors = []
    counts = set()

    def writer():
        try:
            while not readers_done.is_set():
                for text in PAIRED_INSERTS:
                    store.stage("db", text)
                store.commit("db")
        except Exception as exc:  # noqa: BLE001 - assert below
            errors.append(exc)
            readers_done.set()

    def reader():
        try:
            # Self-pacing (see test_service.py): read until at least
            # one commit has been straddled, bounded by 400 rounds.
            for iteration in range(400):
                # Both read paths every round: the locked Node path and
                # the pinned-snapshot arena path.
                rows = store.query("db", "for $x in //t return $x")
                if len(rows) % 2:
                    torn.append(("query", len(rows)))
                snapshot = store.pin("db")
                pinned = sum(
                    1
                    for i in range(len(snapshot.arena))
                    if snapshot.arena.is_element(i)
                    and snapshot.arena.label(i) == "t"
                )
                if pinned % 2:
                    torn.append(("pin", pinned))
                counts.add(len(rows))
                if iteration >= 40 and len(counts) > 1:
                    break
        except Exception as exc:  # noqa: BLE001 - assert below
            errors.append(exc)
        finally:
            readers_done.set()

    writer_thread = threading.Thread(target=writer)
    reader_threads = [threading.Thread(target=reader) for _ in range(4)]
    writer_thread.start()
    for thread in reader_threads:
        thread.start()
    for thread in reader_threads:
        thread.join()
    writer_thread.join()
    assert not errors
    assert not torn, f"readers observed non-committed states: {torn[:5]}"
    assert len(counts) > 1, "hammer never overlapped distinct versions"


def test_pinned_snapshot_is_stable_across_commits():
    store = ViewStore()
    store.put("db", "<db><item><n>1</n></item></db>")
    snapshot = store.pin("db")
    store.commit(
        "db",
        'transform copy $a := doc("db") modify do delete $a/item return $a',
    )
    from repro.xmltree.serializer import serialize_arena

    assert "<n>1</n>" in serialize_arena(snapshot.arena)
    assert store.pin("db").version == snapshot.version + 1
    assert store.snapshot_pins == 2


# ----------------------------------------------------------------------
# Cache thread-safety: counters stay exact under contention
# ----------------------------------------------------------------------


def test_lru_cache_counters_exact_under_hammer():
    cache = LRUCache(maxsize=32)
    rounds, threads_n = 400, 8
    barrier = threading.Barrier(threads_n)

    def hammer(seed: int):
        barrier.wait()
        for index in range(rounds):
            key = (seed * index) % 48  # some keys collide, some evict
            if cache.get(key) is None:
                cache.put(key, key)

    threads = [threading.Thread(target=hammer, args=(s + 1,)) for s in range(threads_n)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    stats = cache.stats()
    assert stats["hits"] + stats["misses"] == rounds * threads_n
    assert stats["size"] <= 32
    assert len(cache) == stats["size"]


def test_compiled_cache_hammer_counters_and_identity():
    cache = CompiledCache(maxsize=64)
    texts = [
        f"transform copy $a := doc(\"db\") modify do "
        f"delete $a//supplier[price < {n}] return $a"
        for n in range(6)
    ]
    threads_n = 8
    barrier = threading.Barrier(threads_n)
    seen = [[] for _ in range(threads_n)]

    def hammer(slot: int):
        barrier.wait()
        for _ in range(50):
            for text in texts:
                query = cache.transform(text)
                seen[slot].append((text, id(query)))
                path = query.path
                assert cache.selecting_nfa_for(path) is cache.selecting_nfa_for(path)

    threads = [
        threading.Thread(target=hammer, args=(slot,)) for slot in range(threads_n)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    # After the first warm round, every thread sees one shared parse
    # per text (get_or_compute may double-build only on the cold race).
    final = {text: id(cache.transform(text)) for text in texts}
    for slot_seen in seen:
        for text, ident in slot_seen[len(texts):]:
            assert ident == final[text] or ident in {
                i for t, i in slot_seen[: len(texts)] if t == text
            }
    stats = cache.stats()
    for name in ("transforms", "selecting_nfas"):
        assert stats[name]["hits"] + stats[name]["misses"] >= threads_n * 50


def test_store_arena_read_counter_exact_across_documents():
    store = ViewStore()
    docs = [f"d{i}" for i in range(4)]
    for name in docs:
        store.put(name, f"<db><v>{name}</v></db>")
    rounds, threads_n = 30, 8
    barrier = threading.Barrier(threads_n)

    def hammer(seed: int):
        barrier.wait()
        for index in range(rounds):
            name = docs[(seed + index) % len(docs)]
            store.results.invalidate()  # force the arena path every time
            store.query(name, "for $x in v return $x")

    threads = [threading.Thread(target=hammer, args=(s,)) for s in range(threads_n)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert store.arena_reads == rounds * threads_n


# ----------------------------------------------------------------------
# Prepared-statement sharing across threads
# ----------------------------------------------------------------------


def test_engine_prepared_shared_across_threads():
    engine = Engine()
    threads_n = 12
    barrier = threading.Barrier(threads_n)
    prepared = [None] * threads_n

    def prepare(slot: int):
        barrier.wait()  # all threads race the cold cache together
        prepared[slot] = engine.prepare_transform(TRANSFORM)

    threads = [
        threading.Thread(target=prepare, args=(slot,)) for slot in range(threads_n)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    # The build lock guarantees one shared object even on the cold race.
    assert all(p is prepared[0] for p in prepared)
    query_text = "for $x in part/supplier return $x"
    queries = [engine.prepare_query(query_text) for _ in range(4)]
    assert all(q is queries[0] for q in queries)


# ----------------------------------------------------------------------
# The state-directory file lock
# ----------------------------------------------------------------------


def _hold_lock(state_dir: str, held: "multiprocessing.Event",
               release: "multiprocessing.Event") -> None:
    with StateLock(state_dir).acquire():
        held.set()
        release.wait(timeout=30)


def test_state_lock_excludes_other_processes(tmp_path):
    state_dir = str(tmp_path / "state")
    context = multiprocessing.get_context("fork")
    held = context.Event()
    release = context.Event()
    holder = context.Process(target=_hold_lock, args=(state_dir, held, release))
    holder.start()
    try:
        assert held.wait(timeout=10), "holder process never acquired the lock"
        with pytest.raises(StateLockedError, match="locked by another process"):
            StateLock(state_dir).acquire(timeout=0.2)
        with pytest.raises(StateLockedError):
            with locked_state(state_dir, timeout=0.2):
                pass  # pragma: no cover - must not be reached
    finally:
        release.set()
        holder.join(timeout=10)
    # Released: the next acquisition succeeds immediately.
    with locked_state(state_dir) as store:
        store.put("db", "<db><a/></db>")
    assert os.path.exists(os.path.join(state_dir, MANIFEST_NAME))


def test_state_lock_reentrant_within_process_sequentially(tmp_path):
    state_dir = str(tmp_path / "state")
    lock = StateLock(state_dir)
    lock.acquire()
    lock.acquire()  # held already: no-op, not a deadlock
    lock.release()
    lock.release()  # idempotent
    with locked_state(state_dir) as store:
        assert len(store.documents) == 0


def test_shared_read_locks_do_not_exclude_each_other(tmp_path):
    state_dir = str(tmp_path / "state")
    with locked_state(state_dir) as store:
        store.put("db", "<db><a/></db>")
    # flock is per open file description, so two StateLock instances in
    # one process contend exactly like two processes would.
    reader_a = StateLock(state_dir).acquire(timeout=0.2, shared=True)
    reader_b = StateLock(state_dir).acquire(timeout=0.2, shared=True)
    try:
        # ...but a writer's exclusive acquisition is refused while any
        # shared reader holds on.
        with pytest.raises(StateLockedError):
            StateLock(state_dir).acquire(timeout=0.2)
    finally:
        reader_a.release()
        reader_b.release()
    with locked_state(state_dir) as store:  # writers work again
        assert store.documents.names() == ["db"]


def test_corrupt_manifest_is_a_typed_store_error(tmp_path):
    state_dir = str(tmp_path / "state")
    os.makedirs(state_dir)
    manifest = os.path.join(state_dir, MANIFEST_NAME)
    with open(manifest, "w", encoding="utf-8") as handle:
        handle.write("{not json at all")
    with pytest.raises(CorruptStateError, match="not valid JSON"):
        open_store(state_dir)
    with open(manifest, "w", encoding="utf-8") as handle:
        handle.write('{"format": 99}')
    with pytest.raises(CorruptStateError, match="unsupported format"):
        open_store(state_dir)
    with open(manifest, "w", encoding="utf-8") as handle:
        json.dump({"format": 1, "documents": {"db": {}}}, handle)
    with pytest.raises(CorruptStateError, match="malformed manifest"):
        open_store(state_dir)
    with open(manifest, "w", encoding="utf-8") as handle:
        handle.write("[1, 2, 3]")
    with pytest.raises(CorruptStateError, match="not a JSON object"):
        open_store(state_dir)


def test_corrupt_state_exits_2_at_the_cli(tmp_path, capsys):
    from repro.cli import main

    state_dir = str(tmp_path / "state")
    os.makedirs(state_dir)
    with open(os.path.join(state_dir, MANIFEST_NAME), "w", encoding="utf-8") as handle:
        handle.write("{broken")
    code = main(["store", "stat", "--state", state_dir])
    captured = capsys.readouterr()
    assert code == 2
    assert captured.err.startswith("repro: corrupt store state")
    assert "Traceback" not in captured.err


def test_locked_state_round_trip_persists(tmp_path):
    state_dir = str(tmp_path / "state")
    with locked_state(state_dir) as store:
        store.put("db", "<db><part><pname>kb</pname></part></db>")
    with locked_state(state_dir, save=False) as store:
        assert store.query_serialized("db", "for $x in part/pname return $x") == [
            "<pname>kb</pname>"
        ]


def test_save_store_excluded_from_concurrent_save(tmp_path):
    """Two sequential locked cycles do not clobber each other's
    documents (the interleaving the lock exists to prevent would lose
    one of them)."""
    state_dir = str(tmp_path / "state")
    with locked_state(state_dir) as store:
        store.put("a", "<db><x/></db>")
    with locked_state(state_dir) as store:
        store.put("b", "<db><y/></db>")
    final = open_store(state_dir)
    assert final.documents.names() == ["a", "b"]
    save_store(final, state_dir)  # plain save still works outside the lock


# ----------------------------------------------------------------------
# Lock-discipline regressions (found by `repro lint`'s guarded-by checker)
# ----------------------------------------------------------------------


def test_store_counter_reads_go_through_the_counter_lock():
    """Regression: stats() and the metric probes read arena_reads/
    snapshot_pins through _counter_values() under _counter_lock (the
    seed read the attributes bare, racing the increments in
    _arena_refs/pin)."""
    from repro.obs import MetricsRegistry

    store = ViewStore()
    store.put("db", "<db><part><pname>kb</pname></part></db>")
    registry = MetricsRegistry()
    store.bind_metrics(registry)

    errors: list = []

    def hammer():
        try:
            for _ in range(50):
                store.query_serialized("db", "for $x in part/pname return $x")
                store.results.invalidate()  # force a real arena read each time
                store.pin("db")
        except Exception as exc:  # noqa: BLE001 - assert below
            errors.append(exc)

    threads = [threading.Thread(target=hammer) for _ in range(4)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert not errors
    # Counts are exact — every increment and every read synchronized.
    assert store.stats()["arena_reads"] == 200
    assert store.stats()["snapshot_pins"] == 200
    snapshot = registry.snapshot()
    assert snapshot["store.arena.reads"] == 200
    assert snapshot["store.snapshot.pins"] == 200
    assert store._counter_values() == (200, 200)


def test_document_stats_takes_the_document_lock():
    """Regression: StoredDocument.stats() reads version/tree/arena under
    the document lock (the seed read them bare, so a commit in flight
    could tear the row)."""
    store = ViewStore()
    doc = store.put("db", "<db><part><pname>kb</pname></part></db>")
    results: list = []

    with doc.lock:
        probe = threading.Thread(target=lambda: results.append(doc.stats()))
        probe.start()
        probe.join(timeout=0.2)
        assert probe.is_alive(), "stats() returned without the document lock"
    probe.join(timeout=2.0)
    assert not probe.is_alive()
    assert results and results[0]["version"] == 1


def test_document_stats_row_is_consistent_under_commits():
    """stats() polled during a commit storm always reports a row whose
    arena fields (when present) belong to the version it reports."""
    store = ViewStore()
    doc = store.put("db", "<db><part><x/></part></db>")
    stop = threading.Event()
    errors: list = []

    def committer():
        try:
            while not stop.is_set():
                store.commit(
                    "db",
                    'transform copy $a := doc("db") modify do '
                    "insert <tick/> into $a/part return $a",
                )
        except Exception as exc:  # noqa: BLE001 - assert below
            errors.append(exc)

    writer = threading.Thread(target=committer)
    writer.start()
    try:
        last_version = 0
        for _ in range(200):
            store.query_serialized("db", "for $x in part return $x")
            row = doc.stats()
            assert row["version"] >= last_version
            last_version = row["version"]
            assert row["nodes"] >= 3
    finally:
        stop.set()
        writer.join()
    assert not errors
