"""Unit tests for the workload module (repro.xmark.queries)."""

import pytest

from repro.transform import TransformQuery
from repro.xmark.queries import (
    EMBEDDED_PATHS,
    INSERT_CONTENT,
    QUERY_IDS,
    composition_pairs,
    delete_transform,
    insert_transform,
    rename_transform,
    replace_transform,
    user_query_for,
)
from repro.xpath import parse_xpath
from repro.xquery.ast import UserQuery


class TestWorkloadDefinitions:
    def test_ten_queries_in_order(self):
        assert QUERY_IDS == [f"U{i}" for i in range(1, 11)]

    @pytest.mark.parametrize("uid", [f"U{i}" for i in range(1, 11)])
    def test_paths_parse(self, uid):
        assert parse_xpath(EMBEDDED_PATHS[uid]).steps

    def test_u6_is_the_long_path(self):
        # Fig. 11 calls out U6's 12-step path; minus the leading /site
        # adaptation ours has 11 steps.
        path = parse_xpath(EMBEDDED_PATHS["U6"])
        assert len(path.steps) == 11

    def test_u5_and_u10_use_descendant_axis(self):
        assert EMBEDDED_PATHS["U5"].startswith("//")
        assert EMBEDDED_PATHS["U10"].startswith("//")

    @pytest.mark.parametrize("uid", [f"U{i}" for i in range(1, 11)])
    def test_transform_builders(self, uid):
        for builder, kind in [
            (insert_transform, "insert"),
            (delete_transform, "delete"),
            (replace_transform, "replace"),
            (rename_transform, "rename"),
        ]:
            query = builder(uid)
            assert isinstance(query, TransformQuery)
            assert query.update.kind == kind
            assert str(query.path)  # embedded path round-trips

    def test_insert_content_is_constant_element(self):
        query = insert_transform("U1")
        assert query.update.content.label == "new_annotation"
        assert "inserted by Qt" in INSERT_CONTENT

    @pytest.mark.parametrize("uid", [f"U{i}" for i in range(1, 11)])
    def test_user_queries(self, uid):
        query = user_query_for(uid)
        assert isinstance(query, UserQuery)
        assert query.var == "x"

    def test_user_query_u10_avoids_redundant_descendant(self):
        assert not str(user_query_for("U10").path).startswith("//")

    def test_composition_pairs_match_section_7_2(self):
        pairs = composition_pairs()
        labels = [(t, u) for t, u, _, _ in pairs]
        assert labels == [("U1", "U2"), ("U9", "U1"), ("U9", "U4"), ("U8", "U10")]
        kinds = [tq.update.kind for _, _, tq, _ in pairs]
        assert kinds == ["insert", "insert", "delete", "delete"]
