"""Focused tests for the SAX-integrated two-pass algorithm (Section 6):
the Ld cursor list, pass-2 suppression/renaming/insertion mechanics,
the file-to-file entry point, and cursor alignment between passes."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.automata import build_filtering_nfa, build_selecting_nfa
from repro.transform import (
    TransformQuery,
    transform_copy_update,
    transform_sax,
    transform_sax_events,
    transform_sax_file,
)
from repro.transform.sax_twopass import pass1_collect_ld, pass2_transform
from repro.updates import parse_update
from repro.xmltree import (
    deep_equal,
    iter_sax_string,
    parse,
    parse_file,
    serialize,
    tree_to_events,
    write_file,
)
from repro.xpath import eval_qualifier, evaluate, parse_xpath

from tests.strategies import trees, xpath_queries
from repro.xpath.normalize import UnsupportedPathError


DOC = (
    "<db>"
    "<part><pname>kb</pname>"
    "<supplier><sname>HP</sname><price>12</price></supplier>"
    "<supplier><sname>Dell</sname><price>20</price></supplier></part>"
    "<part><pname>mouse</pname>"
    "<supplier><sname>HP</sname><price>8</price></supplier></part>"
    "</db>"
)


class TestPass1:
    def test_ld_one_entry_per_qualifier_occurrence(self):
        doc = parse(DOC)
        nfa = build_filtering_nfa(parse_xpath("part[pname = 'kb']"))
        ld = pass1_collect_ld(tree_to_events(doc), nfa)
        # The part state (with its qualifier) is entered at both parts.
        assert len(ld) == 2
        assert ld == [True, False]

    def test_ld_values_match_reference(self):
        doc = parse(DOC)
        path = parse_xpath("part/supplier[price < 15]")
        nfa = build_filtering_nfa(path)
        ld = pass1_collect_ld(tree_to_events(doc), nfa)
        qual = parse_xpath("x[price < 15]").steps[0].quals[0]
        expected = [
            eval_qualifier(node, qual)
            for node in evaluate(doc, parse_xpath("part/supplier"))
        ]
        assert ld == expected

    def test_ld_empty_for_qualifier_free_query(self):
        doc = parse(DOC)
        nfa = build_filtering_nfa(parse_xpath("part/supplier"))
        assert pass1_collect_ld(tree_to_events(doc), nfa) == []

    def test_pruning_skips_ld_entries(self):
        # Qualifier states under a non-matching branch assign no ids.
        doc = parse("<r><a><x t='1'/></a><b><x/></b></r>")
        nfa = build_filtering_nfa(parse_xpath("a/x[@t = '1']"))
        ld = pass1_collect_ld(tree_to_events(doc), nfa)
        assert len(ld) == 1  # only the x under a, not the x under b

    def test_no_none_left_in_ld(self):
        doc = parse(DOC)
        nfa = build_filtering_nfa(
            parse_xpath("//supplier[sname = 'HP' and price < 15]")
        )
        ld = pass1_collect_ld(tree_to_events(doc), nfa)
        assert ld and all(value is not None for value in ld)


class TestPass2Mechanics:
    def run(self, doc_text, update_text):
        doc = parse(doc_text)
        query = TransformQuery(parse_update(update_text))
        return serialize(transform_sax(doc, query))

    def test_delete_suppresses_whole_subtree(self):
        out = self.run("<r><a><deep><er/></deep></a><b/></r>", "delete $a/a")
        assert out == "<r><b/></r>"

    def test_replace_emits_replacement_once(self):
        out = self.run("<r><a><x/></a></r>", "replace $a/a with <n>1</n>")
        assert out == "<r><n>1</n></r>"

    def test_rename_changes_both_tags(self):
        out = self.run("<r><a><x/></a></r>", "rename $a/a as b")
        assert out == "<r><b><x/></b></r>"

    def test_insert_goes_before_closing_tag(self):
        out = self.run("<r><a><x/></a></r>", "insert <n/> into $a/a")
        assert out == "<r><a><x/><n/></a></r>"

    def test_insert_on_selfclosing_element(self):
        out = self.run("<r><a/></r>", "insert <n/> into $a/a")
        assert out == "<r><a><n/></a></r>"

    def test_nested_delete_inside_suppressed_region(self):
        out = self.run("<r><a><a><b/></a></a></r>", "delete $a//a")
        assert out == "<r/>"

    def test_text_suppressed_with_subtree(self):
        out = self.run("<r><a>secret</a><b>kept</b></r>", "delete $a/a")
        assert out == "<r><b>kept</b></r>"

    def test_attributes_preserved_through_rename(self):
        out = self.run('<r><a k="v"/></r>', "rename $a/a as b")
        assert out == '<r><b k="v"/></r>'

    def test_qualifier_known_at_start_element(self):
        # The qualifier depends on the subtree (descendant test), yet
        # delete decides at the opening tag — only possible because Ld
        # was computed in pass 1.
        out = self.run(
            "<r><a><x><deep/></x></a><a><x/></a></r>",
            "delete $a/a[x/deep]",
        )
        assert out == "<r><a><x/></a></r>"


class TestFileInterface:
    def test_file_to_file(self, tmp_path):
        doc = parse(DOC)
        in_path = str(tmp_path / "in.xml")
        out_path = str(tmp_path / "out.xml")
        write_file(doc, in_path)
        query = TransformQuery(parse_update("delete $a//price"))
        transform_sax_file(in_path, query, out_path)
        result = parse_file(out_path)
        assert deep_equal(result, transform_copy_update(doc, query))

    def test_file_to_string(self, tmp_path):
        doc = parse(DOC)
        in_path = str(tmp_path / "in.xml")
        write_file(doc, in_path)
        query = TransformQuery(parse_update("rename $a//pname as name"))
        text = transform_sax_file(in_path, query)
        assert deep_equal(parse(text), transform_copy_update(doc, query))

    def test_event_stream_output(self):
        doc = parse(DOC)
        query = TransformQuery(parse_update("delete $a//price"))
        events = transform_sax_events(lambda: tree_to_events(doc), query)
        from repro.xmltree import events_to_tree

        assert deep_equal(events_to_tree(events), transform_copy_update(doc, query))


class TestCursorAlignment:
    """The alignment invariant: pass 2 consumes exactly the ids pass 1
    assigned, in the same order — even under heavy branching."""

    @settings(max_examples=100, deadline=None)
    @given(
        tree=trees(),
        query=xpath_queries(),
        kind=st.sampled_from(["insert", "delete", "replace", "rename"]),
    )
    def test_ld_fully_consumed(self, tree, query, kind):
        target = ("$a" + query) if query.startswith("//") else f"$a/{query}"
        text = {
            "insert": f"insert <n/> into {target}",
            "delete": f"delete {target}",
            "replace": f"replace {target} with <n/>",
            "rename": f"rename {target} as renamed",
        }[kind]
        try:
            transform_query = TransformQuery(parse_update(text))
            selecting = build_selecting_nfa(transform_query.path)
            filtering = build_filtering_nfa(transform_query.path)
        except UnsupportedPathError:
            return
        ld = pass1_collect_ld(tree_to_events(tree), filtering)
        events = list(
            pass2_transform(tree_to_events(tree), selecting, transform_query, ld)
        )
        assert events, "pass 2 must always produce a document"
        # Equivalence with the reference doubles as the alignment check:
        # a cursor slip would misread qualifier values and diverge.
        from repro.xmltree import events_to_tree

        result = events_to_tree(events)
        expected = transform_copy_update(tree, transform_query)
        assert deep_equal(result, expected)
