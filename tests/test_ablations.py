"""The ablation variants must be semantically identical to the originals."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.transform import TransformQuery, transform_copy_update
from repro.transform.ablations import (
    transform_naive_indexed,
    transform_topdown_no_pruning,
)
from repro.updates import parse_update
from repro.xmltree import deep_equal, parse

from tests.strategies import trees, xpath_queries
from repro.xpath.normalize import UnsupportedPathError


@pytest.fixture
def doc():
    return parse(
        "<db><part><pname>kb</pname><supplier><price>12</price></supplier></part>"
        "<part><pname>m</pname><supplier><price>8</price></supplier></part></db>"
    )


@pytest.mark.parametrize(
    "update_text",
    [
        "delete $a//price",
        "insert <x/> into $a/part[pname = 'kb']",
        "replace $a//supplier with <gone/>",
        "rename $a/part as item",
    ],
)
def test_variants_match_reference(doc, update_text):
    query = TransformQuery(parse_update(update_text))
    expected = transform_copy_update(doc, query)
    assert deep_equal(transform_topdown_no_pruning(doc, query), expected)
    assert deep_equal(transform_naive_indexed(doc, query), expected)


@settings(max_examples=60, deadline=None)
@given(
    tree=trees(),
    query_text=xpath_queries(),
    kind=st.sampled_from(["insert", "delete"]),
)
def test_variants_match_reference_property(tree, query_text, kind):
    target = ("$a" + query_text) if query_text.startswith("//") else f"$a/{query_text}"
    text = f"insert <n/> into {target}" if kind == "insert" else f"delete {target}"
    query = TransformQuery(parse_update(text))
    expected = transform_copy_update(tree, query)
    try:
        no_pruning = transform_topdown_no_pruning(tree, query)
    except UnsupportedPathError:
        return
    assert deep_equal(no_pruning, expected)
    assert deep_equal(transform_naive_indexed(tree, query), expected)
