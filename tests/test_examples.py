"""The examples are part of the public contract: each must run clean.

Executed in-process (import as modules, call main) so failures give
real tracebacks; the streaming example is pointed at a tiny factor.
"""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def run_example(name: str, argv=None, capsys=None):
    old_argv = sys.argv
    sys.argv = [name] + (argv or [])
    try:
        runpy.run_path(str(EXAMPLES / name), run_name="__main__")
    finally:
        sys.argv = old_argv


def test_quickstart(capsys):
    run_example("quickstart.py")
    out = capsys.readouterr().out
    assert "never modified" in out


def test_security_views(capsys):
    run_example("security_views.py")
    out = capsys.readouterr().out
    assert "views were virtual" in out
    assert "emea-analysts" in out


def test_hypothetical_queries(capsys):
    run_example("hypothetical_queries.py")
    out = capsys.readouterr().out
    assert "bidders remain" in out
    assert "schema migration preview" in out


def test_virtual_view_updates(capsys):
    run_example("virtual_view_updates.py")
    out = capsys.readouterr().out
    assert "compile-time" in out
    assert "topDown" in out  # the Q3 composed query shows the call


def test_view_server(capsys):
    run_example("view_server.py")
    out = capsys.readouterr().out
    assert "result cache" in out
    assert "committed catalog v2" in out
    assert "staged preview" in out


def test_streaming_large_documents(capsys):
    run_example("streaming_large_documents.py", argv=["0.002"])
    out = capsys.readouterr().out
    assert "twoPassSAX" in out
    assert "memory ratio" in out


def test_service_client(capsys):
    run_example("service_client.py")
    out = capsys.readouterr().out
    assert "8 concurrent clients, identical query" in out
    assert "typed error over the wire" in out
    assert "server shut down gracefully" in out
