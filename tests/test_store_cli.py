"""The ``repro store`` CLI: state-directory round trips and the
exit-code contract (2 + one-line message for user mistakes).

Each ``cli.main`` call simulates one process: state must survive purely
through the state directory, like real invocations.
"""

import json

import pytest

from repro import cli
from repro.store.state import MANIFEST_NAME

CATALOG = (
    "<db><part><pname>kb</pname>"
    "<supplier><sname>HP</sname><price>12</price><country>A</country></supplier>"
    "<supplier><sname>Dell</sname><price>20</price><country>B</country></supplier>"
    "</part></db>"
)

HIDE_A = (
    'transform copy $a := doc("db") modify do '
    "delete $a//supplier[country = 'A']/price return $a"
)
ANONYMIZE = (
    'transform copy $a := doc("public") modify do '
    "rename $a//sname as vendor return $a"
)


@pytest.fixture
def state(tmp_path):
    source = tmp_path / "catalog.xml"
    source.write_text(CATALOG, encoding="utf-8")
    state_dir = str(tmp_path / "store-state")
    assert cli.main(
        ["store", "load", "-n", "db", "-i", str(source), "--state", state_dir]
    ) == 0
    return state_dir


def _store(args, state_dir):
    return cli.main(["store"] + args + ["--state", state_dir])


class TestRoundTrip:
    def test_load_defview_query(self, state, capsys):
        assert _store(["defview", "-n", "public", "-b", "db", "-t", HIDE_A], state) == 0
        assert _store(
            ["defview", "-n", "partners", "-b", "public", "-t", ANONYMIZE], state
        ) == 0
        capsys.readouterr()
        assert _store(
            ["query", "-n", "partners", "-u", "for $x in part/supplier return $x"],
            state,
        ) == 0
        out = capsys.readouterr().out
        assert "<vendor>HP</vendor>" in out
        assert "<price>12</price>" not in out   # hidden by the public layer
        assert "<price>20</price>" in out       # country B stays visible

    def test_commit_bumps_version_and_changes_answers(self, state, capsys):
        assert _store(["defview", "-n", "public", "-b", "db", "-t", HIDE_A], state) == 0
        assert _store(
            [
                "commit", "-n", "db", "-t",
                'transform copy $a := doc("db") modify do '
                "delete $a//supplier[country = 'B'] return $a",
            ],
            state,
        ) == 0
        assert "now v2" in capsys.readouterr().out
        assert _store(
            ["query", "-n", "public", "-u", "for $x in part/supplier return $x"],
            state,
        ) == 0
        out = capsys.readouterr().out
        assert "Dell" not in out and "HP" in out

    def test_stage_query_staged_rollback(self, state, capsys):
        stage_transform = (
            'transform copy $a := doc("db") modify do '
            "delete $a//price return $a"
        )
        assert _store(["stage", "-n", "db", "-t", stage_transform], state) == 0
        capsys.readouterr()
        assert _store(
            ["query", "-n", "db", "-u", "for $x in part/supplier return $x",
             "--staged"],
            state,
        ) == 0
        assert "price" not in capsys.readouterr().out
        assert _store(
            ["query", "-n", "db", "-u", "for $x in part/supplier return $x"], state
        ) == 0
        assert "price" in capsys.readouterr().out  # nothing committed
        assert _store(["rollback", "-n", "db"], state) == 0
        capsys.readouterr()
        # Staging area now empty: a bare commit is a true no-op that
        # leaves the version where it was.
        assert _store(["commit", "-n", "db"], state) == 0
        assert "now v1" in capsys.readouterr().out

    def test_stat(self, state, capsys):
        assert _store(["defview", "-n", "public", "-b", "db", "-t", HIDE_A], state) == 0
        capsys.readouterr()
        assert _store(["stat"], state) == 0
        out = capsys.readouterr().out
        assert "document 'db': v1" in out
        assert "view 'public': over 'db'" in out

    def test_manifest_is_json(self, state, tmp_path):
        manifest = json.loads(
            (tmp_path / "store-state" / MANIFEST_NAME).read_text(encoding="utf-8")
        )
        assert manifest["documents"]["db"]["version"] == 1

    def test_stat_on_empty_store(self, tmp_path, capsys):
        assert _store(["stat"], str(tmp_path / "missing")) == 0
        assert "empty" in capsys.readouterr().out


class TestExitCodes:
    def test_unknown_target(self, state, capsys):
        assert _store(
            ["query", "-n", "ghost", "-u", "for $x in a return $x"], state
        ) == 2
        assert "repro: unknown document or view 'ghost'" in capsys.readouterr().err

    def test_missing_input_file(self, tmp_path, capsys):
        code = cli.main(
            ["store", "load", "-n", "db", "-i", str(tmp_path / "no.xml"),
             "--state", str(tmp_path / "s")]
        )
        assert code == 2
        assert "repro:" in capsys.readouterr().err

    def test_bad_transform_syntax(self, state, capsys):
        assert _store(
            ["defview", "-n", "v", "-b", "db", "-t", "not a transform"], state
        ) == 2
        assert "repro:" in capsys.readouterr().err

    def test_stage_against_view_names_the_document(self, state, capsys):
        assert _store(["defview", "-n", "public", "-b", "db", "-t", HIDE_A], state) == 0
        assert _store(
            ["stage", "-n", "public", "-t", HIDE_A], state
        ) == 2
        err = capsys.readouterr().err
        assert "is a view" in err and "'db'" in err

    def test_duplicate_view(self, state, capsys):
        assert _store(["defview", "-n", "public", "-b", "db", "-t", HIDE_A], state) == 0
        assert _store(["defview", "-n", "public", "-b", "db", "-t", HIDE_A], state) == 2
        assert "already in use" in capsys.readouterr().err
