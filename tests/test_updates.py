"""Unit tests for update operations, their parser, and in-place apply."""

import pytest

from repro.updates import (
    Delete,
    Insert,
    Rename,
    Replace,
    apply_update,
    parse_update,
)
from repro.xmltree import deep_copy, deep_equal, element, parse, serialize
from repro.xpath import parse_xpath
from repro.xpath.lexer import XPathSyntaxError


@pytest.fixture
def doc():
    return parse(
        "<db>"
        "<part><pname>kb</pname><supplier><price>12</price></supplier></part>"
        "<part><pname>mouse</pname><supplier><price>8</price></supplier></part>"
        "</db>"
    )


class TestParsing:
    def test_insert(self):
        update = parse_update("insert <supplier><sname>HP</sname></supplier> into $a//part")
        assert isinstance(update, Insert)
        assert str(update.path) == "//part"
        assert update.content.label == "supplier"

    def test_insert_without_variable(self):
        update = parse_update("insert <x/> into part/supplier")
        assert isinstance(update, Insert)

    def test_delete(self):
        update = parse_update("delete $a//price")
        assert isinstance(update, Delete)
        assert str(update.path) == "//price"

    def test_delete_with_qualifier(self):
        update = parse_update("delete $a//supplier[country = 'A']/price")
        assert isinstance(update, Delete)

    def test_replace(self):
        update = parse_update("replace $a//price with <price>0</price>")
        assert isinstance(update, Replace)
        assert update.content.own_text() == "0"

    def test_rename(self):
        update = parse_update("rename $a//pname as name")
        assert isinstance(update, Rename)
        assert update.new_label == "name"

    def test_str_round_trip(self):
        for text in [
            "insert <x/> into $a//part",
            "delete $a//price",
            "replace $a/part with <y>1</y>",
            "rename $a/part as item",
        ]:
            update = parse_update(text)
            again = parse_update(str(update))
            assert type(again) is type(update)
            assert again.path == update.path

    @pytest.mark.parametrize(
        "bad",
        [
            "",
            "frobnicate $a/x",
            "insert <x/> into",
            "insert <x> into $a/y",
            "insert x into $a/y",
            "delete",
            "delete $a",
            "replace $a/x with",
            "replace $a/x with <y/> trailing",
            "rename $a/x",
            "rename $a/x as",
            "delete $a/x extra",
        ],
    )
    def test_malformed(self, bad):
        with pytest.raises(XPathSyntaxError):
            parse_update(bad)

    def test_content_with_keyword_text(self):
        # 'into' inside the element literal must not confuse the parser.
        update = parse_update("insert <note>going into detail</note> into $a/part")
        assert update.content.own_text() == "going into detail"

    def test_replace_with_keyword_in_qualifier_string(self):
        update = parse_update("replace $a/part[pname = 'with'] with <x/>")
        assert isinstance(update, Replace)


class TestApply:
    def test_delete_removes_subtrees(self, doc):
        apply_update(doc, parse_update("delete $a//price"))
        assert "price" not in serialize(doc)
        assert serialize(doc).count("<supplier/>") == 2

    def test_delete_no_match_is_noop(self, doc):
        before = serialize(doc)
        apply_update(doc, parse_update("delete $a//zzz"))
        assert serialize(doc) == before

    def test_insert_appends_as_last_child(self, doc):
        apply_update(doc, parse_update("insert <country>US</country> into $a//supplier"))
        for part in doc.children_labeled("part"):
            supplier = part.first("supplier")
            assert supplier.children[-1].label == "country"

    def test_insert_copies_are_independent(self, doc):
        apply_update(doc, parse_update("insert <c/> into $a//supplier"))
        suppliers = [p.first("supplier") for p in doc.children_labeled("part")]
        assert suppliers[0].children[-1] is not suppliers[1].children[-1]

    def test_replace(self, doc):
        apply_update(doc, parse_update("replace $a//price with <price>0</price>"))
        prices = [n.own_text() for n in doc.descendants() if n.label == "price"]
        assert prices == ["0", "0"]

    def test_rename(self, doc):
        apply_update(doc, parse_update("rename $a//pname as name"))
        assert [n.label for n in doc.children[0].child_elements()] == ["name", "supplier"]

    def test_delete_nested_matches_topmost_wins(self):
        doc = parse("<r><a><a><b/></a></a></r>")
        apply_update(doc, parse_update("delete $a//a"))
        assert serialize(doc) == "<r/>"

    def test_insert_applies_at_nested_matches(self):
        doc = parse("<r><a><a/></a></r>")
        apply_update(doc, parse_update("insert <m/> into $a//a"))
        assert serialize(doc) == "<r><a><a><m/></a><m/></a></r>"

    def test_rename_applies_at_nested_matches(self):
        doc = parse("<r><a><a/></a></r>")
        apply_update(doc, parse_update("rename $a//a as b"))
        assert serialize(doc) == "<r><b><b/></b></r>"

    def test_replace_nested_matches_topmost_wins(self):
        doc = parse("<r><a><a/></a></r>")
        apply_update(doc, parse_update("replace $a//a with <x/>"))
        assert serialize(doc) == "<r><x/></r>"

    def test_matches_computed_before_update(self):
        # Inserting <a/> into matches of //a must not cascade into the
        # freshly inserted elements.
        doc = parse("<r><a/></r>")
        apply_update(doc, parse_update("insert <a/> into $a//a"))
        assert serialize(doc) == "<r><a><a/></a></r>"

    def test_qualifier_based_delete(self):
        doc = parse(
            "<db><s><country>A</country><price>1</price></s>"
            "<s><country>B</country><price>2</price></s></db>"
        )
        apply_update(doc, parse_update("delete $a/s[country = 'A']/price"))
        texts = serialize(doc)
        assert "<price>1</price>" not in texts
        assert "<price>2</price>" in texts

    def test_returns_same_root(self, doc):
        assert apply_update(doc, parse_update("delete $a//price")) is doc

    def test_original_preserved_under_copy(self, doc):
        snapshot = deep_copy(doc)
        apply_update(snapshot, parse_update("delete $a//price"))
        assert "price" in serialize(doc)
        assert not deep_equal(doc, snapshot)
