"""Tests for the selecting NFA: construction, nextStates, and agreement
with the reference evaluator (the paper's r[[p]] semantics)."""

import pytest
from hypothesis import given, settings

from repro.automata import build_selecting_nfa
from repro.automata.core import TEST_DOS, TEST_LABEL, TEST_START, TEST_WILDCARD
from repro.xmltree import parse
from repro.xpath import evaluate, parse_xpath
from repro.xpath.normalize import UnsupportedPathError

from tests.strategies import trees, xpath_queries


@pytest.fixture
def doc():
    return parse(
        """
        <db>
          <part>
            <pname>keyboard</pname>
            <supplier><sname>HP</sname><price>12</price><country>US</country></supplier>
            <supplier><sname>Dell</sname><price>20</price><country>A</country></supplier>
            <part>
              <pname>key</pname>
              <supplier><sname>Acme</sname><price>16</price><country>B</country></supplier>
            </part>
          </part>
          <part>
            <pname>mouse</pname>
            <supplier><sname>HP</sname><price>8</price><country>A</country></supplier>
          </part>
        </db>
        """
    )


class TestConstruction:
    def test_fig5_shape(self):
        # //part[q1]//part[q2] — Fig. 5: 5 states, two dos loops.
        nfa = build_selecting_nfa(
            parse_xpath(
                "//part[pname = 'keyboard']"
                "//part[not(supplier/sname = 'HP') and not(supplier/price < 15)]"
            )
        )
        tests = [s.test for s in nfa.states]
        assert tests == [TEST_START, TEST_DOS, TEST_LABEL, TEST_DOS, TEST_LABEL]
        assert nfa.states[4].is_final
        assert nfa.states[2].has_qualifier and nfa.states[4].has_qualifier
        assert not nfa.states[1].has_qualifier

    def test_linear_size(self):
        nfa = build_selecting_nfa(parse_xpath("a/b/c/d/e"))
        assert nfa.size() == 6  # start + 5 steps

    def test_wildcard_state(self):
        nfa = build_selecting_nfa(parse_xpath("a/*"))
        assert nfa.states[2].test == TEST_WILDCARD

    def test_empty_path_rejected(self):
        with pytest.raises(ValueError):
            build_selecting_nfa(parse_xpath("."))

    def test_dos_self_qualifier_rejected(self):
        with pytest.raises(UnsupportedPathError):
            build_selecting_nfa(parse_xpath("a//.[b]"))

    def test_attr_selecting_path_rejected(self):
        with pytest.raises(UnsupportedPathError):
            build_selecting_nfa(parse_xpath("a/@id"))

    def test_initial_states_include_dos_closure(self):
        nfa = build_selecting_nfa(parse_xpath("//part"))
        assert nfa.initial_states() == frozenset({0, 1})

    def test_initial_states_child_only(self):
        nfa = build_selecting_nfa(parse_xpath("part"))
        assert nfa.initial_states() == frozenset({0})


class TestRuns:
    def test_example_3_2_state_walk(self, doc):
        # Mirrors Example 6.1: at the first part under the root the
        # state set is {s1, s2, s3}.
        nfa = build_selecting_nfa(
            parse_xpath(
                "//part[pname = 'keyboard']"
                "//part[not(supplier/sname = 'HP') and not(supplier/price < 15)]"
            )
        )
        first_part = doc.children[0]
        initial = nfa.initial_states_for(doc)
        assert initial == frozenset({0, 1})
        states = nfa.next_states(initial, "part", nfa.make_checker(first_part))
        assert states == frozenset({1, 2, 3})

    def test_pruning_empty_states(self, doc):
        nfa = build_selecting_nfa(parse_xpath("part/supplier"))
        pname = doc.children[0].children[0]
        states = nfa.next_states(
            nfa.next_states(nfa.initial_states(), "part", nfa.make_checker(doc.children[0])),
            "pname",
            nfa.make_checker(pname),
        )
        assert states == frozenset()

    def test_qualifier_filters_state(self, doc):
        nfa = build_selecting_nfa(parse_xpath("part[pname = 'keyboard']"))
        checker_kb = nfa.make_checker(doc.children[0])
        checker_mouse = nfa.make_checker(doc.children[1])
        assert nfa.selects(nfa.next_states(nfa.initial_states(), "part", checker_kb))
        assert not nfa.selects(nfa.next_states(nfa.initial_states(), "part", checker_mouse))

    @pytest.mark.parametrize(
        "expr,expected",
        [
            ("part", 2),
            ("part/supplier", 3),
            ("//part", 3),
            ("//supplier", 4),
            ("part//supplier", 4),
            ("//supplier[price < 15]", 2),
            ("part[pname = 'keyboard']//part", 1),
            ("//part[not(supplier/country = 'A')]", 1),
            ("part/*", 6),
            ("//nothing", 0),
            ("a/b/c", 0),
        ],
    )
    def test_run_select_counts(self, doc, expr, expected):
        nfa = build_selecting_nfa(parse_xpath(expr))
        assert len(nfa.run_select(doc)) == expected

    def test_run_select_matches_reference_order(self, doc):
        path = parse_xpath("//supplier[country = 'A']")
        nfa = build_selecting_nfa(path)
        via_nfa = nfa.run_select(doc)
        via_reference = evaluate(doc, path)
        assert [id(n) for n in via_nfa] == [id(n) for n in via_reference]

    def test_context_qualifier_gates_everything(self, doc):
        nfa = build_selecting_nfa(parse_xpath(".[zzz]/part"))
        assert nfa.initial_states_for(doc) == frozenset()
        assert nfa.run_select(doc) == []


class TestPropertyAgainstReference:
    @settings(max_examples=150, deadline=None)
    @given(tree=trees(), query=xpath_queries())
    def test_nfa_matches_reference(self, tree, query):
        path = parse_xpath(query)
        try:
            nfa = build_selecting_nfa(path)
        except UnsupportedPathError:
            return  # outside the automaton core; reference-only
        via_nfa = nfa.run_select(tree)
        via_reference = evaluate(tree, path)
        assert [id(n) for n in via_nfa] == [id(n) for n in via_reference]
