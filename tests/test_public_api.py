"""The public API surface: everything advertised in ``repro.__all__``
must import, and the README's code snippets must work verbatim."""

import pytest

import repro


class TestSurface:
    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), f"repro.{name} missing"

    def test_version(self):
        assert repro.__version__ == "1.6.0"

    def test_readme_quickstart(self):
        doc = repro.parse("<db><part><pname>kb</pname><price>12</price></part></db>")
        qt = repro.parse_transform_query(
            'transform copy $a := doc("db") modify do delete $a//price return $a'
        )
        view = repro.transform_topdown(doc, qt)
        assert "price" not in repro.serialize(view)
        assert "price" in repro.serialize(doc)

    def test_readme_composition(self):
        doc = repro.parse("<db><part><pname>kb</pname><price>12</price></part></db>")
        qt = repro.parse_transform_query(
            'transform copy $a := doc("db") modify do delete $a//price return $a'
        )
        q = repro.parse_user_query("for $x in part[pname = 'kb']/price return $x")
        qc = repro.compose(q, qt)
        assert repro.evaluate_composed(doc, qc) == []
        assert repro.naive_compose(doc, q, qt) == []

    def test_module_docstring_example(self):
        # The example in repro/__init__.py's docstring.
        doc = repro.parse("<db><part><price>12</price></part></db>")
        qt = repro.parse_transform_query(
            'transform copy $a := doc("db") modify do delete $a//price return $a'
        )
        view = repro.transform_topdown(doc, qt)
        assert "price" not in repro.serialize(view)
        assert "price" in repro.serialize(doc)

    def test_readme_engine_api(self):
        # The "Engine API" README section.
        engine = repro.Engine()
        doc = repro.parse("<db><part><price>12</price></part></db>")
        strip = engine.prepare_transform(
            'transform copy $a := doc("db") modify do delete $a//price return $a'
        )
        view = strip.run(doc)
        assert "price" not in repro.serialize(view)
        assert "strategy:" in strip.explain(doc)
        audit = strip.then(engine.prepare_transform(
            'transform copy $a := doc("db") modify do '
            "insert <audited/> into $a/part return $a"
        ))
        assert "<audited/>" in repro.serialize(audit.run(doc))
        rows = engine.prepare_composed("for $x in part return $x", strip).run(doc)
        assert len(rows) == 1


class TestEdgeSemantics:
    """Odd-but-legal inputs every layer must agree on."""

    def test_numeric_text_with_whitespace(self):
        doc = repro.parse("<r><x> 5 </x></r>")
        nodes = repro.evaluate(doc, repro.parse_xpath("x[. = 5]"))
        assert len(nodes) == 1  # float(' 5 ') parses

    def test_float_comparison(self):
        doc = repro.parse("<r><x>5.5</x></r>")
        assert repro.evaluate(doc, repro.parse_xpath("x[. > 5.4]"))
        assert not repro.evaluate(doc, repro.parse_xpath("x[. > 5.6]"))

    def test_empty_element_own_text(self):
        doc = repro.parse("<r><x/></r>")
        assert repro.evaluate(doc, repro.parse_xpath("x[. = '']"))

    def test_unicode_content(self):
        doc = repro.parse("<r><x>héllo wörld — ünïcode</x></r>")
        nodes = repro.evaluate(doc, repro.parse_xpath("x[. = 'héllo wörld — ünïcode']"))
        assert len(nodes) == 1
        assert "héllo" in repro.serialize(doc)

    def test_unicode_through_sax(self, tmp_path):
        doc = repro.parse("<r><x>héllo</x><price>1</price></r>")
        path = str(tmp_path / "u.xml")
        repro.write_file(doc, path)
        qt = repro.parse_transform_query(
            'transform copy $a := doc("f") modify do delete $a//price return $a'
        )
        text = repro.transform_sax_file(path, qt)
        assert "héllo" in text and "price" not in text

    def test_label_equal_to_keyword(self):
        # Elements named like query keywords must still parse as labels.
        doc = repro.parse("<r><label>x</label><insert>y</insert></r>")
        assert repro.evaluate(doc, repro.parse_xpath("label"))
        assert repro.evaluate(doc, repro.parse_xpath("insert"))

    def test_update_hits_root_children_only_below(self):
        # The root element itself is never in r[[p]].
        doc = repro.parse("<part><part/></part>")
        qt = repro.TransformQuery(repro.parse_update("delete $a//part"))
        result = repro.transform_topdown(doc, qt)
        assert repro.serialize(result) == "<part/>"
