"""Tests for the streaming selector and the streaming composition
pipeline (the future-work extension)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compose import naive_compose
from repro.streaming import (
    stream_compose,
    stream_compose_file,
    stream_select,
    stream_select_file,
)
from repro.transform import TransformQuery
from repro.updates import parse_update
from repro.xmark import generate
from repro.xmark.queries import (
    composition_pairs,
    insert_transform,
    user_query_for,
    EMBEDDED_PATHS,
    QUERY_IDS,
)
from repro.xmltree import Element, deep_equal, parse, serialize, tree_to_events, write_file
from repro.xpath import evaluate, parse_xpath
from repro.xpath.normalize import UnsupportedPathError
from repro.xquery import parse_user_query

from tests.strategies import trees, xpath_queries


def tree_source(tree):
    return lambda: tree_to_events(tree)


class TestStreamSelect:
    def test_simple_selection(self):
        doc = parse("<db><part><pname>kb</pname></part><part/></db>")
        matches = list(stream_select(tree_source(doc), parse_xpath("part")))
        assert len(matches) == 2
        assert serialize(matches[0]) == "<part><pname>kb</pname></part>"

    def test_qualifier_selection(self):
        doc = parse("<db><part><pname>kb</pname></part><part><pname>m</pname></part></db>")
        matches = list(
            stream_select(tree_source(doc), parse_xpath("part[pname = 'kb']"))
        )
        assert len(matches) == 1

    def test_descendant_selection_document_order(self):
        doc = parse("<r><a><a><a/></a></a><a/></r>")
        matches = list(stream_select(tree_source(doc), parse_xpath("//a")))
        expected = evaluate(doc, parse_xpath("//a"))
        assert len(matches) == len(expected)
        for got, want in zip(matches, expected):
            assert deep_equal(got, want)

    def test_nested_matches_each_yield(self):
        doc = parse("<r><a><b/><a><c/></a></a></r>")
        matches = list(stream_select(tree_source(doc), parse_xpath("//a")))
        assert [serialize(m) for m in matches] == [
            "<a><b/><a><c/></a></a>",
            "<a><c/></a>",
        ]

    def test_no_matches(self):
        doc = parse("<r><a/></r>")
        assert list(stream_select(tree_source(doc), parse_xpath("zzz"))) == []

    def test_from_file(self, tmp_path):
        doc = parse("<db><part><pname>kb</pname></part></db>")
        path = str(tmp_path / "f.xml")
        write_file(doc, path)
        matches = list(stream_select_file(path, parse_xpath("part/pname")))
        assert len(matches) == 1 and matches[0].own_text() == "kb"

    @pytest.mark.parametrize("uid", QUERY_IDS)
    def test_workload_matches_reference(self, uid):
        doc = generate(0.001, seed=9)
        path = parse_xpath(EMBEDDED_PATHS[uid])
        expected = evaluate(doc, path)
        matches = list(stream_select(tree_source(doc), path))
        assert len(matches) == len(expected)
        for got, want in zip(matches, expected):
            assert deep_equal(got, want)

    @settings(max_examples=100, deadline=None)
    @given(tree=trees(), query=xpath_queries())
    def test_property_matches_reference(self, tree, query):
        path = parse_xpath(query)
        try:
            matches = list(stream_select(tree_source(tree), path))
        except UnsupportedPathError:
            return
        expected = evaluate(tree, path)
        assert len(matches) == len(expected)
        for got, want in zip(matches, expected):
            assert deep_equal(got, want)


class TestStreamCompose:
    def test_paper_pairs_match_naive(self):
        doc = generate(0.001, seed=9)
        for _tid, _uid, transform_query, user_query in composition_pairs():
            expected = naive_compose(doc, user_query, transform_query)
            actual = list(stream_compose(tree_source(doc), user_query, transform_query))
            assert len(actual) == len(expected)
            for got, want in zip(actual, expected):
                assert deep_equal(got, want)

    def test_where_clause_applies(self):
        doc = parse(
            "<db><part><pname>kb</pname><price>5</price></part>"
            "<part><pname>m</pname><price>50</price></part></db>"
        )
        qt = TransformQuery(parse_update("insert <tag/> into $a/part"))
        q = parse_user_query("for $x in part where $x/price < 10 return $x/pname")
        result = list(stream_compose(tree_source(doc), q, qt))
        assert len(result) == 1 and result[0].own_text() == "kb"

    def test_template_applies(self):
        doc = parse("<db><part><pname>kb</pname></part></db>")
        qt = TransformQuery(parse_update("delete $a//zzz"))
        q = parse_user_query("for $x in part return <row>{ $x/pname }</row>")
        result = list(stream_compose(tree_source(doc), q, qt))
        assert serialize(result[0]) == "<row><pname>kb</pname></row>"

    def test_transform_visible_to_user_query(self):
        doc = parse("<db><part><price>5</price></part></db>")
        qt = TransformQuery(parse_update("delete $a//price"))
        q = parse_user_query("for $x in part/price return $x")
        assert list(stream_compose(tree_source(doc), q, qt)) == []

    def test_insert_visible_to_user_query(self):
        doc = parse("<db><part/></db>")
        qt = TransformQuery(parse_update("insert <flag/> into $a/part"))
        q = parse_user_query("for $x in part/flag return $x")
        assert len(list(stream_compose(tree_source(doc), q, qt))) == 1

    def test_from_file(self, tmp_path):
        doc = generate(0.001, seed=9)
        path = str(tmp_path / "site.xml")
        write_file(doc, path)
        qt = insert_transform("U1")
        q = user_query_for("U2")
        expected = naive_compose(doc, q, qt)
        actual = list(stream_compose_file(path, q, qt))
        assert len(actual) == len(expected)
        for got, want in zip(actual, expected):
            assert deep_equal(got, want)

    @settings(max_examples=60, deadline=None)
    @given(
        tree=trees(),
        update_path=xpath_queries(),
        user_path=xpath_queries(),
        kind=st.sampled_from(["insert", "delete"]),
    )
    def test_property_matches_naive(self, tree, update_path, user_path, kind):
        target = ("$a" + update_path) if update_path.startswith("//") else f"$a/{update_path}"
        text = f"insert <n/> into {target}" if kind == "insert" else f"delete {target}"
        try:
            qt = TransformQuery(parse_update(text))
            q = parse_user_query(f"for $x in {user_path} return $x")
            actual = list(stream_compose(tree_source(tree), q, qt))
        except UnsupportedPathError:
            return
        expected = naive_compose(tree, q, qt)
        assert len(actual) == len(expected)
        for got, want in zip(actual, expected):
            if isinstance(got, Element) and isinstance(want, Element):
                assert deep_equal(got, want)
            else:
                assert got == want
