"""Edge cases of the value semantics: ``compare_value``, ``eval_values``
with attributes, and the document-order invariant of ``evaluate``.

The comparison rules (module docstring of :mod:`repro.xpath.evaluator`):
a string literal compares as a string, a number literal numerically,
and values that do not parse as numbers never match a numeric literal —
not even under ``!=``.
"""

import pytest
from hypothesis import given, settings

from repro.xmltree import parse
from repro.xpath import parse_xpath
from repro.xpath.evaluator import compare_value, eval_values, evaluate
from repro.xpath.lexer import XPathSyntaxError
from repro.xpath.normalize import UnsupportedPathError

from tests.strategies import trees, xpath_queries


class TestCompareValue:
    @pytest.mark.parametrize("op", ["=", "!=", "<", "<=", ">", ">="])
    def test_non_numeric_text_never_matches_numeric_literal(self, op):
        assert compare_value("abc", op, 5.0) is False

    def test_numeric_literal_compares_numerically(self):
        assert compare_value("12", ">", 5.0)       # 12 > 5, not "12" > "5"
        assert compare_value(" 5 ", "=", 5.0)      # float() strips whitespace
        assert compare_value("5.50", "=", 5.5)

    def test_string_literal_compares_lexicographically(self):
        assert compare_value("12", "<", "5")       # "1" < "5" as strings
        assert not compare_value("12", "=", "12.0")

    def test_empty_string_vs_numeric(self):
        assert compare_value("", "=", 0.0) is False
        assert compare_value("", "!=", 0.0) is False

    def test_unknown_operator(self):
        with pytest.raises(ValueError):
            compare_value("1", "~", "1")


class TestEvalValuesAttributes:
    DOC = parse(
        "<db>"
        "<a id='1'><b/></a>"
        "<a><b/></a>"               # no id attribute
        "<a id='3'/>"
        "</db>"
    )

    def test_missing_attributes_contribute_nothing(self):
        assert eval_values(self.DOC, parse_xpath("a/@id")) == ["1", "3"]

    def test_attr_on_empty_selection(self):
        assert eval_values(self.DOC, parse_xpath("zzz/@id")) == []

    def test_non_attr_path_returns_nodes(self):
        values = eval_values(self.DOC, parse_xpath("a/b"))
        assert [v.label for v in values] == ["b", "b"]

    def test_attribute_qualifier_existence_and_comparison(self):
        assert len(evaluate(self.DOC, parse_xpath("a[@id]"))) == 2
        assert len(evaluate(self.DOC, parse_xpath("a[@id = '3']"))) == 1
        # A missing attribute fails every comparison, including !=.
        assert len(evaluate(self.DOC, parse_xpath("a[@id != '3']"))) == 1

    def test_evaluate_rejects_attribute_final_selecting_path(self):
        with pytest.raises(ValueError):
            evaluate(self.DOC, parse_xpath("a/@id"))


class TestDocumentOrder:
    def _preorder_positions(self, root):
        return {id(node): index for index, node in enumerate(root.descendants_or_self())}

    def test_descendant_step_interleaving(self):
        # After //, children of later branches must not precede earlier
        # branches' descendants.
        doc = parse(
            "<r><a><b><c>1</c></b></a><a><b><c>2</c></b></a><c>3</c></r>"
        )
        nodes = evaluate(doc, parse_xpath("//c"))
        texts = [n.own_text() for n in nodes]
        assert texts == ["1", "2", "3"]

    def test_no_duplicates_after_nested_descendant(self):
        doc = parse("<r><a><a><b/></a></a></r>")
        nodes = evaluate(doc, parse_xpath("//a//b"))
        assert len(nodes) == 1  # reachable via both a's, reported once

    @settings(max_examples=150, deadline=None)
    @given(trees(), xpath_queries())
    def test_evaluate_returns_document_order(self, tree, query_text):
        try:
            path = parse_xpath(query_text)
            nodes = evaluate(tree, path)
        except (XPathSyntaxError, UnsupportedPathError):
            return  # the random query fell outside the fragment
        positions = self._preorder_positions(tree)
        indices = [positions[id(node)] for node in nodes]
        assert indices == sorted(indices), (
            f"out of document order for {query_text!r}"
        )
        assert len(set(indices)) == len(indices), (
            f"duplicates returned for {query_text!r}"
        )
