"""Integration matrix: composition across the full Fig. 11 workload.

Every workload query as a user query × every update kind as a
transform (embedding a different workload query) on a small XMark
document — 40+ composition instances, each checked against Naive
Composition.  This is the broad-coverage complement to the focused
unit tests in test_compose.py.
"""

import pytest

from repro.compose import compose, evaluate_composed, naive_compose
from repro.xmark import generate
from repro.xmark.queries import (
    QUERY_IDS,
    delete_transform,
    insert_transform,
    rename_transform,
    replace_transform,
    user_query_for,
)
from repro.xmltree import Element, deep_equal, serialize


@pytest.fixture(scope="module")
def doc():
    return generate(0.001, seed=23)


def check(doc, transform_query, user_query):
    expected = naive_compose(doc, user_query, transform_query)
    actual = evaluate_composed(doc, compose(user_query, transform_query))
    assert len(actual) == len(expected), (
        f"arity {len(actual)} vs {len(expected)} for Qt={transform_query} Q={user_query}"
    )
    for got, want in zip(actual, expected):
        if isinstance(got, Element) and isinstance(want, Element):
            assert deep_equal(got, want), (
                f"Qt={transform_query}\nQ={user_query}\n"
                f"got  {serialize(got)}\nwant {serialize(want)}"
            )
        else:
            assert got == want


TRANSFORM_IDS = ["U1", "U3", "U5", "U8", "U9"]
USER_IDS = QUERY_IDS


@pytest.mark.parametrize("user_id", USER_IDS)
@pytest.mark.parametrize("transform_id", TRANSFORM_IDS)
def test_insert_matrix(doc, transform_id, user_id):
    check(doc, insert_transform(transform_id), user_query_for(user_id))


@pytest.mark.parametrize("user_id", USER_IDS)
@pytest.mark.parametrize("transform_id", ["U2", "U4", "U7", "U10"])
def test_delete_matrix(doc, transform_id, user_id):
    check(doc, delete_transform(transform_id), user_query_for(user_id))


@pytest.mark.parametrize("user_id", ["U1", "U4", "U8"])
def test_replace_matrix(doc, user_id):
    check(doc, replace_transform("U3"), user_query_for(user_id))


@pytest.mark.parametrize("user_id", ["U1", "U2", "U3"])
def test_rename_matrix(doc, user_id):
    check(doc, rename_transform("U1", "member"), user_query_for(user_id))
