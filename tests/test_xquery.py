"""Unit tests for the XQuery subset: parser and evaluator."""

import pytest

from repro.xmltree import deep_equal, element, parse, serialize
from repro.xpath import parse_xpath
from repro.xpath.lexer import XPathSyntaxError
from repro.xquery import (
    Compare,
    ElementTemplate,
    Literal,
    PathFrom,
    UserQuery,
    VarRef,
    evaluate_query,
    parse_user_query,
)
from repro.xquery.ast import (
    BoolAnd,
    BoolConst,
    BoolNot,
    BoolOr,
    Conditional,
    ConstTree,
    EmptySeq,
    Exists,
    For,
    Let,
    QualCheck,
    Sequence,
)
from repro.xquery.evaluator import Environment, eval_bool, eval_expr


@pytest.fixture
def doc():
    return parse(
        """
        <site>
          <part><pname>keyboard</pname><supplier><sname>HP</sname><price>12</price></supplier></part>
          <part><pname>mouse</pname><supplier><sname>Dell</sname><price>8</price></supplier></part>
        </site>
        """
    )


class TestParser:
    def test_simple_for_return(self):
        q = parse_user_query("for $x in part/supplier return $x")
        assert q.var == "x"
        assert str(q.path) == "part/supplier"
        assert q.conditions == []
        assert q.template == VarRef("x")

    def test_return_path(self):
        q = parse_user_query("for $x in part return $x/pname")
        assert q.template == PathFrom("x", parse_xpath("pname"))

    def test_where_clause(self):
        q = parse_user_query(
            "for $x in part where $x/pname = 'keyboard' return $x"
        )
        (cond,) = q.conditions
        assert isinstance(cond, Compare)
        assert cond.op == "="
        assert cond.right == Literal("keyboard")

    def test_where_multiple_conditions(self):
        q = parse_user_query(
            "for $x in part where $x/a = '1' and $x/b = '2' return $x"
        )
        assert len(q.conditions) == 2

    def test_where_numeric(self):
        q = parse_user_query("for $x in part where $x/price < 15 return $x")
        (cond,) = q.conditions
        assert cond.right == Literal(15.0)

    def test_template(self):
        q = parse_user_query(
            "for $x in part return <result>{ $x/pname, $x/supplier }</result>"
        )
        assert isinstance(q.template, ElementTemplate)
        assert q.template.label == "result"
        assert len(q.template.parts) == 2

    def test_variable_rooted_source(self):
        q = parse_user_query("for $x in $n/part[pname = 'keyboard']/supplier return $x")
        assert str(q.path) == "part[pname = 'keyboard']/supplier"

    def test_qualified_source_path(self):
        q = parse_user_query("for $x in //part[pname = 'kb'] return $x")
        assert len(q.path.steps) == 2

    @pytest.mark.parametrize(
        "bad",
        [
            "",
            "for x in a return $x",
            "for $x a return $x",
            "for $x in a",
            "for $x in a return",
            "for $x in a where return $x",
            "for $x in a return <r>{ $x }</s>",
            "for $x in a return $y",
            "for $x in a return $x extra",
        ],
    )
    def test_malformed(self, bad):
        with pytest.raises(XPathSyntaxError):
            parse_user_query(bad)


class TestEvaluator:
    def test_for_return_nodes(self, doc):
        q = parse_user_query("for $x in part/supplier return $x")
        result = evaluate_query(doc, q)
        assert len(result) == 2
        assert all(n.label == "supplier" for n in result)

    def test_where_filters(self, doc):
        q = parse_user_query("for $x in part where $x/pname = 'keyboard' return $x")
        result = evaluate_query(doc, q)
        assert len(result) == 1

    def test_where_numeric(self, doc):
        q = parse_user_query("for $x in part/supplier where $x/price < 10 return $x")
        result = evaluate_query(doc, q)
        assert len(result) == 1
        assert result[0].first("sname").own_text() == "Dell"

    def test_template_constructs_elements(self, doc):
        q = parse_user_query("for $x in part return <row>{ $x/pname }</row>")
        result = evaluate_query(doc, q)
        assert len(result) == 2
        assert serialize(result[0]) == "<row><pname>keyboard</pname></row>"

    def test_template_literal_becomes_text(self, doc):
        q = parse_user_query("for $x in part return <row>{ 'hi' }</row>")
        result = evaluate_query(doc, q)
        assert serialize(result[0]) == "<row>hi</row>"

    def test_attribute_path(self):
        root = parse('<r><p id="1"/><p id="2"/></r>')
        q = parse_user_query("for $x in p return $x/@id")
        assert evaluate_query(root, q) == ["1", "2"]

    def test_qualified_source(self, doc):
        q = parse_user_query("for $x in part[pname = 'mouse']/supplier return $x")
        assert len(evaluate_query(doc, q)) == 1

    def test_let_binding(self, doc):
        expr = Let("v", PathFrom(None, parse_xpath("part")), VarRef("v"))
        assert len(eval_expr(expr, Environment(), doc)) == 2

    def test_conditional(self, doc):
        expr = Conditional(
            BoolConst(True), Literal("yes"), Literal("no")
        )
        assert eval_expr(expr, Environment(), doc) == ["yes"]

    def test_sequence_concatenates(self, doc):
        expr = Sequence([Literal("a"), Literal("b")])
        assert eval_expr(expr, Environment(), doc) == ["a", "b"]

    def test_const_tree(self, doc):
        const = element("x", "1")
        assert eval_expr(ConstTree(const), Environment(), doc) == [const]

    def test_empty_seq(self, doc):
        assert eval_expr(EmptySeq(), Environment(), doc) == []

    def test_unbound_variable_raises(self, doc):
        with pytest.raises(NameError):
            eval_expr(VarRef("nope"), Environment(), doc)


class TestBooleans:
    def test_exists(self, doc):
        assert eval_bool(Exists(PathFrom(None, parse_xpath("part"))), Environment(), doc)
        assert not eval_bool(Exists(PathFrom(None, parse_xpath("zzz"))), Environment(), doc)

    def test_compare_existential(self, doc):
        cond = Compare(
            PathFrom(None, parse_xpath("part/pname")), "=", Literal("mouse")
        )
        assert eval_bool(cond, Environment(), doc)

    def test_compare_numeric_coercion(self, doc):
        cond = Compare(
            PathFrom(None, parse_xpath("part/supplier/price")), "<", Literal(10.0)
        )
        assert eval_bool(cond, Environment(), doc)

    def test_compare_numeric_unparseable_false(self, doc):
        cond = Compare(
            PathFrom(None, parse_xpath("part/pname")), "<", Literal(10.0)
        )
        assert not eval_bool(cond, Environment(), doc)

    def test_connectives(self, doc):
        t, f = BoolConst(True), BoolConst(False)
        env = Environment()
        assert eval_bool(BoolAnd(t, t), env, doc)
        assert not eval_bool(BoolAnd(t, f), env, doc)
        assert eval_bool(BoolOr(f, t), env, doc)
        assert not eval_bool(BoolOr(f, f), env, doc)
        assert eval_bool(BoolNot(f), env, doc)

    def test_qual_check(self, doc):
        part = doc.children[0]
        qual = parse_xpath("x[pname = 'keyboard']").steps[0].quals[0]
        env = Environment({"v": [part]})
        assert eval_bool(QualCheck("v", qual), env, doc)

    def test_core_desugaring(self, doc):
        q = parse_user_query("for $x in part where $x/pname = 'mouse' return $x")
        core = q.core()
        assert isinstance(core, For)
        assert isinstance(core.body, Conditional)
