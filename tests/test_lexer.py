"""Unit tests for the shared tokenizer (repro.xpath.lexer)."""

import pytest

from repro.xpath import lexer as lx
from repro.xpath.lexer import Token, TokenStream, XPathSyntaxError, tokenize


def types(source, keywords=None):
    return [t.type for t in tokenize(source, keywords=keywords)][:-1]  # drop EOF


class TestTokens:
    def test_path_symbols(self):
        assert types("a/b//c") == [lx.NAME, lx.SLASH, lx.NAME, lx.DSLASH, lx.NAME]

    def test_brackets_and_parens(self):
        assert types("[()]") == [lx.LBRACKET, lx.LPAREN, lx.RPAREN, lx.RBRACKET]

    def test_braces(self):
        assert types("{}") == [lx.LBRACE, lx.RBRACE]

    def test_at_dot_star_dollar_comma(self):
        assert types("@ . * $ ,") == [lx.AT, lx.DOT, lx.STAR, lx.DOLLAR, lx.COMMA]

    def test_assign(self):
        assert types(":=") == [lx.ASSIGN]

    @pytest.mark.parametrize("op", ["=", "!=", "<", "<=", ">", ">="])
    def test_comparison_operators(self, op):
        tokens = tokenize(f"a {op} 1")
        assert tokens[1].type == lx.OP and tokens[1].value == op

    def test_bang_without_equals_rejected(self):
        with pytest.raises(XPathSyntaxError):
            tokenize("a ! b")

    def test_string_single_and_double(self):
        tokens = tokenize("'one' \"two\"")
        assert [t.value for t in tokens[:-1]] == ["one", "two"]
        assert all(t.type == lx.STRING for t in tokens[:-1])

    def test_unterminated_string(self):
        with pytest.raises(XPathSyntaxError):
            tokenize("'oops")

    def test_numbers(self):
        tokens = tokenize("15 3.14")
        assert [t.value for t in tokens[:-1]] == ["15", "3.14"]
        assert all(t.type == lx.NUMBER for t in tokens[:-1])

    def test_names_with_underscore_and_dash(self):
        tokens = tokenize("open_auction key-word _x")
        assert [t.value for t in tokens[:-1]] == ["open_auction", "key-word", "_x"]

    def test_boolean_words(self):
        assert types("and or not") == [lx.AND, lx.OR, lx.NOT]

    def test_unicode_connectives(self):
        assert types("∧ ∨ ¬") == [lx.AND, lx.OR, lx.NOT]

    def test_keywords_stay_names_when_requested(self):
        tokens = tokenize("and", keywords={"and"})
        assert tokens[0].type == lx.NAME

    def test_positions_recorded(self):
        tokens = tokenize("ab cd")
        assert tokens[0].pos == 0 and tokens[1].pos == 3

    def test_unexpected_character(self):
        with pytest.raises(XPathSyntaxError):
            tokenize("a # b")

    def test_eof_token_always_present(self):
        assert tokenize("")[-1].type == lx.EOF
        assert tokenize("a")[-1].type == lx.EOF


class TestTokenStream:
    def stream(self, source, **kw):
        return TokenStream(tokenize(source, **kw))

    def test_advance_stops_at_eof(self):
        s = self.stream("a")
        assert s.advance().value == "a"
        assert s.advance().type == lx.EOF
        assert s.advance().type == lx.EOF  # idempotent

    def test_peek_does_not_consume(self):
        s = self.stream("a/b")
        assert s.peek().type == lx.SLASH
        assert s.current.value == "a"

    def test_peek_clamps_at_end(self):
        s = self.stream("a")
        assert s.peek(10).type == lx.EOF

    def test_accept_match_and_miss(self):
        s = self.stream("a/b")
        assert s.accept(lx.NAME) is not None
        assert s.accept(lx.NAME) is None  # current is SLASH
        assert s.accept(lx.SLASH, "/") is not None

    def test_expect_raises_with_context(self):
        s = self.stream("a")
        with pytest.raises(XPathSyntaxError) as info:
            s.expect(lx.SLASH)
        assert "expected" in str(info.value)

    def test_expect_name_keyword(self):
        s = self.stream("into b", keywords={"into"})
        assert s.expect_name("into").value == "into"
        with pytest.raises(XPathSyntaxError):
            s.expect_name("with")

    def test_at_name_and_done(self):
        s = self.stream("into", keywords={"into"})
        assert s.at_name("into")
        s.advance()
        assert s.done()
