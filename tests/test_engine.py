"""The prepared-statement Engine: preparation caching, strategy
round-trips, planning, chaining, composition, and the engine-backed
CLI surface."""

import io
import sys

import pytest

from repro import (
    Engine,
    Planner,
    deep_equal,
    parse,
    parse_file,
    parse_transform_query,
    prepare_transform,
    serialize,
    transform_naive,
    write_file,
)
from repro.cli import main as cli_main
from repro.engine import ALL_STRATEGIES
from repro.engine.features import analyze_transform, estimate_nodes, profile_input
from repro.xmltree.node import Element, Text

DOC = (
    "<db>"
    "<part><pname>kb</pname>"
    "<supplier><sname>HP</sname><price>12</price><country>US</country></supplier>"
    "<supplier><sname>Dell</sname><price>20</price><country>A</country></supplier>"
    "</part>"
    "<part><pname>mouse</pname>"
    "<supplier><sname>HP</sname><price>8</price><country>A</country></supplier>"
    "</part>"
    "</db>"
)

DELETE = 'transform copy $a := doc("db") modify do delete $a//price return $a'
RENAME = 'transform copy $a := doc("db") modify do rename $a//sname as vendor return $a'
INSERT = (
    'transform copy $a := doc("db") modify do '
    "insert <flag/> into $a/part[pname = 'kb'] return $a"
)
QUAL_DOS = (
    'transform copy $a := doc("db") modify do '
    "delete $a//part[.//country = 'A']/pname return $a"
)


@pytest.fixture()
def doc():
    return parse(DOC)


@pytest.fixture()
def engine():
    return Engine()


class TestPreparation:
    def test_prepare_is_memoized_by_text(self, engine):
        assert engine.prepare_transform(DELETE) is engine.prepare_transform(DELETE)
        assert engine.prepare_query(
            "for $x in part return $x"
        ) is engine.prepare_query("for $x in part return $x")

    def test_prepare_parses_exactly_once(self, engine):
        for _ in range(5):
            engine.prepare_transform(DELETE)
        assert engine.cache.transforms.stats()["misses"] == 1

    def test_prepared_accepts_parsed_and_prepared_inputs(self, engine):
        prepared = engine.prepare_transform(DELETE)
        assert engine.prepare_transform(prepared) is prepared
        from_query = engine.prepare_transform(parse_transform_query(DELETE))
        assert from_query.query.update.kind == "delete"

    def test_parsed_queries_with_lossy_rendering_never_share_prepared(self, engine):
        """Regression: str(query) renders float literals with %g, so
        1.0000001 and 1 render identically — parsed-query inputs must
        not be memoized under their rendered text."""
        doc = parse("<db><part><price>1</price></part></db>")
        q_loose = parse_transform_query(
            'transform copy $a := doc("db") modify do '
            "delete $a//part[price = 1.0000001]/price return $a"
        )
        q_exact = parse_transform_query(
            'transform copy $a := doc("db") modify do '
            "delete $a//part[price = 1]/price return $a"
        )
        p_loose = engine.prepare_transform(q_loose)
        p_exact = engine.prepare_transform(q_exact)
        assert "price" in serialize(p_loose.run(doc))   # no match: kept
        assert "price" not in serialize(p_exact.run(doc))  # match: deleted

    def test_automata_shared_across_prepared_texts(self, engine):
        # Two texts with the same embedded path share the compiled NFA.
        engine.prepare_transform(DELETE)
        engine.prepare_transform(
            'transform copy $a := doc("other") modify do delete $a//price return $a'
        )
        assert engine.cache.selecting.stats()["misses"] == 1


class TestRoundTrip:
    """`Engine.prepare_*` round-trips all five strategies with
    identical results (the acceptance criterion)."""

    @pytest.mark.parametrize("text", [DELETE, RENAME, INSERT, QUAL_DOS])
    def test_all_strategies_agree_with_naive(self, engine, doc, text):
        prepared = engine.prepare_transform(text)
        oracle = transform_naive(doc, prepared.query)
        for method in ALL_STRATEGIES + ("auto",):
            result = prepared.run(doc, method=method)
            assert deep_equal(result, oracle), method

    def test_source_document_is_never_touched(self, engine, doc):
        before = serialize(doc)
        engine.prepare_transform(DELETE).run(doc)
        assert serialize(doc) == before

    def test_unknown_method_is_rejected(self, engine, doc):
        with pytest.raises(ValueError, match="unknown method"):
            engine.prepare_transform(DELETE).run(doc, method="galax")

    def test_run_many_plans_once_and_agrees(self, engine, doc):
        prepared = engine.prepare_transform(DELETE)
        other = parse("<db><part><price>1</price></part></db>")
        results = prepared.run_many([doc, other])
        assert len(results) == 2
        assert deep_equal(results[0], transform_naive(doc, prepared.query))
        assert deep_equal(results[1], transform_naive(other, prepared.query))

    def test_run_many_streams_oversized_files_in_mixed_batches(
        self, doc, tmp_path
    ):
        """The batch reuses the first input's tree plan, but each file
        keeps its own stream safeguard — one oversized file must stream
        rather than be parsed whole with the batch method."""
        engine = Engine(planner=Planner(stream_threshold=200))
        big = parse("<db>" + "<part><price>2</price></part>" * 20 + "</db>")
        path = tmp_path / "big.xml"
        write_file(big, str(path))
        prepared = engine.prepare_transform(DELETE)
        small = parse("<db><part><price>1</price></part></db>")
        results = prepared.run_many([small, str(path)])
        assert deep_equal(results[1], transform_naive(big, prepared.query))
        assert engine.planner.stats()["chosen"].get("stream", 0) == 1


class TestPlanner:
    def test_explain_names_a_real_strategy(self, engine, doc):
        for text in (DELETE, QUAL_DOS):
            prepared = engine.prepare_transform(text)
            plan = prepared.plan_for(doc)
            assert plan.strategy in ALL_STRATEGIES
            explained = prepared.explain(doc)
            # Header names the chosen strategy (every name is in the
            # cost table, so matching the bare name would be vacuous).
            assert f"strategy: {plan.strategy}" in explained
            assert "estimated costs" in explained

    def test_no_qualifiers_prefers_single_pass(self, engine, doc):
        assert engine.prepare_transform(DELETE).plan_for(doc).strategy == "topdown"

    def test_deep_descendant_qualifier_prefers_twopass(self, engine):
        node = Element("b", {}, [Text("x")])
        for _ in range(200):
            node = Element("a", {}, [node])
        root = Element("r", {}, [node])
        text = (
            'transform copy $a := doc("d") modify do '
            "rename $a//*[.//b] as seen return $a"
        )
        prepared = engine.prepare_transform(text)
        assert prepared.plan_for(root).strategy == "twopass"
        assert deep_equal(prepared.run(root), transform_naive(root, prepared.query))

    def test_naive_inherits_qualifier_cost_on_deep_documents(self, engine):
        """Regression: naive pays the same native qualifier walks as
        topdown, so stacking descendant qualifiers on a deep document
        must never make naive the 'cheap' choice."""
        node = Element("b", {}, [Text("x")])
        for _ in range(200):
            node = Element("a", {}, [node, Element("c", {}, [])])
        root = Element("r", {}, [node])
        text = (
            'transform copy $a := doc("d") modify do '
            "rename $a//*[.//b][.//a][.//c] as seen return $a"
        )
        plan = engine.prepare_transform(text).plan_for(root)
        assert plan.strategy == "twopass"

    def test_file_input_replans_on_the_parsed_tree(self, engine, tmp_path):
        """A deep document arriving as a file: the byte-size profile
        can't see the depth, but run() parses anyway and must re-plan
        on the real tree (twopass, not a native-qualifier walk)."""
        node = Element("b", {}, [Text("x")])
        for _ in range(200):
            node = Element("a", {}, [node])
        path = tmp_path / "deep.xml"
        write_file(Element("r", {}, [node]), str(path))
        prepared = engine.prepare_transform(
            'transform copy $a := doc("d") modify do '
            "rename $a//*[.//b][.//a] as seen return $a"
        )
        # explain mirrors run: both refine on the parsed tree.
        assert "strategy: twopass" in prepared.explain(str(path))
        prepared.run(str(path))
        assert engine.planner.last_plan.strategy == "twopass"

    def test_large_file_plans_streaming(self, engine, doc, tmp_path):
        path = tmp_path / "doc.xml"
        write_file(doc, str(path))
        small = Engine(planner=Planner(stream_threshold=1))
        plan = small.prepare_transform(DELETE).plan_for(str(path))
        assert plan.strategy == "stream"
        assert "stream" in small.prepare_transform(DELETE).explain(str(path))
        # ...and the streamed result matches the tree result.
        streamed = small.prepare_transform(DELETE).run(str(path))
        assert deep_equal(streamed, engine.prepare_transform(DELETE).run(doc))

    def test_run_to_file_stream_and_tree_agree(self, engine, doc, tmp_path):
        src = tmp_path / "in.xml"
        write_file(doc, str(src))
        out_stream = tmp_path / "out_stream.xml"
        out_tree = tmp_path / "out_tree.xml"
        small = Engine(planner=Planner(stream_threshold=1))
        small.prepare_transform(DELETE).run_to_file(str(src), str(out_stream))
        engine.prepare_transform(DELETE).run_to_file(
            str(src), str(out_tree), method="topdown"
        )
        assert deep_equal(parse_file(str(out_stream)), parse_file(str(out_tree)))

    def test_run_to_file_stream_ignores_pretty_with_warning(
        self, engine, doc, tmp_path
    ):
        src = tmp_path / "in.xml"
        write_file(doc, str(src))
        out = tmp_path / "out.xml"
        small = Engine(planner=Planner(stream_threshold=1))
        with pytest.warns(UserWarning, match="pretty"):
            small.prepare_transform(DELETE).run_to_file(
                str(src), str(out), pretty=True
            )
        # Streamed anyway: the result is correct, just not indented.
        assert deep_equal(
            parse_file(str(out)), engine.prepare_transform(DELETE).run(doc)
        )

    def test_planner_counters_record_choices(self, engine, doc):
        engine.prepare_transform(DELETE).run(doc)
        stats = engine.planner.stats()
        assert stats["last"] in ALL_STRATEGIES
        assert sum(stats["chosen"].values()) >= 1

    def test_profile_caps_the_walk(self):
        wide = Element("r", {}, [Element("a", {}, []) for _ in range(5000)])
        nodes, exact, _depth = estimate_nodes(wide, cap=100)
        assert nodes == 100 and not exact
        profile = profile_input(wide, cap=100)
        assert not profile.exact

    def test_features_summarize_shape(self):
        features = analyze_transform(parse_transform_query(QUAL_DOS))
        assert features.kind == "delete"
        assert features.has_descendant
        assert features.has_descendant_qualifier
        assert features.quals == 1


class TestChaining:
    def test_then_matches_sequential_runs(self, engine, doc):
        first = engine.prepare_transform(DELETE)
        second = engine.prepare_transform(RENAME)
        stack = first.then(second)
        expected = second.run(first.run(doc))
        assert deep_equal(stack.run(doc), expected)
        assert len(stack) == 2

    def test_then_with_raw_text_reuses_the_engine_caches(self, engine, doc):
        engine.prepare_transform(DELETE).then(RENAME)
        # The chained text is now prepared in the engine: preparing it
        # again is a cache hit, not a reparse.
        misses = engine.cache.transforms.stats()["misses"]
        engine.prepare_transform(RENAME)
        assert engine.cache.transforms.stats()["misses"] == misses

    def test_then_accepts_raw_text(self, engine, doc):
        stack = engine.prepare_transform(DELETE).then(RENAME)
        assert deep_equal(
            stack.run(doc),
            engine.prepare_transform(RENAME).run(
                engine.prepare_transform(DELETE).run(doc)
            ),
        )

    def test_prepare_stack_and_explain(self, engine, doc):
        stack = engine.prepare_stack(DELETE, RENAME, INSERT)
        explained = stack.explain(doc)
        assert "3 stage(s)" in explained
        assert explained.count("strategy:") == 3


class TestComposition:
    def test_composed_matches_materialize_then_query(self, engine, doc):
        user = "for $x in part/supplier return $x"
        composed = engine.prepare_composed(user, DELETE)
        direct = composed.run(doc)
        oracle = composed.run_naive(doc)
        assert [serialize(x) if isinstance(x, Element) else x for x in direct] == [
            serialize(x) if isinstance(x, Element) else x for x in oracle
        ]

    def test_composed_is_memoized_per_pair(self, engine):
        user = "for $x in part return $x"
        assert engine.prepare_composed(user, DELETE) is engine.prepare_composed(
            user, DELETE
        )

    def test_composed_from_parsed_queries_with_lossy_rendering(self, engine):
        """Regression: two parsed transforms whose float literals render
        identically under %g must not share a composed plan."""
        doc = parse("<db><part><price>1234567.9</price></part></db>")
        user = "for $x in part/price return $x"
        q_a = parse_transform_query(
            'transform copy $a := doc("db") modify do '
            "delete $a//part[price = 1234567.8]/price return $a"
        )
        q_b = parse_transform_query(
            'transform copy $a := doc("db") modify do '
            "delete $a//part[price = 1234567.9]/price return $a"
        )
        assert str(q_a) == str(q_b)  # the rendering really is lossy
        kept = engine.prepare_composed(user, q_a).run(doc)
        deleted = engine.prepare_composed(user, q_b).run(doc)
        assert len(kept) == 1 and deleted == []

    def test_composed_explain_shows_the_plan(self, engine):
        explained = engine.prepare_composed(
            "for $x in part return $x", DELETE
        ).explain()
        assert "composed plan" in explained
        assert "never materialized" in explained


class TestModuleShims:
    def test_prepare_transform_uses_default_engine(self, doc):
        prepared = prepare_transform(DELETE)
        assert prepare_transform(DELETE) is prepared
        assert deep_equal(prepared.run(doc), transform_naive(doc, prepared.query))


class TestEngineCLI:
    def _write(self, tmp_path, name, text):
        target = tmp_path / name
        target.write_text(text, encoding="utf-8")
        return str(target)

    def test_transform_method_auto_is_default(self, tmp_path, capsys):
        src = self._write(tmp_path, "in.xml", DOC)
        assert cli_main(["transform", "-q", DELETE, "-i", src]) == 0
        assert "price" not in capsys.readouterr().out

    def test_query_from_file(self, tmp_path, capsys):
        src = self._write(tmp_path, "in.xml", DOC)
        qfile = self._write(
            tmp_path,
            "q.xqu",
            'transform copy $a := doc("db") modify do\n'
            "  delete $a//price\nreturn $a\n",
        )
        assert cli_main(["transform", "-q", f"@{qfile}", "-i", src]) == 0
        assert "price" not in capsys.readouterr().out

    def test_query_from_stdin(self, tmp_path, capsys, monkeypatch):
        src = self._write(tmp_path, "in.xml", DOC)
        monkeypatch.setattr(sys, "stdin", io.StringIO(DELETE + "\n"))
        assert cli_main(["transform", "-q", "-", "-i", src]) == 0
        assert "price" not in capsys.readouterr().out

    def test_two_stdin_query_options_fail_clearly(self, tmp_path, capsys, monkeypatch):
        src = self._write(tmp_path, "in.xml", DOC)
        monkeypatch.setattr(sys, "stdin", io.StringIO(DELETE + "\n"))
        assert cli_main(
            ["compose", "-t", "-", "-u", "-", "-i", src]
        ) == 2
        assert "only one query option" in capsys.readouterr().err

    def test_empty_query_file_is_a_user_error(self, tmp_path, capsys):
        src = self._write(tmp_path, "in.xml", DOC)
        qfile = self._write(tmp_path, "empty.xqu", "  \n")
        assert cli_main(["transform", "-q", f"@{qfile}", "-i", src]) == 2
        assert "repro:" in capsys.readouterr().err

    def test_transform_explain_flag_prints_plan(self, tmp_path, capsys):
        src = self._write(tmp_path, "in.xml", DOC)
        assert cli_main(["transform", "-q", DELETE, "-i", src, "--explain"]) == 0
        out = capsys.readouterr().out
        assert "strategy:" in out and "estimated costs" in out

    def test_explain_with_forced_method_says_so_and_does_not_execute(
        self, tmp_path, capsys
    ):
        src = self._write(tmp_path, "in.xml", DOC)
        out = tmp_path / "out.xml"
        for method in ("twopass", "sax"):
            assert cli_main(
                ["transform", "-q", DELETE, "-i", src, "--explain",
                 "--method", method, "-o", str(out)]
            ) == 0
            printed = capsys.readouterr().out
            assert f"method forced by --method: {method}" in printed
            assert not out.exists()  # --explain is a dry run

    def test_explain_command_plans_a_transform(self, tmp_path, capsys):
        src = self._write(tmp_path, "in.xml", DOC)
        assert cli_main(["explain", "-q", DELETE, "-i", src]) == 0
        out = capsys.readouterr().out
        assert "strategy:" in out

    def test_explain_command_still_shows_automata(self, capsys):
        assert cli_main(["explain", "-p", "//part[pname = 'kb']"]) == 0
        assert "selecting NFA" in capsys.readouterr().out

    def test_explain_requires_path_or_query(self, capsys):
        assert cli_main(["explain"]) == 2
        assert "repro:" in capsys.readouterr().err

    def test_store_stage_from_file(self, tmp_path, capsys):
        state = str(tmp_path / "state")
        src = self._write(tmp_path, "in.xml", DOC)
        qfile = self._write(tmp_path, "q.xqu", DELETE)
        assert cli_main(["store", "load", "-n", "db", "-i", src, "--state", state]) == 0
        assert cli_main(
            ["store", "stage", "-n", "db", "-t", f"@{qfile}", "--state", state]
        ) == 0
        assert cli_main(
            ["store", "query", "-n", "db", "-u",
             "for $x in part/supplier/price return $x", "--staged", "--state", state]
        ) == 0
        out = capsys.readouterr().out
        assert "12" not in out.splitlines()[-1]

    def test_fixed_methods_still_available(self, tmp_path, capsys):
        src = self._write(tmp_path, "in.xml", DOC)
        for method in ("topdown", "twopass", "naive", "copy", "sax"):
            assert cli_main(
                ["transform", "-q", DELETE, "-i", src, "--method", method]
            ) == 0
            assert "price" not in capsys.readouterr().out
