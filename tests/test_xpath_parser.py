"""Unit tests for the XPath lexer and parser."""

import pytest

from repro.xpath import (
    AndQual,
    CmpQual,
    LabelQual,
    NotQual,
    OrQual,
    PathQual,
    XPathSyntaxError,
    parse_xpath,
)
from repro.xpath.parser import validate_path


def kinds(path):
    return [s.kind for s in path.steps]


def names(path):
    return [s.name for s in path.steps]


class TestPaths:
    def test_single_label(self):
        p = parse_xpath("part")
        assert kinds(p) == ["label"] and names(p) == ["part"]

    def test_child_chain(self):
        p = parse_xpath("site/people/person")
        assert names(p) == ["site", "people", "person"]

    def test_leading_slash_ignored(self):
        assert parse_xpath("/site/people") == parse_xpath("site/people")

    def test_leading_double_slash(self):
        p = parse_xpath("//part")
        assert kinds(p) == ["dos", "label"]

    def test_inner_double_slash(self):
        p = parse_xpath("site//item")
        assert kinds(p) == ["label", "dos", "label"]

    def test_wildcard(self):
        p = parse_xpath("part/*")
        assert kinds(p) == ["label", "wildcard"]

    def test_self_steps_dropped(self):
        assert parse_xpath("a/./b") == parse_xpath("a/b")

    def test_dot_alone_is_empty_path(self):
        assert parse_xpath(".").steps == ()

    def test_trailing_descendant_self(self):
        p = parse_xpath("a//.")
        assert kinds(p) == ["label", "dos"]

    def test_labels_with_underscores(self):
        p = parse_xpath("open_auctions/open_auction")
        assert names(p) == ["open_auctions", "open_auction"]

    def test_deep_xmark_path(self):
        p = parse_xpath(
            "site/closed_auctions/closed_auction/annotation/description"
            "/parlist/listitem/parlist/listitem/text/emph/keyword"
        )
        assert len(p.steps) == 12


class TestQualifiers:
    def test_existence_qualifier(self):
        p = parse_xpath("part[supplier]")
        (qual,) = p.steps[0].quals
        assert isinstance(qual, PathQual)
        assert names(qual.path) == ["supplier"]

    def test_string_comparison(self):
        p = parse_xpath("person[name = 'Bob']")
        (qual,) = p.steps[0].quals
        assert isinstance(qual, CmpQual)
        assert qual.op == "=" and qual.value == "Bob"

    def test_double_quoted_string(self):
        p = parse_xpath('person[@id = "person10"]')
        (qual,) = p.steps[0].quals
        assert qual.value == "person10"
        assert qual.path.steps[0].kind == "attr"

    def test_numeric_comparison(self):
        p = parse_xpath("open_auction[initial > 10]")
        (qual,) = p.steps[0].quals
        assert qual.op == ">" and qual.value == 10.0

    @pytest.mark.parametrize("op", ["=", "!=", "<", "<=", ">", ">="])
    def test_all_operators(self, op):
        p = parse_xpath(f"a[b {op} 5]")
        (qual,) = p.steps[0].quals
        assert qual.op == op

    def test_reversed_comparison_normalized(self):
        forward = parse_xpath("a[b > 5]")
        reversed_ = parse_xpath("a[5 < b]")
        assert forward == reversed_

    def test_and(self):
        p = parse_xpath("open_auction[initial > 10 and reserve > 50]")
        (qual,) = p.steps[0].quals
        assert isinstance(qual, AndQual)

    def test_or(self):
        p = parse_xpath("s[country = 'c1' or country = 'c2']")
        (qual,) = p.steps[0].quals
        assert isinstance(qual, OrQual)

    def test_not(self):
        p = parse_xpath("open_auction[not(@id = 'open_auction2')]")
        (qual,) = p.steps[0].quals
        assert isinstance(qual, NotQual)

    def test_unicode_connectives(self):
        ascii_form = parse_xpath("part[not(a) and b or c]")
        unicode_form = parse_xpath("part[¬(a) ∧ b ∨ c]")
        assert ascii_form == unicode_form

    def test_precedence_and_binds_tighter(self):
        p = parse_xpath("x[a or b and c]")
        (qual,) = p.steps[0].quals
        assert isinstance(qual, OrQual)
        assert isinstance(qual.right, AndQual)

    def test_parentheses(self):
        p = parse_xpath("x[(a or b) and c]")
        (qual,) = p.steps[0].quals
        assert isinstance(qual, AndQual)
        assert isinstance(qual.left, OrQual)

    def test_label_function(self):
        p = parse_xpath("x[label() = part]")
        (qual,) = p.steps[0].quals
        assert qual == LabelQual("part")

    def test_label_function_quoted(self):
        p = parse_xpath("x[label() = 'part']")
        (qual,) = p.steps[0].quals
        assert qual == LabelQual("part")

    def test_nested_qualifiers(self):
        p = parse_xpath("part[supplier[country = 'US']/price < 15]")
        (qual,) = p.steps[0].quals
        assert isinstance(qual, CmpQual)
        inner = qual.path.steps[0].quals[0]
        assert isinstance(inner, CmpQual)

    def test_multiple_qualifiers_on_one_step(self):
        p = parse_xpath("part[a][b]")
        assert len(p.steps[0].quals) == 2

    def test_qualifier_with_descendant_path(self):
        p = parse_xpath("site[.//error]")
        (qual,) = p.steps[0].quals
        assert kinds(qual.path) == ["dos", "label"]

    def test_fig11_u7(self):
        p = parse_xpath(
            "site/open_auctions/open_auction[bidder/increase > 5]"
            "/annotation[happiness < 20]/description//text"
        )
        assert names(p)[:3] == ["site", "open_auctions", "open_auction"]
        assert len(p.steps[2].quals) == 1
        assert len(p.steps[3].quals) == 1


class TestErrors:
    @pytest.mark.parametrize(
        "bad",
        [
            "",
            "a/",
            "a[",
            "a[]",
            "a[b",
            "a[b =]",
            "a[= 'x']",
            "a[label() < 'x']",
            "a[not b]",
            "a b",
            "a[!b]",
            "a['x' y]",
        ],
    )
    def test_malformed(self, bad):
        with pytest.raises(XPathSyntaxError):
            parse_xpath(bad)

    def test_unterminated_string(self):
        with pytest.raises(XPathSyntaxError):
            parse_xpath("a[b = 'oops]")

    def test_validate_rejects_attr_in_selecting_path(self):
        with pytest.raises(XPathSyntaxError):
            validate_path(parse_xpath("a/@id"))

    def test_validate_rejects_mid_path_attr_in_qualifier(self):
        path = parse_xpath("a[@id/b]").steps[0].quals[0].path
        with pytest.raises(XPathSyntaxError):
            validate_path(path, in_qualifier=True)

    def test_validate_accepts_final_attr_in_qualifier(self):
        validate_path(parse_xpath("a"), in_qualifier=False)
        qual_path = parse_xpath("a[b/@id = 'x']").steps[0].quals[0].path
        validate_path(qual_path, in_qualifier=True)


class TestRoundTrip:
    @pytest.mark.parametrize(
        "source",
        [
            "part",
            "site/people/person",
            "//part",
            "site//item",
            "a/*/b",
            "a//.",
            "part[supplier]",
            "person[profile/age > 20]",
        ],
    )
    def test_str_reparses_to_same_ast(self, source):
        path = parse_xpath(source)
        assert parse_xpath(str(path)) == path
