"""The write-ahead log, crash recovery, and fault injection.

The durability contract under test: every acknowledged commit survives
a crash (its WAL record was fsync'd before the commit touched the
document), a checkpoint makes the WAL redundant (and truncates it),
and recovery replays exactly the tail the checkpoint did not cover —
idempotently, so a crash *between* checkpoint steps never double-
applies or loses a commit.  The fault-point registry (`repro.faults`)
is both a subject here (plan mechanics) and the instrument the
durability regressions are proven with.
"""

import os
import tempfile
import warnings

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import faults
from repro.faults import FaultPlan, InjectedFault, parse_plan
from repro.store import ViewStore
from repro.store.errors import WalCorruptError
from repro.store.state import open_store, save_store
from repro.store.wal import (
    WalWriter,
    effective_commits,
    encode_record,
    read_wal,
    truncate_torn_tail,
    wal_path,
)
from repro.xmltree.node import deep_copy
from repro.xmltree.serializer import serialize, serialize_arena
from tests.strategies import LABELS, trees

DOC = "<db><a><x>1</x></a><b><y>2</y></b></db>"


def _transform(body: str, name: str = "db") -> str:
    return f'transform copy $a := doc("{name}") modify do {body} return $a'


def _insert(marker: str) -> str:
    return _transform(f"insert <{marker}>9</{marker}> into $a/a")


def _doc_bytes(store: ViewStore, name: str = "db") -> str:
    return serialize(store.documents.get(name).root)


@pytest.fixture(autouse=True)
def _no_leaked_fault_plan():
    """Every test leaves the process-global fault plan uninstalled."""
    faults.uninstall()
    yield
    faults.uninstall()


# ----------------------------------------------------------------------
# Record format and file reading
# ----------------------------------------------------------------------


def test_record_round_trip(tmp_path):
    path = str(tmp_path / "wal.jsonl")
    with open(path, "wb") as handle:
        handle.write(encode_record(1, {"kind": "commit", "doc": "db", "version": 2}))
        handle.write(encode_record(2, {"kind": "abort", "doc": "db", "version": 2}))
    result = read_wal(path)
    assert not result.truncated_tail
    assert result.last_seq == 2
    assert result.valid_bytes == os.path.getsize(path)
    assert result.records == [
        {"kind": "commit", "doc": "db", "version": 2},
        {"kind": "abort", "doc": "db", "version": 2},
    ]


def test_read_wal_missing_file_is_empty(tmp_path):
    result = read_wal(str(tmp_path / "nope.jsonl"))
    assert result.records == [] and result.last_seq == 0
    assert not result.truncated_tail and result.valid_bytes == 0


def test_torn_final_line_is_reported_and_truncated(tmp_path):
    path = str(tmp_path / "wal.jsonl")
    good = encode_record(1, {"kind": "commit", "doc": "db", "version": 2})
    with open(path, "wb") as handle:
        handle.write(good)
        handle.write(b'{"crc": 123, "seq": 2, "rec"')  # cut mid-write
    result = read_wal(path)
    assert result.truncated_tail
    assert len(result.records) == 1 and result.valid_bytes == len(good)
    truncate_torn_tail(path, result.valid_bytes)
    again = read_wal(path)
    assert not again.truncated_tail and again.records == result.records


def test_checksum_failure_on_final_line_is_tail_damage(tmp_path):
    path = str(tmp_path / "wal.jsonl")
    good = encode_record(1, {"kind": "commit", "doc": "db", "version": 2})
    bad = encode_record(2, {"kind": "commit", "doc": "db", "version": 3})
    # Flip a byte inside the record body: the line still parses as
    # JSON, but the crc no longer matches.
    bad = bad.replace(b'"db"', b'"dc"')
    with open(path, "wb") as handle:
        handle.write(good + bad)
    result = read_wal(path)
    assert result.truncated_tail and len(result.records) == 1


def test_bad_record_before_the_final_line_raises(tmp_path):
    path = str(tmp_path / "wal.jsonl")
    with open(path, "wb") as handle:
        handle.write(encode_record(1, {"kind": "commit", "doc": "db", "version": 2}))
        handle.write(b"not json at all\n")
        handle.write(encode_record(2, {"kind": "commit", "doc": "db", "version": 3}))
    with pytest.raises(WalCorruptError, match="before the final line"):
        read_wal(path)


def test_sequence_gap_raises(tmp_path):
    path = str(tmp_path / "wal.jsonl")
    with open(path, "wb") as handle:
        handle.write(encode_record(1, {"kind": "commit", "doc": "db", "version": 2}))
        handle.write(encode_record(3, {"kind": "commit", "doc": "db", "version": 3}))
    with pytest.raises(WalCorruptError, match="sequence gap"):
        read_wal(path)


def test_effective_commits_abort_cancellation():
    c2a = {"kind": "commit", "doc": "db", "version": 2, "texts": ["t1"]}
    abort = {"kind": "abort", "doc": "db", "version": 2}
    c2b = {"kind": "commit", "doc": "db", "version": 2, "texts": ["t2"]}
    other = {"kind": "commit", "doc": "eg", "version": 2, "texts": ["t3"]}
    # The abort cancels the latest *prior* attempt; the retry (same
    # version, after the abort) and unrelated documents survive.
    assert effective_commits([c2a, abort, c2b, other]) == [c2b, other]
    # Unknown kinds are ignored (forward compatibility).
    assert effective_commits([{"kind": "note"}, c2a]) == [c2a]
    # An abort with no matching commit is a no-op.
    assert effective_commits([abort, c2b]) == [c2b]


def test_wal_writer_append_and_truncate(tmp_path):
    path = str(tmp_path / "wal.jsonl")
    writer = WalWriter(path)
    assert writer.append({"kind": "commit", "doc": "db", "version": 2}) == 1
    assert writer.append({"kind": "commit", "doc": "db", "version": 3}) == 2
    stats = writer.stats()
    assert stats == {"seq": 2, "appends": 2, "fsyncs": 2}
    assert read_wal(path).last_seq == 2
    writer.truncate()
    assert os.path.getsize(path) == 0 and writer.stats()["seq"] == 0
    # Appends restart the sequence from 1 within the new epoch.
    assert writer.append({"kind": "commit", "doc": "db", "version": 4}) == 1
    writer.close()


# ----------------------------------------------------------------------
# Fault plan mechanics
# ----------------------------------------------------------------------


def test_fault_point_is_a_noop_without_a_plan():
    faults.fault_point("anything.at.all")  # must not raise


def test_fault_plan_nth_fires_exactly_once():
    plan = FaultPlan().add("p", nth=3)
    faults.install(plan)
    faults.fault_point("p")
    faults.fault_point("p")
    with pytest.raises(InjectedFault, match="injected fault at 'p'"):
        faults.fault_point("p")
    faults.fault_point("p")  # hit 4: past nth, never fires again
    assert plan.hits("p") == 4
    assert plan.log == ["p", "p", "p", "p"]


def test_fault_plan_probability_is_seeded():
    outcomes = []
    for _ in range(2):
        plan = FaultPlan(seed=42).add("p", probability=0.5)
        fired = []
        for _hit in range(20):
            try:
                plan.check("p")
                fired.append(False)
            except InjectedFault:
                fired.append(True)
        outcomes.append(fired)
    assert outcomes[0] == outcomes[1]  # same seed, same draws
    assert any(outcomes[0]) and not all(outcomes[0])


def test_fault_plan_logs_unarmed_hits():
    plan = FaultPlan().add("armed")
    faults.install(plan)
    faults.fault_point("other")
    with pytest.raises(InjectedFault):
        faults.fault_point("armed")
    assert plan.log == ["other", "armed"]
    assert plan.hits("other") == 0  # hit counts track armed points only


def test_parse_plan_grammar():
    plan = parse_plan("seed=7;a.b:crash:nth=2:exit=3;c.d;e.f:fail:p=0.25")
    spec = plan._specs["a.b"]
    assert spec.mode == "crash" and spec.nth == 2 and spec.exit_code == 3
    assert plan._specs["c.d"].mode == "fail" and plan._specs["c.d"].nth is None
    assert plan._specs["e.f"].probability == 0.25
    with pytest.raises(ValueError, match="unknown fault option"):
        parse_plan("a.b:fail:bogus=1")
    with pytest.raises(ValueError, match="unknown fault mode"):
        parse_plan("a.b:explode")


def test_install_from_env(monkeypatch):
    monkeypatch.setenv("REPRO_FAULTS", "x.y:fail:nth=1")
    plan = faults.install_from_env()
    assert plan is not None and faults.current_plan() is plan
    with pytest.raises(InjectedFault):
        faults.fault_point("x.y")
    monkeypatch.delenv("REPRO_FAULTS")
    assert faults.install_from_env() is None


# ----------------------------------------------------------------------
# The commit → WAL → recover lifecycle
# ----------------------------------------------------------------------


def _fresh_state(tmp_path) -> str:
    state_dir = str(tmp_path / "state")
    store = ViewStore()
    store.put("db", DOC)
    save_store(store, state_dir)
    return state_dir


def test_commit_appends_a_record_and_recovery_replays_it(tmp_path):
    state_dir = _fresh_state(tmp_path)
    store = open_store(state_dir)
    assert store.wal is not None and store.wal_replayed == 0
    store.commit("db", _insert("m1"))
    store.commit("db", _insert("m2"))
    assert store.wal.stats() == {"seq": 2, "appends": 2, "fsyncs": 2}
    expected = _doc_bytes(store)
    # Crash simulation: drop the store without save_store.  The WAL
    # alone must carry both commits into the next open.
    recovered = open_store(state_dir)
    assert recovered.wal_replayed == 2
    assert recovered.documents.get("db").version == 3
    assert _doc_bytes(recovered) == expected
    stats = recovered.stats()["wal"]
    assert stats["attached"] and stats["replayed"] == 2
    # Replay does not re-append: the writer continues the sequence.
    assert stats["seq"] == 2 and stats["appends"] == 0


def test_checkpoint_truncates_the_wal(tmp_path):
    state_dir = _fresh_state(tmp_path)
    store = open_store(state_dir)
    store.commit("db", _insert("m1"))
    assert os.path.getsize(wal_path(state_dir)) > 0
    save_store(store, state_dir)
    assert os.path.getsize(wal_path(state_dir)) == 0
    recovered = open_store(state_dir)
    assert recovered.wal_replayed == 0
    assert recovered.documents.get("db").version == 2


def test_replay_is_idempotent_after_a_partial_checkpoint(tmp_path):
    """A crash between the manifest replace and the WAL truncate leaves
    a new checkpoint with a stale log; each record carries its version,
    so replay skips everything the checkpoint already covers."""
    state_dir = _fresh_state(tmp_path)
    store = open_store(state_dir)
    store.commit("db", _insert("m1"))
    store.commit("db", _insert("m2"))
    stale_wal = open(wal_path(state_dir), "rb").read()
    expected = _doc_bytes(store)
    save_store(store, state_dir)
    with open(wal_path(state_dir), "wb") as handle:
        handle.write(stale_wal)  # resurrect the log the crash kept
    recovered = open_store(state_dir)
    assert recovered.wal_replayed == 0  # both versions already covered
    assert recovered.documents.get("db").version == 3
    assert _doc_bytes(recovered) == expected


def test_torn_tail_on_open_truncates_and_warns(tmp_path):
    state_dir = _fresh_state(tmp_path)
    store = open_store(state_dir)
    store.commit("db", _insert("m1"))
    good_bytes = os.path.getsize(wal_path(state_dir))
    with open(wal_path(state_dir), "ab") as handle:
        handle.write(b'{"crc": 1, "seq": 2')  # the crash artifact
    with pytest.warns(RuntimeWarning, match="torn final record"):
        recovered = open_store(state_dir)
    assert recovered.wal_truncated_tail == 1
    assert recovered.wal_replayed == 1
    assert recovered.stats()["wal"]["truncated_tail"] == 1
    assert os.path.getsize(wal_path(state_dir)) == good_bytes


def test_midlog_damage_raises_the_typed_error(tmp_path):
    state_dir = _fresh_state(tmp_path)
    store = open_store(state_dir)
    store.commit("db", _insert("m1"))
    store.commit("db", _insert("m2"))
    path = wal_path(state_dir)
    lines = open(path, "rb").read().splitlines(keepends=True)
    with open(path, "wb") as handle:
        handle.write(b"garbage\n")
        handle.write(lines[1])
    with pytest.raises(WalCorruptError, match="before the final line"):
        open_store(state_dir)


def test_version_gap_in_the_log_raises(tmp_path):
    state_dir = _fresh_state(tmp_path)
    with open(wal_path(state_dir), "wb") as handle:
        handle.write(
            encode_record(
                1,
                {"kind": "commit", "doc": "db", "version": 7,
                 "texts": [_insert("m1")]},
            )
        )
    with pytest.raises(WalCorruptError, match="version gap"):
        open_store(state_dir)


def test_record_for_an_unknown_document_is_skipped_with_a_warning(tmp_path):
    state_dir = _fresh_state(tmp_path)
    with open(wal_path(state_dir), "wb") as handle:
        handle.write(
            encode_record(
                1,
                {"kind": "commit", "doc": "ghost", "version": 2,
                 "texts": [_insert("m1", )]},
            )
        )
    with pytest.warns(RuntimeWarning, match="unknown document"):
        recovered = open_store(state_dir)
    assert recovered.wal_replayed == 0


def test_staged_updates_survive_via_the_manifest_not_the_wal(tmp_path):
    state_dir = _fresh_state(tmp_path)
    store = open_store(state_dir)
    store.stage("db", _insert("m1"))
    save_store(store, state_dir)
    recovered = open_store(state_dir)
    assert recovered.stats()["documents"]["db"]["staged"] == 1
    # A replayed commit supersedes checkpoint-time staged entries (the
    # commit consumed the whole staging area): no double restore.
    recovered.commit("db")
    after_crash = open_store(state_dir)
    assert after_crash.wal_replayed == 1
    assert after_crash.stats()["documents"]["db"]["staged"] == 0
    assert after_crash.documents.get("db").version == 2


def test_failed_commit_aborts_its_record_and_restores_staging(tmp_path):
    """The WAL record lands *before* the apply; when the apply then
    fails, the store must (a) put the staged updates back, (b) append
    an abort so recovery does not replay the failed attempt, and (c)
    let a retry commit the same version cleanly."""
    state_dir = _fresh_state(tmp_path)
    store = open_store(state_dir)
    faults.install(FaultPlan().add("store.commit.mid_splice", nth=1))
    with pytest.raises(InjectedFault):
        store.commit("db", _insert("m1"))
    faults.uninstall()
    assert store.documents.get("db").version == 1
    assert store.stats()["documents"]["db"]["staged"] == 1  # restored
    records = read_wal(wal_path(state_dir)).records
    assert [r["kind"] for r in records] == ["commit", "abort"]
    # The retry re-consumes the restored staging area.
    assert store.commit("db") == 2
    expected = _doc_bytes(store)
    recovered = open_store(state_dir)
    assert recovered.wal_replayed == 1  # the retry, not the failure
    assert recovered.documents.get("db").version == 2
    assert _doc_bytes(recovered) == expected


def test_checkpoint_fsync_discipline_ordering(tmp_path):
    """The regression that motivated the WAL: a checkpoint must fsync
    file data before each rename, fsync the directory after, and only
    then truncate the log.  The fault-point log records the order."""
    state_dir = str(tmp_path / "state")
    store = ViewStore()
    store.put("db", DOC)
    plan = FaultPlan()  # nothing armed: pure observation
    faults.install(plan)
    save_store(store, state_dir)
    faults.uninstall()
    log = plan.log
    assert "checkpoint.fsync.file" in log
    assert log.index("wal.checkpoint.mid") > max(
        i for i, name in enumerate(log) if name == "checkpoint.fsync.file"
    )
    assert log.index("checkpoint.fsync.dir") > log.index("wal.checkpoint.mid")
    assert log.index("wal.checkpoint.pre_truncate") > log.index("checkpoint.fsync.dir")


def test_interrupted_checkpoint_leaves_the_old_state_loadable(tmp_path):
    """Failing between a temp-file fsync and its rename must leave the
    previous checkpoint (plus the full WAL) fully intact."""
    state_dir = _fresh_state(tmp_path)
    store = open_store(state_dir)
    store.commit("db", _insert("m1"))
    expected = _doc_bytes(store)
    faults.install(FaultPlan().add("checkpoint.fsync.file", nth=1))
    with pytest.raises(InjectedFault):
        save_store(store, state_dir)
    faults.uninstall()
    recovered = open_store(state_dir)
    assert recovered.wal_replayed == 1  # WAL untouched by the failure
    assert _doc_bytes(recovered) == expected


def test_save_over_existing_state_empties_a_stale_wal(tmp_path):
    """An in-memory store saved over an existing directory must not
    leave the previous store's log to replay over its checkpoint."""
    state_dir = _fresh_state(tmp_path)
    store = open_store(state_dir)
    store.commit("db", _insert("m1"))
    fresh = ViewStore()  # never opened from disk: no WAL attached
    fresh.put("db", DOC)
    save_store(fresh, state_dir)
    assert os.path.getsize(wal_path(state_dir)) == 0
    recovered = open_store(state_dir)
    assert recovered.wal_replayed == 0
    assert recovered.documents.get("db").version == 1


# ----------------------------------------------------------------------
# Property: checkpoint + WAL-tail replay reconstructs the store
# ----------------------------------------------------------------------


@st.composite
def update_texts(draw):
    """A random commit body over the shared a..e alphabet — including
    inserts/deletes/replaces that exercise both the splice and the
    full-rebuild commit paths."""
    kind = draw(st.sampled_from(["insert", "delete", "replace", "rename"]))
    path = "$a" + draw(st.sampled_from(["/", "//"])) + draw(st.sampled_from(LABELS))
    label = draw(st.sampled_from(LABELS))
    if kind == "insert":
        body = f"insert <{label}><t>9</t></{label}> into {path}"
    elif kind == "delete":
        body = f"delete {path}"
    elif kind == "replace":
        body = f"replace {path} with <{label}>9</{label}>"
    else:
        body = f"rename {path} as {draw(st.sampled_from(LABELS))}"
    return _transform(body)


@settings(max_examples=25, deadline=None)
@given(
    tree=trees(),
    texts=st.lists(update_texts(), min_size=1, max_size=4),
    checkpoint_after=st.integers(min_value=0, max_value=4),
)
def test_checkpoint_plus_replay_reconstructs_the_store(
    tree, texts, checkpoint_after
):
    """After N random commits — with a checkpoint dropped at a random
    position — a crash-reopen must reconstruct the identical store:
    same version numbers, same serialized bytes, through both the
    splice and rebuild commit paths."""
    with tempfile.TemporaryDirectory() as root:
        state_dir = os.path.join(root, "state")
        seed = ViewStore()
        seed.put("db", deep_copy(tree))
        save_store(seed, state_dir)
        live = open_store(state_dir)
        for index, text in enumerate(texts):
            live.commit("db", text)
            if index + 1 == checkpoint_after:
                save_store(live, state_dir)
        expected_version = live.documents.get("db").version
        expected_bytes = _doc_bytes(live)
        expected_arena = serialize_arena(live.pin("db").arena)
        recovered = open_store(state_dir)
        assert recovered.documents.get("db").version == expected_version
        assert _doc_bytes(recovered) == expected_bytes
        assert serialize_arena(recovered.pin("db").arena) == expected_arena
        # Exactly the tail past the checkpoint replayed (a checkpoint
        # position beyond the last commit never fired).
        covered = checkpoint_after if checkpoint_after <= len(texts) else 0
        assert recovered.wal_replayed == len(texts) - covered
