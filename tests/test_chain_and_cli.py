"""Tests for chained transforms, the CLI, and automaton introspection."""

import pytest

from repro.transform import TransformQuery, transform_copy_update, transform_topdown
from repro.transform.chain import (
    TransformChain,
    parse_transform_chain,
    transform_chain,
)
from repro.transform.sax_twopass import transform_sax
from repro.transform.twopass import transform_twopass
from repro.updates import parse_update
from repro.xmltree import deep_equal, parse, parse_file, serialize, write_file
from repro.xpath import parse_xpath
from repro.xpath.lexer import XPathSyntaxError
from repro.automata import build_selecting_nfa
from repro import cli


@pytest.fixture
def doc():
    return parse(
        "<db><part><pname>kb</pname><supplier><sname>HP</sname>"
        "<price>12</price></supplier></part></db>"
    )


class TestTransformChain:
    def test_sequential_semantics(self, doc):
        chain = TransformChain(
            [
                parse_update("delete $a//price"),
                parse_update("rename $a//sname as vendor"),
            ]
        )
        result = transform_chain(doc, chain)
        text = serialize(result)
        assert "price" not in text and "<vendor>" in text
        assert "price" in serialize(doc)  # source untouched

    def test_stage_order_matters(self, doc):
        # Renaming first makes the delete miss its target.
        forward = transform_chain(
            doc,
            TransformChain(
                [parse_update("rename $a//price as cost"),
                 parse_update("delete $a//price")],
            ),
        )
        assert "<cost>" in serialize(forward)
        backward = transform_chain(
            doc,
            TransformChain(
                [parse_update("delete $a//price"),
                 parse_update("rename $a//price as cost")],
            ),
        )
        assert "<cost>" not in serialize(backward)

    def test_second_stage_sees_first_stage_inserts(self, doc):
        chain = TransformChain(
            [
                parse_update("insert <flag/> into $a/part"),
                parse_update("rename $a/part/flag as marker"),
            ]
        )
        result = transform_chain(doc, chain)
        assert "<marker/>" in serialize(result)

    @pytest.mark.parametrize("algorithm", [transform_topdown, transform_twopass, transform_sax])
    def test_chain_algorithm_agnostic(self, doc, algorithm):
        chain = TransformChain(
            [parse_update("delete $a//price"), parse_update("insert <new/> into $a/part")]
        )
        expected = transform_chain(doc, chain, transform=transform_copy_update)
        assert deep_equal(transform_chain(doc, chain, transform=algorithm), expected)

    def test_empty_chain_rejected(self):
        with pytest.raises(ValueError):
            TransformChain([])

    def test_stages_are_single_update_queries(self):
        chain = TransformChain([parse_update("delete $a/x")], doc="f")
        (stage,) = chain.stages()
        assert isinstance(stage, TransformQuery)
        assert stage.doc == "f"


class TestChainParsing:
    def test_multi_update_syntax(self):
        chain = parse_transform_chain(
            'transform copy $a := doc("T") modify do ('
            "delete $a//price, rename $a//sname as vendor"
            ") return $a"
        )
        assert len(chain) == 2
        assert chain.updates[0].kind == "delete"
        assert chain.updates[1].kind == "rename"

    def test_single_update_accepted(self):
        chain = parse_transform_chain(
            'transform copy $a := doc("T") modify do delete $a//price return $a'
        )
        assert len(chain) == 1

    def test_comma_inside_xml_content(self):
        chain = parse_transform_chain(
            'transform copy $a := doc("T") modify do ('
            "insert <note>one, two</note> into $a/part, delete $a//price"
            ") return $a"
        )
        assert len(chain) == 2
        assert chain.updates[0].content.own_text() == "one, two"

    def test_str_round_trip(self):
        text = (
            'transform copy $a := doc("T") modify do '
            "(delete $a//price, rename $a//sname as vendor) return $a"
        )
        chain = parse_transform_chain(text)
        again = parse_transform_chain(str(chain))
        assert len(again) == len(chain)
        assert [u.kind for u in again.updates] == [u.kind for u in chain.updates]

    @pytest.mark.parametrize(
        "bad",
        [
            "",
            'transform copy $a := doc("T") modify do () return $a',
            'transform copy $a := doc("T") modify do (delete $a/x) return $b',
            'transform copy $a := doc("T") modify do (delete $a/x',
        ],
    )
    def test_malformed(self, bad):
        with pytest.raises(XPathSyntaxError):
            parse_transform_chain(bad)


class TestDescribe:
    def test_selecting_nfa_description(self):
        nfa = build_selecting_nfa(parse_xpath("//part[pname = 'kb']//part"))
        text = nfa.describe()
        assert "s0: start" in text
        assert "FINAL" in text
        assert "self-loop" in text
        assert "--ε-->" in text


class TestCLI:
    def test_transform_to_stdout(self, doc, tmp_path, capsys):
        in_path = str(tmp_path / "in.xml")
        write_file(doc, in_path)
        code = cli.main([
            "transform",
            "-q", 'transform copy $a := doc("f") modify do delete $a//price return $a',
            "-i", in_path,
        ])
        assert code == 0
        assert "price" not in capsys.readouterr().out

    @pytest.mark.parametrize("method", ["topdown", "twopass", "naive", "copy", "sax"])
    def test_transform_methods_to_file(self, doc, tmp_path, method):
        in_path = str(tmp_path / "in.xml")
        out_path = str(tmp_path / f"out-{method}.xml")
        write_file(doc, in_path)
        code = cli.main([
            "transform",
            "-q", 'transform copy $a := doc("f") modify do delete $a//price return $a',
            "-i", in_path, "-o", out_path, "--method", method,
        ])
        assert code == 0
        assert "price" not in serialize(parse_file(out_path))

    def test_compose_plan_only(self, capsys):
        code = cli.main([
            "compose",
            "-t", 'transform copy $a := doc("f") modify do delete $a/a/b return $a',
            "-u", "for $x in a/b/c return $x",
            "--show-plan",
        ])
        assert code == 0
        assert "composed query" in capsys.readouterr().out

    def test_compose_with_input(self, tmp_path, capsys):
        in_path = str(tmp_path / "in.xml")
        write_file(parse("<db><a><b><c>1</c></b></a></db>"), in_path)
        code = cli.main([
            "compose",
            "-t", 'transform copy $a := doc("f") modify do delete $a/zzz return $a',
            "-u", "for $x in a/b/c return $x",
            "-i", in_path,
        ])
        assert code == 0
        assert "<c>1</c>" in capsys.readouterr().out

    def test_generate(self, tmp_path, capsys):
        out_path = str(tmp_path / "xmark.xml")
        code = cli.main(["generate", "--factor", "0.001", "-o", out_path])
        assert code == 0
        assert parse_file(out_path).label == "site"

    def test_explain(self, capsys):
        code = cli.main(["explain", "-p", "//part[pname = 'kb']"])
        assert code == 0
        out = capsys.readouterr().out
        assert "selecting NFA" in out and "filtering NFA" in out

    def test_version_flag(self, capsys):
        import repro

        with pytest.raises(SystemExit) as excinfo:
            cli.main(["--version"])
        assert excinfo.value.code == 0
        assert f"repro {repro.__version__}" in capsys.readouterr().out


class TestCLIErrorBoundary:
    """User mistakes exit 2 with one line on stderr — never a traceback."""

    def _assert_clean_failure(self, capsys, code):
        assert code == 2
        err = capsys.readouterr().err
        assert err.startswith("repro: ")
        assert "Traceback" not in err

    def test_explain_attribute_final_path(self, capsys):
        self._assert_clean_failure(capsys, cli.main(["explain", "-p", "//supplier/@id"]))

    def test_compose_attribute_final_user_path(self, tmp_path, capsys):
        in_path = str(tmp_path / "in.xml")
        write_file(parse("<db><a k='1'/></db>"), in_path)
        code = cli.main([
            "compose",
            "-t", 'transform copy $a := doc("f") modify do delete $a/zzz return $a',
            "-u", "for $x in a/@k return $x",
            "-i", in_path,
        ])
        self._assert_clean_failure(capsys, code)

    def test_transform_missing_input_file(self, tmp_path, capsys):
        code = cli.main([
            "transform",
            "-q", 'transform copy $a := doc("f") modify do delete $a//p return $a',
            "-i", str(tmp_path / "missing.xml"),
        ])
        self._assert_clean_failure(capsys, code)

    def test_compose_missing_input_file(self, tmp_path, capsys):
        code = cli.main([
            "compose",
            "-t", 'transform copy $a := doc("f") modify do delete $a/x return $a',
            "-u", "for $x in a return $x",
            "-i", str(tmp_path / "missing.xml"),
        ])
        self._assert_clean_failure(capsys, code)

    def test_transform_bad_query_syntax(self, tmp_path, capsys):
        in_path = str(tmp_path / "in.xml")
        write_file(parse("<db/>"), in_path)
        code = cli.main(["transform", "-q", "not a transform", "-i", in_path])
        self._assert_clean_failure(capsys, code)
