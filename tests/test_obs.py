"""Tests for ``repro.obs`` — the metrics registry, query-lifecycle
tracing, and the live stats surface they feed.

Covers the telemetry acceptance criteria end to end: counter and
histogram exactness under a multi-thread hammer, the disabled-mode
zero-allocation fast path, trace-span nesting and ordering through a
full Engine prepare→run, the normalized ``layer.component.metric``
namespace (including the ``scan[arena]`` → ``scan.arena`` rebase), the
``metrics``/``traces`` wire ops, and a loadgen smoke run against a
live in-process server.
"""

import json
import math
import os
import sys
import threading
import time
import tracemalloc

import pytest

from repro.engine.engine import Engine
from repro.lru import LRUCache
from repro.obs import (
    NULL_SPAN,
    NULL_TRACE,
    MetricsRegistry,
    Tracer,
    check_metric_name,
    current_trace,
    span,
)
from repro.obs.registry import COUNT_BUCKETS, NULL_INSTRUMENT, Counter, Histogram
from repro.service import Client, QueryService, ServiceConfig, ServiceServer
from repro.service.errors import BadRequestError
from repro.xmltree.parser import parse_to_arena

CATALOG = (
    "<db><part><pname>kb</pname>"
    "<supplier><sname>HP</sname><price>12</price><country>A</country></supplier>"
    "<supplier><sname>Dell</sname><price>20</price><country>B</country></supplier>"
    "</part><part><pname>mouse</pname>"
    "<supplier><sname>HP</sname><price>8</price><country>A</country></supplier>"
    "</part></db>"
)

QUERY = "for $x in part/supplier return $x"


# ----------------------------------------------------------------------
# Registry: names, instruments, probes
# ----------------------------------------------------------------------


class TestRegistry:
    def test_name_validation(self):
        for good in ("a.b.c", "store.arena.reads", "service.dispatch.batch_size"):
            assert check_metric_name(good) == good
        for bad in ("requests", "a.b", "A.b.c", "a.b.c!", "a..c", "a.b.", ""):
            with pytest.raises(ValueError):
                check_metric_name(bad)
        registry = MetricsRegistry()
        with pytest.raises(ValueError):
            registry.counter("arena_reads")
        with pytest.raises(ValueError):
            registry.probe("shallow.name", lambda: 1)

    def test_instruments_memoized_by_name(self):
        registry = MetricsRegistry()
        counter = registry.counter("svc.requests.total")
        assert registry.counter("svc.requests.total") is counter
        counter.inc()
        counter.inc(4)
        assert counter.value == 5
        gauge = registry.gauge("svc.queue.depth")
        gauge.set(3.0)
        gauge.inc()
        gauge.dec(2)
        assert gauge.value == 2.0
        with pytest.raises(ValueError):
            registry.histogram("svc.requests.total")  # kind conflict
        assert "svc.requests.total" in registry
        assert "svc.other.metric" not in registry

    def test_snapshot_and_probe_flattening(self):
        registry = MetricsRegistry()
        registry.counter("layer.comp.hits").inc(2)
        registry.probe(
            "layer.probe.stats",
            lambda: {"a": 1, "nested": {"b": 2}, "Weird Key!": 3, "scan.arena": 4},
        )
        snap = registry.snapshot()
        assert snap["layer.comp.hits"] == 2
        assert snap["layer.probe.stats.a"] == 1
        assert snap["layer.probe.stats.nested.b"] == 2
        assert snap["layer.probe.stats.weird_key_"] == 3
        # Dots inside probe keys survive as segment separators.
        assert snap["layer.probe.stats.scan.arena"] == 4
        assert list(snap) == sorted(snap)
        assert registry.get("layer.comp.hits") == 2

    def test_counter_exact_under_thread_hammer(self):
        counter = Counter("test.hammer.counter")
        threads_n, per_thread = 8, 2500

        def hammer():
            for _ in range(per_thread):
                counter.inc()

        threads = [threading.Thread(target=hammer) for _ in range(threads_n)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert counter.value == threads_n * per_thread

    def test_histogram_exact_counts_under_thread_hammer(self):
        histogram = Histogram("test.hammer.latency")
        threads_n, per_thread = 8, 1000

        def hammer(seed: int):
            for i in range(per_thread):
                histogram.observe(0.0001 * ((seed + i) % 17 + 1))

        threads = [
            threading.Thread(target=hammer, args=(i,)) for i in range(threads_n)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        snap = histogram.snapshot()
        assert snap["count"] == threads_n * per_thread
        expected_sum = sum(
            0.0001 * ((seed + i) % 17 + 1)
            for seed in range(threads_n)
            for i in range(per_thread)
        )
        assert snap["sum"] == pytest.approx(expected_sum)
        assert snap["min"] == pytest.approx(0.0001)
        assert snap["max"] == pytest.approx(0.0017)

    def test_histogram_percentiles(self):
        histogram = Histogram("test.pct.latency")
        for i in range(1, 101):
            histogram.observe(i * 0.001)
        snap = histogram.snapshot()
        assert snap["min"] <= snap["p50"] <= snap["p95"] <= snap["p99"] <= snap["max"]
        assert snap["p50"] == pytest.approx(0.050, rel=0.5)
        assert snap["p99"] == pytest.approx(0.099, rel=0.5)
        # A single-value histogram reports that value, not a bucket edge.
        single = Histogram("test.single.latency")
        single.observe(0.005)
        one = single.snapshot()
        assert one["p50"] == one["p99"] == pytest.approx(0.005)
        assert Histogram("test.empty.latency").snapshot() == {"count": 0, "sum": 0.0}
        assert Histogram("test.empty.latency2").percentile(99.0) is None
        with pytest.raises(ValueError):
            Histogram("test.bad.buckets", buckets=[2.0, 1.0])

    def test_count_buckets_for_batch_sizes(self):
        histogram = Histogram("test.batch.size", buckets=COUNT_BUCKETS)
        for size in (1, 2, 3, 16, 300):
            histogram.observe(float(size))
        assert histogram.count == 5


class TestDisabledRegistry:
    def test_disabled_hands_out_shared_null_instrument(self):
        registry = MetricsRegistry(enabled=False)
        counter = registry.counter("svc.requests.total")
        histogram = registry.histogram("svc.request.latency")
        assert counter is NULL_INSTRUMENT
        assert histogram is NULL_INSTRUMENT
        registry.probe("svc.probe.stats", lambda: {"a": 1})
        assert registry.snapshot() == {}
        assert registry.get("svc.requests.total") is None

    def test_disabled_fast_path_allocates_nothing(self):
        registry = MetricsRegistry(enabled=False)
        counter = registry.counter("svc.requests.total")
        histogram = registry.histogram("svc.request.latency")
        assert current_trace() is None
        # Warm every code path once before measuring.
        counter.inc()
        histogram.observe(0.001)
        with span("warm"):
            pass
        tracemalloc.start()
        for _ in range(1000):
            counter.inc()
            histogram.observe(0.001)
            with span("noop"):
                pass
        current, peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        # The loop machinery itself may allocate transiently; the bar
        # is that per-event cost is zero, not a growing buffer.
        assert current < 1024, f"disabled instruments retained {current} bytes"
        assert peak < 16384, f"disabled instruments peaked at {peak} bytes"

    def test_module_span_is_null_without_active_trace(self):
        assert current_trace() is None
        assert span("anything") is NULL_SPAN


# ----------------------------------------------------------------------
# Tracing
# ----------------------------------------------------------------------


class TestTracing:
    def test_spans_nest_through_engine_prepare_and_run(self):
        tracer = Tracer(sample_every=1)
        engine = Engine()
        arena = parse_to_arena(CATALOG)
        with tracer.trace("test.query", target="db"):
            prepared = engine.prepare_query(QUERY)
            prepared.run_refs(arena)
        records = tracer.records()
        assert len(records) == 1
        record = records[0]
        assert record["name"] == "test.query"
        assert record["meta"] == {"target": "db"}
        names = [s["name"] for s in record["spans"]]
        # Completion order: the cold compile finishes first, then the
        # plan decision (nested inside the scan), then the scan itself.
        assert names == ["compile", "plan", "scan"]
        depths = {s["name"]: s["depth"] for s in record["spans"]}
        assert depths == {"compile": 0, "plan": 1, "scan": 0}
        by_name = {s["name"]: s for s in record["spans"]}
        assert by_name["plan"]["start_us"] >= by_name["scan"]["start_us"]
        assert record["dur_us"] >= by_name["scan"]["dur_us"]

    def test_warm_prepare_emits_no_compile_span(self):
        tracer = Tracer(sample_every=1)
        engine = Engine()
        engine.prepare_query(QUERY)  # cold build outside any trace
        with tracer.trace("test.warm"):
            engine.prepare_query(QUERY)
        assert tracer.records()[-1]["spans"] == []

    def test_deterministic_sampling_and_ring_bound(self):
        tracer = Tracer(ring=2, sample_every=2)
        sampled = []
        for _ in range(6):
            trace = tracer.trace("test.sampled")
            if trace.sampled:
                sampled.append(trace)
            trace.finish()
        assert len(sampled) == 3  # every 2nd of 6
        stats = tracer.stats()
        assert stats["started"] == 6
        assert stats["recorded"] == 3
        assert stats["buffered"] == 2  # ring bound
        assert stats["dropped"] == 1

    def test_disabled_tracer_hands_out_null_trace(self):
        for tracer in (Tracer(enabled=False), Tracer(sample_every=0)):
            trace = tracer.trace("test.off")
            assert trace is NULL_TRACE
            with trace:
                with trace.span("noop"):
                    pass
                trace.record_span("queue", 0.001)
                trace.note(ignored=True)
            assert tracer.records() == []

    def test_records_are_json_lines(self):
        tracer = Tracer(sample_every=1)
        with tracer.trace("test.json", target="db") as trace:
            with span("work"):
                pass
            trace.note(outcome="ok")
        dumped = tracer.dump_jsonl()
        lines = [json.loads(line) for line in dumped.splitlines()]
        assert len(lines) == 1
        assert lines[0]["meta"] == {"target": "db", "outcome": "ok"}
        assert lines[0]["spans"][0]["name"] == "work"
        assert tracer.drain() == lines
        assert tracer.records() == []

    def test_activation_attaches_worker_thread_spans(self):
        tracer = Tracer(sample_every=1)
        trace = tracer.trace("test.worker")

        def worker():
            assert current_trace() is None
            with trace.activate():
                assert current_trace() is trace
                with span("work"):
                    pass
            assert current_trace() is None

        thread = threading.Thread(target=worker)
        thread.start()
        thread.join()
        trace.record_span("queue", 0.002)
        trace.finish(outcome="ok")
        record = tracer.records()[0]
        assert {s["name"] for s in record["spans"]} == {"work", "queue"}
        assert record["meta"]["outcome"] == "ok"

    def test_finish_is_idempotent(self):
        tracer = Tracer(sample_every=1)
        trace = tracer.trace("test.twice")
        trace.finish(outcome="first")
        trace.finish(outcome="second")
        records = tracer.records()
        assert len(records) == 1
        assert records[0]["meta"] == {"outcome": "first"}


# ----------------------------------------------------------------------
# Migration of existing counters onto the registry
# ----------------------------------------------------------------------


class TestCounterMigration:
    def test_planner_keys_normalized_but_legacy_intact(self):
        engine = Engine()
        registry = MetricsRegistry()
        engine.bind_metrics(registry)
        arena = parse_to_arena(CATALOG)
        engine.prepare_query(QUERY).run_refs(arena)
        # The planner's own dict keeps its historical key...
        assert engine.planner.counters.get("scan[arena]") == 1
        # ...while the registry presents the normalized scheme.
        snap = registry.snapshot()
        assert snap["engine.planner.chosen.scan.arena"] == 1
        assert not any("[" in name for name in snap)
        assert snap["engine.prepared.cache.size"] == 1
        assert "automata.dfa.tables.sets" in snap

    def test_store_probes_report_attribute_counters(self):
        from repro.store.store import ViewStore

        store = ViewStore()
        registry = MetricsRegistry()
        store.bind_metrics(registry)
        store.put("db", CATALOG)
        store.query_serialized("db", QUERY)
        snap = registry.snapshot()
        assert snap["store.arena.reads"] == store.arena_reads == 1
        assert snap["store.documents.count"] == 1
        assert snap["store.arena.builds"] >= 1

    def test_lru_values_view(self):
        cache = LRUCache(4)
        cache.put("a", 1)
        cache.put("b", 2)
        assert sorted(cache.values()) == [1, 2]


# ----------------------------------------------------------------------
# The service's telemetry surface
# ----------------------------------------------------------------------


def _wait_for(predicate, timeout: float = 5.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        value = predicate()
        if value:
            return value
        time.sleep(0.01)
    raise AssertionError("condition not reached within timeout")


class TestServiceTelemetry:
    def test_metrics_migrate_to_registry_with_legacy_view(self):
        with QueryService(config=ServiceConfig(batch_window=0.001)) as svc:
            svc.put("db", CATALOG)
            svc.query("db", QUERY)
            legacy = svc.metrics()
            assert legacy["requests"] == 1
            assert legacy["snapshot_reads"] == 1
            snap = svc.registry.snapshot()
            assert snap["service.requests.total"] == 1
            assert snap["service.reads.snapshot"] == 1
            assert snap["service.request.latency"]["count"] == 1
            assert snap["service.request.latency"]["p99"] > 0
            assert snap["service.dispatch.batch_size"]["count"] == 1
            assert "service.queue.depth" in snap
            assert "store.cache.results.hits" in snap
            stats = svc.stats()
            assert stats["service"]["requests"] == 1  # legacy shape intact
            assert stats["metrics"]["service.requests.total"] == 1
            assert stats["traces"]["enabled"] is True

    def test_request_trace_threads_queue_and_engine_spans(self):
        config = ServiceConfig(batch_window=0.001, trace_sample=1)
        with QueryService(config=config) as svc:
            svc.put("db", CATALOG)
            svc.query("db", QUERY)
            records = _wait_for(svc.traces)
            record = records[0]
            assert record["name"] == "service.query"
            assert record["meta"]["target"] == "db"
            assert record["meta"]["outcome"] == "ok"
            names = [s["name"] for s in record["spans"]]
            assert "queue" in names
            assert "scan" in names
            assert "serialize" in names

    def test_disabled_metrics_mode(self):
        config = ServiceConfig(batch_window=0.001, metrics=False)
        with QueryService(config=config) as svc:
            svc.put("db", CATALOG)
            result = svc.query("db", QUERY)
            assert len(result) == 3
            assert svc.registry.snapshot() == {}
            assert svc.metrics()["requests"] == 0  # null instruments
            assert svc.traces() == []
            assert svc.stats()["metrics"] == {}

    def test_trace_sample_zero_disables_tracing_only(self):
        config = ServiceConfig(batch_window=0.001, trace_sample=0)
        with QueryService(config=config) as svc:
            svc.put("db", CATALOG)
            svc.query("db", QUERY)
            assert svc.traces() == []
            assert svc.metrics()["requests"] == 1

    def test_bad_config_rejected(self):
        with pytest.raises(ValueError):
            ServiceConfig(trace_sample=-1)


# ----------------------------------------------------------------------
# The wire surface: metrics/traces ops, loadgen smoke
# ----------------------------------------------------------------------


@pytest.fixture
def wire():
    svc = QueryService(
        config=ServiceConfig(batch_window=0.001, trace_sample=1)
    )
    svc.put("db", CATALOG)
    server = ServiceServer(svc)
    host, port = server.start()
    client = Client(host, port, timeout=10.0)
    yield svc, server, client, host, port
    client.close()
    server.stop()


class TestWire:
    def test_metrics_op_matches_in_process_snapshot(self, wire):
        svc, _, client, _, _ = wire
        client.query("db", QUERY)
        over_wire = client.metrics()
        assert over_wire["service.requests.total"] == 1
        in_process = svc.registry.snapshot()
        assert (
            over_wire["service.requests.total"]
            == in_process["service.requests.total"]
        )
        stats = client.stats()
        assert stats["metrics"]["service.requests.total"] == 1
        assert stats["service"]["requests"] == 1

    def test_traces_op_and_drain(self, wire):
        _, _, client, _, _ = wire
        client.query("db", QUERY)
        records = _wait_for(lambda: client.traces())
        assert records[0]["name"] == "service.query"
        assert any(s["name"] == "queue" for s in records[0]["spans"])
        drained = client.traces(drain=True)
        assert drained  # drain returns what was buffered...
        assert client.traces() == []  # ...and empties the ring

    def test_unknown_op_is_typed_error(self, wire):
        _, _, client, _, _ = wire
        with pytest.raises(BadRequestError, match="unknown op"):
            client.call("bogus")
        # The connection survives a bad request.
        assert client.ping() == "pong"

    def test_loadgen_smoke_writes_trajectory(self, wire, tmp_path):
        sys.path.insert(
            0, os.path.join(os.path.dirname(__file__), "..", "benchmarks")
        )
        try:
            import loadgen
        finally:
            sys.path.pop(0)
        _, _, client, host, port = wire
        loadgen.ensure_document(client, "xmark", factor=0.001)
        entry = loadgen.run_load(
            host, port,
            qps=80.0, duration=0.5, clients=2,
            target="xmark", write_every=10, label="smoke",
        )
        assert entry["requests"] >= 1
        assert entry["errors"] == 0
        assert entry["writes"] >= 1
        assert math.isfinite(entry["p99_ms"]) and entry["p99_ms"] > 0
        assert entry["p50_ms"] <= entry["p95_ms"] <= entry["p99_ms"]
        out = tmp_path / "BENCH_service.json"
        loadgen.append_run(str(out), entry)
        loadgen.append_run(str(out), dict(entry, label="smoke-2"))
        written = json.loads(out.read_text(encoding="utf-8"))
        assert written["benchmark"] == "service-loadgen"
        assert [run["label"] for run in written["runs"]] == ["smoke", "smoke-2"]

    def test_loadgen_percentiles_exact(self):
        sys.path.insert(
            0, os.path.join(os.path.dirname(__file__), "..", "benchmarks")
        )
        try:
            import loadgen
        finally:
            sys.path.pop(0)
        assert loadgen.percentile([1.0, 2.0, 3.0, 4.0], 50.0) == pytest.approx(2.5)
        assert loadgen.percentile([1.0, 2.0, 3.0, 4.0], 100.0) == pytest.approx(4.0)
        assert loadgen.percentile([7.0], 99.0) == pytest.approx(7.0)
        assert math.isnan(loadgen.percentile([], 50.0))
