"""Unit tests for the XML parser and serializer."""

import pytest

from repro.xmltree import (
    XMLSyntaxError,
    deep_equal,
    element,
    parse,
    parse_file,
    serialize,
    write_file,
)
from repro.xmltree.parser import decode_entities


class TestBasicParsing:
    def test_single_empty_element(self):
        root = parse("<a/>")
        assert root.label == "a"
        assert root.children == []

    def test_open_close(self):
        root = parse("<a></a>")
        assert root.label == "a" and root.children == []

    def test_text_content(self):
        root = parse("<a>hello</a>")
        assert root.own_text() == "hello"

    def test_nested_elements(self):
        root = parse("<a><b><c/></b></a>")
        assert root.children[0].label == "b"
        assert root.children[0].children[0].label == "c"

    def test_mixed_content(self):
        root = parse("<a>x<b/>y</a>", strip_whitespace=False)
        kinds = [(c.is_text, getattr(c, "value", getattr(c, "label", None))) for c in root.children]
        assert kinds == [(True, "x"), (False, "b"), (True, "y")]

    def test_attributes_double_and_single_quotes(self):
        root = parse("<a x=\"1\" y='two'/>")
        assert root.attrs == {"x": "1", "y": "two"}

    def test_attribute_whitespace_tolerance(self):
        root = parse('<a x = "1" />')
        assert root.attrs == {"x": "1"}

    def test_names_with_punctuation(self):
        root = parse("<ns:a-b.c_d/>")
        assert root.label == "ns:a-b.c_d"


class TestWhitespaceHandling:
    def test_whitespace_stripped_by_default(self):
        root = parse("<a>\n  <b/>\n</a>")
        assert len(root.children) == 1

    def test_whitespace_kept_on_request(self):
        root = parse("<a>\n  <b/>\n</a>", strip_whitespace=False)
        assert len(root.children) == 3
        assert root.children[0].is_text

    def test_significant_text_never_stripped(self):
        root = parse("<a>  x  </a>")
        assert root.own_text() == "  x  "


class TestEntities:
    def test_predefined_entities(self):
        root = parse("<a>&lt;&amp;&gt;&quot;&apos;</a>")
        assert root.own_text() == "<&>\"'"

    def test_numeric_decimal(self):
        assert parse("<a>&#65;</a>").own_text() == "A"

    def test_numeric_hex(self):
        assert parse("<a>&#x41;</a>").own_text() == "A"

    def test_entity_in_attribute(self):
        assert parse('<a x="a&amp;b"/>').attrs["x"] == "a&b"

    def test_unknown_entity_raises(self):
        with pytest.raises(XMLSyntaxError):
            parse("<a>&nope;</a>")

    def test_unterminated_entity_raises(self):
        with pytest.raises(XMLSyntaxError):
            parse("<a>&amp</a>")

    def test_decode_entities_passthrough(self):
        assert decode_entities("plain") == "plain"


class TestMiscMarkup:
    def test_xml_declaration(self):
        root = parse('<?xml version="1.0"?><a/>')
        assert root.label == "a"

    def test_comments_skipped(self):
        root = parse("<a><!-- note --><b/><!-- more --></a>")
        assert [c.label for c in root.child_elements()] == ["b"]

    def test_comment_before_root(self):
        assert parse("<!-- hi --><a/>").label == "a"

    def test_doctype_skipped(self):
        assert parse("<!DOCTYPE a><a/>").label == "a"

    def test_doctype_with_internal_subset(self):
        assert parse("<!DOCTYPE a [<!ELEMENT a EMPTY>]><a/>").label == "a"

    def test_processing_instruction_inside(self):
        root = parse("<a><?target data?><b/></a>")
        assert [c.label for c in root.child_elements()] == ["b"]

    def test_cdata_becomes_text(self):
        root = parse("<a><![CDATA[<raw> & text]]></a>")
        assert root.own_text() == "<raw> & text"


class TestErrors:
    @pytest.mark.parametrize(
        "bad",
        [
            "",
            "   ",
            "<a>",
            "<a></b>",
            "<a",
            "<a x=1/>",
            '<a x="1/>',
            "<a/><b/>",
            "<a></a>trailing",
            "text<a/>",
            "<a><!-- unterminated</a>",
            "<a><![CDATA[ unterminated</a>",
        ],
    )
    def test_malformed_raises(self, bad):
        with pytest.raises(XMLSyntaxError):
            parse(bad)

    def test_error_carries_position(self):
        try:
            parse("<a></b>")
        except XMLSyntaxError as exc:
            assert exc.pos >= 0
        else:  # pragma: no cover
            pytest.fail("expected XMLSyntaxError")


class TestRoundTrip:
    def test_serialize_compact(self):
        root = element("a", element("b", "x"), attrs={"k": "v"})
        assert serialize(root) == '<a k="v"><b>x</b></a>'

    def test_serialize_self_closing(self):
        assert serialize(element("a")) == "<a/>"

    def test_serialize_escapes_text(self):
        assert serialize(element("a", "x<&>y")) == "<a>x&lt;&amp;&gt;y</a>"

    def test_serialize_escapes_attr(self):
        assert serialize(element("a", attrs={"k": 'a"<b'})) == '<a k="a&quot;&lt;b"/>'

    def test_parse_serialize_round_trip(self):
        doc = '<db><part id="p1"><pname>key&amp;board</pname></part><part/></db>'
        assert serialize(parse(doc)) == doc

    def test_pretty_print_round_trips(self):
        root = element(
            "db",
            element("part", element("pname", "kb"), element("price", "10")),
        )
        pretty = serialize(root, indent="  ")
        assert deep_equal(parse(pretty), root)
        assert "\n" in pretty

    def test_deep_document_round_trip(self):
        doc = "<n>" * 3000 + "x" + "</n>" * 3000
        root = parse(doc)
        assert serialize(root) == doc

    def test_file_round_trip(self, tmp_path):
        root = element("db", element("part", "x"))
        path = str(tmp_path / "doc.xml")
        write_file(root, path)
        assert deep_equal(parse_file(path), root)

    def test_file_round_trip_pretty(self, tmp_path):
        root = element("db", element("part", element("pname", "kb")))
        path = str(tmp_path / "doc.xml")
        write_file(root, path, indent="  ")
        assert deep_equal(parse_file(path), root)
