"""Cross-algorithm equivalence for the five transform evaluators.

The copy-and-update baseline executes the conceptual semantics
literally (snapshot, destructive update), so it is the reference; the
four paper algorithms must produce structurally identical trees on the
paper's examples, handcrafted corner cases, and random inputs.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.transform import (
    TransformQuery,
    parse_transform_query,
    transform_copy_update,
    transform_naive,
    transform_sax,
    transform_topdown,
    transform_twopass,
)
from repro.updates import parse_update
from repro.xmltree import deep_equal, parse, serialize
from repro.xpath.normalize import UnsupportedPathError

from tests.strategies import trees, xpath_queries

ALGORITHMS = {
    "naive": transform_naive,
    "topdown": transform_topdown,
    "twopass": transform_twopass,
    "sax": transform_sax,
}


@pytest.fixture
def doc():
    """Fig. 1's shape with concrete values."""
    return parse(
        """
        <db>
          <part>
            <pname>keyboard</pname>
            <supplier><sname>HP</sname><price>12</price><country>US</country></supplier>
            <supplier><sname>Dell</sname><price>20</price><country>A</country></supplier>
            <part>
              <pname>key</pname>
              <supplier><sname>Acme</sname><price>16</price><country>B</country></supplier>
            </part>
          </part>
          <part>
            <pname>mouse</pname>
            <supplier><sname>HP</sname><price>8</price><country>A</country></supplier>
          </part>
        </db>
        """
    )


UPDATES = [
    "delete $a//price",
    "delete $a//supplier[country = 'A']/price",
    "delete $a//supplier[country = 'c1' or country = 'c2']/price",
    "delete $a/part",
    "delete $a/part[pname = 'keyboard']",
    "insert <supplier><sname>New</sname></supplier> into $a//part",
    "insert <checked/> into $a//supplier[price < 15]",
    "insert <x/> into $a//part[pname = 'keyboard']//part"
    "[not(supplier/sname = 'HP') and not(supplier/price < 15)]",
    "replace $a//price with <price>9.99</price>",
    "replace $a/part[pname = 'mouse'] with <discontinued/>",
    "rename $a//pname as name",
    "rename $a/part[part]//supplier as vendor",
    "delete $a//nothing",
    "insert <y/> into $a/part/*",
    "delete $a/part//.",
]


class TestAgainstCopyUpdate:
    @pytest.mark.parametrize("update_text", UPDATES)
    @pytest.mark.parametrize("name", sorted(ALGORITHMS))
    def test_algorithms_match_reference(self, doc, update_text, name):
        query = TransformQuery(parse_update(update_text))
        expected = transform_copy_update(doc, query)
        actual = ALGORITHMS[name](doc, query)
        assert deep_equal(actual, expected), (
            f"{name} diverges on {update_text}:\n"
            f"  expected {serialize(expected)}\n"
            f"  actual   {serialize(actual)}"
        )

    @pytest.mark.parametrize("name", sorted(ALGORITHMS))
    def test_source_tree_untouched(self, doc, name):
        before = serialize(doc)
        query = TransformQuery(parse_update("delete $a//price"))
        ALGORITHMS[name](doc, query)
        assert serialize(doc) == before

    def test_example_1_1_delete_price(self, doc):
        # transform copy $a := doc("foo") modify do delete $a//price return $a
        query = parse_transform_query(
            'transform copy $a := doc("foo") modify do delete $a//price return $a'
        )
        result = transform_topdown(doc, query)
        assert "price" not in serialize(result)
        assert "price" in serialize(doc)

    def test_example_1_1_security_view(self, doc):
        query = parse_transform_query(
            'transform copy $a := doc("foo") modify do '
            "delete $a//supplier[country = 'A' or country = 'B']/price return $a"
        )
        result = transform_twopass(doc, query)
        text = serialize(result)
        # US supplier price survives; A and B supplier prices are gone.
        assert "<price>12</price>" in text
        assert "<price>20</price>" not in text
        assert "<price>16</price>" not in text
        assert "<price>8</price>" not in text


class TestTransformQueryParsing:
    def test_parse_full_syntax(self):
        query = parse_transform_query(
            'transform copy $a := doc("T0") modify do delete $a//price return $a'
        )
        assert query.doc == "T0"
        assert query.var == "a"
        assert query.update.kind == "delete"

    def test_parse_insert_with_content(self):
        query = parse_transform_query(
            'transform copy $d := doc("f") modify do '
            "insert <supplier><sname>HP</sname></supplier> into $d//part return $d"
        )
        assert query.update.kind == "insert"
        assert query.var == "d"

    def test_str_round_trip(self):
        text = 'transform copy $a := doc("T0") modify do delete $a//price return $a'
        assert str(parse_transform_query(text)) == text

    def test_wrong_return_variable(self):
        from repro.xpath.lexer import XPathSyntaxError

        with pytest.raises(XPathSyntaxError):
            parse_transform_query(
                'transform copy $a := doc("T") modify do delete $a/x return $b'
            )

    @pytest.mark.parametrize(
        "bad",
        [
            "",
            "transform copy $a modify do delete $a/x return $a",
            'transform copy $a := doc("T") do delete $a/x return $a',
            'transform copy $a := doc("T") modify do delete $a/x',
        ],
    )
    def test_malformed(self, bad):
        from repro.xpath.lexer import XPathSyntaxError

        with pytest.raises(XPathSyntaxError):
            parse_transform_query(bad)


class TestCornerCases:
    @pytest.mark.parametrize("name", sorted(ALGORITHMS))
    def test_update_hits_nothing(self, name):
        doc = parse("<r><a/></r>")
        query = TransformQuery(parse_update("delete $a/zzz"))
        result = ALGORITHMS[name](doc, query)
        assert deep_equal(result, doc)

    @pytest.mark.parametrize("name", sorted(ALGORITHMS))
    def test_nested_matches_insert(self, name):
        doc = parse("<r><a><a><a/></a></a></r>")
        query = TransformQuery(parse_update("insert <m/> into $a//a"))
        expected = transform_copy_update(doc, query)
        assert deep_equal(ALGORITHMS[name](doc, query), expected)

    @pytest.mark.parametrize("name", sorted(ALGORITHMS))
    def test_nested_matches_delete(self, name):
        doc = parse("<r><a><a><b/></a></a><b><a/></b></r>")
        query = TransformQuery(parse_update("delete $a//a"))
        expected = transform_copy_update(doc, query)
        assert deep_equal(ALGORITHMS[name](doc, query), expected)

    @pytest.mark.parametrize("name", sorted(ALGORITHMS))
    def test_mixed_content_preserved(self, name):
        doc = parse("<r>x<a/>y<b/>z</r>", strip_whitespace=False)
        query = TransformQuery(parse_update("delete $a/a"))
        result = ALGORITHMS[name](doc, query)
        assert serialize(result) == "<r>xy<b/>z</r>"

    @pytest.mark.parametrize("name", sorted(ALGORITHMS))
    def test_attributes_preserved(self, name):
        doc = parse('<r id="1"><a k="v"><b/></a></r>')
        query = TransformQuery(parse_update("delete $a/a/b"))
        result = ALGORITHMS[name](doc, query)
        assert serialize(result) == '<r id="1"><a k="v"/></r>'

    @pytest.mark.parametrize("name", sorted(ALGORITHMS))
    def test_context_qualifier(self, name):
        doc = parse("<r><flag/><a/></r>")
        query = TransformQuery(parse_update("delete $a/.[flag]/a"))
        expected = transform_copy_update(doc, query)
        assert deep_equal(ALGORITHMS[name](doc, query), expected)
        query2 = TransformQuery(parse_update("delete $a/.[zzz]/a"))
        assert deep_equal(ALGORITHMS[name](doc, query2), doc)

    @pytest.mark.parametrize("name", sorted(ALGORITHMS))
    def test_qualifier_needs_descendants(self, name):
        doc = parse("<r><a><x><y><deep/></y></x></a><a><x/></a></r>")
        query = TransformQuery(parse_update("delete $a/a[.//deep]"))
        expected = transform_copy_update(doc, query)
        assert deep_equal(ALGORITHMS[name](doc, query), expected)


class TestPropertyEquivalence:
    @settings(max_examples=120, deadline=None)
    @given(
        tree=trees(),
        query_text=xpath_queries(),
        kind=st.sampled_from(["insert", "delete", "replace", "rename"]),
    )
    def test_all_algorithms_agree_with_reference(self, tree, query_text, kind):
        target = ("$a" + query_text) if query_text.startswith("//") else f"$a/{query_text}"
        if kind == "insert":
            update_text = f"insert <new>1</new> into {target}"
        elif kind == "delete":
            update_text = f"delete {target}"
        elif kind == "replace":
            update_text = f"replace {target} with <sub/>"
        else:
            update_text = f"rename {target} as renamed"
        query = TransformQuery(parse_update(update_text))
        try:
            expected = transform_copy_update(tree, query)
        except RecursionError:  # pragma: no cover - bounded trees
            return
        for name, algorithm in ALGORITHMS.items():
            try:
                actual = algorithm(tree, query)
            except UnsupportedPathError:
                return  # outside the automaton core (e.g. '//.[q]')
            assert deep_equal(actual, expected), (
                f"{name} diverges on {update_text} over {serialize(tree)}"
            )
