"""Tests for the XMark-shaped generator and the Fig. 11 workload."""

import pytest

from repro.transform import (
    transform_copy_update,
    transform_naive,
    transform_sax,
    transform_topdown,
    transform_twopass,
)
from repro.xmark import (
    EMBEDDED_PATHS,
    QUERY_IDS,
    composition_pairs,
    document_stats,
    generate,
    insert_transform,
    user_query_for,
    write_xmark_file,
)
from repro.xmark.generator import XMarkGenerator
from repro.xmltree import deep_equal, parse_file
from repro.xpath import evaluate, parse_xpath
from repro.compose import compose, evaluate_composed, naive_compose
from repro.xmltree.node import Element


@pytest.fixture(scope="module")
def doc():
    return generate(0.002, seed=7)


class TestGenerator:
    def test_deterministic(self):
        a = generate(0.001, seed=3)
        b = generate(0.001, seed=3)
        assert deep_equal(a, b)

    def test_seed_changes_content(self):
        a = generate(0.001, seed=3)
        b = generate(0.001, seed=4)
        assert not deep_equal(a, b)

    def test_top_level_shape(self, doc):
        labels = [c.label for c in doc.child_elements()]
        assert labels == ["regions", "people", "open_auctions", "closed_auctions"]
        assert doc.label == "site"

    def test_scaling_monotonic(self):
        small = document_stats(generate(0.001, seed=1))
        large = document_stats(generate(0.004, seed=1))
        assert large["elements"] > small["elements"]
        assert large["persons"] > small["persons"]

    def test_counts_match_factor(self, doc):
        stats = document_stats(doc)
        gen = XMarkGenerator(0.002, seed=7)
        assert stats["items"] == gen.item_count
        assert stats["persons"] == gen.person_count
        assert stats["open_auctions"] == gen.open_count
        assert stats["closed_auctions"] == gen.closed_count

    def test_invalid_factor(self):
        with pytest.raises(ValueError):
            XMarkGenerator(0)

    def test_streamed_file_equals_tree(self, tmp_path):
        path = str(tmp_path / "xmark.xml")
        size = write_xmark_file(path, 0.001, seed=7)
        assert size > 0
        streamed = parse_file(path)
        in_memory = generate(0.001, seed=7)
        assert deep_equal(streamed, in_memory)


class TestWorkloadSelectivity:
    """Every Fig. 11 query must select a non-empty, plausible node set."""

    @pytest.mark.parametrize("uid", QUERY_IDS)
    def test_query_selects_something(self, doc, uid):
        nodes = evaluate(doc, parse_xpath(EMBEDDED_PATHS[uid]))
        assert nodes, f"{uid} selected nothing"

    def test_u2_selects_exactly_one(self, doc):
        nodes = evaluate(doc, parse_xpath(EMBEDDED_PATHS["U2"]))
        assert len(nodes) == 1

    def test_u3_selects_most_but_not_all_persons(self, doc):
        persons = evaluate(doc, parse_xpath(EMBEDDED_PATHS["U1"]))
        adults = evaluate(doc, parse_xpath(EMBEDDED_PATHS["U3"]))
        assert 0 < len(adults) < len(persons)

    def test_u9_subset_of_u4(self, doc):
        all_items = {id(n) for n in evaluate(doc, parse_xpath(EMBEDDED_PATHS["U4"]))}
        us_items = {id(n) for n in evaluate(doc, parse_xpath(EMBEDDED_PATHS["U9"]))}
        assert us_items and us_items < all_items

    def test_u6_deep_path_reaches_keywords(self, doc):
        nodes = evaluate(doc, parse_xpath(EMBEDDED_PATHS["U6"]))
        assert all(n.label == "keyword" for n in nodes)

    def test_u10_excludes_auction_2(self, doc):
        nodes = evaluate(
            doc,
            parse_xpath("//open_auctions/open_auction[@id = 'open_auction2']/bidder"),
        )
        u10 = evaluate(doc, parse_xpath(EMBEDDED_PATHS["U10"]))
        excluded = {id(n) for n in nodes}
        assert all(id(n) not in excluded for n in u10)


class TestTransformsOnWorkload:
    """All algorithms agree on real workload queries over XMark data."""

    @pytest.mark.parametrize("uid", QUERY_IDS)
    def test_insert_transforms_agree(self, doc, uid):
        query = insert_transform(uid)
        expected = transform_copy_update(doc, query)
        assert deep_equal(transform_topdown(doc, query), expected)
        assert deep_equal(transform_twopass(doc, query), expected)
        assert deep_equal(transform_sax(doc, query), expected)

    @pytest.mark.parametrize("uid", ["U2", "U7", "U9", "U10"])
    def test_naive_agrees_on_selected_queries(self, doc, uid):
        # Naive is quadratic; spot-check a representative subset.
        query = insert_transform(uid)
        expected = transform_copy_update(doc, query)
        assert deep_equal(transform_naive(doc, query), expected)


class TestCompositionPairs:
    @pytest.mark.parametrize(
        "pair", composition_pairs(), ids=[f"{t}-{u}" for t, u, _, _ in composition_pairs()]
    )
    def test_compose_equals_naive_on_xmark(self, doc, pair):
        _tid, _uid, transform_query, user_query = pair
        expected = naive_compose(doc, user_query, transform_query)
        actual = evaluate_composed(doc, compose(user_query, transform_query))
        assert len(actual) == len(expected)
        for got, want in zip(actual, expected):
            assert isinstance(got, Element) and isinstance(want, Element)
            assert deep_equal(got, want)

    def test_u8_u10_composes_statically(self, doc):
        # The delete of U8's bidders is decided per-auction at runtime
        # but without any embedded topDown call.
        _, _, tq, uq = composition_pairs()[3]
        composed = compose(uq, tq)
        assert "topDown" not in str(composed)
