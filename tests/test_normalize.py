"""Tests for normalization: step form and qualifier normal form."""

import pytest
from hypothesis import given, settings

from repro.xmltree import parse
from repro.xpath import parse_xpath
from repro.xpath.ast import TrueQual
from repro.xpath.evaluator import eval_qualifier
from repro.xpath.normalize import (
    BETA_DOS,
    BETA_LABEL,
    BETA_WILDCARD,
    NAnd,
    NChild,
    NDesc,
    NLabel,
    NSeq,
    NText,
    NTrue,
    QualifierSpace,
    UnsupportedPathError,
    normalize_steps,
)
from repro.transform.qualdp import eval_nq_direct

from tests.strategies import trees, _qualifiers
from hypothesis import strategies as st


class TestStepForm:
    def test_simple_chain(self):
        _, steps = normalize_steps(parse_xpath("a/b/c"))
        assert [s.beta for s in steps] == [BETA_LABEL] * 3
        assert [s.name for s in steps] == ["a", "b", "c"]

    def test_descendant_and_wildcard(self):
        _, steps = normalize_steps(parse_xpath("//a/*"))
        assert [s.beta for s in steps] == [BETA_DOS, BETA_LABEL, BETA_WILDCARD]

    def test_consecutive_descendants_collapse(self):
        _, steps = normalize_steps(parse_xpath("a////b"))
        assert [s.beta for s in steps] == [BETA_LABEL, BETA_DOS, BETA_LABEL]

    def test_qualifiers_merge_with_and(self):
        _, steps = normalize_steps(parse_xpath("a[x][y]"))
        (step,) = steps
        assert not isinstance(step.qual, TrueQual)
        assert "and" in str(step.qual)

    def test_self_qualifier_folds_into_previous(self):
        _, steps = normalize_steps(parse_xpath("a/.[x]/b"))
        assert len(steps) == 2
        assert not isinstance(steps[0].qual, TrueQual)

    def test_leading_self_qualifier_becomes_context(self):
        context, steps = normalize_steps(parse_xpath(".[x]/a"))
        assert not isinstance(context, TrueQual)
        assert len(steps) == 1

    def test_self_after_descendant_rejected(self):
        with pytest.raises(UnsupportedPathError):
            normalize_steps(parse_xpath("a//.[x]"))

    def test_attr_rejected(self):
        with pytest.raises(UnsupportedPathError):
            normalize_steps(parse_xpath("a/@id"))

    def test_step_matches_label(self):
        _, steps = normalize_steps(parse_xpath("a/*//b"))
        assert steps[0].matches_label("a") and not steps[0].matches_label("b")
        assert steps[1].matches_label("anything")
        assert steps[2].matches_label("anything")  # dos consumes any label

    def test_str_forms(self):
        _, steps = normalize_steps(parse_xpath("a[x]/*//b"))
        rendered = [str(s) for s in steps]
        assert rendered[0].startswith("a[")
        assert rendered[1] == "*"
        assert rendered[2] == "//"


class TestQualifierNormalForm:
    def test_label_rule(self):
        # l → */ε[label()=l]
        space = QualifierSpace()
        qual = parse_xpath("x[a]").steps[0].quals[0]
        expr = space.normalize_qual(qual)
        assert isinstance(expr, NChild)
        assert isinstance(expr.inner, NSeq) or isinstance(expr.inner, NLabel)

    def test_comparison_rule(self):
        # p = 's' → p[ε='s']
        space = QualifierSpace()
        qual = parse_xpath("x[a = 'v']").steps[0].quals[0]
        expr = space.normalize_qual(qual)
        assert isinstance(expr, NChild)

    def test_empty_path_comparison(self):
        space = QualifierSpace()
        qual = parse_xpath("x[. = 'v']").steps[0].quals[0]
        expr = space.normalize_qual(qual)
        assert isinstance(expr, NText)

    def test_descendant_path(self):
        space = QualifierSpace()
        qual = parse_xpath("x[.//a]").steps[0].quals[0]
        expr = space.normalize_qual(qual)
        assert isinstance(expr, NDesc)

    def test_interning_shares_subexpressions(self):
        # Example 5.1: the two supplier-rooted qualifier paths share
        # their common sub-expressions.
        space = QualifierSpace()
        qual = parse_xpath(
            "x[not(supplier/sname = 'HP') and not(supplier/price < 15)]"
        ).steps[0].quals[0]
        space.normalize_qual(qual)
        size_once = len(space)
        space.normalize_qual(qual)  # interning again adds nothing
        assert len(space) == size_once

    def test_topological_order(self):
        space = QualifierSpace()
        qual = parse_xpath("x[a[b]/c = 'v' and not(d)]").steps[0].quals[0]
        space.normalize_qual(qual)
        for expr in space.expressions:
            for child in expr.children():
                assert child.nq_id < expr.nq_id

    def test_true_qualifier(self):
        space = QualifierSpace()
        assert isinstance(space.normalize_qual(TrueQual()), NTrue)

    def test_and_collapses_true(self):
        space = QualifierSpace()
        left = space.true()
        right = space.nq_label("a")
        assert space.nq_and(left, right) is right


class TestNormalFormSemantics:
    """The normalized expression must mean exactly what the original
    qualifier means — eval_nq_direct vs eval_qualifier, everywhere."""

    @settings(max_examples=150, deadline=None)
    @given(tree=trees(), qual_text=_qualifiers(2))
    def test_direct_nq_matches_reference(self, tree, qual_text):
        qual = parse_xpath(f"x[{qual_text}]").steps[0].quals[0]
        space = QualifierSpace()
        expr = space.normalize_qual(qual)
        for node in tree.descendants_or_self():
            assert eval_nq_direct(node, expr) == eval_qualifier(node, qual)
