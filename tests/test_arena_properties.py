"""Property tests pinning the columnar arena to the Node model.

Four layers are held together on random trees, random ``X``
expressions and seeded XMark documents:

* **representation** — ``freeze -> thaw`` is the identity on trees,
  ``thaw -> freeze`` reproduces the columns exactly, and the own-text
  column equals ``Element.own_text()`` everywhere;
* **qualifiers** — the arena closures of
  :mod:`repro.xpath.arena_compiler` agree with ``eval_qualifier`` and
  with the Node closures at every element;
* **selection** — ``select_indices`` (the arena DFA walk) agrees with
  ``run_select`` (the PR-3 Node DFA walk) and with the specification
  oracle, and the streaming selector fed the arena replay source
  yields the same subtrees;
* **queries and transforms** — the arena XQuery evaluator matches
  ``evaluate_query``, and the arena transform-to-text path is
  byte-identical to serializing ``transform_topdown``.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.automata.arena_run import select_indices, serialize_arena_transformed
from repro.automata.selecting import build_selecting_nfa
from repro.streaming.select import stream_select
from repro.transform.query import TransformQuery
from repro.transform.topdown import transform_topdown
from repro.updates import parse_update
from repro.xmark.generator import generate
from repro.xmark.queries import EMBEDDED_PATHS, user_query_for
from repro.xmltree.arena import freeze, thaw
from repro.xmltree.node import Element, deep_equal
from repro.xmltree.sax import tree_to_events
from repro.xmltree.serializer import serialize, serialize_arena
from repro.xpath.arena_compiler import compile_qualifier_arena
from repro.xpath.compiler import compile_qualifier
from repro.xpath.evaluator import eval_qualifier, evaluate
from repro.xpath.normalize import UnsupportedPathError
from repro.xpath.parser import parse_xpath
from repro.xquery.arena_eval import ArenaEvaluator, evaluate_query_arena
from repro.xquery.ast import PathFrom, UserQuery, VarRef
from repro.xquery.evaluator import evaluate_query

from tests.strategies import trees, xpath_queries


def _selecting(query_text):
    path = parse_xpath(query_text)
    try:
        return path, build_selecting_nfa(path)
    except (UnsupportedPathError, ValueError):
        return None


def _items_equal(a, b) -> bool:
    if len(a) != len(b):
        return False
    for x, y in zip(a, b):
        if isinstance(x, Element) != isinstance(y, Element):
            return False
        if isinstance(x, Element):
            if not deep_equal(x, y):
                return False
        elif x != y:
            return False
    return True


class TestRepresentation:
    @settings(max_examples=200, deadline=None)
    @given(tree=trees())
    def test_freeze_thaw_freeze_round_trip(self, tree):
        arena = freeze(tree)
        thawed = thaw(arena)
        assert deep_equal(tree, thawed)
        again = freeze(thawed)
        assert arena.sym == again.sym
        assert arena.end == again.end
        assert arena.parent == again.parent
        assert arena.payload == again.payload
        assert arena.attrs == again.attrs

    @settings(max_examples=200, deadline=None)
    @given(tree=trees())
    def test_own_text_column_matches_node_model(self, tree):
        arena = freeze(tree)
        nodes = list(tree.descendants_or_self())
        indices = list(arena.iter_elements())
        assert len(nodes) == len(indices)
        for node, i in zip(nodes, indices):
            assert arena.label(i) == node.label
            assert arena.own_text(i) == node.own_text()
            assert dict(arena.attrs_of(i)) == node.attrs

    @settings(max_examples=150, deadline=None)
    @given(tree=trees())
    def test_serialize_arena_is_byte_identical(self, tree):
        arena = freeze(tree)
        assert serialize_arena(arena) == serialize(tree)
        # ... for every subtree, not just the root.
        nodes = list(tree.descendants_or_self())
        indices = list(arena.iter_elements())
        for node, i in zip(nodes, indices):
            assert serialize_arena(arena, i) == serialize(node)

    @settings(max_examples=100, deadline=None)
    @given(tree=trees())
    def test_size_and_depth_match(self, tree):
        arena = freeze(tree)
        assert len(arena) == tree.size()
        assert arena.depth() == tree.depth()


class TestQualifierEquivalence:
    @settings(max_examples=200, deadline=None)
    @given(tree=trees(), query_text=xpath_queries())
    def test_arena_closures_match_reference_and_node_closures(
        self, tree, query_text
    ):
        built = _selecting(query_text)
        if built is None:
            return
        _, selecting = built
        arena = freeze(tree)
        nodes = list(tree.descendants_or_self())
        indices = list(arena.iter_elements())
        for state in selecting.states:
            if not state.has_qualifier:
                continue
            node_check = compile_qualifier(state.qual)
            arena_check = compile_qualifier_arena(state.qual)
            for node, i in zip(nodes, indices):
                expected = eval_qualifier(node, state.qual)
                assert node_check(node) == expected
                assert arena_check(arena, i) == expected, (
                    f"arena qualifier diverges at {node.label} for "
                    f"{query_text}"
                )


class TestSelectEquivalence:
    @settings(max_examples=200, deadline=None)
    @given(tree=trees(), query_text=xpath_queries())
    def test_arena_select_agrees_with_node_dfa_and_oracle(
        self, tree, query_text
    ):
        built = _selecting(query_text)
        if built is None:
            return
        path, selecting = built
        arena = freeze(tree)
        via_node = selecting.run_select(tree)
        via_arena = select_indices(selecting, arena)
        oracle = [node for node in evaluate(tree, path) if node is not tree]
        assert len(via_arena) == len(via_node) == len(oracle), query_text
        for node, i in zip(oracle, via_arena):
            assert deep_equal(node, thaw(arena, i)), query_text
        # run_select dispatches on the input type.
        assert selecting.run_select(arena) == via_arena

    @settings(max_examples=100, deadline=None)
    @given(tree=trees(), query_text=xpath_queries())
    def test_streaming_replay_source_matches_event_stream(
        self, tree, query_text
    ):
        built = _selecting(query_text)
        if built is None:
            return
        path, _ = built
        arena = freeze(tree)
        via_events = [
            serialize(n)
            for n in stream_select(lambda: tree_to_events(tree), path)
        ]
        via_arena = [serialize(n) for n in stream_select(arena, path)]
        assert via_arena == via_events, query_text


class TestQueryEquivalence:
    @settings(max_examples=150, deadline=None)
    @given(tree=trees(), query_text=xpath_queries())
    def test_arena_query_matches_node_evaluator(self, tree, query_text):
        try:
            path = parse_xpath(query_text)
        except ValueError:
            return
        query = UserQuery("x", path, [], VarRef("x"))
        arena = freeze(tree)
        want = evaluate_query(tree, query)
        got = evaluate_query_arena(arena, query)
        assert _items_equal(want, got), query_text

    @settings(max_examples=150, deadline=None)
    @given(
        tree=trees(),
        source_text=xpath_queries(),
        value_text=xpath_queries(),
    )
    def test_arena_query_with_nested_paths(self, tree, source_text, value_text):
        try:
            source = parse_xpath(source_text)
            value = parse_xpath(value_text)
        except ValueError:
            return
        query = UserQuery("x", source, [], PathFrom("x", value))
        arena = freeze(tree)
        want = evaluate_query(tree, query)
        got = evaluate_query_arena(arena, query)
        assert _items_equal(want, got), (source_text, value_text)


class TestTransformEquivalence:
    @settings(max_examples=150, deadline=None)
    @given(
        tree=trees(),
        query_text=xpath_queries(),
        kind=st.sampled_from(["insert", "delete", "replace", "rename"]),
    )
    def test_arena_transform_serialize_matches_topdown(
        self, tree, query_text, kind
    ):
        built = _selecting(query_text)
        if built is None:
            return
        _, selecting = built
        target = (
            f"$a{query_text}" if query_text.startswith("//") else f"$a/{query_text}"
        )
        if kind == "insert":
            update_text = f"insert <w><v>1</v></w> into {target}"
        elif kind == "delete":
            update_text = f"delete {target}"
        elif kind == "replace":
            update_text = f"replace {target} with <w>x</w>"
        else:
            update_text = f"rename {target} as renamed"
        try:
            update = parse_update(update_text)
        except ValueError:
            return
        query = TransformQuery(update)
        arena = freeze(tree)
        want = serialize(transform_topdown(tree, query, nfa=selecting))
        got = serialize_arena_transformed(arena, update, selecting)
        assert got == want, update_text


class TestXMarkWorkload:
    """The Fig-11 queries over seeded XMark documents (three seeds)."""

    def _doc(self, seed):
        return generate(0.002, seed)

    def test_selects_and_queries_on_xmark(self):
        for seed in (7, 42, 1234):
            tree = self._doc(seed)
            arena = freeze(tree)
            assert deep_equal(tree, thaw(arena))
            for uid, path_text in EMBEDDED_PATHS.items():
                path = parse_xpath(path_text)
                selecting = build_selecting_nfa(path)
                node_sel = selecting.run_select(tree)
                arena_sel = select_indices(selecting, arena)
                assert len(node_sel) == len(arena_sel), (seed, uid)
                for node, i in zip(node_sel, arena_sel):
                    assert node.label == arena.label(i)
                query = user_query_for(uid)
                want = evaluate_query(tree, query)
                got = ArenaEvaluator(arena).evaluate(query)
                assert _items_equal(want, got), (seed, uid)
