"""Tests for the Compose Method: the paper's examples, structural
expectations, and equivalence with the Naive Composition Method."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compose import compose, evaluate_composed, naive_compose
from repro.compose.compose import Composer
from repro.compose.walk import EMPTY, UNCHANGED, UNKNOWN, walk_word, word_letters
from repro.automata import build_selecting_nfa
from repro.transform import TransformQuery
from repro.updates import parse_update
from repro.xmltree import Element, deep_equal, parse, serialize
from repro.xpath import parse_xpath
from repro.xquery import parse_user_query
from repro.xquery.ast import EmptySeq, TransformedSubtree

from tests.strategies import trees, xpath_queries


def assert_same_results(root, user_query, transform_query):
    expected = naive_compose(root, user_query, transform_query)
    composed = compose(user_query, transform_query)
    actual = evaluate_composed(root, composed)
    assert len(actual) == len(expected), (
        f"arity differs: composed {len(actual)} vs naive {len(expected)}\n"
        f"  Q:  {user_query}\n  Qt: {transform_query}\n  T:  {serialize(root)}\n"
        f"  composed: {composed}"
    )
    for got, want in zip(actual, expected):
        if isinstance(got, Element) and isinstance(want, Element):
            assert deep_equal(got, want), (
                f"item differs:\n  got  {serialize(got)}\n  want {serialize(want)}\n"
                f"  Q:  {user_query}\n  Qt: {transform_query}\n  T:  {serialize(root)}"
            )
        else:
            assert got == want or str(got) == str(want)


@pytest.fixture
def doc():
    return parse(
        """
        <db>
          <a>
            <b><q>A</q><c>A</c><c>B</c></b>
            <b><c>C</c></b>
            <x><c>D</c></x>
          </a>
          <a><b><c>E</c></b></a>
        </db>
        """
    )


class TestPaperExamples:
    def test_q1_delete_with_qualifier(self, doc):
        # Q1: delete a/b[q];  Q'1: for $x in a/b/c return $x
        qt = TransformQuery(parse_update("delete $a/a/b[q = 'A']"))
        q = parse_user_query("for $x in a/b/c return $x")
        assert_same_results(doc, q, qt)

    def test_q2_statically_true_qualifier(self, doc):
        # Q2: delete a/b/c;  Q'2: for $x in a/b[not(c = 'A')] return $x
        qt = TransformQuery(parse_update("delete $a/a/b/c"))
        q = parse_user_query("for $x in a/b where not($x/c = 'A') return $x")
        assert_same_results(doc, q, qt)

    def test_q2_written_as_step_qualifier(self, doc):
        qt = TransformQuery(parse_update("delete $a/a/b/c"))
        q = parse_user_query("for $x in a/b[not(c = 'A')] return $x")
        assert_same_results(doc, q, qt)

    def test_q3_insert_descendant(self, doc):
        # Q3: insert e into a//c;  Q'3: for $x in a/b return $x
        qt = TransformQuery(parse_update("insert <e>new</e> into $a/a//c"))
        q = parse_user_query("for $x in a/b return $x")
        assert_same_results(doc, q, qt)

    def test_example_4_2_security_view(self):
        root = parse(
            """
            <site>
              <part><pname>keyboard</pname>
                <supplier><country>A</country><price>1</price></supplier>
                <supplier><country>B</country><price>2</price></supplier>
              </part>
              <part><pname>mouse</pname>
                <supplier><country>A</country><price>3</price></supplier>
              </part>
            </site>
            """
        )
        qt = TransformQuery(parse_update("delete $a//supplier[country = 'A']"))
        q = parse_user_query("for $x in part[pname = 'keyboard']/supplier return $x")
        assert_same_results(root, q, qt)


class TestStaticDecisions:
    def test_walk_word_delete_empty(self):
        nfa = build_selecting_nfa(parse_xpath("a/b/c"))
        update = parse_update("delete $a/a/b/c")
        # From the state after 'a/b', the word 'c' hits the final state.
        states = nfa.next_states(nfa.initial_states(), "a", lambda q: True)
        states = nfa.next_states(states, "b", lambda q: True)
        assert walk_word(nfa, states, ["c"], update) == EMPTY

    def test_walk_word_disjoint_unchanged(self):
        nfa = build_selecting_nfa(parse_xpath("a/b/c"))
        update = parse_update("delete $a/a/b/c")
        states = nfa.next_states(nfa.initial_states(), "a", lambda q: True)
        assert walk_word(nfa, states, ["z"], update) == UNCHANGED

    def test_walk_word_qualified_delete_unknown(self):
        nfa = build_selecting_nfa(parse_xpath("a/b[q]"))
        update = parse_update("delete $a/a/b[q]")
        states = nfa.next_states(nfa.initial_states(), "a", lambda q: True)
        assert walk_word(nfa, states, ["b"], update) == UNKNOWN

    def test_walk_word_insert_at_end_unchanged(self):
        nfa = build_selecting_nfa(parse_xpath("a/b"))
        update = parse_update("insert <z/> into $a/a/b")
        states = nfa.next_states(nfa.initial_states(), "a", lambda q: True)
        assert walk_word(nfa, states, ["b"], update) == UNCHANGED

    def test_walk_word_insert_extending_match_unknown(self):
        nfa = build_selecting_nfa(parse_xpath("a"))
        update = parse_update("insert <b/> into $a/a")
        assert walk_word(nfa, nfa.initial_states(), ["a", "b"], update) == UNKNOWN

    def test_walk_word_insert_nonmatching_content_unchanged(self):
        nfa = build_selecting_nfa(parse_xpath("a"))
        update = parse_update("insert <z/> into $a/a")
        assert walk_word(nfa, nfa.initial_states(), ["a", "b"], update) == UNCHANGED

    def test_walk_word_rename_away_empty(self):
        nfa = build_selecting_nfa(parse_xpath("a/b"))
        update = parse_update("rename $a/a/b as z")
        states = nfa.next_states(nfa.initial_states(), "a", lambda q: True)
        assert walk_word(nfa, states, ["b"], update) == EMPTY

    def test_walk_word_rename_into_unknown(self):
        nfa = build_selecting_nfa(parse_xpath("a/b"))
        update = parse_update("rename $a/a/b as c")
        states = nfa.next_states(nfa.initial_states(), "a", lambda q: True)
        assert walk_word(nfa, states, ["c"], update) == UNKNOWN

    def test_walk_word_replace_no_rematch_empty(self):
        nfa = build_selecting_nfa(parse_xpath("a/b"))
        update = parse_update("replace $a/a/b with <z/>")
        states = nfa.next_states(nfa.initial_states(), "a", lambda q: True)
        assert walk_word(nfa, states, ["b"], update) == EMPTY

    def test_walk_word_replace_rematch_unknown(self):
        nfa = build_selecting_nfa(parse_xpath("a/b"))
        update = parse_update("replace $a/a/b with <b/>")
        states = nfa.next_states(nfa.initial_states(), "a", lambda q: True)
        assert walk_word(nfa, states, ["b"], update) == UNKNOWN

    def test_word_letters(self):
        assert word_letters(parse_xpath("a/b/c")) == ["a", "b", "c"]
        assert word_letters(parse_xpath("a/b/@id")) == ["a", "b"]
        assert word_letters(parse_xpath("a/*")) is None
        assert word_letters(parse_xpath("a//b")) is None
        assert word_letters(parse_xpath("a[x]/b")) is None

    def test_q2_condition_compiled_away(self, doc):
        # The composed Q2 contains no runtime transform calls at all:
        # the qualifier is decided at compile time.
        qt = TransformQuery(parse_update("delete $a/a/b/c"))
        q = parse_user_query("for $x in a/b where not($x/c = 'A') return $x")
        composed = compose(q, qt)
        text = str(composed)
        assert "false()" in text  # c = 'A' became statically false


class TestDisjointQueries:
    def test_fully_disjoint_no_transform_calls(self, doc):
        qt = TransformQuery(parse_update("delete $a/zzz/yyy"))
        q = parse_user_query("for $x in a/b return $x")
        composed = compose(q, qt)
        assert "topDown" not in str(composed)
        assert_same_results(doc, q, qt)

    def test_disjoint_branch_pruned(self, doc):
        # U9/U1-style: the user query visits a region the update ignores.
        qt = TransformQuery(parse_update("delete $a/a/x"))
        q = parse_user_query("for $x in a/b/c return $x")
        composed = compose(q, qt)
        assert "topDown" not in str(composed)
        assert_same_results(doc, q, qt)


class TestUpdateKindsThroughComposition:
    UPDATES = [
        "delete $a/a/b",
        "delete $a/a/b[q = 'A']",
        "delete $a//c",
        "insert <c>X</c> into $a/a/b",
        "insert <b><c>Y</c></b> into $a/a",
        "replace $a/a/b with <b><c>R</c></b>",
        "replace $a/a/b with <z/>",
        "rename $a/a/b as z",
        "rename $a/a/x as b",
        "rename $a/a/b as b2",
    ]

    QUERIES = [
        "for $x in a/b return $x",
        "for $x in a/b/c return $x",
        "for $x in a/b where $x/c = 'A' return $x",
        "for $x in a return <row>{ $x/b }</row>",
        "for $x in a/b return $x/c",
        "for $x in a//c return $x",
        "for $x in a/*/c return $x",
    ]

    @pytest.mark.parametrize("update_text", UPDATES)
    @pytest.mark.parametrize("query_text", QUERIES)
    def test_compose_matches_naive(self, doc, update_text, query_text):
        qt = TransformQuery(parse_update(update_text))
        q = parse_user_query(query_text)
        assert_same_results(doc, q, qt)


class TestPropertyEquivalence:
    @settings(max_examples=150, deadline=None)
    @given(
        tree=trees(),
        update_path=xpath_queries(),
        user_path=xpath_queries(),
        kind=st.sampled_from(["insert", "delete", "replace", "rename"]),
        shape=st.sampled_from(["bare", "path", "where", "template"]),
    )
    def test_compose_equals_naive_composition(
        self, tree, update_path, user_path, kind, shape
    ):
        target = ("$a" + update_path) if update_path.startswith("//") else f"$a/{update_path}"
        if kind == "insert":
            update_text = f"insert <b><c>1</c></b> into {target}"
        elif kind == "delete":
            update_text = f"delete {target}"
        elif kind == "replace":
            update_text = f"replace {target} with <b>r</b>"
        else:
            update_text = f"rename {target} as b"
        if shape == "bare":
            query_text = f"for $x in {user_path} return $x"
        elif shape == "path":
            query_text = f"for $x in {user_path} return $x/b"
        elif shape == "where":
            query_text = f"for $x in {user_path} where $x/b = '1' return $x"
        else:
            query_text = f"for $x in {user_path} return <row>{{ $x/a, $x/b }}</row>"
        from repro.xpath.normalize import UnsupportedPathError

        try:
            qt = TransformQuery(parse_update(update_text))
            q = parse_user_query(query_text)
            composed = compose(q, qt)
        except UnsupportedPathError:
            return
        expected = naive_compose(tree, q, qt)
        actual = evaluate_composed(tree, composed)
        assert len(actual) == len(expected), (
            f"arity: {len(actual)} vs {len(expected)}\n  Q: {query_text}\n"
            f"  Qt: {update_text}\n  T: {serialize(tree)}\n  C: {composed}"
        )
        for got, want in zip(actual, expected):
            if isinstance(got, Element) and isinstance(want, Element):
                assert deep_equal(got, want), (
                    f"item: {serialize(got)} vs {serialize(want)}\n  Q: {query_text}\n"
                    f"  Qt: {update_text}\n  T: {serialize(tree)}\n  C: {composed}"
                )
            else:
                assert got == want
