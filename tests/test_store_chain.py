"""Incremental commits: the version chain and the splice fast path.

The oracle throughout is the destructive rebuild path
(``ViewStore(incremental_commits=False)``): whatever a spliced commit
produces must serialize identically to what mutate-and-refreeze
produces for the same staged sequence — deterministically per update
kind, and property-based over random trees and random update
sequences.  On top of equivalence: chain time travel
(``pin(version=N)``), snapshot isolation for readers pinned to old
chain versions while a writer splices, structural sharing between
consecutive chain entries, and the delta-scoped invalidation receipts
(results kept by label disjointness, materializations kept by the
swallow test).
"""

import threading

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.store import MaterializationPolicy, StoreError, ViewStore
from repro.xmltree.node import deep_copy
from repro.xmltree.serializer import serialize, serialize_arena

from tests.strategies import LABELS, trees

DOC = "<db><a><x>1</x></a><b><y>2</y></b><c>3</c></db>"


def _transform(body: str, name: str = "db") -> str:
    return (
        f'transform copy $a := doc("{name}") modify do {body} return $a'
    )


def _roots_equal(left: ViewStore, right: ViewStore, name: str = "db") -> bool:
    return serialize(left.documents.get(name).root) == serialize(
        right.documents.get(name).root
    )


def _assert_wellformed(arena) -> None:
    """Structural invariants of a pre-order arena: parents precede
    their children and subtree ranges nest."""
    n = len(arena)
    par = arena.parent
    end = arena.end
    assert len(arena.sym) == n and len(end) == n and len(arena.payload) == n
    assert par[0] == -1 and end[0] == n
    for i in range(1, n):
        p = par[i]
        assert 0 <= p < i, (i, p)
        assert i < end[i] <= end[p], (i, end[i], end[p])
    assert arena.n_elements == sum(1 for s in arena.sym if s >= 0)


# ----------------------------------------------------------------------
# Splice == rebuild: deterministic per update kind
# ----------------------------------------------------------------------


class TestSpliceEqualsRebuildPerKind:
    def _pair(self) -> "tuple[ViewStore, ViewStore]":
        spliced = ViewStore()
        spliced.put("db", DOC)
        rebuild = ViewStore(incremental_commits=False)
        rebuild.put("db", DOC)
        return spliced, rebuild

    @pytest.mark.parametrize(
        "body",
        [
            "insert <w><t>9</t></w> into $a/b",
            "delete $a/a/x",
            "replace $a/c with <c>9</c>",
            "rename $a//y as z",
        ],
        ids=["insert", "delete", "replace", "rename"],
    )
    def test_each_kind_splices_and_matches_the_rebuild(self, body):
        spliced, rebuild = self._pair()
        text = _transform(body)
        delta = spliced.commit_delta("db", text)
        rebuild.commit("db", text)
        assert delta.spliced and delta.entries == 1, delta
        assert delta.new_version == delta.old_version + 1
        assert _roots_equal(spliced, rebuild)
        snapshot = spliced.pin("db")
        _assert_wellformed(snapshot.arena)
        assert serialize_arena(snapshot.arena) == serialize(
            rebuild.documents.get("db").root
        )

    def test_zero_match_update_is_a_spliced_identity(self):
        spliced, rebuild = self._pair()
        text = _transform("delete $a/nosuch")
        delta = spliced.commit_delta("db", text)
        rebuild.commit("db", text)
        assert delta.spliced and delta.patches == 0 and delta.touched_nodes == 0
        assert _roots_equal(spliced, rebuild)

    def test_document_spanning_delete_falls_back_to_rebuild(self):
        # A delta covering most of the document gains nothing over a
        # rebuild and would fragment sharing: the commit must take the
        # destructive path — and still agree with it.
        wide = "<db><big><x>1</x><y>2</y><z>3</z></big><s/></db>"
        spliced = ViewStore()
        spliced.put("db", wide)
        rebuild = ViewStore(incremental_commits=False)
        rebuild.put("db", wide)
        text = _transform("delete $a/big")
        delta = spliced.commit_delta("db", text)
        rebuild.commit("db", text)
        assert not delta.spliced
        assert _roots_equal(spliced, rebuild)


# ----------------------------------------------------------------------
# Splice == rebuild: property-based over random trees and sequences
# ----------------------------------------------------------------------


@st.composite
def update_texts(draw):
    """A random staged update against the shared a..e label alphabet,
    so updates actually hit (and miss) random trees."""
    kind = draw(st.sampled_from(["insert", "delete", "replace", "rename"]))
    path = "$a" + draw(st.sampled_from(["/", "//"])) + draw(st.sampled_from(LABELS))
    if draw(st.booleans()):
        path += draw(st.sampled_from(["/", "//"])) + draw(st.sampled_from(LABELS))
    content_label = draw(st.sampled_from(LABELS))
    if kind == "insert":
        body = f"insert <{content_label}><t>9</t></{content_label}> into {path}"
    elif kind == "delete":
        body = f"delete {path}"
    elif kind == "replace":
        body = f"replace {path} with <{content_label}>9</{content_label}>"
    else:
        body = f"rename {path} as {draw(st.sampled_from(LABELS))}"
    return _transform(body)


@settings(max_examples=60, deadline=None)
@given(tree=trees(), texts=st.lists(update_texts(), min_size=1, max_size=3))
def test_splice_commit_equals_full_rebuild(tree, texts):
    spliced = ViewStore()
    spliced.put("db", deep_copy(tree))
    rebuild = ViewStore(incremental_commits=False)
    rebuild.put("db", deep_copy(tree))
    for text in texts:
        spliced.stage("db", text)
        rebuild.stage("db", text)
    assert spliced.commit("db") == rebuild.commit("db")
    assert _roots_equal(spliced, rebuild)
    snapshot = spliced.pin("db")
    _assert_wellformed(snapshot.arena)
    assert serialize_arena(snapshot.arena) == serialize(
        spliced.documents.get("db").root
    )


# ----------------------------------------------------------------------
# The version chain: time travel and structural sharing
# ----------------------------------------------------------------------


def test_pin_time_travel_on_the_chain():
    store = ViewStore()
    store.put("db", "<db><a>1</a></db>")
    store.commit("db", _transform("insert <b>2</b> into $a/a"))
    store.commit("db", _transform("insert <c>3</c> into $a/a"))
    assert store.pin("db").version == 3

    v1 = serialize_arena(store.pin("db", version=1).arena)
    v2 = serialize_arena(store.pin("db", version=2).arena)
    assert "<b>2</b>" not in v1 and "<c>3</c>" not in v1
    assert "<b>2</b>" in v2 and "<c>3</c>" not in v2
    assert "<c>3</c>" in serialize_arena(store.pin("db", version=3).arena)

    with pytest.raises(StoreError) as excinfo:
        store.pin("db", version=99)
    assert "resident" in str(excinfo.value)


def test_spliced_versions_share_structure():
    store = ViewStore()
    store.put("db", DOC)
    store.commit("db", _transform("insert <w>9</w> into $a/b"))
    store.commit("db", _transform("rename $a//y as z"))

    a1 = store.pin("db", version=1).arena
    a2 = store.pin("db", version=2).arena
    a3 = store.pin("db", version=3).arena
    assert a2.symbols is a1.symbols and a3.symbols is a1.symbols
    # A rename touches only the symbol column: everything else aliases.
    assert a3.parent is a2.parent and a3.end is a2.end
    assert a3.payload is a2.payload and a3.attrs is a2.attrs

    info = store.chain_info("db")
    assert info["length"] == 3 and info["splices"] == 2
    assert [row["version"] for row in info["per_version"]] == [1, 2, 3]
    assert info["per_version"][1]["shared_bytes"] > 0
    assert info["per_version"][2]["shared_bytes"] > 0
    doc = store.documents.get("db")
    assert doc.splices == 2 and doc.arena_builds == 1


def test_chain_retention_limit_evicts_oldest():
    store = ViewStore()
    store.put("db", "<db><a/></db>")
    doc = store.documents.get("db")
    for _ in range(doc.chain.limit + 2):
        store.commit("db", _transform("insert <b/> into $a/a"))
    assert len(doc.chain) == doc.chain.limit
    with pytest.raises(StoreError):
        store.pin("db", version=1)


# ----------------------------------------------------------------------
# Snapshot isolation: readers on old chain versions vs a splicing writer
# ----------------------------------------------------------------------


PAIRED = [
    _transform("insert <t/> into $a/left"),
    _transform("insert <t/> into $a/right"),
]


def test_readers_pinned_to_old_versions_never_observe_splices():
    """A writer splices paired inserts while readers re-pin version 1
    and the latest version: the old snapshot must stay byte-identical
    and the latest must never expose half a commit (odd ``<t/>``)."""
    store = ViewStore()
    store.put("db", "<db><left><l/></left><right><r/></right></db>")
    baseline = serialize_arena(store.pin("db").arena)
    commits = 5  # stays within the chain retention limit
    done = threading.Event()
    errors: list = []
    torn: list = []

    def writer():
        try:
            for _ in range(commits):
                for text in PAIRED:
                    store.stage("db", text)
                delta = store.commit_delta("db")
                if not delta.spliced or delta.entries != 2:
                    errors.append(AssertionError(f"not spliced: {delta}"))
                    return
        except Exception as exc:  # noqa: BLE001 - asserted below
            errors.append(exc)
        finally:
            done.set()

    def reader():
        try:
            rounds = 0
            while rounds < 2000 and not (done.is_set() and rounds >= 20):
                rounds += 1
                if serialize_arena(store.pin("db", version=1).arena) != baseline:
                    torn.append("pinned v1 drifted")
                    return
                latest = store.pin("db").arena
                count = sum(
                    1
                    for i in range(len(latest))
                    if latest.is_element(i) and latest.label(i) == "t"
                )
                if count % 2:
                    torn.append(("odd commit observed", count))
                    return
        except Exception as exc:  # noqa: BLE001 - asserted below
            errors.append(exc)

    writer_thread = threading.Thread(target=writer)
    reader_threads = [threading.Thread(target=reader) for _ in range(3)]
    writer_thread.start()
    for thread in reader_threads:
        thread.start()
    for thread in reader_threads:
        thread.join()
    writer_thread.join()
    assert not errors, errors
    assert not torn, torn
    assert store.documents.get("db").splices == commits
    assert serialize_arena(store.pin("db", version=1).arena) == baseline


# ----------------------------------------------------------------------
# Delta-scoped invalidation receipts
# ----------------------------------------------------------------------


def test_disjoint_results_survive_a_spliced_commit():
    store = ViewStore()
    store.put("db", DOC)
    keep_q = "for $x in b/y return $x"
    drop_q = "for $x in a/x return $x"
    kept_rows = store.query("db", keep_q)
    store.query("db", drop_q)

    delta = store.commit_delta("db", _transform("insert <w>9</w> into $a/a"))
    assert delta.spliced, delta
    assert delta.labels is not None
    assert "a" in delta.labels and "b" not in delta.labels
    assert delta.results_kept == 1 and delta.results_dropped == 1, delta
    # The kept result was re-keyed to the new version: identity cache hit.
    assert store.query("db", keep_q) is kept_rows


def test_swallowed_commit_keeps_the_view_materialization():
    """A commit that lands entirely inside a subtree the view deletes
    cannot change the view's output: its materialization is re-stamped,
    not rebuilt."""
    store = ViewStore(policy=MaterializationPolicy(hot_threshold=1))
    store.put("db", "<db><part><pname>kb</pname><secret><cost>1</cost></secret></part></db>")
    store.define_view("public", "db", _transform("delete $a//secret"))
    query = "for $x in part/pname return $x"
    store.query("public", query)
    view = store.views.get("public")
    assert view.materialized_root is not None

    delta = store.commit_delta(
        "db", _transform("insert <cost>2</cost> into $a/part/secret")
    )
    assert delta.spliced, delta
    assert delta.mats_kept == 1 and delta.mats_dropped == 0, delta
    assert view.materialized_root is not None
    assert view.materialized_version == delta.new_version
    assert [serialize(row) for row in store.query("public", query)] == [
        serialize(row) for row in store.query_naive("public", query)
    ]

    # A commit the view does NOT swallow drops the materialization.
    delta = store.commit_delta(
        "db", _transform("insert <pname>mouse</pname> into $a/part")
    )
    assert delta.spliced, delta
    assert delta.mats_kept == 0 and delta.mats_dropped == 1, delta
    assert view.materialized_root is None
    assert [serialize(row) for row in store.query("public", query)] == [
        serialize(row) for row in store.query_naive("public", query)
    ]
