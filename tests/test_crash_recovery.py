"""The chaos harness: kill ``repro serve`` at injected crash points
and prove the recovery contract.

For every crash point the contract is the same: with ``acked`` the
number of commits the client saw acknowledged and ``K`` the number of
commits the recovered store holds,

* ``acked <= K <= acked + 1`` — no acknowledged commit is ever lost,
  and at most the one in-flight commit (whose WAL record was durable
  but whose acknowledgement never arrived) may additionally survive;
* the recovered commits are exactly a **prefix** of the submitted
  sequence — no gap, no reordering, no unsubmitted state;
* recovery is *reported*: ``wal_replayed`` / ``repro store stat``
  show the tail that was replayed.

Crash mode is a hard ``os._exit`` (no atexit, no ``finally``), armed
in the server subprocess via the ``REPRO_FAULTS`` environment variable
— the same mechanism the CI chaos-smoke job drives with its seed
matrix (``REPRO_CHAOS_SEED``).  The in-process tests below cover the
self-healing service tier: client retries, worker-pool respawn, and
fail-mode wire faults.
"""

import json
import os
import socket
import subprocess
import sys
import threading
import time
from concurrent.futures import BrokenExecutor

import pytest

from repro import faults
from repro.faults import CRASH_EXIT_CODE, FaultPlan
from repro.service import (
    Client,
    QueryService,
    ResponseLostError,
    RetryExhaustedError,
    RetryPolicy,
    ServiceConfig,
    ServiceError,
    ServiceServer,
    TransportError,
)
from repro.service.workers import ProcessWorkers
from repro.store import ViewStore
from repro.store.state import open_store, save_store
from repro.xmltree.serializer import serialize

ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
SRC = os.path.join(ROOT, "src")

#: The CI matrix pins this; locally any seed must satisfy the contract.
CHAOS_SEED = os.environ.get("REPRO_CHAOS_SEED", "7")

DOC = "<db><a><x>1</x></a></db>"


def _transform(body: str, name: str = "db") -> str:
    return f'transform copy $a := doc("{name}") modify do {body} return $a'


def _insert(index: int) -> str:
    return _transform(f"insert <m{index}>9</m{index}> into $a/a")


@pytest.fixture(autouse=True)
def _no_leaked_fault_plan():
    faults.uninstall()
    yield
    faults.uninstall()


# ----------------------------------------------------------------------
# The subprocess harness
# ----------------------------------------------------------------------


def _env(fault_spec=None) -> dict:
    env = os.environ.copy()
    env["PYTHONPATH"] = SRC + os.pathsep + env.get("PYTHONPATH", "")
    env.pop("REPRO_FAULTS", None)
    if fault_spec:
        env["REPRO_FAULTS"] = f"seed={CHAOS_SEED};{fault_spec}"
    return env


def _seed_state(tmp_path) -> str:
    state_dir = str(tmp_path / "state")
    store = ViewStore()
    store.put("db", DOC)
    save_store(store, state_dir)
    return state_dir


def _boot_serve(state_dir: str, tmp_path, fault_spec=None):
    """Start ``repro serve`` as a subprocess; returns (proc, port)."""
    port_file = str(tmp_path / "port")
    if os.path.exists(port_file):  # a previous boot's port is stale
        os.remove(port_file)
    proc = subprocess.Popen(
        [
            sys.executable, "-m", "repro", "serve",
            "--state", state_dir,
            "--port", "0", "--port-file", port_file,
            "--workers", "2", "--window-ms", "0.5",
        ],
        env=_env(fault_spec),
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
    )
    deadline = time.monotonic() + 60
    while time.monotonic() < deadline:
        if os.path.exists(port_file):
            text = open(port_file, encoding="utf-8").read().strip()
            if text:
                return proc, int(text)
        if proc.poll() is not None:
            raise AssertionError(
                f"serve died at boot ({proc.returncode}): "
                f"{proc.communicate()[1]}"
            )
        time.sleep(0.05)
    proc.kill()
    raise AssertionError("serve never published its port")


def _commit_until_crash(port: int, count: int):
    """Issue *count* commits; returns (acked, submitted texts).  Stops
    at the first transport/typed failure (writes are never retried)."""
    acked = 0
    submitted = []
    client = Client("127.0.0.1", port, timeout=30.0)
    try:
        for index in range(count):
            submitted.append(_insert(index))
            client.commit("db", submitted[-1])
            acked += 1
    except (ServiceError, ConnectionError, OSError):
        pass
    finally:
        client.close()
    return acked, submitted


def _wait_for_exit(proc, timeout: float = 60.0) -> int:
    try:
        return proc.wait(timeout=timeout)
    except subprocess.TimeoutExpired:
        proc.kill()
        raise
    finally:
        proc.stdout.close()
        proc.stderr.close()


def _assert_recovery_contract(state_dir: str, acked: int, submitted: list):
    """The crash-recovery contract over the reloaded store."""
    recovered = open_store(state_dir)
    committed = recovered.documents.get("db").version - 1
    assert acked <= committed <= acked + 1, (acked, committed)
    body = serialize(recovered.documents.get("db").root)
    for index in range(len(submitted)):
        marker = f"<m{index}>"
        assert (marker in body) == (index < committed), (index, committed)
    assert recovered.wal_replayed == committed
    return recovered


def _store_stat(state_dir: str) -> dict:
    out = subprocess.run(
        [
            sys.executable, "-m", "repro", "store", "stat",
            "--state", state_dir, "--json",
        ],
        env=_env(),
        capture_output=True,
        text=True,
        timeout=120,
        check=True,
    )
    return json.loads(out.stdout)


#: point → the commit ordinal whose handling the crash lands in.  Four
#: distinct moments of a commit's life: before its record is durable,
#: after it is durable but before the apply, mid-apply (splice), and
#: after the apply but before the acknowledgement is sent.
CRASH_MATRIX = [
    ("wal.append.pre_fsync", 4),
    ("wal.append.post_fsync", 4),
    ("store.commit.mid_splice", 3),
    ("wire.response.pre_send", 4),
]


@pytest.mark.parametrize("point,nth", CRASH_MATRIX)
def test_crash_recovery_contract(tmp_path, point, nth):
    state_dir = _seed_state(tmp_path)
    proc, port = _boot_serve(
        state_dir, tmp_path, f"{point}:crash:nth={nth}"
    )
    acked, submitted = _commit_until_crash(port, count=8)
    assert _wait_for_exit(proc) == CRASH_EXIT_CODE
    assert acked < len(submitted)  # the crash interrupted the run
    recovered = _assert_recovery_contract(state_dir, acked, submitted)
    assert recovered.documents.get("db").version >= nth - 1
    stat = _store_stat(state_dir)
    wal = stat["store"]["wal"]
    assert wal["attached"] and wal["replayed"] == recovered.wal_replayed


def test_crash_mid_checkpoint_preserves_acknowledged_commits(tmp_path):
    """An admin write (``load``) triggers an eager checkpoint; crashing
    between the manifest fsync and its rename must leave the *old*
    manifest paired with the *full* WAL — every acknowledged commit
    replays, the unacknowledged load is gone."""
    state_dir = _seed_state(tmp_path)
    proc, port = _boot_serve(
        state_dir, tmp_path, "wal.checkpoint.mid:crash:nth=1"
    )
    client = Client("127.0.0.1", port, timeout=30.0)
    submitted = []
    try:
        for index in range(3):
            submitted.append(_insert(index))
            client.commit("db", submitted[-1])
        with pytest.raises((ServiceError, ConnectionError, OSError)):
            client.load("doc2", xml="<doc2><z>1</z></doc2>")
    finally:
        client.close()
    assert _wait_for_exit(proc) == CRASH_EXIT_CODE
    recovered = _assert_recovery_contract(state_dir, 3, submitted)
    assert recovered.wal_replayed == 3
    assert "doc2" not in recovered.documents  # never acknowledged


def test_reboot_after_crash_reports_the_replay_and_serves(tmp_path):
    """The self-healing loop closed end to end: crash, reboot the same
    state dir, observe the replay report, read the recovered data over
    the wire, and verify a clean shutdown checkpoints it."""
    state_dir = _seed_state(tmp_path)
    proc, port = _boot_serve(
        state_dir, tmp_path, "wal.append.post_fsync:crash:nth=3"
    )
    acked, submitted = _commit_until_crash(port, count=6)
    assert _wait_for_exit(proc) == CRASH_EXIT_CODE

    reborn, port = _boot_serve(state_dir, tmp_path)
    client = Client("127.0.0.1", port, timeout=30.0)
    try:
        rows = client.query("db", "for $x in a return $x")
        body = "".join(rows)
        for index in range(acked):
            assert f"<m{index}>" in body
    finally:
        client.close()
    reborn.terminate()  # SIGTERM → graceful save
    assert _wait_for_exit(reborn) == 0
    recovered = open_store(state_dir)
    assert recovered.wal_replayed == 0  # the shutdown checkpoint covers all
    assert recovered.documents.get("db").version >= acked + 1


def test_probabilistic_crashes_still_satisfy_the_contract(tmp_path):
    """Seeded probability mode: wherever the seed lands the kill, the
    acked-prefix contract must hold (and with no kill, a graceful stop
    must leave a clean checkpoint)."""
    state_dir = _seed_state(tmp_path)
    proc, port = _boot_serve(
        state_dir, tmp_path, "wal.append.post_fsync:crash:p=0.35"
    )
    acked, submitted = _commit_until_crash(port, count=12)
    try:
        # A kill on the last draw may still be mid-exit: give it a
        # moment before concluding the seed never fired.
        returncode = proc.wait(timeout=5)
    except subprocess.TimeoutExpired:
        proc.terminate()
        returncode = _wait_for_exit(proc)
    else:
        _wait_for_exit(proc)  # close the pipes
    if returncode == CRASH_EXIT_CODE:
        assert acked < len(submitted)  # the killed commit was never acked
    else:  # this seed never fired in 12 draws: a clean SIGTERM shutdown
        assert returncode == 0 and acked == len(submitted)
    _assert_recovery_contract(state_dir, acked, submitted)


# ----------------------------------------------------------------------
# Client self-healing (in-process)
# ----------------------------------------------------------------------


def _accept_and_close_server():
    """A server that accepts and immediately drops every connection —
    the shape of a host whose service just died."""
    sock = socket.socket()
    sock.bind(("127.0.0.1", 0))
    sock.listen(16)
    stop = threading.Event()

    def loop():
        while not stop.is_set():
            try:
                conn, _ = sock.accept()
            except OSError:
                return
            conn.close()

    thread = threading.Thread(target=loop, daemon=True)
    thread.start()
    return sock, stop


def test_idempotent_reads_retry_then_exhaust_with_the_last_error():
    sock, stop = _accept_and_close_server()
    try:
        client = Client(
            "127.0.0.1", sock.getsockname()[1],
            retry=RetryPolicy(attempts=3, base_delay=0.001),
            retry_seed=0,
        )
        with pytest.raises(RetryExhaustedError) as excinfo:
            client.ping()
        assert isinstance(excinfo.value.last_error, ResponseLostError)
        assert excinfo.value.attempts == 3 and excinfo.value.op == "ping"
        assert client.retry_stats == {
            "retries": 2, "reconnects": 2, "exhausted": 1,
        }
        client.close()
    finally:
        stop.set()
        sock.close()


def test_writes_are_never_auto_retried():
    sock, stop = _accept_and_close_server()
    try:
        client = Client(
            "127.0.0.1", sock.getsockname()[1],
            retry=RetryPolicy(attempts=5, base_delay=0.001),
        )
        with pytest.raises(ResponseLostError):
            client.commit("db", "anything")
        assert client.retry_stats["retries"] == 0
        assert client.retry_stats["exhausted"] == 0
        client.close()
    finally:
        stop.set()
        sock.close()


def test_connect_failure_is_a_transport_error():
    probe = socket.socket()
    probe.bind(("127.0.0.1", 0))
    port = probe.getsockname()[1]
    probe.close()  # nothing listens here any more
    with pytest.raises(TransportError, match="cannot connect"):
        Client("127.0.0.1", port, timeout=1.0)


def test_retry_policy_backoff_is_capped_and_jittered():
    import random

    policy = RetryPolicy(
        attempts=5, base_delay=0.1, max_delay=0.3, jitter=0.5
    )
    rng = random.Random(0)
    delays = [policy.delay(k, rng) for k in range(4)]
    # Exponential up to the cap...
    assert delays[0] < delays[3] <= 0.3 * 1.5
    # ...and every delay is >= its un-jittered base.
    for k, delay in enumerate(delays):
        assert delay >= min(0.3, 0.1 * (2 ** k))
    with pytest.raises(ValueError, match="attempts must be >= 1"):
        RetryPolicy(attempts=0)


# ----------------------------------------------------------------------
# Worker-pool self-healing (in-process, spawn-based pools)
# ----------------------------------------------------------------------


def _snapshot():
    store = ViewStore()
    store.put("db", DOC)
    return store.pin("db")


def test_process_pool_respawns_after_a_worker_crash():
    workers = ProcessWorkers(1)
    try:
        kill = workers.processes.submit(os._exit, 1)
        with pytest.raises(BrokenExecutor):
            kill.result(timeout=60)
        outcomes = workers.evaluate_group(
            _snapshot(), ["for $x in a return $x"], None
        )
        assert outcomes[0][0] == "ok"
        assert outcomes[0][1] == ["<a><x>1</x></a>"]
        assert workers.restarts == 1
    finally:
        workers.shutdown()


def test_restart_budget_exhaustion_is_a_typed_error():
    workers = ProcessWorkers(1, restart_budget=0)
    try:
        kill = workers.processes.submit(os._exit, 1)
        with pytest.raises(BrokenExecutor):
            kill.result(timeout=60)
        with pytest.raises(ServiceError, match="restart budget"):
            workers.evaluate_group(
                _snapshot(), ["for $x in a return $x"], None
            )
    finally:
        workers.shutdown()


def test_env_armed_fault_crashes_every_spawned_worker(monkeypatch):
    """REPRO_FAULTS is inherited by spawned workers and armed at import
    — a deterministic crasher burns the whole restart budget and
    surfaces as the typed error, not a hang or a raw traceback."""
    monkeypatch.setenv("REPRO_FAULTS", "service.worker.evaluate:crash")
    workers = ProcessWorkers(1, restart_budget=1)
    try:
        with pytest.raises(ServiceError, match="restart budget"):
            workers.evaluate_group(
                _snapshot(), ["for $x in a return $x"], None
            )
        assert workers.restarts == 1
    finally:
        monkeypatch.delenv("REPRO_FAULTS")
        workers.shutdown()


# ----------------------------------------------------------------------
# Wire faults in fail mode (in-process server)
# ----------------------------------------------------------------------


def test_wire_fault_becomes_a_typed_error_and_the_commit_stays_durable(
    tmp_path,
):
    """A fail-mode fault while sending the response must reach the
    client as a typed error frame — and since the commit itself already
    applied and its WAL record is durable, recovery keeps it (the
    client treats it like any lost-response write: surfaced, its
    outcome checkable)."""
    state_dir = _seed_state(tmp_path)
    store = open_store(state_dir)
    service = QueryService(
        store=store, config=ServiceConfig(batch_window=0.001)
    )
    server = ServiceServer(service)
    host, port = server.start()
    client = Client(host, port, retry=RetryPolicy(attempts=1))
    try:
        client.ping()  # response hit 1
        faults.install(FaultPlan().add("wire.response.pre_send", nth=1))
        with pytest.raises(ServiceError) as excinfo:
            client.commit("db", _insert(0))
        faults.uninstall()
        assert excinfo.value.code == "fault"
        assert "injected fault" in str(excinfo.value)
        # The commit applied before the response faulted...
        assert store.documents.get("db").version == 2
    finally:
        client.close()
        server.stop()
    # ...and it is durable: a crash-reopen replays it from the WAL.
    recovered = open_store(state_dir)
    assert recovered.wal_replayed == 1
    assert recovered.documents.get("db").version == 2
    assert "<m0>" in serialize(recovered.documents.get("db").root)
