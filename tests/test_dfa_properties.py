"""Property tests pinning the compiled runtime to its references.

Three layers are held together on random trees and random ``X``
expressions:

* the lazy-DFA runners (``run_select``, ``transform_topdown``, the
  tracked SAX/streaming mode) against the seed's frozenset ``nextStates``
  machinery, which remains in :mod:`repro.automata.core` and as the
  ``*_nfa`` entry points exactly for this purpose;
* both against the specification oracle (:func:`repro.xpath.evaluator.
  evaluate` / :func:`repro.transform.naive.transform_naive` /
  ``transform_copy_update``);
* the per-state qualifier closures compiled by
  :mod:`repro.xpath.compiler` against ``eval_qualifier``.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.automata.filtering import build_filtering_nfa
from repro.automata.selecting import build_selecting_nfa
from repro.transform import (
    TransformQuery,
    transform_copy_update,
    transform_naive,
    transform_sax,
    transform_topdown,
    transform_twopass,
)
from repro.transform.sax_twopass import (
    _advance_tracked,
    _close_epsilon,
    pass1_collect_ld,
)
from repro.transform.topdown import transform_topdown_nfa
from repro.streaming.select import stream_select
from repro.updates import parse_update
from repro.xmltree.node import deep_equal
from repro.xmltree.sax import tree_to_events
from repro.xpath.compiler import compile_qualifier
from repro.xpath.evaluator import eval_qualifier, evaluate
from repro.xpath.normalize import UnsupportedPathError
from repro.xpath.parser import parse_xpath

from tests.strategies import trees, xpath_queries


def _automata(query_text):
    """Parse and build both automata, or None outside the core."""
    path = parse_xpath(query_text)
    try:
        return path, build_selecting_nfa(path), build_filtering_nfa(path)
    except (UnsupportedPathError, ValueError):
        return None


class TestSelectEquivalence:
    @settings(max_examples=200, deadline=None)
    @given(tree=trees(), query_text=xpath_queries())
    def test_dfa_select_agrees_with_nfa_and_oracle(self, tree, query_text):
        built = _automata(query_text)
        if built is None:
            return
        path, selecting, _ = built
        via_dfa = selecting.run_select(tree)
        via_nfa = selecting.run_select_nfa(tree)
        oracle = [node for node in evaluate(tree, path) if node is not tree]
        assert via_dfa == via_nfa, f"DFA/NFA diverge on {query_text}"
        assert via_dfa == oracle, f"DFA/oracle diverge on {query_text}"


class TestTransformEquivalence:
    @settings(max_examples=150, deadline=None)
    @given(
        tree=trees(),
        query_text=xpath_queries(),
        kind=st.sampled_from(["insert", "delete", "replace", "rename"]),
    )
    def test_every_dfa_strategy_agrees_with_the_references(
        self, tree, query_text, kind
    ):
        target = ("$a" + query_text) if query_text.startswith("//") else f"$a/{query_text}"
        if kind == "insert":
            update_text = f"insert <new>1</new> into {target}"
        elif kind == "delete":
            update_text = f"delete {target}"
        elif kind == "replace":
            update_text = f"replace {target} with <sub/>"
        else:
            update_text = f"rename {target} as renamed"
        query = TransformQuery(parse_update(update_text))
        try:
            expected = transform_copy_update(tree, query)
        except RecursionError:  # pragma: no cover - bounded trees
            return
        strategies = {
            "naive": transform_naive,
            "topdown-dfa": transform_topdown,
            "topdown-frozenset": transform_topdown_nfa,
            "twopass-dfa": transform_twopass,
            "sax-dfa": transform_sax,
        }
        for name, strategy in strategies.items():
            try:
                actual = strategy(tree, query)
            except UnsupportedPathError:
                return  # outside the automaton core (e.g. '//.[q]')
            assert deep_equal(actual, expected), f"{name} diverges on {update_text}"


class TestStreamingEquivalence:
    @settings(max_examples=120, deadline=None)
    @given(tree=trees(), query_text=xpath_queries())
    def test_stream_select_agrees_with_the_frozenset_runner(self, tree, query_text):
        built = _automata(query_text)
        if built is None:
            return
        _, selecting, filtering = built
        matches = list(stream_select(
            lambda: tree_to_events(tree), parse_xpath(query_text),
            selecting=selecting, filtering=filtering,
        ))
        reference = selecting.run_select_nfa(tree)
        assert len(matches) == len(reference)
        for got, want in zip(matches, reference):
            assert deep_equal(got, want)

    @settings(max_examples=120, deadline=None)
    @given(tree=trees(), query_text=xpath_queries())
    def test_tracked_moves_agree_with_the_seed_discipline(self, tree, query_text):
        """Walk pass 2's cursor discipline both ways, over the whole
        document: the compiled tracked move's (set, alive-mask) must
        encode exactly the seed's ``sid -> alive`` dict at every node,
        consuming the same number of cursor ids in the same order."""
        built = _automata(query_text)
        if built is None:
            return
        _, selecting, filtering = built
        ld = pass1_collect_ld(tree_to_events(tree), filtering)
        dfa = selecting.dfa()

        def compare(tracked, current_set, current_mask):
            members = dfa.members(current_set)
            assert set(tracked) == set(members)
            for pos, sid in enumerate(members):
                assert tracked[sid] == bool(current_mask >> pos & 1), (
                    f"alive flag diverges at state {sid} on {query_text}"
                )

        # Root entries (the root consumes no symbol).
        seed_tracked = {sid: True for sid in selecting.initial_states()}
        cursor = 0
        root_quals = [
            sid for sid in sorted(seed_tracked)
            if selecting.states[sid].has_qualifier
        ]
        set_id = dfa.initial_id
        mask = dfa.full_mask(set_id)
        assert len(root_quals) == len(dfa.set_qual_positions[set_id])
        for sid, pos in zip(root_quals, dfa.set_qual_positions[set_id]):
            value = bool(ld[cursor])
            cursor += 1
            seed_tracked[sid] = value
            if not value:
                mask &= ~(1 << pos)
        compare(seed_tracked, set_id, mask)

        def walk(node, seed_state, cur_set, cur_mask, cursor):
            for child in node.child_elements():
                tracked, to_check = _advance_tracked(
                    selecting, seed_state, child.label
                )
                move = dfa.tracked_move(cur_set, child.label)
                assert len(to_check) == len(move.qual_positions), (
                    f"cursor misalignment at <{child.label}> on {query_text}"
                )
                new_mask = 0
                bit = 1
                for feed in move.feeds:
                    if cur_mask & feed:
                        new_mask |= bit
                    bit <<= 1
                for sid, pos in zip(to_check, move.qual_positions):
                    value = bool(ld[cursor])
                    cursor += 1
                    if not value:
                        tracked[sid] = False
                        new_mask &= ~(1 << pos)
                _close_epsilon(selecting, tracked)
                for src, dst in move.eps_pairs:
                    if new_mask >> src & 1:
                        new_mask |= 1 << dst
                compare(tracked, move.target, new_mask)
                assert (
                    tracked.get(selecting.final_id, False)
                    == bool(new_mask & move.final_mask)
                )
                cursor = walk(child, tracked, move.target, new_mask, cursor)
            return cursor

        consumed = walk(tree, seed_tracked, set_id, mask, cursor)
        assert consumed == len(ld), "the walk must drain Ld exactly"


class TestCompiledQualifiers:
    @settings(max_examples=200, deadline=None)
    @given(tree=trees(), query_text=xpath_queries())
    def test_compiled_closures_agree_with_eval_qualifier(self, tree, query_text):
        path = parse_xpath(query_text)
        quals = []

        def collect(p):
            for step in p.steps:
                for qual in step.quals:
                    quals.append(qual)

        collect(path)
        for qual in quals:
            check = compile_qualifier(qual)
            for node in tree.descendants_or_self():
                assert check(node) == eval_qualifier(node, qual), (
                    f"compiled closure diverges on {qual} at {node!r}"
                )


class TestFilteringEquivalence:
    @settings(max_examples=150, deadline=None)
    @given(tree=trees(), query_text=xpath_queries())
    def test_filtering_dfa_matches_frozenset_next_states(self, tree, query_text):
        """The unfiltered DFA step over the filtering NFA (bottomUp's
        driver) is pinned to the frozenset ``next_states(check=None)``
        at every node of the document."""
        built = _automata(query_text)
        if built is None:
            return
        _, _, filtering = built
        dfa = filtering.dfa()
        stack = [(child, filtering.initial_states(), dfa.initial_id)
                 for child in tree.child_elements()]
        while stack:
            node, states, set_id = stack.pop()
            next_frozen = filtering.next_states(states, node.label, check=None)
            next_id = dfa.step_all(set_id, node.label)
            assert frozenset(dfa.members(next_id)) == next_frozen
            # Pass 1's cursor order: needed nq ids in sorted-state order.
            expected_nq = [
                filtering.states[sid].nq_id
                for sid in sorted(next_frozen)
                if filtering.states[sid].nq_id is not None
            ]
            assert list(dfa.set_nq[next_id]) == expected_nq
            if next_frozen:
                stack.extend(
                    (child, next_frozen, next_id)
                    for child in node.child_elements()
                )
