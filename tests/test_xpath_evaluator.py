"""Unit tests for the reference XPath evaluator (the oracle)."""

import pytest

from repro.xmltree import element, parse
from repro.xpath import evaluate, eval_qualifier, parse_xpath
from repro.xpath.evaluator import compare_value, eval_values


@pytest.fixture
def doc():
    """The running example of Fig. 1, with concrete values."""
    return parse(
        """
        <db>
          <part>
            <pname>keyboard</pname>
            <supplier>
              <sname>HP</sname><price>12</price><country>US</country>
            </supplier>
            <supplier>
              <sname>Dell</sname><price>20</price><country>A</country>
            </supplier>
            <part>
              <pname>key</pname>
              <supplier>
                <sname>Acme</sname><price>5</price><country>B</country>
              </supplier>
            </part>
          </part>
          <part>
            <pname>mouse</pname>
            <supplier>
              <sname>HP</sname><price>8</price><country>A</country>
            </supplier>
          </part>
        </db>
        """
    )


def select(doc, expr):
    return evaluate(doc, parse_xpath(expr))


class TestSteps:
    def test_child_label(self, doc):
        assert len(select(doc, "part")) == 2

    def test_child_chain(self, doc):
        assert len(select(doc, "part/supplier")) == 3

    def test_wildcard(self, doc):
        assert len(select(doc, "part/*")) == 6

    def test_descendant(self, doc):
        assert len(select(doc, "//part")) == 3
        assert len(select(doc, "//supplier")) == 4

    def test_descendant_mid_path(self, doc):
        assert len(select(doc, "part//supplier")) == 4

    def test_descendant_excludes_root_itself(self, doc):
        # //db is child::db under descendant-or-self — the root element
        # itself is not selected.
        assert select(doc, "//db") == []

    def test_trailing_descendant_or_self(self, doc):
        # part//. selects the parts and all their element descendants.
        nodes = select(doc, "part//.")
        assert len(nodes) == 22

    def test_empty_path_selects_context(self, doc):
        assert select(doc, ".") == [doc]

    def test_document_order_no_duplicates(self, doc):
        # part//supplier via two overlapping part branches must not
        # duplicate the nested part's supplier.
        nodes = select(doc, "//supplier")
        assert len(nodes) == len({id(n) for n in nodes})
        snames = [n.first("sname").own_text() for n in nodes]
        assert snames == ["HP", "Dell", "Acme", "HP"]

    def test_missing_label(self, doc):
        assert select(doc, "nonexistent") == []


class TestQualifiers:
    def test_existence(self, doc):
        assert len(select(doc, "part[supplier]")) == 2
        assert len(select(doc, "part[part]")) == 1

    def test_string_equality(self, doc):
        assert len(select(doc, "part[pname = 'keyboard']")) == 1

    def test_numeric_less_than(self, doc):
        assert len(select(doc, "//supplier[price < 15]")) == 3

    def test_numeric_on_nonnumeric_text_is_false(self, doc):
        assert select(doc, "part[pname < 5]") == []

    def test_existential_semantics(self, doc):
        # The first part has suppliers in US and A: both comparisons hit.
        assert len(select(doc, "part[supplier/country = 'US']")) == 1
        assert len(select(doc, "part[supplier/country = 'A']")) == 2

    def test_and(self, doc):
        nodes = select(doc, "//supplier[sname = 'HP' and price < 10]")
        assert len(nodes) == 1

    def test_or(self, doc):
        nodes = select(doc, "//supplier[country = 'US' or country = 'B']")
        assert len(nodes) == 2

    def test_not(self, doc):
        nodes = select(doc, "//supplier[not(country = 'A')]")
        assert len(nodes) == 2

    def test_paper_query_p1(self, doc):
        # //part[pname='keyboard']//part[¬supplier/sname='HP' ∧ ¬supplier/price<15]
        nodes = select(
            doc,
            "//part[pname = 'keyboard']"
            "//part[not(supplier/sname = 'HP') and not(supplier/price < 15)]",
        )
        # The nested part has supplier Acme at price 5: price<15 is true,
        # so it is excluded; no part qualifies.
        assert nodes == []

    def test_nested_qualifier(self, doc):
        nodes = select(doc, "part[supplier[country = 'US']/price < 15]")
        assert len(nodes) == 1

    def test_label_function(self, doc):
        assert len(select(doc, "part/*[label() = supplier]")) == 3

    def test_qualifier_with_descendant(self, doc):
        assert len(select(doc, "part[.//sname = 'Acme']")) == 1

    def test_empty_path_comparison(self, doc):
        assert len(select(doc, "//pname[. = 'mouse']")) == 1

    def test_attribute_comparison(self):
        root = parse('<site><person id="p1"/><person id="p2"/></site>')
        assert len(evaluate(root, parse_xpath("person[@id = 'p1']"))) == 1

    def test_attribute_existence(self):
        root = parse('<site><person id="p1"/><person/></site>')
        assert len(evaluate(root, parse_xpath("person[@id]"))) == 1

    def test_attribute_missing_never_matches(self):
        root = parse("<site><person/></site>")
        assert evaluate(root, parse_xpath("person[@id = 'p1']")) == []

    def test_context_qualifier(self, doc):
        assert len(select(doc, ".[part]/part")) == 2
        assert select(doc, ".[zzz]/part") == []


class TestValuesAndComparisons:
    def test_eval_values_attr(self):
        root = parse('<a><b id="1"/><b id="2"/><b/></a>')
        values = eval_values(root, parse_xpath("b/@id"))
        assert values == ["1", "2"]

    def test_eval_values_elements(self, doc):
        values = eval_values(doc, parse_xpath("part/pname"))
        assert [v.own_text() for v in values] == ["keyboard", "mouse"]

    @pytest.mark.parametrize(
        "value,op,literal,expected",
        [
            ("12", "<", 15.0, True),
            ("12", ">", 15.0, False),
            ("12", "=", 12.0, True),
            ("12", "!=", 12.0, False),
            ("12", "<=", 12.0, True),
            ("12", ">=", 13.0, False),
            ("abc", "<", 15.0, False),
            ("abc", "=", "abc", True),
            ("abc", "!=", "abd", True),
            ("abc", "<", "abd", True),
        ],
    )
    def test_compare_value(self, value, op, literal, expected):
        assert compare_value(value, op, literal) is expected

    def test_compare_unknown_op(self):
        with pytest.raises(ValueError):
            compare_value("1", "~", 1.0)

    def test_evaluate_rejects_attr_step(self):
        root = element("a")
        with pytest.raises(ValueError):
            evaluate(root, parse_xpath("b/@id"))


class TestQualifierAtNode:
    def test_eval_qualifier_direct(self, doc):
        part = doc.children[0]
        qual = parse_xpath("x[pname = 'keyboard']").steps[0].quals[0]
        assert eval_qualifier(part, qual)

    def test_eval_qualifier_false(self, doc):
        part = doc.children[1]
        qual = parse_xpath("x[pname = 'keyboard']").steps[0].quals[0]
        assert not eval_qualifier(part, qual)
