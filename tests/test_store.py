"""The view store: documents, stacked views, caches, commit/rollback.

The oracle throughout is ``query_naive`` — materialize every layer of
the stack with a pure transform, then run the user query.  The store's
composed/cached answers must agree with it on every workload here.
"""

import threading

import pytest

from repro import serialize
from repro.store import (
    DuplicateNameError,
    InvalidNameError,
    LRUCache,
    MaterializationPolicy,
    NothingStagedError,
    StoreError,
    UnknownNameError,
    ViewStore,
)

CATALOG = (
    "<db><part><pname>kb</pname>"
    "<supplier><sname>HP</sname><price>12</price><country>A</country></supplier>"
    "<supplier><sname>Dell</sname><price>20</price><country>B</country></supplier>"
    "</part><part><pname>mouse</pname>"
    "<supplier><sname>HP</sname><price>8</price><country>A</country></supplier>"
    "</part></db>"
)

HIDE_A = (
    'transform copy $a := doc("db") modify do '
    "delete $a//supplier[country = 'A']/price return $a"
)
ANONYMIZE = (
    'transform copy $a := doc("db") modify do '
    "rename $a//sname as vendor return $a"
)


def _texts(nodes):
    return [n if isinstance(n, str) else serialize(n) for n in nodes]


@pytest.fixture
def store():
    s = ViewStore()
    s.put("db", CATALOG)
    return s


@pytest.fixture
def stacked(store):
    store.define_view("public", "db", HIDE_A)
    store.define_view("partners", "public", ANONYMIZE)
    return store


class TestLRUCache:
    def test_eviction_order(self):
        cache = LRUCache(maxsize=2)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.get("a") == 1  # refresh a
        cache.put("c", 3)           # evicts b
        assert "b" not in cache and "a" in cache and "c" in cache
        assert cache.stats()["evictions"] == 1

    def test_get_or_compute_counts(self):
        cache = LRUCache(maxsize=4)
        calls = []
        assert cache.get_or_compute("k", lambda: calls.append(1) or 42) == 42
        assert cache.get_or_compute("k", lambda: calls.append(1) or 42) == 42
        assert len(calls) == 1
        assert cache.stats()["hits"] == 1

    def test_invalidate_predicate(self):
        cache = LRUCache(maxsize=8)
        cache.put(("x", 1), "a")
        cache.put(("y", 1), "b")
        assert cache.invalidate(lambda key: key[0] == "x") == 1
        assert ("y", 1) in cache

    def test_rejects_nonpositive_size(self):
        with pytest.raises(ValueError):
            LRUCache(maxsize=0)


class TestDocuments:
    def test_round_trip_and_versions(self, store):
        doc = store.documents.get("db")
        assert doc.version == 1
        assert doc.root.label == "db"

    def test_duplicate_rejected(self, store):
        with pytest.raises(DuplicateNameError):
            store.put("db", "<db/>")

    def test_replace_carries_version(self, store):
        doc = store.put("db", "<db><part/></db>", replace=True)
        assert doc.version == 2  # stale cache keys stay dead

    def test_unknown_name(self, store):
        with pytest.raises(UnknownNameError):
            store.query("nope", "for $x in a return $x")

    def test_invalid_name(self, store):
        with pytest.raises(InvalidNameError):
            store.put("../evil", "<db/>")

    def test_load_from_file(self, tmp_path, store):
        path = tmp_path / "cat.xml"
        path.write_text(CATALOG, encoding="utf-8")
        doc = store.load("disk", str(path))
        assert doc.source == str(path)
        assert store.query("disk", "for $x in part/pname return $x")


class TestViewStacks:
    QUERIES = [
        "for $x in part/supplier return $x",
        "for $x in part[pname = 'kb']/supplier return $x/sname",
        "for $x in part where $x/supplier/price < 10 return $x/pname",
        "for $x in part/supplier[country = 'B'] return $x",
    ]

    @pytest.mark.parametrize("query", QUERIES)
    def test_depth2_matches_naive(self, stacked, query):
        assert _texts(stacked.query("partners", query)) == _texts(
            stacked.query_naive("partners", query)
        )

    @pytest.mark.parametrize(
        "transform",
        [
            'transform copy $a := doc("public") modify do '
            "insert <audited/> into $a/part return $a",
            'transform copy $a := doc("public") modify do '
            "replace $a//price with <price>0</price> return $a",
            'transform copy $a := doc("public") modify do '
            "delete $a//country return $a",
        ],
    )
    def test_all_update_kinds_stack(self, stacked, transform):
        stacked.define_view("extra", "partners", transform)
        for query in self.QUERIES:
            assert _texts(stacked.query("extra", query)) == _texts(
                stacked.query_naive("extra", query)
            )

    def test_views_are_virtual(self, stacked):
        stacked.query("partners", self.QUERIES[0])
        assert "price" in serialize(stacked.documents.get("db").root)
        assert stacked.views.get("public").materialized_root is None

    def test_deep_stack(self, store):
        base = "db"
        for depth in range(1, 6):
            name = f"v{depth}"
            store.define_view(
                name,
                base,
                f'transform copy $a := doc("{base}") modify do '
                f"insert <layer{depth}/> into $a/part return $a",
            )
            base = name
        result = store.query("v5", "for $x in part[pname = 'mouse'] return $x")
        (only,) = result
        text = serialize(only)
        assert all(f"<layer{d}/>" in text for d in range(1, 6))
        assert _texts(result) == _texts(
            store.query_naive("v5", "for $x in part[pname = 'mouse'] return $x")
        )

    def test_duplicate_view_name_rejected(self, stacked):
        with pytest.raises(DuplicateNameError):
            stacked.define_view("public", "db", HIDE_A)
        with pytest.raises(DuplicateNameError):
            stacked.put("public", "<db/>")

    def test_view_over_unknown_base(self, store):
        with pytest.raises(UnknownNameError):
            store.define_view("v", "ghost", HIDE_A)

    def test_drop_protects_dependents(self, stacked):
        with pytest.raises(StoreError):
            stacked.drop("public")   # partners stacks on it
        with pytest.raises(StoreError):
            stacked.drop("db")       # views bottom out in it
        stacked.drop("partners")
        stacked.drop("public")
        stacked.drop("db")
        assert len(stacked.documents) == 0


class TestCaches:
    def test_result_cache_hit_returns_same_list(self, stacked):
        query = "for $x in part/supplier return $x"
        first = stacked.query("partners", query)
        assert stacked.query("partners", query) is first
        assert stacked.results.stats()["hits"] == 1

    def test_compiled_plan_reused_across_targets(self, stacked):
        query = "for $x in part/supplier return $x"
        stacked.query("partners", query)
        built = stacked.compiled.plans.stats()["misses"]
        stacked.results.invalidate()
        stacked.query("partners", query)
        assert stacked.compiled.plans.stats()["misses"] == built

    def test_commit_invalidates_results(self, stacked):
        query = "for $x in part/supplier/price return $x"
        before = stacked.query("partners", query)
        version = stacked.commit(
            "db",
            'transform copy $a := doc("db") modify do '
            "delete $a//supplier[country = 'B']/price return $a",
        )
        assert version == 2
        after = stacked.query("partners", query)
        assert after is not before
        assert _texts(after) == _texts(stacked.query_naive("partners", query))
        assert len(after) < len(before)

    def test_unrelated_document_results_survive_commit(self, stacked):
        stacked.put("other", "<db><part><pname>cable</pname></part></db>")
        query = "for $x in part/pname return $x"
        kept = stacked.query("other", query)
        stacked.commit("db", ANONYMIZE)
        assert stacked.query("other", query) is kept


class TestMaterialization:
    def test_hot_view_materializes_and_stays_correct(self):
        store = ViewStore(policy=MaterializationPolicy(hot_threshold=2))
        store.put("db", CATALOG)
        store.define_view("public", "db", HIDE_A)
        query = "for $x in part/supplier return $x"
        cold = _texts(store.query("public", query))
        view = store.views.get("public")
        assert view.materialized_root is None
        store.results.invalidate()
        warm = _texts(store.query("public", query))
        assert view.materialized_root is not None
        assert view.materialized_version == 1
        store.results.invalidate()
        assert _texts(store.query("public", query)) == warm == cold

    def test_commit_invalidates_materialization(self):
        store = ViewStore(policy=MaterializationPolicy(hot_threshold=1))
        store.put("db", CATALOG)
        store.define_view("public", "db", HIDE_A)
        query = "for $x in part/supplier return $x"
        store.query("public", query)
        assert store.views.get("public").materialized_root is not None
        store.commit(
            "db",
            'transform copy $a := doc("db") modify do '
            "rename $a//sname as vendor return $a",
        )
        assert store.views.get("public").materialized_root is None
        assert _texts(store.query("public", query)) == _texts(
            store.query_naive("public", query)
        )

    def test_disabled_policy_never_materializes(self):
        store = ViewStore(policy=MaterializationPolicy(enabled=False))
        store.put("db", CATALOG)
        store.define_view("public", "db", HIDE_A)
        for _ in range(20):
            store.results.invalidate()
            store.query("public", "for $x in part return $x")
        assert store.views.get("public").materialized_root is None

    def test_middle_layer_materialization_shortcuts(self, store):
        store.views.policy = MaterializationPolicy(hot_threshold=1)
        store.define_view("public", "db", HIDE_A)
        store.define_view("partners", "public", ANONYMIZE)
        query = "for $x in part/supplier return $x"
        store.query("partners", query)
        store.results.invalidate()
        answer = _texts(store.query("partners", query))
        assert store.views.get("public").materialized_root is not None
        assert answer == _texts(store.query_naive("partners", query))


class TestCommitRollback:
    def test_staged_preview_does_not_touch_document(self, stacked):
        stacked.stage(
            "db",
            'transform copy $a := doc("db") modify do '
            "delete $a//price return $a",
        )
        preview = stacked.query(
            "partners", "for $x in part/supplier return $x", include_staged=True
        )
        assert "price" not in "".join(_texts(preview))
        committed = stacked.query("partners", "for $x in part/supplier return $x")
        assert "price" in "".join(_texts(committed))
        assert stacked.documents.get("db").version == 1

    def test_rollback_discards(self, stacked):
        stacked.stage("db", ANONYMIZE)
        assert stacked.rollback("db") == 1
        with pytest.raises(NothingStagedError):
            stacked.rollback("db")
        # A commit with nothing staged is a true no-op: the version
        # does not move and nothing is invalidated.
        doc = stacked.documents.get("db")
        before = doc.version
        warm = stacked.query("db", "for $x in db/part return $x")
        assert stacked.commit("db") == before
        assert doc.version == before
        delta = stacked.last_delta
        assert delta is not None and delta.entries == 0
        assert delta.old_version == delta.new_version == before
        key = ("db", before, "for $x in db/part return $x")
        assert stacked.results.get(key) is warm

    def test_commit_is_sequential_over_stages(self, store):
        store.stage(
            "db",
            'transform copy $a := doc("db") modify do '
            "rename $a//price as cost return $a",
        )
        store.stage(
            "db",
            'transform copy $a := doc("db") modify do '
            "delete $a//cost return $a",
        )
        assert store.commit("db") == 2
        assert "cost" not in serialize(store.documents.get("db").root)
        assert "price" not in serialize(store.documents.get("db").root)
        assert len(store.log.history("db")) == 2

    def test_update_operations_reject_views(self, stacked):
        delete_all = (
            'transform copy $a := doc("db") modify do '
            "delete $a//price return $a"
        )
        for operation in (
            lambda: stacked.stage("partners", delete_all),
            lambda: stacked.commit("partners", delete_all),
            lambda: stacked.rollback("partners"),
        ):
            with pytest.raises(StoreError, match="is a view.*document 'db'"):
                operation()

    def test_commit_history_recorded(self, store):
        store.commit(
            "db",
            'transform copy $a := doc("db") modify do '
            "delete $a//price return $a",
        )
        assert len(store.log.history("db")) == 1

    def test_staged_query_bypasses_result_cache(self, stacked):
        query = "for $x in part/supplier return $x"
        cached = stacked.query("partners", query)
        stacked.stage(
            "db",
            'transform copy $a := doc("db") modify do '
            "delete $a//supplier return $a",
        )
        hypothetical = stacked.query("partners", query, include_staged=True)
        assert hypothetical == []
        # The committed-state cache entry is untouched.
        assert stacked.query("partners", query) is cached
        stacked.rollback("db")


class TestConcurrency:
    def test_parallel_queries_agree(self, stacked):
        query = "for $x in part/supplier return $x"
        expected = _texts(stacked.query_naive("partners", query))
        errors = []
        results = []

        def worker():
            try:
                for _ in range(20):
                    results.append(_texts(stacked.query("partners", query)))
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        assert all(r == expected for r in results)

    def test_queries_during_commits(self):
        store = ViewStore(policy=MaterializationPolicy(hot_threshold=3))
        store.put("db", CATALOG)
        store.define_view("public", "db", HIDE_A)
        query = "for $x in part/supplier return $x"
        errors = []
        done = threading.Event()

        def reader():
            try:
                while not done.is_set():
                    got = store.query("public", query)
                    assert isinstance(got, list)
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        readers = [threading.Thread(target=reader) for _ in range(4)]
        for t in readers:
            t.start()
        try:
            for index in range(5):
                store.commit(
                    "db",
                    'transform copy $a := doc("db") modify do '
                    f"insert <tick{index}/> into $a/part return $a",
                )
        finally:
            done.set()
            for t in readers:
                t.join()
        assert not errors
        assert store.documents.get("db").version == 6
        final = _texts(store.query("public", query))
        assert final == _texts(store.query_naive("public", query))


class TestStats:
    def test_stats_shape(self, stacked):
        stacked.query("partners", "for $x in part return $x")
        stats = stacked.stats()
        assert stats["documents"]["db"]["version"] == 1
        assert stats["views"]["partners"]["depth"] == 2
        assert stats["views"]["partners"]["document"] == "db"
        assert "plans" in stats["caches"]["compiled"]
        assert stats["caches"]["results"]["misses"] >= 1


class TestPlannerIntegration:
    """The store delegates every transform evaluation to the cost-based
    planner — no strategy is hardcoded in the store paths."""

    def test_store_modules_do_not_import_topdown_directly(self):
        import repro.store.log as log_mod
        import repro.store.store as store_mod

        assert not hasattr(store_mod, "transform_topdown")
        assert not hasattr(log_mod, "transform_topdown")

    def test_deep_descendant_heavy_stage_picks_non_naive_plan(self):
        """Regression for the UpdateLog default: a deep ``//``-heavy
        staged update must be previewed with a planner-chosen strategy,
        never the naive rewriting (and, on a document this deep, the
        planner should reach for the annotation-based twopass)."""
        spine = "<b>leaf</b>"
        for _ in range(60):
            spine = f"<a>{spine}</a>"
        store = ViewStore()
        store.put("deep", f"<db>{spine}</db>")
        store.stage(
            "deep",
            'transform copy $a := doc("deep") modify do '
            "rename $a//*[.//b] as seen return $a",
        )
        rows = store.query("deep", "for $x in //seen return $x", include_staged=True)
        assert rows  # the staged rename is visible
        plan = store.planner.last_plan
        assert plan is not None
        # twopass implies the ISSUE's regression contract (non-naive).
        assert plan.strategy == "twopass"
        assert store.planner.counters.get("naive", 0) == 0

    def test_view_layers_go_through_the_planner(self, stacked):
        # A depth-2 stack: the inner layer is materialized via the
        # planner (the outer is composed); query_naive stays off-planner.
        before = sum(stacked.planner.counters.values())
        stacked.query("partners", "for $x in part/pname return $x")
        assert sum(stacked.planner.counters.values()) > before
        after = sum(stacked.planner.counters.values())
        stacked.query_naive("partners", "for $x in part/pname return $x")
        assert sum(stacked.planner.counters.values()) == after

    def test_staged_preview_handles_quoted_string_literals(self):
        """Regression: NFAs are built from the parsed path, never from
        its rendered text — a qualifier literal containing a quote does
        not round-trip through str()."""
        store = ViewStore()
        store.put(
            "db",
            "<db><part><sname>O'Neil</sname><price>5</price></part></db>",
        )
        store.stage(
            "db",
            'transform copy $a := doc("db") modify do '
            'delete $a//part[sname = "O\'Neil"]/price return $a',
        )
        rows = store.query(
            "db", "for $x in part/price return $x", include_staged=True
        )
        assert rows == []  # the staged delete removed the price

    def test_staged_previews_reuse_compiled_automata(self, stacked):
        stacked.stage(
            "db",
            'transform copy $a := doc("db") modify do '
            "rename $a//sname as vendor return $a",
        )
        query = "for $x in part return $x"
        stacked.query("db", query, include_staged=True)
        built = stacked.compiled.selecting.stats()["misses"]
        for _ in range(3):
            stacked.query("db", query, include_staged=True)
        assert stacked.compiled.selecting.stats()["misses"] == built
