"""Tests for the XQuery program parser and the full Fig. 2 text
round-trip: rewrite → print → reparse → evaluate."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.transform import TransformQuery, transform_copy_update
from repro.transform.rewrite import rewrite_to_xquery
from repro.updates import parse_update
from repro.xmltree import deep_equal, parse, serialize
from repro.xpath.lexer import XPathSyntaxError
from repro.xquery.ast import Conditional, For, Let, Literal, PathFrom, Sequence, VarRef
from repro.xquery.ast import ConstTree
from repro.xquery.program import (
    BuiltinCall,
    ComputedElement,
    FunctionCall,
    IsSame,
    SomeSatisfies,
    evaluate_program,
)
from repro.xquery.xq_parser import parse_xquery_program

from tests.strategies import trees, xpath_queries


@pytest.fixture
def doc():
    return parse(
        '<db><part id="p"><pname>kb</pname><price>12</price></part><part/></db>'
    )


class TestParsing:
    def test_literal_program(self, doc):
        program = parse_xquery_program("'hello'")
        assert program.declarations == []
        assert evaluate_program(program, doc) == ["hello"]

    def test_path_program(self, doc):
        program = parse_xquery_program("part/pname")
        (result,) = evaluate_program(program, doc)
        assert result.own_text() == "kb"

    def test_doc_call_with_path(self, doc):
        program = parse_xquery_program("fn:doc()/part")
        assert isinstance(program.body, PathFrom)
        assert len(evaluate_program(program, doc)) == 2

    def test_for_let_return(self, doc):
        program = parse_xquery_program(
            "for $p in part return let $n := $p/pname return $n"
        )
        assert isinstance(program.body, For)
        assert isinstance(program.body.body, Let)

    def test_where_clause(self, doc):
        program = parse_xquery_program(
            "for $p in part where $p/price > 10 return $p/pname"
        )
        (result,) = evaluate_program(program, doc)
        assert result.own_text() == "kb"

    def test_if_then_else(self, doc):
        program = parse_xquery_program("if (empty(zzz)) then 'none' else 'some'")
        assert evaluate_program(program, doc) == ["none"]

    def test_computed_element(self, doc):
        program = parse_xquery_program(
            "element {'row'} { fn:string(part/pname), 'x' }"
        )
        (result,) = evaluate_program(program, doc)
        assert serialize(result) == "<row>kbx</row>"

    def test_some_satisfies_is(self, doc):
        program = parse_xquery_program(
            "if (some $x in part satisfies $x is part) then 'hit' else 'miss'"
        )
        assert evaluate_program(program, doc) == ["hit"]

    def test_function_declaration_and_call(self, doc):
        program = parse_xquery_program(
            "declare function local:first($s) { for $i in $s return $i };"
            "local:first(part/pname)"
        )
        assert len(program.declarations) == 1
        (result,) = evaluate_program(program, doc)
        assert result.own_text() == "kb"

    def test_xml_literal(self, doc):
        program = parse_xquery_program("fn:copy(<note k=\"v\">hi</note>)")
        (result,) = evaluate_program(program, doc)
        assert serialize(result) == '<note k="v">hi</note>'

    def test_sequences_and_empty(self, doc):
        assert evaluate_program(parse_xquery_program("('a', 'b')"), doc) == ["a", "b"]
        assert evaluate_program(parse_xquery_program("()"), doc) == []

    def test_boolean_connectives(self, doc):
        program = parse_xquery_program(
            "if (not(empty(part)) and (empty(zzz) or empty(part))) then 1 else 2"
        )
        assert evaluate_program(program, doc) == [1.0]

    @pytest.mark.parametrize(
        "bad",
        [
            "",
            "declare function local:f($a) { $a }",  # no body expression
            "for $x in part",                        # missing return
            "if (empty(a)) then 'x'",                # missing else
            "element {'a'}",                         # missing content
            "unknownfn(part)",
            "local:undeclared() trailing 'extra'",
            "fn:children(part)/pname",               # path after non-doc call
        ],
    )
    def test_malformed(self, bad):
        with pytest.raises(XPathSyntaxError):
            parse_xquery_program(bad)


class TestFig2RoundTrip:
    @pytest.mark.parametrize(
        "update_text",
        [
            "delete $a//price",
            "insert <x>1</x> into $a/part",
            "replace $a//pname with <name/>",
            "rename $a/part as item",
            "delete $a/part[pname = 'kb']",
        ],
    )
    def test_text_round_trip_preserves_semantics(self, doc, update_text):
        query = TransformQuery(parse_update(update_text))
        program = rewrite_to_xquery(query)
        reparsed = parse_xquery_program(str(program))
        expected = transform_copy_update(doc, query)
        (direct,) = evaluate_program(program, doc)
        (via_text,) = evaluate_program(reparsed, doc)
        assert deep_equal(direct, expected)
        assert deep_equal(via_text, expected)

    def test_reparsed_text_is_stable(self, doc):
        query = TransformQuery(parse_update("delete $a//price"))
        text = str(rewrite_to_xquery(query))
        assert str(parse_xquery_program(text)) == text

    @settings(max_examples=50, deadline=None)
    @given(
        tree=trees(),
        query_text=xpath_queries(),
        kind=st.sampled_from(["insert", "delete"]),
    )
    def test_property_round_trip(self, tree, query_text, kind):
        target = ("$a" + query_text) if query_text.startswith("//") else f"$a/{query_text}"
        text = f"insert <n/> into {target}" if kind == "insert" else f"delete {target}"
        query = TransformQuery(parse_update(text))
        program = rewrite_to_xquery(query)
        reparsed = parse_xquery_program(str(program))
        expected = transform_copy_update(tree, query)
        (via_text,) = evaluate_program(reparsed, tree)
        assert deep_equal(via_text, expected)
