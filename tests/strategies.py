"""Shared hypothesis strategies: random XML trees and random X queries.

Used by the property-based tests of the automata, the transform
algorithms and the composition: the reference evaluator is the oracle,
and every other component must agree with it on arbitrary inputs.

The label alphabet is kept small ("a".."e") so random queries actually
hit random trees; text values are small numerals so numeric and string
comparisons both exercise interesting cases.
"""

from hypothesis import strategies as st

from repro.xmltree.node import Element, Text

LABELS = ["a", "b", "c", "d", "e"]
VALUES = ["1", "5", "12", "x", "y"]
ATTR_NAMES = ["id", "k"]


@st.composite
def elements(draw, max_depth=4):
    """A random element with bounded depth and fanout."""
    label = draw(st.sampled_from(LABELS))
    attrs = draw(
        st.dictionaries(
            st.sampled_from(ATTR_NAMES), st.sampled_from(VALUES), max_size=2
        )
    )
    children: list = []
    if max_depth > 0:
        kid_count = draw(st.integers(min_value=0, max_value=3))
        for _ in range(kid_count):
            if draw(st.booleans()):
                children.append(draw(elements(max_depth=max_depth - 1)))
            else:
                children.append(Text(draw(st.sampled_from(VALUES))))
    return Element(label, attrs, children)


def trees():
    """A random document: a root with random content."""
    return elements(max_depth=4)


@st.composite
def _qualifiers(draw, depth):
    kind = draw(
        st.sampled_from(
            ["exists", "cmp_str", "cmp_num", "attr", "label", "and", "or", "not"]
        )
    )
    if kind == "exists":
        return draw(_qual_paths(depth))
    if kind == "cmp_str":
        path = draw(_qual_paths(depth))
        value = draw(st.sampled_from(VALUES))
        return f"{path} = '{value}'"
    if kind == "cmp_num":
        path = draw(_qual_paths(depth))
        op = draw(st.sampled_from(["<", ">", "=", "<=", ">=", "!="]))
        value = draw(st.sampled_from(["1", "5", "12"]))
        return f"{path} {op} {value}"
    if kind == "attr":
        name = draw(st.sampled_from(ATTR_NAMES))
        if draw(st.booleans()):
            value = draw(st.sampled_from(VALUES))
            return f"@{name} = '{value}'"
        return f"@{name}"
    if kind == "label":
        return f"label() = {draw(st.sampled_from(LABELS))}"
    if depth <= 0:
        return draw(_qual_paths(depth))
    if kind == "and":
        return f"({draw(_qualifiers(depth - 1))} and {draw(_qualifiers(depth - 1))})"
    if kind == "or":
        return f"({draw(_qualifiers(depth - 1))} or {draw(_qualifiers(depth - 1))})"
    return f"not({draw(_qualifiers(depth - 1))})"


@st.composite
def _qual_paths(draw, depth):
    """A short relative path usable inside a qualifier."""
    length = draw(st.integers(min_value=1, max_value=2))
    steps = []
    for _ in range(length):
        step = draw(st.sampled_from(LABELS + ["*"]))
        if depth > 0 and draw(st.integers(0, 4)) == 0:
            step += f"[{draw(_qualifiers(depth - 1))}]"
        steps.append(step)
    sep = draw(st.sampled_from(["/", "//"]))
    return sep.join(steps)


@st.composite
def xpath_queries(draw):
    """A random X selecting path as source text."""
    length = draw(st.integers(min_value=1, max_value=3))
    parts = []
    for index in range(length):
        step = draw(st.sampled_from(LABELS + ["*"]))
        if draw(st.integers(0, 2)) == 0:
            step += f"[{draw(_qualifiers(1))}]"
        if index == 0:
            prefix = draw(st.sampled_from(["", "//"]))
        else:
            prefix = draw(st.sampled_from(["/", "//"]))
        parts.append(prefix + step)
    return "".join(parts)
