"""Tests for the Fig. 2 rewriting and the XQuery program layer."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.transform import TransformQuery, transform_copy_update
from repro.transform.rewrite import rewrite_to_xquery, transform_naive_xquery
from repro.updates import parse_update
from repro.xmltree import deep_equal, element, parse, serialize
from repro.xpath import parse_xpath
from repro.xquery.ast import Conditional, For, Literal, PathFrom, Sequence, VarRef
from repro.xquery.program import EffectiveBool
from repro.xquery.program import (
    AttrItem,
    BuiltinCall,
    ComputedElement,
    FunctionCall,
    FunctionDecl,
    IsSame,
    Program,
    ProgramEvaluator,
    SomeSatisfies,
    XQueryRuntimeError,
    evaluate_program,
)

from tests.strategies import trees, xpath_queries


@pytest.fixture
def doc():
    return parse(
        '<db><part id="p1"><pname>kb</pname>'
        "<supplier><price>12</price></supplier></part>"
        "<part><pname>mouse</pname></part></db>"
    )


class TestProgramLayer:
    def test_function_call_and_recursion(self, doc):
        # A Fig. 2-shaped identity copy: recursive function over nodes.
        program = Program(
            declarations=[
                FunctionDecl(
                    "copy",
                    ["n"],
                    Conditional(
                        EffectiveBool(BuiltinCall("is-element", [VarRef("n")])),
                        ComputedElement(
                            BuiltinCall("local-name", [VarRef("n")]),
                            Sequence([
                                BuiltinCall("attributes", [VarRef("n")]),
                                For(
                                    "c",
                                    BuiltinCall("children", [VarRef("n")]),
                                    FunctionCall("copy", [VarRef("c")]),
                                ),
                            ]),
                        ),
                        VarRef("n"),
                    ),
                )
            ],
            body=FunctionCall("copy", [BuiltinCall("doc", [])]),
        )
        (result,) = evaluate_program(program, doc)
        assert deep_equal(result, doc)
        assert result is not doc  # a genuine rebuild

    def test_undeclared_function(self, doc):
        program = Program(body=FunctionCall("nope", []))
        with pytest.raises(XQueryRuntimeError):
            evaluate_program(program, doc)

    def test_arity_mismatch(self, doc):
        program = Program(
            declarations=[FunctionDecl("f", ["a", "b"], VarRef("a"))],
            body=FunctionCall("f", [Literal("x")]),
        )
        with pytest.raises(XQueryRuntimeError):
            evaluate_program(program, doc)

    def test_computed_element_with_attrs_and_text(self, doc):
        program = Program(
            body=ComputedElement(
                Literal("out"),
                Sequence([
                    BuiltinCall("attributes", [PathFrom(None, parse_xpath("part"))]),
                    Literal("txt"),
                ]),
            )
        )
        (result,) = evaluate_program(program, doc)
        assert result.attrs == {"id": "p1"}
        assert result.own_text() == "txt"

    def test_some_satisfies_is(self, doc):
        program = Program(
            body=Conditional(
                SomeSatisfies("x", PathFrom(None, parse_xpath("part")),
                              IsSame(VarRef("x"), VarRef("x"))),
                Literal("yes"),
                Literal("no"),
            )
        )
        assert evaluate_program(program, doc) == ["yes"]

    def test_some_satisfies_false_on_disjoint(self, doc):
        program = Program(
            body=Conditional(
                SomeSatisfies("x", PathFrom(None, parse_xpath("part")),
                              IsSame(VarRef("x"), PathFrom(None, parse_xpath("zzz")))),
                Literal("yes"),
                Literal("no"),
            )
        )
        assert evaluate_program(program, doc) == ["no"]

    @pytest.mark.parametrize(
        "builtin,expected",
        [
            ("local-name", ["db"]),
            ("is-element", [True]),
            ("empty", [False]),
            ("string", [""]),
        ],
    )
    def test_builtins_on_root(self, doc, builtin, expected):
        program = Program(body=BuiltinCall(builtin, [BuiltinCall("doc", [])]))
        assert evaluate_program(program, doc) == expected

    def test_unknown_builtin(self, doc):
        program = Program(body=BuiltinCall("frobnicate", [Literal("x")]))
        with pytest.raises(XQueryRuntimeError):
            evaluate_program(program, doc)

    def test_attr_item_str(self):
        assert str(AttrItem("id", "p1")) == 'attribute id {"p1"}'

    def test_program_text_shape(self):
        query = TransformQuery(parse_update("delete $a//price"))
        program = rewrite_to_xquery(query)
        text = str(program)
        assert "declare function local:apply" in text
        assert "some $x in $xp satisfies" in text
        assert "element {" in text
        assert "let $xp :=" in text


class TestNaiveXQueryEquivalence:
    @pytest.mark.parametrize(
        "update_text",
        [
            "delete $a//price",
            "delete $a/part[pname = 'kb']",
            "insert <checked/> into $a//supplier",
            "insert <s/> into $a/part",
            "replace $a//price with <price>0</price>",
            "rename $a//pname as name",
            "delete $a//nothing",
        ],
    )
    def test_matches_reference(self, doc, update_text):
        query = TransformQuery(parse_update(update_text))
        expected = transform_copy_update(doc, query)
        actual = transform_naive_xquery(doc, query)
        assert deep_equal(actual, expected), (
            f"rewriting diverges on {update_text}:\n"
            f"  expected {serialize(expected)}\n  actual   {serialize(actual)}"
        )

    def test_attributes_preserved(self):
        doc = parse('<r><a k="v" id="i"><b x="1"/></a></r>')
        query = TransformQuery(parse_update("insert <n/> into $a/a"))
        result = transform_naive_xquery(doc, query)
        expected = transform_copy_update(doc, query)
        assert deep_equal(result, expected)

    def test_mixed_content_preserved(self):
        doc = parse("<r>x<a/>y</r>", strip_whitespace=False)
        query = TransformQuery(parse_update("delete $a/a"))
        assert serialize(transform_naive_xquery(doc, query)) == "<r>xy</r>"

    def test_inserted_copies_are_independent(self):
        doc = parse("<r><a/><a/></r>")
        query = TransformQuery(parse_update("insert <m/> into $a/a"))
        result = transform_naive_xquery(doc, query)
        first, second = result.children
        assert first.children[0] is not second.children[0]

    @settings(max_examples=80, deadline=None)
    @given(
        tree=trees(),
        query_text=xpath_queries(),
        kind=st.sampled_from(["insert", "delete", "replace", "rename"]),
    )
    def test_property_equivalence(self, tree, query_text, kind):
        target = ("$a" + query_text) if query_text.startswith("//") else f"$a/{query_text}"
        text = {
            "insert": f"insert <n/> into {target}",
            "delete": f"delete {target}",
            "replace": f"replace {target} with <n/>",
            "rename": f"rename {target} as renamed",
        }[kind]
        query = TransformQuery(parse_update(text))
        expected = transform_copy_update(tree, query)
        assert deep_equal(transform_naive_xquery(tree, query), expected)
