"""Property tests for the engine: on random XMark documents and random
trees, with generated transform queries, the planner-chosen strategy's
output must be ``deep_equal`` to the naive reference, and every plan
must name a real strategy."""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import Engine, deep_equal, transform_naive
from repro.engine import ALL_STRATEGIES
from repro.transform.query import parse_transform_query
from repro.xmark.generator import generate

from tests.strategies import trees, xpath_queries

#: One engine across examples: preparation caching must never change
#: results.
ENGINE = Engine()

UPDATE_TEMPLATES = [
    "delete $a{path}",
    "rename $a{path} as renamed",
    "insert <mark/> into $a{path}",
    "replace $a{path} with <sub>1</sub>",
]


def _transform_text(path_text: str, template: str) -> str:
    path = path_text if path_text.startswith("//") else "/" + path_text
    update = template.format(path=path)
    return f'transform copy $a := doc("T") modify do {update} return $a'


#: XMark-shaped embedded paths, mixing child and descendant steps and
#: the qualifier forms the Fig. 11 workload uses.
XMARK_PATHS = [
    "people/person",
    "people/person[@id = 'person0']",
    "regions//item",
    "//description",
    "regions//item[location = 'United States']",
    "open_auctions/open_auction[initial > 10]/bidder",
    "//*[.//keyword]",
    "closed_auctions//price",
]


@settings(max_examples=20, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    path_text=st.sampled_from(XMARK_PATHS),
    template=st.sampled_from(UPDATE_TEMPLATES),
)
def test_planner_choice_matches_naive_on_xmark(seed, path_text, template):
    doc = generate(0.001, seed=seed)
    text = _transform_text(path_text, template)
    prepared = ENGINE.prepare_transform(text)
    plan = prepared.plan_for(doc)
    assert plan.strategy in ALL_STRATEGIES
    # The header must name the *chosen* strategy (every strategy name
    # appears in the cost table, so match the header line exactly).
    assert f"strategy: {plan.strategy}" in prepared.explain(doc)
    result = prepared.run(doc)
    assert deep_equal(result, transform_naive(doc, prepared.query))


@settings(max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(
    tree=trees(),
    path_text=xpath_queries(),
    template=st.sampled_from(UPDATE_TEMPLATES),
)
def test_planner_choice_matches_naive_on_random_trees(tree, path_text, template):
    text = _transform_text(path_text, template)
    try:
        query = parse_transform_query(text)
    except ValueError:
        # A generated path the update grammar rejects (e.g. trailing
        # attribute steps) — not the planner's concern.
        return
    prepared = ENGINE.prepare_transform(text)
    plan = prepared.plan_for(tree)
    assert plan.strategy in ALL_STRATEGIES
    assert deep_equal(prepared.run(tree), transform_naive(tree, query))


@settings(max_examples=20, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(tree=trees(), path_text=xpath_queries())
def test_explain_always_names_a_real_strategy(tree, path_text):
    text = _transform_text(path_text, "delete $a{path}")
    try:
        prepared = ENGINE.prepare_transform(text)
    except ValueError:
        return
    plan = prepared.plan_for(tree)
    explained = prepared.explain(tree)
    assert f"strategy: {plan.strategy}" in explained
    assert "estimated costs" in explained
