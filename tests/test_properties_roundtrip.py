"""Property-based round-trip invariants across the XML substrate.

Any tree the generator can produce must survive every representation
change losslessly: serialization, file IO, SAX events (from a tree and
from text), and streaming serialization.
"""

import io

from hypothesis import given, settings

from repro.xmltree import (
    deep_copy,
    deep_equal,
    events_to_text,
    events_to_tree,
    iter_sax_string,
    parse,
    serialize,
    tree_to_events,
)
from repro.xmltree.serializer import write_stream
from repro.updates import parse_update

from tests.strategies import trees, xpath_queries


def _normalize(tree):
    """Strip whitespace-only text and merge adjacent text nodes, so the
    tree is in the parser's canonical form before round-tripping."""
    from repro.xmltree.node import Element, Text

    fresh = Element(tree.label, dict(tree.attrs), [])
    pending = ""
    for child in tree.children:
        if child.is_text:
            pending += child.value
            continue
        if pending and not pending.isspace():
            fresh.children.append(Text(pending))
        pending = ""
        fresh.children.append(_normalize(child))
    if pending and not pending.isspace():
        fresh.children.append(Text(pending))
    return fresh


class TestRoundTrips:
    @settings(max_examples=200, deadline=None)
    @given(tree=trees())
    def test_serialize_parse(self, tree):
        tree = _normalize(tree)
        assert deep_equal(parse(serialize(tree)), tree)

    @settings(max_examples=200, deadline=None)
    @given(tree=trees())
    def test_tree_events_tree(self, tree):
        assert deep_equal(events_to_tree(tree_to_events(tree)), tree)

    @settings(max_examples=200, deadline=None)
    @given(tree=trees())
    def test_scanner_equals_parser(self, tree):
        tree = _normalize(tree)
        text = serialize(tree)
        assert deep_equal(events_to_tree(iter_sax_string(text)), parse(text))

    @settings(max_examples=200, deadline=None)
    @given(tree=trees())
    def test_events_to_text_round_trip(self, tree):
        tree = _normalize(tree)
        text = events_to_text(tree_to_events(tree))
        assert deep_equal(parse(text), tree)

    @settings(max_examples=100, deadline=None)
    @given(tree=trees())
    def test_write_stream_matches_serialize(self, tree):
        out = io.StringIO()
        write_stream(tree, out)
        assert out.getvalue() == serialize(tree)

    @settings(max_examples=100, deadline=None)
    @given(tree=trees())
    def test_deep_copy_round_trip(self, tree):
        assert deep_equal(deep_copy(tree), tree)


class TestSyntaxRoundTrips:
    @settings(max_examples=150, deadline=None)
    @given(query=xpath_queries())
    def test_update_str_reparses(self, query):
        target = ("$a" + query) if query.startswith("//") else f"$a/{query}"
        for text in (
            f"delete {target}",
            f"insert <n k=\"v\">t</n> into {target}",
            f"replace {target} with <n/>",
            f"rename {target} as other",
        ):
            update = parse_update(text)
            again = parse_update(str(update))
            assert again.path == update.path
            assert type(again) is type(update)
