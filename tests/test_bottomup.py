"""Tests for the filtering NFA, QualDP and the bottomUp pass."""

import pytest
from hypothesis import given, settings

from repro.automata import build_filtering_nfa, build_selecting_nfa
from repro.automata.core import TEST_DOS, TEST_LABEL, TEST_START
from repro.transform.bottomup import bottom_up_annotate
from repro.transform.qualdp import eval_nq_direct, qual_dp_at
from repro.xmltree import parse
from repro.xpath import eval_qualifier, parse_xpath
from repro.xpath.normalize import QualifierSpace, UnsupportedPathError

from tests.strategies import trees, xpath_queries


P1 = (
    "//part[pname = 'keyboard']"
    "//part[not(supplier/sname = 'HP') and not(supplier/price < 15)]"
)


@pytest.fixture
def doc():
    return parse(
        """
        <db>
          <part>
            <pname>keyboard</pname>
            <supplier><sname>HP</sname><price>12</price><country>US</country></supplier>
            <part>
              <pname>key</pname>
              <supplier><sname>Acme</sname><price>16</price><country>B</country></supplier>
            </part>
          </part>
          <part>
            <pname>mouse</pname>
            <supplier><sname>HP</sname><price>8</price><country>A</country></supplier>
          </part>
        </db>
        """
    )


class TestFilteringNFA:
    def test_fig8_has_branch_states(self):
        selecting = build_selecting_nfa(parse_xpath(P1))
        filtering = build_filtering_nfa(parse_xpath(P1))
        # Fig. 8 adds states for pname, supplier/sname and supplier/price
        # beyond the selecting spine (Fig. 5's 5 states).
        assert selecting.size() == 5
        assert filtering.size() > selecting.size()

    def test_spine_states_annotated(self):
        filtering = build_filtering_nfa(parse_xpath(P1))
        annotated = [s for s in filtering.states if s.nq_id is not None]
        assert len(annotated) == 2  # the two part[q] spine states

    def test_branch_states_have_no_annotations(self):
        filtering = build_filtering_nfa(parse_xpath(P1))
        for state in filtering.states:
            if state.sid not in filtering.spine_ids:
                assert state.nq_id is None

    def test_spine_transitions_mirror_selecting(self):
        selecting = build_selecting_nfa(parse_xpath(P1))
        filtering = build_filtering_nfa(parse_xpath(P1))
        # Running both unfiltered on the same label sequence keeps the
        # same spine step-positions alive.
        s_sel = selecting.initial_states()
        s_fil = filtering.initial_states()
        for label in ["part", "part", "supplier"]:
            s_sel = selecting.next_states(s_sel, label, None)
            s_fil = filtering.next_states(s_fil, label, None)
        # Map states to their step depth via sid ordering on each spine.
        sel_spine = sorted(s_sel)
        fil_spine = sorted(sid for sid in s_fil if sid in filtering.spine_ids)
        assert len(sel_spine) == len(fil_spine)

    def test_qualifier_free_path_has_no_space(self):
        filtering = build_filtering_nfa(parse_xpath("a/b//c"))
        assert len(filtering.space) == 0

    def test_example_5_3_pruning_path(self):
        # p' = supplier//part from the root of T0: no state survives the
        # root's children, so bottomUp prunes immediately.
        filtering = build_filtering_nfa(parse_xpath("supplier//part[pname]"))
        states = filtering.next_states(filtering.initial_states(), "part", None)
        assert states == frozenset()


class TestQualDP:
    def test_leaf_vector(self, doc):
        space = QualifierSpace()
        qual = parse_xpath("x[pname = 'keyboard']").steps[0].quals[0]
        space.normalize_qual(qual)
        leaf = parse("<pname>keyboard</pname>")
        size = len(space)
        sat = qual_dp_at(space, leaf, [False] * size, [False] * size)
        # At the pname leaf itself, label()=pname holds and text matches.
        for expr in space.expressions:
            assert sat[expr.nq_id] == eval_nq_direct(leaf, expr)

    @settings(max_examples=100, deadline=None)
    @given(tree=trees())
    def test_dp_equals_direct_everywhere(self, tree):
        space = QualifierSpace()
        qual = parse_xpath(
            "x[a = '1' or not(.//b[label() = b]) and c/d]"
        ).steps[0].quals[0]
        top = space.normalize_qual(qual)
        size = len(space)

        def recurse(node):
            csat = [False] * size
            dsat = [False] * size
            for child in node.child_elements():
                child_sat, child_dsat = recurse(child)
                for i in range(size):
                    if child_sat[i]:
                        csat[i] = True
                        dsat[i] = True
                    elif child_dsat[i]:
                        dsat[i] = True
            sat = qual_dp_at(space, node, csat, dsat)
            assert sat[top.nq_id] == eval_nq_direct(node, top)
            assert sat[top.nq_id] == eval_qualifier(node, qual)
            return sat, dsat

        recurse(tree)


class TestBottomUp:
    def test_annotations_present_for_alive_nodes(self, doc):
        filtering = build_filtering_nfa(parse_xpath(P1))
        annotations = bottom_up_annotate(doc, nfa=filtering)
        # The root and every part/pname/supplier/sname/price node are
        # alive; country nodes are not on any qualifier path.
        assert id(doc) in annotations.sat_by_node
        for part in doc.descendants_or_self():
            if part.label == "part":
                assert id(part) in annotations.sat_by_node

    def test_pruned_subtrees_not_annotated(self, doc):
        filtering = build_filtering_nfa(parse_xpath("part[pname = 'keyboard']"))
        annotations = bottom_up_annotate(doc, nfa=filtering)
        for node in doc.descendants_or_self():
            if node.label == "supplier":
                assert id(node) not in annotations.sat_by_node

    def test_checkp_matches_reference(self, doc):
        path = parse_xpath(P1)
        filtering = build_filtering_nfa(path)
        selecting = build_selecting_nfa(path)
        annotations = bottom_up_annotate(doc, nfa=filtering)
        # For every annotated part node, the recorded qualifier value
        # matches direct evaluation.
        for node in doc.descendants_or_self():
            if node.label != "part" or id(node) not in annotations.sat_by_node:
                continue
            for state in selecting.states:
                if state.has_qualifier and state.qual in annotations.nq_id_by_qual:
                    assert annotations.checkp(state.qual, node) == eval_qualifier(
                        node, state.qual
                    )

    def test_empty_space_shortcut(self, doc):
        filtering = build_filtering_nfa(parse_xpath("part/supplier"))
        annotations = bottom_up_annotate(doc, nfa=filtering)
        assert len(annotations) == 0

    def test_deep_tree_no_recursion_error(self):
        doc = parse("<a>" + "<a>" * 3000 + "<flag/>" + "</a>" * 3000 + "</a>")
        filtering = build_filtering_nfa(parse_xpath("//a[flag]"))
        annotations = bottom_up_annotate(doc, nfa=filtering)
        assert len(annotations) > 3000

    @settings(max_examples=80, deadline=None)
    @given(tree=trees(), query=xpath_queries())
    def test_annotated_selection_matches_reference(self, tree, query):
        """Selecting with twoPass checkp equals native selection."""
        path = parse_xpath(query)
        try:
            selecting = build_selecting_nfa(path)
            filtering = build_filtering_nfa(path)
        except UnsupportedPathError:
            return
        annotations = bottom_up_annotate(tree, nfa=filtering)
        if len(filtering.space) == 0:
            return

        def annotated_run(node, states, out):
            next_states = selecting.next_states(
                states, node.label, lambda q: annotations.checkp(q, node)
            )
            if not next_states:
                return
            if selecting.selects(next_states):
                out.append(node)
            for child in node.child_elements():
                annotated_run(child, next_states, out)

        selected: list = []
        initial = selecting.initial_states_for(tree)
        if initial:
            for child in tree.child_elements():
                annotated_run(child, initial, selected)
        from repro.xpath import evaluate

        assert [id(n) for n in selected] == [id(n) for n in evaluate(tree, path)]
