"""Rendering tests: every AST layer prints faithful, re-parseable (or
at least human-accurate) text — these strings appear in logs, composed
query plans and the CLI's explain output."""

import pytest

from repro.updates.ops import path_with_var, parse_update
from repro.xpath import parse_xpath
from repro.xpath.ast import Path, Step
from repro.xquery import parse_user_query
from repro.xquery.ast import (
    BoolAnd,
    BoolConst,
    BoolNot,
    BoolOr,
    Compare,
    Conditional,
    ConstTree,
    ElementTemplate,
    EmptySeq,
    Exists,
    For,
    Let,
    Literal,
    PathFrom,
    QualCheck,
    Sequence,
    TransformedSubtree,
    VarRef,
)
from repro.xmltree import element


class TestPathStr:
    @pytest.mark.parametrize(
        "source,expected",
        [
            ("a/b", "a/b"),
            ("//a", "//a"),
            ("a//b", "a//b"),
            ("a/*", "a/*"),
            (".", "."),
            ("a//.", "a//."),
            ("a[b]", "a[b]"),
            ("a[b = 'x']", "a[b = 'x']"),
            ("a[b < 5]", "a[b < 5]"),
            ("a[not(b)]", "a[not(b)]"),
            ("a[b and c]", "a[(b and c)]"),
            ("a[label() = part]", "a[label() = part]"),
            ("a[@id = 'x']", "a[@id = 'x']"),
        ],
    )
    def test_str(self, source, expected):
        assert str(parse_xpath(source)) == expected

    @pytest.mark.parametrize(
        "source",
        ["a/b", "//a", "a//b", "a/*", "a//.", "a[b = 'x']", "a[not(b and c)]",
         "a[@id]", "a[. = 5]", "a[b/@k != 'v']"],
    )
    def test_str_reparses(self, source):
        path = parse_xpath(source)
        assert parse_xpath(str(path)) == path

    def test_path_with_var(self):
        assert path_with_var(parse_xpath("//a")) == "$a//a"
        assert path_with_var(parse_xpath("a/b")) == "$a/a/b"
        assert path_with_var(parse_xpath("a"), var="d") == "$d/a"


class TestQueryExprStr:
    def test_path_from(self):
        assert str(PathFrom("x", parse_xpath("a/b"))) == "$x/a/b"
        assert str(PathFrom("x", parse_xpath("//a"))) == "$x//a"
        assert str(PathFrom(None, parse_xpath("a"))) == "doc()/a"
        assert str(PathFrom("x", Path())) == "$x"

    def test_literals(self):
        assert str(Literal("s")) == "'s'"
        assert str(Literal(5.0)) == "5"
        assert str(EmptySeq()) == "()"

    def test_for_let_conditional(self):
        expr = For("y", PathFrom(None, parse_xpath("a")),
                   Let("z", VarRef("y"),
                       Conditional(BoolConst(True), VarRef("z"), EmptySeq())))
        text = str(expr)
        assert "for $y in doc()/a" in text
        assert "let $z := $y" in text
        assert "if (true())" in text

    def test_boolean_renderings(self):
        qual = parse_xpath("x[a]").steps[0].quals[0]
        pieces = [
            str(Exists(VarRef("x"))),
            str(Compare(VarRef("x"), "=", Literal("v"))),
            str(BoolAnd(BoolConst(True), BoolConst(False))),
            str(BoolOr(BoolConst(False), BoolNot(BoolConst(True)))),
            str(QualCheck("x", qual)),
        ]
        assert pieces == [
            "exists($x)",
            "$x = 'v'",
            "(true() and false())",
            "(false() or not(true()))",
            "$x[a]",
        ]

    def test_sequence_and_template(self):
        expr = Sequence([Literal("a"), ElementTemplate("row", {}, [VarRef("x")])])
        assert str(expr) == "('a', <row>{ $x }</row>)"

    def test_const_tree(self):
        assert str(ConstTree(element("n", "1"))) == "<n>1</n>"

    def test_transformed_subtree_mentions_topdown(self):
        expr = TransformedSubtree(var="x", states=frozenset({1}))
        assert "topDown" in str(expr)
        assert "$x" in str(expr)

    def test_user_query_str_prefers_source(self):
        q = parse_user_query("for $x in a/b return $x")
        assert str(q) == "for $x in a/b return $x"


class TestUpdateStr:
    @pytest.mark.parametrize(
        "text",
        [
            "delete $a//price",
            "insert <x/> into $a/part",
            "replace $a/part with <y>1</y>",
            "rename $a/part as item",
        ],
    )
    def test_round_trip(self, text):
        update = parse_update(text)
        again = parse_update(str(update))
        assert str(again) == str(update)

    def test_transform_query_str(self):
        from repro.transform import parse_transform_query

        text = 'transform copy $a := doc("T0") modify do delete $a//price return $a'
        assert str(parse_transform_query(text)) == text
