"""The static-analysis pass itself: annotation grammar, the guarded-by
lock checker, the layer verifier, the hot-path lint, the runner/CLI and
the baseline machinery.

Fixture modules with *known* violations are written to tmp_path and the
diagnostics asserted down to file:line; the final class is the
self-check — ``repro lint`` must be clean on the shipped tree, which is
the exact gate CI runs.
"""

import json
import os
import textwrap

import pytest

from repro.analysis import (
    DEFAULT_MANIFEST,
    analyze_tree,
    check_guards,
    check_hotpaths,
    check_layers,
    load_baseline,
    main,
    write_baseline,
)
from repro.analysis.annotations import FileAnnotations, normalize_lock
from repro.analysis.layers import component_of, module_name, scan_imports


def guard_findings(source: str, path: str = "mod.py"):
    return check_guards(path, textwrap.dedent(source))


def hot_findings(source: str, path: str = "mod.py"):
    return check_hotpaths(path, textwrap.dedent(source))


# ----------------------------------------------------------------------
# Annotation grammar
# ----------------------------------------------------------------------


class TestAnnotations:
    def test_normalize_lock_drops_whitespace(self):
        assert normalize_lock("self. _lock") == "self._lock"
        assert normalize_lock("self._lock") == "self._lock"

    def test_trailing_and_standalone_forms(self):
        ann = FileAnnotations(
            "# guarded-by[a, b]: self._lock\n"
            "x = 1  # guarded-by: self._lock\n"
            "# holds: self._lock\n"
            "y = 2\n"
        )
        registry = ann.by_line[1]
        assert registry.standalone and registry.names == ("a", "b")
        trailing = ann.at(2, "guarded-by")
        assert trailing is not None and trailing.names is None
        # `attached` finds the standalone holds on the line above y = 2.
        assert ann.attached(4, "holds").lock == "self._lock"

    def test_registry_unguarded_never_waives(self):
        ann = FileAnnotations("# unguarded[a]: grow-only\nx = 1  # unguarded: ok\n")
        assert ann.waiver(1) is None
        assert ann.waiver(2).reason == "ok"


# ----------------------------------------------------------------------
# The guarded-by lock checker
# ----------------------------------------------------------------------


UNGUARDED_WRITE = """
    import threading

    class Box:
        def __init__(self):
            self._lock = threading.Lock()
            self.count = 0  # guarded-by: self._lock

        def good(self):
            with self._lock:
                self.count += 1

        def bad(self):
            self.count += 1
"""


class TestGuardChecker:
    def test_unguarded_write_exact_location(self):
        findings, _ = guard_findings(UNGUARDED_WRITE)
        # An augmented assignment's target carries one Store context,
        # so the bare increment is a single write finding.
        assert [f.code for f in findings] == ["lock.unguarded-write"]
        assert findings[0].line == 14
        assert all(f.subject == "Box.count" for f in findings)
        assert all(f.path == "mod.py" for f in findings)

    def test_unguarded_read_outside_with(self):
        findings, _ = guard_findings(
            """
            import threading

            class Box:
                def __init__(self):
                    self._lock = threading.Lock()
                    self.items = []  # guarded-by: self._lock

                def peek(self):
                    return len(self.items)
            """
        )
        assert [f.code for f in findings] == ["lock.unguarded-read"]
        assert findings[0].line == 10

    def test_with_block_satisfies_the_guard(self):
        findings, _ = guard_findings(
            """
            import threading

            class Box:
                def __init__(self):
                    self._lock = threading.Lock()
                    self.items = []  # guarded-by: self._lock

                def read(self):
                    with self._lock:
                        return list(self.items)
            """
        )
        assert findings == []

    def test_wrong_lock_does_not_satisfy(self):
        findings, _ = guard_findings(
            """
            import threading

            class Box:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._other = threading.Lock()
                    self.items = []  # guarded-by: self._lock

                def read(self):
                    with self._other:
                        return list(self.items)
            """
        )
        assert [f.code for f in findings] == ["lock.unguarded-read"]

    def test_holds_annotation_exempts_method(self):
        findings, _ = guard_findings(
            """
            import threading

            class Box:
                def __init__(self):
                    self._lock = threading.Lock()
                    self.count = 0  # guarded-by: self._lock

                def _bump(self):  # holds: self._lock
                    self.count += 1
            """
        )
        assert findings == []

    def test_lambda_resets_held_locks(self):
        """The probe-lambda bug class: a lambda built inside `with`
        runs later, when the lock is long released."""
        findings, _ = guard_findings(
            """
            import threading

            class Box:
                def __init__(self):
                    self._lock = threading.Lock()
                    self.count = 0  # guarded-by: self._lock

                def probe(self):
                    with self._lock:
                        return lambda: self.count
            """
        )
        assert [f.code for f in findings] == ["lock.unguarded-read"]
        assert findings[0].line == 11

    def test_nested_def_resets_held_locks(self):
        findings, _ = guard_findings(
            """
            import threading

            class Box:
                def __init__(self):
                    self._lock = threading.Lock()
                    self.count = 0  # guarded-by: self._lock

                def deferred(self):
                    with self._lock:
                        def later():
                            return self.count
                        return later
            """
        )
        assert [f.code for f in findings] == ["lock.unguarded-read"]

    def test_registry_form_and_init_exemption(self):
        findings, declared = guard_findings(
            """
            import threading

            class Box:
                # guarded-by[a, b]: self._lock

                def __init__(self):
                    self._lock = threading.Lock()
                    self.a = 0
                    self.b = 0

                def read(self):
                    return self.a
            """
        )
        assert [f.code for f in findings] == ["lock.unguarded-read"]
        assert findings[0].subject == "Box.a"
        assert declared[0].guarded == {"a": "self._lock", "b": "self._lock"}

    def test_inline_waiver_reported_not_gating(self):
        findings, _ = guard_findings(
            """
            import threading

            class Box:
                def __init__(self):
                    self._lock = threading.Lock()
                    self.count = 0  # guarded-by: self._lock

                def racy(self):
                    return self.count  # unguarded: monitoring only
            """
        )
        assert len(findings) == 1
        assert findings[0].waived and findings[0].reason == "monitoring only"

    def test_finding_key_is_line_free(self):
        findings, _ = guard_findings(UNGUARDED_WRITE)
        assert findings[0].key() == "lock:mod.py:lock.unguarded-write:Box.count"


# ----------------------------------------------------------------------
# The hot-path lint
# ----------------------------------------------------------------------


class TestHotPathLint:
    def test_fstring_rejected(self):
        findings, hot = hot_findings(
            """
            # hot-path
            def fast(x):
                return f"value={x}"
            """
        )
        assert [f.code for f in findings] == ["hotpath.fstring"]
        assert findings[0].line == 4
        assert hot == ["fast"]

    def test_comprehension_and_generator_rejected(self):
        findings, _ = hot_findings(
            """
            def fast(xs):  # hot-path
                return [x for x in xs], (x for x in xs)
            """
        )
        assert sorted(f.code for f in findings) == [
            "hotpath.comprehension", "hotpath.generator",
        ]

    def test_literals_flagged_only_inside_loops(self):
        findings, _ = hot_findings(
            """
            def fast(xs):  # hot-path
                out = []
                for x in xs:
                    out.append({"x": x})
                return out
            """
        )
        assert [f.code for f in findings] == ["hotpath.literal"]
        assert findings[0].line == 5

    def test_getattr_default_and_lock_rejected(self):
        findings, _ = hot_findings(
            """
            def fast(self, node):  # hot-path
                with self._lock:
                    return getattr(node, "label", None)
            """
        )
        assert sorted(f.code for f in findings) == [
            "hotpath.getattr-default", "hotpath.lock",
        ]

    def test_acquire_and_format_rejected(self):
        findings, _ = hot_findings(
            """
            def fast(self, x):  # hot-path
                self.mutex.acquire()
                return "{}".format(x)
            """
        )
        assert sorted(f.code for f in findings) == [
            "hotpath.format", "hotpath.lock",
        ]

    def test_unmarked_functions_ignored(self):
        findings, hot = hot_findings(
            """
            def slow(x):
                return f"{x}" + "".join(str(i) for i in range(x))
            """
        )
        assert findings == [] and hot == []

    def test_clean_hot_function_passes(self):
        findings, hot = hot_findings(
            """
            def fast(sym, end, moves, context, limit):  # hot-path
                out = []
                i = context + 1
                while i < limit:
                    s = sym[i]
                    if s < 0:
                        i += 1
                        continue
                    move = moves.get(s)
                    if move is None:
                        i = end[i]
                        continue
                    out.append(i)
                    i += 1
                return out
            """
        )
        assert findings == [] and hot == ["fast"]


# ----------------------------------------------------------------------
# The layer verifier
# ----------------------------------------------------------------------


def write_tree(root, files):
    for rel, source in files.items():
        path = os.path.join(root, rel)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(textwrap.dedent(source))


def layer_check(root, manifest):
    modules = {}
    known = set()
    paths = []
    for dirpath, _dirnames, filenames in os.walk(root):
        for name in sorted(filenames):
            if name.endswith(".py"):
                rel = os.path.relpath(os.path.join(dirpath, name), root)
                rel = rel.replace(os.sep, "/")
                paths.append(rel)
                known.add(module_name(rel))
    for rel in paths:
        with open(os.path.join(root, rel), "r", encoding="utf-8") as handle:
            source = handle.read()
        module = module_name(rel)
        modules[module] = (rel, scan_imports(module, source, known))
    return check_layers(modules, manifest)


class TestLayerVerifier:
    MANIFEST = (("low",), ("high",))

    def test_module_names_and_components(self):
        assert module_name("store/views.py") == "repro.store.views"
        assert module_name("lru.py") == "repro.lru"
        assert module_name("store/__init__.py") == "repro.store"
        assert component_of("repro.store.views") == "store"
        assert component_of("repro") == "repro"

    def test_back_edge_flagged_with_line(self, tmp_path):
        root = str(tmp_path)
        write_tree(root, {
            "low/__init__.py": "",
            "low/a.py": "import os\n\nimport repro.high.b\n",
            "high/__init__.py": "",
            "high/b.py": "",
        })
        findings = layer_check(root, self.MANIFEST)
        assert [f.code for f in findings] == ["layers.back-edge"]
        assert findings[0].path == "low/a.py"
        assert findings[0].line == 3
        assert findings[0].subject == "low -> high"

    def test_lazy_back_edge_still_flagged(self, tmp_path):
        root = str(tmp_path)
        write_tree(root, {
            "low/__init__.py": "",
            "low/a.py": "def f():\n    from repro.high import b\n    return b\n",
            "high/__init__.py": "",
            "high/b.py": "",
        })
        findings = layer_check(root, self.MANIFEST)
        assert [f.code for f in findings] == ["layers.back-edge"]
        assert findings[0].line == 2

    def test_top_level_cycle_detected(self, tmp_path):
        root = str(tmp_path)
        write_tree(root, {
            "low/__init__.py": "",
            "low/a.py": "import repro.low.b\n",
            "low/b.py": "import repro.low.a\n",
        })
        findings = layer_check(root, (("low",),))
        assert [f.code for f in findings] == ["layers.cycle"]
        assert "repro.low.a -> repro.low.b" in findings[0].subject or \
            "repro.low.b -> repro.low.a" in findings[0].subject

    def test_lazy_import_breaks_the_cycle(self, tmp_path):
        root = str(tmp_path)
        write_tree(root, {
            "low/__init__.py": "",
            "low/a.py": "import repro.low.b\n",
            "low/b.py": "def f():\n    import repro.low.a\n    return repro.low.a\n",
        })
        assert layer_check(root, (("low",),)) == []

    def test_from_import_resolves_to_submodule(self, tmp_path):
        """`from repro.low import b` is an edge onto repro.low.b, not
        onto the package __init__ (the false-cycle trap)."""
        root = str(tmp_path)
        write_tree(root, {
            "low/__init__.py": "from repro.low import a\n",
            "low/a.py": "",
            "low/b.py": "from repro.low import a\n",
        })
        assert layer_check(root, (("low",),)) == []

    def test_unknown_component_flagged(self, tmp_path):
        root = str(tmp_path)
        write_tree(root, {"mystery/__init__.py": "", "mystery/a.py": ""})
        findings = layer_check(root, self.MANIFEST)
        assert {f.code for f in findings} == {"layers.unknown-component"}

    def test_shipped_manifest_covers_shipped_tree(self):
        components = {layer_component
                      for layer in DEFAULT_MANIFEST
                      for layer_component in layer}
        package_dir = os.path.join(
            os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
            "src", "repro",
        )
        for entry in sorted(os.listdir(package_dir)):
            if entry == "__pycache__" or entry.startswith("."):
                continue
            name = entry[:-3] if entry.endswith(".py") else entry
            if name == "__init__":
                name = "repro"
            assert name in components, f"{name} missing from DEFAULT_MANIFEST"


# ----------------------------------------------------------------------
# The runner, CLI and baseline machinery
# ----------------------------------------------------------------------


VIOLATING_TREE = {
    "__init__.py": "",
    "beta/__init__.py": "",
    "beta/box.py": """
        import threading

        import repro.alpha.hot  # the back-edge (beta is below alpha)


        class Box:
            def __init__(self):
                self._lock = threading.Lock()
                self.count = 0  # guarded-by: self._lock

            def bad(self):
                self.count += 1
    """,
    "alpha/__init__.py": "",
    "alpha/hot.py": """
        def fast(x):  # hot-path
            return f"bad {x}"
    """,
}

VIOLATING_MANIFEST = (("beta",), ("alpha",), ("repro",))


@pytest.fixture
def violating_root(tmp_path):
    root = str(tmp_path / "pkg")
    write_tree(root, VIOLATING_TREE)
    return root


class TestRunner:
    def test_each_violation_class_reported(self, violating_root):
        report = analyze_tree(violating_root, manifest=VIOLATING_MANIFEST)
        codes = sorted({f.code for f in report.violations})
        assert codes == [
            "hotpath.fstring",
            "layers.back-edge",
            "lock.unguarded-write",
        ]
        assert not report.ok
        summary = report.summary()
        assert summary["analysis.lock.violations"] == 1
        assert summary["analysis.layers.violations"] == 1
        assert summary["analysis.hotpath.violations"] == 1
        assert summary["analysis.files.scanned"] == 5

    def test_cli_exits_nonzero_and_reports_locations(self, violating_root, capsys):
        code = main(["--root", violating_root, "--no-baseline"])
        out = capsys.readouterr().out
        assert code == 1
        assert "beta/box.py:13" in out      # the unguarded increment
        assert "alpha/hot.py:3" in out      # the f-string
        # The CLI runs the shipped manifest, which has never heard of
        # the fixture packages: the layering failure surfaces as
        # unknown-component findings (the back-edge itself is asserted
        # against the fixture manifest via analyze_tree above).
        assert "component 'beta'" in out
        assert "component 'alpha'" in out

    def test_cli_json_mode(self, violating_root, capsys):
        code = main(["--root", violating_root, "--no-baseline", "--json"])
        assert code == 1
        doc = json.loads(capsys.readouterr().out)
        assert doc["summary"]["analysis.files.scanned"] == 5
        assert {v["code"] for v in doc["violations"]} >= {
            "lock.unguarded-write", "hotpath.fstring",
        }

    def test_baseline_suppresses_exactly_the_accepted_keys(
        self, violating_root, tmp_path, capsys
    ):
        baseline = str(tmp_path / "baseline.json")
        # Accept everything currently failing...
        code = main(["--root", violating_root, "--no-baseline",
                     "--write-baseline", baseline])
        assert code == 0
        accepted = load_baseline(baseline)
        assert accepted  # non-empty
        # ...and the gate goes green without touching the tree.
        capsys.readouterr()
        code = main(["--root", violating_root, "--baseline", baseline])
        out = capsys.readouterr().out
        assert code == 0
        assert "0 violation(s)" in out

    def test_corrupt_baseline_is_a_usage_error(self, violating_root, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text('{"version": 99, "accept": []}')
        assert main(["--root", violating_root, "--baseline", str(bad)]) == 2

    def test_write_baseline_round_trips(self, violating_root, tmp_path):
        from repro.analysis.findings import Report

        report = analyze_tree(violating_root, manifest=VIOLATING_MANIFEST)
        path = str(tmp_path / "b.json")
        count = write_baseline(path, report, note="fixture")
        assert count == len({f.key() for f in report.violations})
        report2 = analyze_tree(violating_root, manifest=VIOLATING_MANIFEST)
        report2.apply_baseline(load_baseline(path))
        assert report2.ok
        assert report2.baseline_suppressed > 0
        assert isinstance(report2, Report)


# ----------------------------------------------------------------------
# The self-check: the shipped tree lints clean
# ----------------------------------------------------------------------


class TestShippedTree:
    def test_repro_lint_is_clean_on_the_shipped_tree(self):
        report = analyze_tree(self._package_dir())
        assert report.violations == [], report.to_text()

    def test_shipped_annotations_have_real_coverage(self):
        """The inventory floor: if a refactor silently drops the
        annotations, this fails before the checkers go blind."""
        report = analyze_tree(self._package_dir())
        guarded = {(e["cls"], e["attr"]) for e in report.guarded_attrs}
        assert ("LRUCache", "_data") in guarded
        assert ("ViewStore", "arena_reads") in guarded
        assert ("QueryService", "_closed") in guarded
        assert ("StoredDocument", "version") in guarded
        assert ("MetricsRegistry", "_instruments") in guarded
        assert len(report.guarded_attrs) >= 30
        hot = set(report.hot_functions)
        assert "repro.automata.arena_run.select_indices" in hot
        assert "repro.automata.dfa.LazyDFA.step" in hot
        assert "repro.obs.registry._NullInstrument.inc" in hot
        assert len(report.hot_functions) >= 15
        # Every declared-unguarded exemption carries a reason.
        assert all(e["reason"] for e in report.declared_unguarded)

    def test_cli_subcommand_runs_clean(self, capsys):
        from repro.cli import main as repro_main

        assert repro_main(["lint"]) == 0
        assert "0 violation(s)" in capsys.readouterr().out

    @staticmethod
    def _package_dir():
        import repro

        return os.path.dirname(os.path.abspath(repro.__file__))
