"""End-to-end request observability: cross-process trace propagation,
plan-vs-actual execution profiles, the slow-query log, and the text
exposition surface.

Covers the acceptance criteria of the observability tentpole: a
client-driven request against a process-mode service yields ONE
stitched trace with client, service, and worker spans under a single
trace id; ``explain_analyze`` reports estimated vs actual rows for
every Fig-12 read; the slow-query ring captures over-threshold
requests with their trace and profile; the Prometheus text rendering
exposes every histogram's exact min/max; and a worker killed mid-group
still produces a well-formed stitched trace with the retry stamped.
"""

import json
import os
import sys
import time
import urllib.request
from concurrent.futures import BrokenExecutor

import pytest

from repro.engine.engine import Engine
from repro.obs import (
    ExpositionServer,
    MetricsRegistry,
    Profile,
    SlowQueryLog,
    Tracer,
    current_profile,
    new_span_id,
    process_token,
    profiled,
    render_events,
    render_prometheus,
    stitch,
)
from repro.service import Client, QueryService, ServiceConfig, ServiceServer
from repro.service.workers import ProcessWorkers
from repro.store.store import ViewStore
from repro.xmltree.parser import parse_to_arena

CATALOG = (
    "<db><part><pname>kb</pname>"
    "<supplier><sname>HP</sname><price>12</price><country>A</country></supplier>"
    "<supplier><sname>Dell</sname><price>20</price><country>B</country></supplier>"
    "</part><part><pname>mouse</pname>"
    "<supplier><sname>HP</sname><price>8</price><country>A</country></supplier>"
    "</part></db>"
)

QUERY = "for $x in part/supplier return $x"


def _wait_for(fn, timeout=5.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        value = fn()
        if value:
            return value
        time.sleep(0.01)
    raise AssertionError("condition not met in time")


# ----------------------------------------------------------------------
# Profiles: plan-vs-actual
# ----------------------------------------------------------------------


class TestProfile:
    def test_counters_and_snapshot(self):
        prof = Profile()
        prof.set_plan("scan", "arena", est_cost=83.0, est_nodes=100)
        prof.add_scan(nodes=40, pruned=7, transitions=40)
        prof.add_table_growth(sets=2, moves=5)
        prof.add_serialize_bytes(123)
        prof.set_results(9)
        prof.finish()
        snap = prof.snapshot()
        assert snap["strategy"] == "scan"
        assert snap["backend"] == "arena"
        assert snap["nodes_visited"] == 40
        assert snap["subtrees_pruned"] == 7
        assert snap["dfa_transitions"] == 40
        assert snap["table_sets_added"] == 2
        assert snap["table_moves_added"] == 5
        assert snap["serialize_bytes"] == 123
        assert snap["results"] == 9
        assert snap["visit_ratio"] == pytest.approx(0.4)
        assert snap["dur_us"] >= 0

    def test_profiled_activates_and_restores(self):
        assert current_profile() is None
        outer, inner = Profile(), Profile()
        with profiled(outer):
            assert current_profile() is outer
            with profiled(inner):
                assert current_profile() is inner
            assert current_profile() is outer
        assert current_profile() is None

    def test_select_indices_equivalent_with_and_without_profile(self):
        # The profiled twin of the arena scan loop must select exactly
        # the same refs as the bare hot path.
        arena = parse_to_arena(CATALOG)
        engine = Engine()
        prepared = engine.prepare_query(QUERY)
        bare = prepared.run_refs(arena)
        prof = Profile()
        with profiled(prof):
            again = prepared.run_refs(arena)
        assert again == bare
        assert prof.nodes_visited > 0
        assert prof.dfa_transitions > 0

    def test_explain_analyze_covers_fig12_mix(self):
        sys.path.insert(
            0, os.path.join(os.path.dirname(__file__), "..", "benchmarks")
        )
        try:
            import loadgen
        finally:
            sys.path.pop(0)
        from repro.xmark.generator import generate
        from repro.xmltree.serializer import serialize

        arena = parse_to_arena(serialize(generate(0.002, seed=42)))
        engine = Engine()
        for text in loadgen.READS:
            report, results = engine.prepare_query(text).explain_analyze(arena)
            assert "estimated" in report and "actual:" in report
            assert "nodes visited" in report
            prof_line = [l for l in report.splitlines() if "estimated" in l and "visited" in l]
            assert prof_line, report
        drift = engine.planner.drift_stats()
        assert drift, "observe_actual never recorded a run"
        for row in drift.values():
            assert row["runs"] >= 1
            assert row["visit_ratio"] is not None

    def test_transform_explain_analyze_reports_estimate(self):
        engine = Engine()
        prepared = engine.prepare_transform(
            'transform copy $a := doc("db") modify do delete $a//price return $a'
        )
        from repro.xmltree.parser import parse

        report, result = prepared.explain_analyze(parse(CATALOG))
        assert "actual:" in report
        assert "nodes visited" in report
        assert result is not None

    def test_drift_probe_reaches_registry(self):
        registry = MetricsRegistry()
        engine = Engine()
        engine.bind_metrics(registry)
        arena = parse_to_arena(CATALOG)
        engine.prepare_query(QUERY).explain_analyze(arena)
        snap = registry.snapshot()
        drift_keys = [k for k in snap if k.startswith("engine.planner.drift.")]
        assert drift_keys, sorted(snap)


# ----------------------------------------------------------------------
# Slow-query log
# ----------------------------------------------------------------------


class TestSlowQueryLog:
    def test_threshold_gates_and_ring_bounds(self):
        log = SlowQueryLog(threshold=0.5, ring=2)
        assert log.enabled
        assert not log.should_record(0.4)
        assert log.should_record(0.6)
        for i in range(3):
            log.record({"i": i})
        stats = log.stats()
        assert stats["recorded"] == 3
        assert stats["buffered"] == 2
        assert stats["dropped"] == 1
        assert [e["i"] for e in log.entries()] == [1, 2]

    def test_drain_empties_the_ring(self):
        log = SlowQueryLog(threshold=0.0, ring=4)
        log.record({"i": 0})
        assert [e["i"] for e in log.entries(drain=True)] == [0]
        assert log.entries() == []
        assert log.stats()["buffered"] == 0

    def test_negative_threshold_disables(self):
        log = SlowQueryLog(threshold=-1.0)
        assert not log.enabled
        assert not log.should_record(1e9)

    def test_sink_write_through_and_error_isolation(self):
        seen = []
        log = SlowQueryLog(threshold=0.0, sink=seen.append)
        log.record({"i": 1})
        assert seen == [{"i": 1}]

        def boom(entry):
            raise OSError("disk full")

        log = SlowQueryLog(threshold=0.0, sink=boom)
        log.record({"i": 2})  # must not raise
        assert log.stats()["recorded"] == 1

    def test_service_captures_slow_request_with_trace_and_profile(self):
        # The batch window injects a deterministic queue wait, so a
        # tight threshold reliably captures the request.
        svc = QueryService(
            config=ServiceConfig(
                batch_window=0.05, trace_sample=1, profile_sample=1,
                slow_threshold=0.001,
            )
        )
        try:
            svc.put("db", CATALOG)
            svc.query("db", QUERY)
            out = _wait_for(lambda: svc.slowlog()["entries"])
            entry = out[0]
            assert entry["target"] == "db"
            assert entry["query"] == QUERY
            assert entry["outcome"] == "ok"
            assert entry["dur_ms"] >= 1.0
            assert entry["queue_ms"] is not None and entry["queue_ms"] > 0
            assert entry["snapshot_version"] == 1
            trace = entry["trace"]
            assert trace is not None and trace["name"] == "service.query"
            assert any(s["name"] == "queue" for s in trace["spans"])
            profile = entry["profile"]
            assert profile is not None
            assert profile["strategy"] == "scan"
            assert profile["nodes_visited"] > 0
            assert profile["serialize_bytes"] > 0
            assert svc.stats()["slowlog"]["recorded"] >= 1
        finally:
            svc.close()

    def test_disabled_metrics_disables_slowlog(self):
        svc = QueryService(
            config=ServiceConfig(metrics=False, slow_threshold=0.0)
        )
        try:
            svc.put("db", CATALOG)
            svc.query("db", QUERY)
            assert svc.slowlog()["entries"] == []
        finally:
            svc.close()


# ----------------------------------------------------------------------
# Text exposition: Prometheus rendering + the scrape server
# ----------------------------------------------------------------------


class TestExposition:
    def test_histogram_renders_summary_with_exact_min_max(self):
        registry = MetricsRegistry()
        hist = registry.histogram("svc.req.latency")
        for value in (0.002, 0.9, 0.004):
            hist.observe(value)
        text = render_prometheus(registry.snapshot())
        assert "# TYPE repro_svc_req_latency summary" in text
        assert 'repro_svc_req_latency{quantile="0.5"}' in text
        assert "repro_svc_req_latency_count 3" in text
        # Satellite: exact min/max land in the exposition, not just the
        # snapshot — interpolated percentiles clamp, the tails do not.
        assert "repro_svc_req_latency_min 0.002" in text
        assert "repro_svc_req_latency_max 0.9" in text

    def test_scalars_bools_and_junk(self):
        text = render_prometheus({
            "a.b.count": 7,
            "a.b.ratio": 0.5,
            "a.b.flag": True,
            "a.b.name": "not-a-number",
            "a.b.bad": float("nan"),
        })
        assert "repro_a_b_count 7" in text
        assert "repro_a_b_ratio 0.5" in text
        assert "# TYPE repro_a_b_flag gauge" in text
        assert "repro_a_b_flag 1" in text
        assert "name" not in text.replace("repro_a_b_name", "")  # skipped
        assert "nan" not in text.lower()

    def test_prometheus_text_parses_line_by_line(self):
        registry = MetricsRegistry()
        registry.counter("x.y.hits").inc(3)
        registry.histogram("x.y.lat").observe(0.25)
        for line in render_prometheus(registry.snapshot()).splitlines():
            if not line or line.startswith("#"):
                continue
            name, value = line.rsplit(" ", 1)
            assert name
            float(value)  # every sample value must parse as a float

    def test_render_events_jsonl(self):
        out = render_events([{"a": 1}, {"b": [1, 2]}])
        lines = out.strip().splitlines()
        assert [json.loads(l) for l in lines] == [{"a": 1}, {"b": [1, 2]}]
        assert render_events([]) == ""

    def test_exposition_server_serves_metrics_events_healthz(self):
        registry = MetricsRegistry()
        registry.counter("a.b.c").inc()
        server = ExpositionServer(
            snapshot_fn=registry.snapshot,
            events_fn=lambda: [{"trace": "t-1"}],
        ).start()
        host, port = server.address
        try:
            body = urllib.request.urlopen(
                f"http://{host}:{port}/metrics", timeout=5
            ).read().decode()
            assert "repro_a_b_c 1" in body
            events = urllib.request.urlopen(
                f"http://{host}:{port}/events", timeout=5
            ).read().decode()
            assert json.loads(events.strip()) == {"trace": "t-1"}
            health = urllib.request.urlopen(
                f"http://{host}:{port}/healthz", timeout=5
            ).read().decode()
            assert health.strip() == "ok"
            with pytest.raises(urllib.error.HTTPError):
                urllib.request.urlopen(f"http://{host}:{port}/nope", timeout=5)
        finally:
            server.stop()


# ----------------------------------------------------------------------
# Stitching and id uniqueness
# ----------------------------------------------------------------------


class TestStitch:
    def test_span_ids_are_process_token_prefixed_and_unique(self):
        token = process_token()
        ids = {new_span_id() for _ in range(100)}
        assert len(ids) == 100
        assert all(i.startswith(token + "-s") for i in ids)

    def test_single_root_tree_is_well_formed(self):
        tracer = Tracer(sample_every=1)
        root = tracer.trace("client.query")
        child = tracer.trace(
            "service.query", trace_id=root.trace_id, parent_span=root.span_id
        )
        child.finish()
        root.finish()
        [entry] = stitch(tracer.records())
        assert entry["well_formed"]
        assert entry["root"]["name"] == "client.query"
        assert [r["name"] for r in entry["records"]] == [
            "client.query", "service.query",
        ]

    def test_orphan_span_is_flagged(self):
        tracer = Tracer(sample_every=1)
        root = tracer.trace("client.query")
        # A worker span whose parent died before finishing: its parent
        # id appears nowhere in the stitched set.
        root.add_spans([{
            "name": "worker.evaluate",
            "span_id": "deadbeef-s1",
            "parent_span": "deadbeef-s0",
        }])
        root.finish()
        [entry] = stitch(tracer.records())
        assert not entry["well_formed"]
        assert entry["orphan_spans"][0]["span_id"] == "deadbeef-s1"
        assert entry["root"] is not None  # the root itself still finished

    def test_two_roots_is_not_well_formed(self):
        tracer = Tracer(sample_every=1)
        for _ in range(2):
            trace = tracer.trace("x", trace_id="shared-1")
            trace.finish()
        [entry] = stitch(tracer.records())
        assert entry["root"] is None
        assert not entry["well_formed"]

    def test_propagated_trace_bypasses_sampling(self):
        tracer = Tracer(sample_every=1000)
        tracer.trace("first")  # deterministic 1-in-N: the first is sampled
        assert not tracer.trace("unsampled").sampled
        adopted = tracer.trace("svc", trace_id="upstream-1", parent_span="up-s1")
        assert adopted.sampled
        assert adopted.trace_id == "upstream-1"
        adopted.finish()
        assert tracer.records()[0]["parent_span"] == "up-s1"


# ----------------------------------------------------------------------
# Cross-process propagation through the full stack
# ----------------------------------------------------------------------


@pytest.fixture
def wire():
    svc = QueryService(
        config=ServiceConfig(
            batch_window=0.001, trace_sample=1, slow_threshold=0.0
        )
    )
    svc.put("db", CATALOG)
    server = ServiceServer(svc)
    host, port = server.start()
    client = Client(host, port, timeout=10.0, trace_sample=1)
    yield svc, server, client
    client.close()
    server.stop()


class TestPropagation:
    def test_client_root_and_service_record_share_one_trace(self, wire):
        svc, _, client = wire
        client.query("db", QUERY)
        server_records = _wait_for(lambda: client.traces())
        [local] = client.local_traces()
        assert local["name"] == "client.query"
        [server_rec] = [r for r in server_records if r["name"] == "service.query"]
        assert server_rec["trace"] == local["trace"]
        assert server_rec["parent_span"] == local["span_id"]

    def test_client_stitched_yields_one_well_formed_tree(self, wire):
        _, _, client = wire
        client.query("db", QUERY)
        _wait_for(lambda: client.traces())
        entries = client.stitched()
        assert len(entries) == 1
        [entry] = entries
        assert entry["well_formed"]
        assert entry["root"]["name"] == "client.query"
        names = sorted(r["name"] for r in entry["records"])
        assert names == ["client.query", "service.query"]

    def test_traces_op_stitched_flag(self, wire):
        _, _, client = wire
        client.query("db", QUERY)
        _wait_for(lambda: client.traces())
        [entry] = client.traces(stitched=True)
        assert entry["span_count"] >= 1
        assert "well_formed" in entry

    def test_slowlog_and_metrics_text_ops(self, wire):
        _, _, client = wire
        client.query("db", QUERY)
        out = _wait_for(lambda: client.slowlog()["entries"])
        assert out[0]["query"] == QUERY
        text = client.metrics_text()
        assert "# TYPE repro_service_request_latency summary" in text
        drained = client.slowlog(drain=True)
        assert drained["entries"]
        assert client.slowlog()["entries"] == []

    def test_unsampled_client_sends_no_context(self):
        svc = QueryService(
            config=ServiceConfig(batch_window=0.001, trace_sample=1)
        )
        svc.put("db", CATALOG)
        server = ServiceServer(svc)
        host, port = server.start()
        client = Client(host, port, timeout=10.0, trace_sample=0)
        try:
            client.query("db", QUERY)
            records = _wait_for(lambda: client.traces())
            # The service still samples its own trace, but as a root
            # (no propagated parent), and the client buffered nothing.
            [rec] = [r for r in records if r["name"] == "service.query"]
            assert "parent_span" not in rec
            assert client.local_traces() == []
        finally:
            client.close()
            server.stop()


DOC = "<a><x>1</x></a>"


def _snapshot():
    store = ViewStore()
    store.put("db", DOC)
    return store.pin("db")


class TestProcessModePropagation:
    def test_worker_spans_ride_home_and_carry_foreign_token(self):
        svc = QueryService(
            config=ServiceConfig(
                mode="process", workers=2, batch_window=0.001,
                trace_sample=1,
            )
        )
        try:
            svc.put("db", CATALOG)
            svc.query("db", QUERY)
            records = _wait_for(lambda: svc.traces())
            [rec] = [r for r in records if r["name"] == "service.query"]
            workers = [s for s in rec["spans"] if s["name"] == "worker.evaluate"]
            assert workers, rec["spans"]
            span = workers[0]
            # Minted in the worker process: its token differs from this
            # process's, so ids can never collide (satellite 1).
            assert span["proc"] != process_token()
            assert span["span_id"].startswith(span["proc"])
            assert span["parent_span"] == rec["span_id"]
            assert span["pid"] != os.getpid()
            [entry] = stitch(records)
            assert entry["well_formed"]
        finally:
            svc.close()

    def test_chaos_killed_worker_still_stitches_with_retry_stamped(self):
        """Kill a worker mid-group: the pool respawns, the retry re-runs
        the group, and the stitched trace is well-formed with the retry
        count on the service record (the dead attempt's spans die with
        the worker — they never become orphans)."""
        workers = ProcessWorkers(1)
        tracer = Tracer(sample_every=1)
        try:
            kill = workers.processes.submit(os._exit, 1)
            with pytest.raises(BrokenExecutor):
                kill.result(timeout=60)
            trace = tracer.trace("service.query", target="db")
            text = "for $x in a return $x"
            outcomes = workers.evaluate_group(
                _snapshot(), [text], None,
                trace_ctxs={text: {"trace": trace.trace_id,
                                   "parent_span": trace.span_id}},
            )
            assert outcomes[0][0] == "ok"
            assert outcomes.retries == 1
            assert workers.restarts == 1
            trace.add_spans(outcomes.spans_by_text.get(text, []))
            trace.note(worker_retries=outcomes.retries)
            trace.finish(outcome="ok")
            [entry] = stitch(tracer.records())
            assert entry["well_formed"]
            assert entry["root"]["meta"]["worker_retries"] == 1
            assert any(
                s["name"] == "worker.evaluate"
                for s in entry["root"]["spans"]
            )
        finally:
            workers.shutdown()
