"""Pytest bootstrap: make ``src/`` importable even without installation.

The package is normally installed with ``pip install -e .`` (or
``python setup.py develop`` on minimal toolchains without ``wheel``);
this fallback keeps the test and benchmark suites runnable either way.
"""

import os
import sys

_SRC = os.path.join(os.path.dirname(__file__), "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)
