"""Legacy setup shim: lets ``pip install -e .`` work without wheel/PEP 517.

All metadata lives in pyproject.toml; setuptools reads it from there.
"""

from setuptools import setup

setup()
