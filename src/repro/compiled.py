"""The :class:`CompiledCache` of parsed queries, automata and composed
plans, built on :class:`repro.lru.LRUCache`.

Parsing a transform query, building its selecting NFA and composing a
user query against it are all pure functions of the source text, so a
resident engine or store should pay for them once per distinct text,
not once per request.  Result caches (which *do* depend on document
state) live with their owners (e.g. :class:`repro.store.store.ViewStore`,
keyed by document version); this module only caches artifacts that
never go stale.

Like :mod:`repro.lru`, this lives at the package root: both the engine
and the store use it, and the store already imports the engine's
planner — shared infrastructure must live below both so the layering
stays one-directional (store → engine → here).
"""

from __future__ import annotations

from repro.automata.filtering import FilteringNFA, build_filtering_nfa
from repro.automata.selecting import SelectingNFA, build_selecting_nfa
from repro.compose.compose import compose
from repro.lru import LRUCache
from repro.transform.query import TransformQuery, parse_transform_query
from repro.xpath.ast import Path
from repro.xpath.parser import parse_xpath
from repro.xquery.ast import Expr, UserQuery
from repro.xquery.parser import parse_user_query

__all__ = ["CompiledCache"]


class CompiledCache:
    """LRU caches for every compiled artifact the store reuses:

    * parsed X paths and their selecting/filtering NFAs,
    * parsed transform and user queries,
    * composed plans — the Compose Method's output for one
      (user query, transform query) pair of source texts.
    """

    def __init__(self, maxsize: int = 256):
        self.paths = LRUCache(maxsize)
        self.transforms = LRUCache(maxsize)
        self.user_queries = LRUCache(maxsize)
        self.selecting = LRUCache(maxsize)
        self.filtering = LRUCache(maxsize)
        self.plans = LRUCache(maxsize)

    # ------------------------------------------------------------------
    # Parsers
    # ------------------------------------------------------------------

    def xpath(self, text: str) -> Path:
        return self.paths.get_or_compute(text, lambda: parse_xpath(text))

    def transform(self, text: str) -> TransformQuery:
        return self.transforms.get_or_compute(
            text, lambda: parse_transform_query(text)
        )

    def user_query(self, text: str) -> UserQuery:
        return self.user_queries.get_or_compute(
            text, lambda: parse_user_query(text)
        )

    # ------------------------------------------------------------------
    # Automata and plans
    # ------------------------------------------------------------------

    def selecting_nfa_for(self, path: Path) -> SelectingNFA:
        # NFAs are keyed by the parsed Path (hashable, structural
        # equality): rendered text does not round-trip quoted string
        # literals, so it must never be the cache key.
        return self.selecting.get_or_compute(
            path, lambda: build_selecting_nfa(path)
        )

    def filtering_nfa_for(self, path: Path) -> FilteringNFA:
        return self.filtering.get_or_compute(
            path, lambda: build_filtering_nfa(path)
        )

    def selecting_nfa(self, path_text: str) -> SelectingNFA:
        return self.selecting_nfa_for(self.xpath(path_text))

    def filtering_nfa(self, path_text: str) -> FilteringNFA:
        return self.filtering_nfa_for(self.xpath(path_text))

    def composed(self, user_text: str, transform_text: str) -> Expr:
        """The composed plan for the pair of source texts."""
        return self.plans.get_or_compute(
            (user_text, transform_text),
            lambda: compose(
                self.user_query(user_text), self.transform(transform_text)
            ),
        )

    # ------------------------------------------------------------------

    def clear(self) -> None:
        for cache in self._caches().values():
            cache.invalidate()

    def _caches(self) -> dict:
        return {
            "paths": self.paths,
            "transforms": self.transforms,
            "user_queries": self.user_queries,
            "selecting_nfas": self.selecting,
            "filtering_nfas": self.filtering,
            "plans": self.plans,
        }

    def stats(self) -> dict:
        return {name: cache.stats() for name, cache in self._caches().items()}
