"""The :class:`CompiledCache` of parsed queries, automata and composed
plans, built on :class:`repro.lru.LRUCache`.

Parsing a transform query, building its selecting NFA and composing a
user query against it are all pure functions of the source text, so a
resident engine or store should pay for them once per distinct text,
not once per request.  Result caches (which *do* depend on document
state) live with their owners (e.g. :class:`repro.store.store.ViewStore`,
keyed by document version); this module only caches artifacts that
never go stale.

Like :mod:`repro.lru`, this lives at the package root: both the engine
and the store use it, and the store already imports the engine's
planner — shared infrastructure must live below both so the layering
stays one-directional (store → engine → here).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Dict, cast

from repro.automata.dfa import LazyDFA
from repro.automata.filtering import FilteringNFA, build_filtering_nfa
from repro.automata.selecting import SelectingNFA, build_selecting_nfa
from repro.compose.compose import compose
from repro.lru import LRUCache
from repro.transform.query import TransformQuery, parse_transform_query
from repro.xpath.ast import Path
from repro.xpath.parser import parse_xpath
from repro.xquery.ast import Expr, UserQuery
from repro.xquery.parser import parse_user_query

if TYPE_CHECKING:
    from repro.obs.registry import MetricsRegistry

__all__ = ["CompiledCache", "CompiledPath"]


class CompiledPath:
    """Everything compiled from one ``X`` path, bundled: the selecting
    and filtering NFAs plus their lazy DFAs (which carry the interned
    state sets, memoized transitions and per-state qualifier closures).

    This is the artifact a prepared statement holds and the caches key
    by parsed :class:`Path`: a second preparation — or a second run of
    the same prepared statement — finds the DFA tables already warm and
    pays zero recompilation (``benchmarks/bench_dfa.py`` asserts this
    via :meth:`stats`).
    """

    __slots__ = ("path", "selecting", "filtering")

    def __init__(self, path: Path, selecting: SelectingNFA, filtering: FilteringNFA):
        self.path = path
        self.selecting = selecting
        self.filtering = filtering

    @property
    def selecting_dfa(self) -> LazyDFA:
        return self.selecting.dfa()

    @property
    def filtering_dfa(self) -> LazyDFA:
        return self.filtering.dfa()

    def stats(self) -> Dict[str, Any]:
        """Compiled-table sizes for both automata (see
        :meth:`repro.automata.dfa.LazyDFA.stats`)."""
        return {
            "selecting_dfa": self.selecting.dfa().stats(),
            "filtering_dfa": self.filtering.dfa().stats(),
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"CompiledPath({self.path})"


class CompiledCache:
    """LRU caches for every compiled artifact the store reuses:

    * parsed X paths and their selecting/filtering NFAs,
    * parsed transform and user queries,
    * composed plans — the Compose Method's output for one
      (user query, transform query) pair of source texts.
    """

    def __init__(self, maxsize: int = 256):
        self.paths = LRUCache(maxsize)
        self.transforms = LRUCache(maxsize)
        self.user_queries = LRUCache(maxsize)
        self.selecting = LRUCache(maxsize)
        self.filtering = LRUCache(maxsize)
        self.compiled_paths = LRUCache(maxsize)
        self.plans = LRUCache(maxsize)

    # ------------------------------------------------------------------
    # Parsers
    # ------------------------------------------------------------------

    def xpath(self, text: str) -> Path:
        # The LRU stores Any; the casts re-assert what each cache holds.
        return cast(Path, self.paths.get_or_compute(text, lambda: parse_xpath(text)))

    def transform(self, text: str) -> TransformQuery:
        return cast(TransformQuery, self.transforms.get_or_compute(
            text, lambda: parse_transform_query(text)
        ))

    def user_query(self, text: str) -> UserQuery:
        return cast(UserQuery, self.user_queries.get_or_compute(
            text, lambda: parse_user_query(text)
        ))

    # ------------------------------------------------------------------
    # Automata and plans
    # ------------------------------------------------------------------

    def selecting_nfa_for(self, path: Path) -> SelectingNFA:
        # NFAs are keyed by the parsed Path (hashable, structural
        # equality): rendered text does not round-trip quoted string
        # literals, so it must never be the cache key.
        return cast(SelectingNFA, self.selecting.get_or_compute(
            path, lambda: build_selecting_nfa(path)
        ))

    def filtering_nfa_for(self, path: Path) -> FilteringNFA:
        return cast(FilteringNFA, self.filtering.get_or_compute(
            path, lambda: build_filtering_nfa(path)
        ))

    def selecting_nfa(self, path_text: str) -> SelectingNFA:
        return self.selecting_nfa_for(self.xpath(path_text))

    def filtering_nfa(self, path_text: str) -> FilteringNFA:
        return self.filtering_nfa_for(self.xpath(path_text))

    def compiled_path_for(self, path: Path) -> CompiledPath:
        """The :class:`CompiledPath` bundle for a parsed path — shares
        the NFA caches, so the bundle is pure bookkeeping on top."""
        return cast(CompiledPath, self.compiled_paths.get_or_compute(
            path,
            lambda: CompiledPath(
                path, self.selecting_nfa_for(path), self.filtering_nfa_for(path)
            ),
        ))

    def compiled_path(self, path_text: str) -> CompiledPath:
        return self.compiled_path_for(self.xpath(path_text))

    def composed(self, user_text: str, transform_text: str) -> Expr:
        """The composed plan for the pair of source texts.

        The transform's cached selecting NFA is threaded into the
        composer, so the plan's spliced ``topDown`` calls run on the
        same warm DFA tables every other strategy uses.
        """

        def build() -> Expr:
            transform = self.transform(transform_text)
            return compose(
                self.user_query(user_text),
                transform,
                nfa=self.selecting_nfa_for(transform.path),
            )

        return cast(Expr, self.plans.get_or_compute((user_text, transform_text), build))

    # ------------------------------------------------------------------

    def clear(self) -> None:
        for cache in self._caches().values():
            cache.invalidate()

    def _caches(self) -> Dict[str, LRUCache]:
        return {
            "paths": self.paths,
            "transforms": self.transforms,
            "user_queries": self.user_queries,
            "selecting_nfas": self.selecting,
            "filtering_nfas": self.filtering,
            "compiled_paths": self.compiled_paths,
            "plans": self.plans,
        }

    def stats(self) -> Dict[str, Any]:
        return {name: cache.stats() for name, cache in self._caches().items()}

    def dfa_stats(self) -> Dict[str, int]:
        """Aggregate lazy-DFA table sizes across every cached
        :class:`CompiledPath` — the one place the per-automaton
        ``LazyDFA.stats()`` counters roll up under normalized names
        (``automata.dfa.sets`` …, via the owner's metrics registry)
        instead of being scattered per prepared statement."""
        totals = {
            "paths": 0, "nfa_states": 0, "sets": 0, "moves": 0,
            "tracked_moves": 0,
        }
        for compiled in self.compiled_paths.values():
            totals["paths"] += 1
            for table in (compiled.selecting.dfa(), compiled.filtering.dfa()):
                stats = table.stats()
                totals["nfa_states"] += stats["nfa_states"]
                totals["sets"] += stats["sets"]
                totals["moves"] += stats["moves"]
                totals["tracked_moves"] += stats["tracked_moves"]
        return totals

    def bind_metrics(self, registry: "MetricsRegistry", prefix: str = "engine.compiled") -> None:
        """Expose every cache's hit/miss/eviction tallies and the
        aggregate DFA table sizes through a metrics registry."""
        for name, cache in self._caches().items():
            registry.probe(f"{prefix}.{name}", cache.stats)
        registry.probe("automata.dfa.tables", self.dfa_stats)
