"""The guarded-by lock-discipline checker.

For every class that declares guarded attributes (see
:mod:`repro.analysis.annotations`), this checker walks each of the
class's methods and proves every read or write of a guarded
``self.<attr>`` is lexically inside ``with <lock>:`` for the declared
lock — or inside a method annotated ``# holds: <lock>``, whose callers
own the lock by contract.

Scope rules (all deliberate):

* ``__init__`` is exempt: construction happens before the instance can
  be shared, so unlocked initialization is not a race.
* A nested ``def`` or ``lambda`` does **not** inherit the enclosing
  ``with``: it runs later, when the lock may long be released — the
  exact bug class of handing ``lambda: self.counter`` to a metrics
  probe.  Nested functions may carry their own ``# holds:``.
* Only ``self.<attr>`` accesses are checked (``self`` being the
  method's first parameter).  Cross-object accesses (``doc.dirty = …``
  from another class) are out of scope for a lexical checker; guard
  those at the owning class's boundary with ``# holds:`` methods.
* A method call on a guarded attribute (``self._data.clear()``) counts
  as a read of the attribute — the object graph behind the attribute
  is what the lock protects.

Waivers: ``# unguarded: <reason>`` trailing the flagged line keeps the
finding out of the gate but in the report, reason attached.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Set, Tuple

from repro.analysis.annotations import Annotation, FileAnnotations, normalize_lock
from repro.analysis.findings import Finding

__all__ = ["ClassGuards", "check_guards", "collect_class_guards"]

#: Methods whose unlocked attribute access is never a race.
_EXEMPT_METHODS = ("__init__",)


class ClassGuards:
    """One class's declarations: guarded attrs and documented waivers."""

    def __init__(self, name: str):
        self.name = name
        self.guarded: Dict[str, str] = {}       # attr -> normalized lock
        self.unguarded: Dict[str, str] = {}     # attr -> reason


def _class_body_annotations(
    node: ast.ClassDef, annotations: FileAnnotations
) -> List[Annotation]:
    """Standalone registry-form annotations inside *node*'s body but
    outside any nested class (whose registry lines are its own)."""
    end = getattr(node, "end_lineno", node.lineno)
    nested: List[Tuple[int, int]] = [
        (child.lineno, getattr(child, "end_lineno", child.lineno))
        for child in ast.walk(node)
        if isinstance(child, ast.ClassDef) and child is not node
    ]
    out = []
    for ann in annotations.in_span(node.lineno, end):
        if any(start <= ann.line <= stop for start, stop in nested):
            continue
        out.append(ann)
    return out


def collect_class_guards(
    node: ast.ClassDef, annotations: FileAnnotations
) -> ClassGuards:
    """Parse a class's guarded-by declarations: the registry comments
    in its body plus per-assignment comments in its methods."""
    guards = ClassGuards(node.name)
    for ann in _class_body_annotations(node, annotations):
        if ann.names is None:
            continue  # assignment-attached form, handled below
        if ann.kind == "guarded-by":
            for attr in ann.names:
                guards.guarded[attr] = ann.lock
        elif ann.kind == "unguarded":
            for attr in ann.names:
                guards.unguarded[attr] = ann.reason
    for method in node.body:
        if not isinstance(method, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        self_name = _self_name(method)
        if self_name is None:
            continue
        for stmt in ast.walk(method):
            attr = _assigned_self_attr(stmt, self_name)
            if attr is None:
                continue
            ann = annotations.attached(stmt.lineno, "guarded-by")
            if ann is not None and ann.names is None:
                guards.guarded[attr] = ann.lock
                continue
            if method.name in _EXEMPT_METHODS:
                waiver = annotations.at(stmt.lineno, "unguarded")
                if waiver is not None and waiver.names is None:
                    guards.unguarded[attr] = waiver.reason
    return guards


def _self_name(method: ast.AST) -> Optional[str]:
    """The receiver parameter name, or None for static methods."""
    args = getattr(method, "args", None)
    if args is None or not args.args:
        return None
    for deco in getattr(method, "decorator_list", []):
        if isinstance(deco, ast.Name) and deco.id == "staticmethod":
            return None
    return args.args[0].arg


def _assigned_self_attr(stmt: ast.AST, self_name: str) -> Optional[str]:
    """``attr`` when *stmt* is ``self.attr = …`` / ``self.attr: T = …``."""
    target: Optional[ast.expr] = None
    if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
        target = stmt.targets[0]
    elif isinstance(stmt, ast.AnnAssign):
        target = stmt.target
    if (
        isinstance(target, ast.Attribute)
        and isinstance(target.value, ast.Name)
        and target.value.id == self_name
    ):
        return target.attr
    return None


class _MethodVisitor(ast.NodeVisitor):
    """Walks one method body tracking which locks are lexically held."""

    def __init__(
        self,
        checker: "_FileChecker",
        guards: ClassGuards,
        method_name: str,
        self_name: str,
        held: Set[str],
    ):
        self.checker = checker
        self.guards = guards
        self.method_name = method_name
        self.self_name = self_name
        self.held = held

    # -- lock acquisition ----------------------------------------------

    def visit_With(self, node: ast.With) -> None:
        self._visit_with(node)

    def visit_AsyncWith(self, node: ast.AsyncWith) -> None:
        self._visit_with(node)

    def _visit_with(self, node: "ast.With | ast.AsyncWith") -> None:
        acquired = []
        for item in node.items:
            lock = normalize_lock(ast.unparse(item.context_expr))
            if lock not in self.held:
                acquired.append(lock)
                self.held.add(lock)
            if item.optional_vars is not None:
                self.visit(item.optional_vars)
            self.visit(item.context_expr)
        for stmt in node.body:
            self.visit(stmt)
        for lock in acquired:
            self.held.discard(lock)

    # -- deferred execution resets the held set ------------------------

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._visit_nested(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._visit_nested(node)

    def _visit_nested(self, node: "ast.FunctionDef | ast.AsyncFunctionDef") -> None:
        held: Set[str] = set()
        holds = self.checker.annotations.attached(node.lineno, "holds")
        if holds is not None:
            held.add(holds.lock)
        nested = _MethodVisitor(
            self.checker, self.guards,
            f"{self.method_name}.{node.name}", self.self_name, held,
        )
        for stmt in node.body:
            nested.visit(stmt)

    def visit_Lambda(self, node: ast.Lambda) -> None:
        nested = _MethodVisitor(
            self.checker, self.guards,
            f"{self.method_name}.<lambda>", self.self_name, set(),
        )
        nested.visit(node.body)

    # -- the accesses under test ---------------------------------------

    def visit_Attribute(self, node: ast.Attribute) -> None:
        if (
            isinstance(node.value, ast.Name)
            and node.value.id == self.self_name
            and node.attr in self.guards.guarded
        ):
            lock = self.guards.guarded[node.attr]
            if lock not in self.held:
                write = isinstance(node.ctx, (ast.Store, ast.Del))
                self.checker.report(
                    node.lineno,
                    "lock.unguarded-write" if write else "lock.unguarded-read",
                    f"{self.guards.name}.{node.attr}",
                    f"{self.guards.name}.{self.method_name} "
                    f"{'writes' if write else 'reads'} {node.attr!r} "
                    f"outside 'with {lock}:' (declared guarded-by {lock})",
                )
        self.generic_visit(node)


class _FileChecker:
    """Shared state while checking one file."""

    def __init__(self, path: str, annotations: FileAnnotations):
        self.path = path
        self.annotations = annotations
        self.findings: List[Finding] = []

    def report(self, line: int, code: str, subject: str, message: str) -> None:
        waiver = self.annotations.waiver(line)
        self.findings.append(
            Finding(
                "lock", self.path, line, code, subject, message,
                waived=waiver is not None,
                reason=waiver.reason if waiver is not None else "",
            )
        )


def check_guards(
    path: str, source: str, tree: Optional[ast.Module] = None
) -> Tuple[List[Finding], List[ClassGuards]]:
    """Run the lock-discipline checker over one file.

    Returns ``(findings, per-class declarations)`` — the declarations
    feed the report's guarded/unguarded inventories.
    """
    if tree is None:
        tree = ast.parse(source)
    annotations = FileAnnotations(source)
    checker = _FileChecker(path, annotations)
    declared: List[ClassGuards] = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.ClassDef):
            continue
        guards = collect_class_guards(node, annotations)
        if guards.guarded or guards.unguarded:
            declared.append(guards)
        if not guards.guarded:
            continue
        for method in node.body:
            if not isinstance(method, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if method.name in _EXEMPT_METHODS:
                continue
            self_name = _self_name(method)
            if self_name is None:
                continue
            held: Set[str] = set()
            holds = annotations.attached(method.lineno, "holds")
            if holds is not None:
                held.add(holds.lock)
            visitor = _MethodVisitor(checker, guards, method.name, self_name, held)
            for stmt in method.body:
                visitor.visit(stmt)
    return checker.findings, declared
