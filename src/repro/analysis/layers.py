"""The import-layering verifier.

A *layer manifest* is an ordered list of layers, bottom first; each
layer is a list of component names — the second path segment of a
module under the ``repro`` package (``repro.store.views`` belongs to
component ``store``; ``repro/lru.py`` to component ``lru``; the package
``__init__`` itself to ``repro``).  An import is legal when it stays
inside the importer's layer or points **downward**; any upward edge is
a back-edge violation.

Two distinct rules, because the codebase uses lazy imports on purpose:

* **Back-edges** are flagged on *all* imports, including function-level
  ones — deferring an upward import hides the layering breach without
  removing it.
* **Cycles** are detected on *top-level* imports only: a lazy
  function-level import is exactly how one legitimately breaks an
  import-time cycle, so only the graph Python must resolve at import
  time participates.

``from pkg import name`` resolves *name* against the scanned module
set: when ``pkg.name`` is a real module the edge targets the submodule,
not the package — otherwise every ``from repro.xpath import lexer``
would count as an edge onto ``repro.xpath.__init__`` and fabricate
cycles through package re-exports.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.analysis.findings import Finding

__all__ = ["DEFAULT_MANIFEST", "check_layers", "component_of", "module_name"]

#: The declared architecture, bottom layer first.  Components in one
#: entry may import each other freely; imports must otherwise point at
#: strictly lower entries.  ``repro`` is the package ``__init__``.
DEFAULT_MANIFEST: Tuple[Tuple[str, ...], ...] = (
    ("xmltree", "lru", "obs", "analysis", "faults"),
    ("xpath",),
    ("updates",),
    ("automata",),
    ("transform", "xquery", "compose", "streaming"),
    ("xmark", "compiled", "bench"),
    ("engine",),
    ("store",),
    ("service",),
    ("repro",),
    ("cli", "__main__"),
)


def module_name(rel_path: str, package: str = "repro") -> Optional[str]:
    """Dotted module name for a path relative to the package root
    (``store/views.py`` → ``repro.store.views``)."""
    if not rel_path.endswith(".py"):
        return None
    parts = rel_path[: -len(".py")].replace("\\", "/").split("/")
    if parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join([package] + [p for p in parts if p])


def component_of(module: str, package: str = "repro") -> Optional[str]:
    """The manifest component a dotted module belongs to."""
    if module == package:
        return package
    prefix = package + "."
    if not module.startswith(prefix):
        return None
    return module[len(prefix):].split(".", 1)[0]


class _ImportScan(ast.NodeVisitor):
    """All intra-package import edges of one module, split by whether
    they execute at module import time."""

    def __init__(self, importer: str, known: Set[str], package: str):
        self.importer = importer
        self.known = known
        self.package = package
        #: (target module, line, top-level?)
        self.edges: List[Tuple[str, int, bool]] = []
        self._depth = 0

    def _add(self, target: str, line: int) -> None:
        if target == self.importer:
            return
        if target == self.package or target.startswith(self.package + "."):
            self.edges.append((target, line, self._depth == 0))

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._descend(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._descend(node)

    def _descend(self, node: ast.AST) -> None:
        self._depth += 1
        self.generic_visit(node)
        self._depth -= 1

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            self._add(alias.name, node.lineno)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        base = self._resolve_base(node)
        if base is None:
            return
        for alias in node.names:
            candidate = f"{base}.{alias.name}"
            # `from pkg import submodule` targets the submodule when one
            # exists; otherwise it's a name pulled from pkg/__init__.
            self._add(candidate if candidate in self.known else base, node.lineno)

    def _resolve_base(self, node: ast.ImportFrom) -> Optional[str]:
        if node.level == 0:
            return node.module
        # Relative import: climb from the importer's package.
        parts = self.importer.split(".")
        # A module's own package is parts[:-1]; each extra level climbs one.
        base_parts = parts[: len(parts) - node.level]
        if not base_parts:
            return None
        if node.module:
            base_parts = base_parts + node.module.split(".")
        return ".".join(base_parts)


def scan_imports(
    importer: str, source: str, known: Set[str],
    tree: Optional[ast.Module] = None, package: str = "repro",
) -> List[Tuple[str, int, bool]]:
    """Intra-package import edges of one module's source."""
    if tree is None:
        tree = ast.parse(source)
    scan = _ImportScan(importer, known, package)
    scan.visit(tree)
    return scan.edges


def _layer_index(
    manifest: Sequence[Sequence[str]],
) -> Dict[str, int]:
    index: Dict[str, int] = {}
    for depth, layer in enumerate(manifest):
        for component in layer:
            index[component] = depth
    return index


def check_layers(
    modules: Dict[str, Tuple[str, List[Tuple[str, int, bool]]]],
    manifest: Sequence[Sequence[str]] = DEFAULT_MANIFEST,
    package: str = "repro",
) -> List[Finding]:
    """Verify the real import graph against the manifest.

    *modules* maps dotted module name to ``(path, edges)`` where edges
    come from :func:`scan_imports`.  Emits one finding per back-edge
    (or unknown component) and one per module-level import cycle.
    """
    index = _layer_index(manifest)
    findings: List[Finding] = []
    toplevel: Dict[str, Set[str]] = {}

    for importer, (path, edges) in sorted(modules.items()):
        from_comp = component_of(importer, package)
        if from_comp is None:
            continue
        if from_comp not in index:
            findings.append(
                Finding(
                    "layers", path, 1, "layers.unknown-component", from_comp,
                    f"component {from_comp!r} ({importer}) is not in the "
                    "layer manifest",
                )
            )
            continue
        tops = toplevel.setdefault(importer, set())
        for target, line, is_top in edges:
            if is_top:
                tops.add(target)
            to_comp = component_of(target, package)
            if to_comp is None:
                continue
            if to_comp not in index:
                findings.append(
                    Finding(
                        "layers", path, line, "layers.unknown-component",
                        to_comp,
                        f"import target component {to_comp!r} ({target}) is "
                        "not in the layer manifest",
                    )
                )
                continue
            if index[to_comp] > index[from_comp]:
                findings.append(
                    Finding(
                        "layers", path, line, "layers.back-edge",
                        f"{from_comp} -> {to_comp}",
                        f"{importer} (layer {index[from_comp]}: {from_comp}) "
                        f"imports {target} (layer {index[to_comp]}: "
                        f"{to_comp}) — upward edge violates the manifest",
                    )
                )

    findings.extend(_find_cycles(modules, toplevel))
    return findings


def _find_cycles(
    modules: Dict[str, Tuple[str, List[Tuple[str, int, bool]]]],
    toplevel: Dict[str, Set[str]],
) -> Iterable[Finding]:
    """Module-level import cycles via iterative DFS, one finding per
    distinct cycle (reported at its lexicographically-first member)."""
    WHITE, GRAY, BLACK = 0, 1, 2
    color: Dict[str, int] = {m: WHITE for m in modules}
    seen_cycles: Set[Tuple[str, ...]] = set()
    findings: List[Finding] = []

    def neighbors(module: str) -> List[str]:
        return sorted(t for t in toplevel.get(module, ()) if t in modules)

    for root in sorted(modules):
        if color[root] != WHITE:
            continue
        stack: List[Tuple[str, Iterable[str]]] = [(root, iter(neighbors(root)))]
        path: List[str] = [root]
        color[root] = GRAY
        while stack:
            module, it = stack[-1]
            advanced = False
            for target in it:
                if color[target] == GRAY:
                    start = path.index(target)
                    cycle = path[start:]
                    pivot = cycle.index(min(cycle))
                    canon = tuple(cycle[pivot:] + cycle[:pivot])
                    if canon not in seen_cycles:
                        seen_cycles.add(canon)
                        first = canon[0]
                        findings.append(
                            Finding(
                                "layers", modules[first][0], 1,
                                "layers.cycle", " -> ".join(canon),
                                "module-level import cycle: "
                                + " -> ".join(canon + (canon[0],)),
                            )
                        )
                elif color[target] == WHITE:
                    color[target] = GRAY
                    path.append(target)
                    stack.append((target, iter(neighbors(target))))
                    advanced = True
                    break
            if not advanced:
                color[module] = BLACK
                path.pop()
                stack.pop()
    return findings
