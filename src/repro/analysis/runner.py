"""Drive the three checkers over a source tree and render the report.

Entry points: ``repro lint`` (the CLI subcommand) and ``python -m
repro.analysis`` both land in :func:`main`.  The default root is the
installed ``repro`` package directory, so the shipped tree is what gets
checked with no arguments; ``--root`` points anywhere else (tests use
this against fixture trees).

Exit status: 0 when no violation survives the baseline, 1 otherwise,
2 on usage errors — mirroring the main CLI's error boundary.
"""

from __future__ import annotations

import argparse
import ast
import os
import sys
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.findings import Finding, Report, load_baseline, write_baseline
from repro.analysis.guards import check_guards
from repro.analysis.hotpath import check_hotpaths
from repro.analysis.layers import (
    DEFAULT_MANIFEST,
    check_layers,
    module_name,
    scan_imports,
)

__all__ = ["add_arguments", "analyze_tree", "main", "run_from_options"]

#: Directories never scanned (caches, scratch).
_SKIP_DIRS = {"__pycache__", ".git"}


def _iter_sources(root: str) -> List[Tuple[str, str]]:
    """``(relative path, absolute path)`` for every ``.py`` under root,
    sorted for deterministic reports."""
    out: List[Tuple[str, str]] = []
    for dirpath, dirnames, filenames in os.walk(root):
        dirnames[:] = sorted(d for d in dirnames if d not in _SKIP_DIRS)
        for name in sorted(filenames):
            if not name.endswith(".py"):
                continue
            abs_path = os.path.join(dirpath, name)
            rel = os.path.relpath(abs_path, root).replace(os.sep, "/")
            out.append((rel, abs_path))
    return out


def analyze_tree(
    root: str,
    package: str = "repro",
    manifest: Sequence[Sequence[str]] = DEFAULT_MANIFEST,
) -> Report:
    """Run all three checkers over the package rooted at *root*."""
    report = Report()
    sources: Dict[str, Tuple[str, str, ast.Module]] = {}  # rel -> (abs, src, tree)
    known: "set[str]" = set()

    for rel, abs_path in _iter_sources(root):
        with open(abs_path, "r", encoding="utf-8") as handle:
            source = handle.read()
        try:
            tree = ast.parse(source, filename=rel)
        except SyntaxError as exc:
            report.violations.append(
                Finding(
                    "layers", rel, exc.lineno or 1, "parse.error", rel,
                    f"syntax error: {exc.msg}",
                )
            )
            continue
        sources[rel] = (abs_path, source, tree)
        name = module_name(rel, package)
        if name is not None:
            known.add(name)

    modules: Dict[str, Tuple[str, List[Tuple[str, int, bool]]]] = {}
    for rel, (_abs, source, tree) in sources.items():
        report.files_scanned += 1

        findings, declared = check_guards(rel, source, tree)
        report.extend(findings)
        for guards in declared:
            for attr, lock in sorted(guards.guarded.items()):
                report.guarded_attrs.append(
                    {"path": rel, "cls": guards.name, "attr": attr, "lock": lock}
                )
            for attr, reason in sorted(guards.unguarded.items()):
                report.declared_unguarded.append(
                    {"path": rel, "cls": guards.name, "attr": attr,
                     "reason": reason}
                )

        findings, hot = check_hotpaths(rel, source, tree)
        report.extend(findings)
        module = module_name(rel, package)
        prefix = module if module is not None else rel
        report.hot_functions.extend(f"{prefix}.{name}" for name in hot)

        if module is not None:
            modules[module] = (rel, scan_imports(module, source, known, tree, package))

    report.extend(check_layers(modules, manifest, package))
    return report


def _default_root() -> str:
    """The installed ``repro`` package directory — derived from this
    file's location rather than ``import repro``, keeping the analysis
    package importable (and layer-clean) even when the tree is broken."""
    return os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def add_arguments(parser: argparse.ArgumentParser) -> None:
    """Install the lint flags on *parser* (shared with ``repro lint``)."""
    parser.add_argument(
        "--root",
        default=None,
        help="package directory to scan (default: the installed repro package)",
    )
    parser.add_argument(
        "--package",
        default="repro",
        help="dotted package name the scanned tree roots (default: repro)",
    )
    parser.add_argument(
        "--json", action="store_true", help="emit the machine-readable report"
    )
    parser.add_argument(
        "--baseline",
        default=None,
        help="baseline file of accepted finding keys "
        "(default: .analysis-baseline.json next to the scanned root's "
        "repo, when present)",
    )
    parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="ignore any baseline file; report everything",
    )
    parser.add_argument(
        "--write-baseline",
        metavar="PATH",
        default=None,
        help="write the surviving violations as a new baseline and exit 0",
    )


def build_parser(prog: str = "repro-lint") -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog=prog,
        description="Static analysis: lock discipline, import layering, "
        "hot-path purity.",
    )
    add_arguments(parser)
    return parser


def _find_baseline(root: str) -> Optional[str]:
    """Walk up from *root* looking for ``.analysis-baseline.json``."""
    current = os.path.abspath(root)
    for _ in range(6):
        candidate = os.path.join(current, ".analysis-baseline.json")
        if os.path.isfile(candidate):
            return candidate
        parent = os.path.dirname(current)
        if parent == current:
            break
        current = parent
    return None


def run_from_options(opts: argparse.Namespace) -> int:
    """Execute a lint run from parsed options (``repro lint`` lands
    here with the main CLI's namespace)."""
    root = opts.root if opts.root is not None else _default_root()
    if not os.path.isdir(root):
        print(f"error: not a directory: {root}", file=sys.stderr)
        return 2

    report = analyze_tree(root, package=opts.package)

    baseline_path = opts.baseline
    if baseline_path is None and not opts.no_baseline:
        baseline_path = _find_baseline(root)
    if baseline_path is not None and not opts.no_baseline:
        try:
            report.apply_baseline(load_baseline(baseline_path))
        except (OSError, ValueError) as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2

    if opts.write_baseline is not None:
        count = write_baseline(opts.write_baseline, report)
        print(f"wrote {count} accepted key(s) to {opts.write_baseline}")
        return 0

    print(report.to_json() if opts.json else report.to_text())
    return 0 if report.ok else 1


def main(argv: Optional[Sequence[str]] = None, prog: str = "repro-lint") -> int:
    return run_from_options(build_parser(prog).parse_args(argv))
