"""``repro.analysis`` — the concurrency & layering static-analysis pass.

Three AST-based checkers enforce the invariants the concurrent parts of
this codebase rest on, so they are machine-checked instead of
hand-maintained:

* **Lock discipline** (:mod:`repro.analysis.guards`): classes declare
  which lock guards each shared mutable attribute (``# guarded-by:
  self._lock``), and the checker proves every read/write of a guarded
  attribute is lexically inside ``with <lock>:`` — or inside a method
  declared ``# holds: <lock>`` because its callers own the lock.
* **Import layering** (:mod:`repro.analysis.layers`): a declared layer
  manifest (``xmltree`` at the bottom, ``cli`` at the top) is verified
  against the *real* import graph; any back-edge or module-level import
  cycle fails the build.
* **Hot-path purity** (:mod:`repro.analysis.hotpath`): functions marked
  ``# hot-path`` (the arena DFA scan, the no-op telemetry instruments)
  must not use allocation-heavy constructs or take locks.

Violations are waived line-by-line with ``# unguarded: <reason>``; every
waiver's reason is printed in the report, so the cost of an exemption is
permanent visibility.  The gate is exact: ``repro lint`` (or ``python
-m repro.analysis``) exits non-zero on any finding not in the shipped
baseline file, and ``--json`` emits a machine-readable report whose
summary keys follow the obs registry's ``layer.component.metric``
scheme (``analysis.lock.violations`` …).

This package deliberately imports nothing from the rest of ``repro`` —
it sits at the bottom of the layer manifest it enforces and analyzes
source text only, so it can lint a broken tree.
"""

from __future__ import annotations

from repro.analysis.findings import Finding, Report, load_baseline, write_baseline
from repro.analysis.guards import check_guards
from repro.analysis.hotpath import check_hotpaths
from repro.analysis.layers import DEFAULT_MANIFEST, check_layers
from repro.analysis.runner import analyze_tree, main

__all__ = [
    "DEFAULT_MANIFEST",
    "Finding",
    "Report",
    "analyze_tree",
    "check_guards",
    "check_hotpaths",
    "check_layers",
    "load_baseline",
    "main",
    "write_baseline",
]
