"""Findings, reports and the baseline file — the data model every
checker in :mod:`repro.analysis` emits into.

A :class:`Finding` is one diagnostic anchored at ``file:line``.  Its
:meth:`Finding.key` deliberately omits the line number: baseline
entries (the shipped ``.analysis-baseline.json``) must survive a file
growing a docstring, but stay exact about *what* is accepted — the
checker, file, rule and subject (the attribute, import edge or
construct) all participate.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

__all__ = ["Finding", "Report", "load_baseline", "write_baseline"]

#: Baseline file format marker (bumped on incompatible change).
BASELINE_VERSION = 1


@dataclass
class Finding:
    """One diagnostic: a rule violation, or a waived occurrence."""

    checker: str            # "lock" | "layers" | "hotpath"
    path: str               # path as scanned (repo- or package-relative)
    line: int               # 1-indexed
    code: str               # e.g. "lock.unguarded-write"
    subject: str            # attribute / "a -> b" edge / construct name
    message: str            # the human-readable sentence
    waived: bool = False    # suppressed by an inline `# unguarded:` comment
    reason: str = ""        # the waiver's reason text (when waived)

    def key(self) -> str:
        """The line-number-free identity baseline entries match on."""
        return f"{self.checker}:{self.path}:{self.code}:{self.subject}"

    def location(self) -> str:
        return f"{self.path}:{self.line}"

    def to_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {
            "checker": self.checker,
            "path": self.path,
            "line": self.line,
            "code": self.code,
            "subject": self.subject,
            "message": self.message,
        }
        if self.waived:
            out["waived"] = True
            out["reason"] = self.reason
        return out


@dataclass
class Report:
    """Everything one analysis run produced.

    ``violations`` are the findings that gate (exit non-zero unless
    baselined); ``waived`` carry an inline ``# unguarded:`` comment and
    only inform; ``declared_unguarded`` are attributes *declared*
    exempt at their definition site — both waiver kinds print with
    their reasons, so every exemption stays visible in every report.
    """

    violations: List[Finding] = field(default_factory=list)
    waived: List[Finding] = field(default_factory=list)
    #: (path, class, attribute, reason) declaration-site waivers.
    declared_unguarded: List[Dict[str, str]] = field(default_factory=list)
    #: (path, class, attribute, lock) — what the guard checker proved.
    guarded_attrs: List[Dict[str, str]] = field(default_factory=list)
    #: Fully-qualified names of functions under the hot-path lint.
    hot_functions: List[str] = field(default_factory=list)
    files_scanned: int = 0
    baseline_suppressed: int = 0

    def extend(self, findings: Sequence[Finding]) -> None:
        for finding in findings:
            (self.waived if finding.waived else self.violations).append(finding)

    def apply_baseline(self, accepted: "set[str]") -> None:
        """Move baselined violations out of the gating list."""
        kept: List[Finding] = []
        for finding in self.violations:
            if finding.key() in accepted:
                self.baseline_suppressed += 1
            else:
                kept.append(finding)
        self.violations = kept

    def counts(self) -> Dict[str, int]:
        by_checker = {"lock": 0, "layers": 0, "hotpath": 0}
        for finding in self.violations:
            by_checker[finding.checker] = by_checker.get(finding.checker, 0) + 1
        return by_checker

    def summary(self) -> Dict[str, int]:
        """Totals under the obs ``layer.component.metric`` scheme."""
        by_checker = self.counts()
        return {
            "analysis.lock.violations": by_checker["lock"],
            "analysis.layers.violations": by_checker["layers"],
            "analysis.hotpath.violations": by_checker["hotpath"],
            "analysis.lock.guarded_attrs": len(self.guarded_attrs),
            "analysis.lock.declared_unguarded": len(self.declared_unguarded),
            "analysis.hotpath.functions": len(self.hot_functions),
            "analysis.waived.count": len(self.waived),
            "analysis.baseline.suppressed": self.baseline_suppressed,
            "analysis.files.scanned": self.files_scanned,
        }

    @property
    def ok(self) -> bool:
        return not self.violations

    # ------------------------------------------------------------------
    # Rendering
    # ------------------------------------------------------------------

    def to_json(self) -> str:
        return json.dumps(
            {
                "violations": [f.to_dict() for f in self.violations],
                "waived": [f.to_dict() for f in self.waived],
                "declared_unguarded": self.declared_unguarded,
                "guarded_attrs": self.guarded_attrs,
                "hot_functions": sorted(self.hot_functions),
                "summary": self.summary(),
            },
            indent=2,
            sort_keys=True,
        )

    def to_text(self) -> str:
        lines: List[str] = []
        for finding in sorted(
            self.violations, key=lambda f: (f.path, f.line, f.code)
        ):
            lines.append(f"{finding.location()}: [{finding.checker}] {finding.message}")
        if self.waived:
            lines.append("")
            lines.append(f"waived ({len(self.waived)}):")
            for finding in sorted(self.waived, key=lambda f: (f.path, f.line)):
                lines.append(
                    f"  {finding.location()}: [{finding.checker}] "
                    f"{finding.subject} — {finding.reason}"
                )
        if self.declared_unguarded:
            lines.append("")
            lines.append(f"declared unguarded ({len(self.declared_unguarded)}):")
            for entry in self.declared_unguarded:
                lines.append(
                    f"  {entry['path']}: {entry['cls']}.{entry['attr']} — "
                    f"{entry['reason']}"
                )
        lines.append("")
        summary = self.summary()
        total = sum(
            summary[k]
            for k in (
                "analysis.lock.violations",
                "analysis.layers.violations",
                "analysis.hotpath.violations",
            )
        )
        lines.append(
            f"{total} violation(s) · {len(self.waived)} waived · "
            f"{self.baseline_suppressed} baselined · "
            f"{summary['analysis.lock.guarded_attrs']} guarded attrs · "
            f"{summary['analysis.hotpath.functions']} hot-path functions · "
            f"{self.files_scanned} files"
        )
        return "\n".join(lines)


def load_baseline(path: str) -> "set[str]":
    """The accepted finding keys from a baseline file."""
    with open(path, "r", encoding="utf-8") as handle:
        doc = json.load(handle)
    if not isinstance(doc, dict) or doc.get("version") != BASELINE_VERSION:
        raise ValueError(
            f"baseline {path!r} is not a version-{BASELINE_VERSION} "
            "analysis baseline"
        )
    accept = doc.get("accept", [])
    if not isinstance(accept, list) or not all(isinstance(k, str) for k in accept):
        raise ValueError(f"baseline {path!r}: 'accept' must be a list of keys")
    return set(accept)


def write_baseline(path: str, report: Report, note: Optional[str] = None) -> int:
    """Write the report's remaining violations as the new baseline;
    returns how many keys were written."""
    keys = sorted({f.key() for f in report.violations})
    doc: Dict[str, Any] = {"version": BASELINE_VERSION, "accept": keys}
    if note:
        doc["note"] = note
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(doc, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return len(keys)
