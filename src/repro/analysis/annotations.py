"""The annotation grammar: comments the checkers read.

Annotations are ordinary ``#`` comments, so they cost nothing at
runtime and need no imports in the annotated module.  Four forms:

* ``# guarded-by: <lock>`` — trailing a ``self.attr = …`` assignment
  (or on the line directly above it): *attr* may only be touched under
  ``with <lock>:``.  *lock* is an expression relative to the instance,
  e.g. ``self._lock``.
* ``# guarded-by[a, b]: <lock>`` — standalone in a class body: the
  registry form declaring several attributes at once.
* ``# holds: <lock>`` — on a ``def`` line (or the line above): the
  method is documented as *called with the lock already held*, so its
  guarded accesses are legal.  Callers remain responsible for the lock.
* ``# hot-path`` — on a ``def`` line (or the line above): the function
  is subject to the purity lint (no allocation-heavy constructs, no
  lock acquisition — see :mod:`repro.analysis.hotpath`).
* ``# unguarded: <reason>`` — trailing a flagged line: waives every
  finding on that line, with the reason surfaced in the report.
  Trailing a ``self.attr = …`` line in ``__init__`` (or in the
  ``# unguarded[a, b]: <reason>`` registry form) it instead *declares*
  the attribute deliberately unguarded — documented shared state the
  checker must not demand a lock for (e.g. grow-only tables with
  publish-last discipline).

Extraction is :mod:`tokenize`-based: the AST drops comments, so the
checkers pair this module's per-line comment map with the node line
numbers the AST provides.
"""

from __future__ import annotations

import io
import re
import tokenize
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

__all__ = ["Annotation", "FileAnnotations"]

_GUARDED_RE = re.compile(
    r"^guarded-by(?:\[(?P<names>[^\]]*)\])?\s*:\s*(?P<lock>\S.*?)\s*$"
)
_HOLDS_RE = re.compile(r"^holds\s*:\s*(?P<lock>\S.*?)\s*$")
_UNGUARDED_RE = re.compile(
    r"^unguarded(?:\[(?P<names>[^\]]*)\])?\s*:\s*(?P<reason>\S.*?)\s*$"
)
_HOTPATH_RE = re.compile(r"^hot-path\s*(?::\s*(?P<note>.*))?$")


def normalize_lock(text: str) -> str:
    """Canonical spelling of a lock expression (whitespace dropped), so
    ``with self._lock :`` matches a ``guarded-by: self._lock``."""
    return re.sub(r"\s+", "", text)


@dataclass
class Annotation:
    """One parsed annotation comment."""

    kind: str                 # "guarded-by" | "holds" | "unguarded" | "hot-path"
    line: int                 # line the comment sits on
    standalone: bool          # whole-line comment (vs. trailing code)
    names: Optional[Tuple[str, ...]] = None   # registry-form attribute list
    lock: str = ""            # normalized lock expression
    reason: str = ""          # unguarded waiver reason


def _parse_comment(text: str, line: int, standalone: bool) -> Optional[Annotation]:
    body = text.lstrip("#").strip()
    match = _GUARDED_RE.match(body)
    if match:
        names = _split_names(match.group("names"))
        return Annotation(
            "guarded-by", line, standalone,
            names=names, lock=normalize_lock(match.group("lock")),
        )
    match = _HOLDS_RE.match(body)
    if match:
        return Annotation(
            "holds", line, standalone, lock=normalize_lock(match.group("lock"))
        )
    match = _UNGUARDED_RE.match(body)
    if match:
        names = _split_names(match.group("names"))
        return Annotation(
            "unguarded", line, standalone,
            names=names, reason=match.group("reason"),
        )
    if _HOTPATH_RE.match(body):
        return Annotation("hot-path", line, standalone)
    return None


def _split_names(raw: Optional[str]) -> Optional[Tuple[str, ...]]:
    if raw is None:
        return None
    names = tuple(name.strip() for name in raw.split(",") if name.strip())
    return names


class FileAnnotations:
    """Every annotation in one source file, indexed by line."""

    def __init__(self, source: str):
        self.by_line: Dict[int, Annotation] = {}
        try:
            tokens = tokenize.generate_tokens(io.StringIO(source).readline)
            for token in tokens:
                if token.type != tokenize.COMMENT:
                    continue
                line_no = token.start[0]
                prefix = token.line[: token.start[1]]
                standalone = not prefix.strip()
                parsed = _parse_comment(token.string, line_no, standalone)
                if parsed is not None:
                    self.by_line[line_no] = parsed
        except tokenize.TokenError:
            # A file the AST parser also rejects; the runner reports
            # the syntax error, annotations just come back empty.
            pass

    # ------------------------------------------------------------------
    # Placement lookups
    # ------------------------------------------------------------------

    def at(self, line: int, kind: str) -> Optional[Annotation]:
        """The *kind* annotation trailing code on *line* (any placement
        counts when the comment owns the whole line)."""
        found = self.by_line.get(line)
        if found is not None and found.kind == kind:
            return found
        return None

    def attached(self, line: int, kind: str) -> Optional[Annotation]:
        """The *kind* annotation attached to the statement starting at
        *line*: trailing the line itself, or a standalone comment on
        the line directly above."""
        found = self.at(line, kind)
        if found is not None:
            return found
        above = self.by_line.get(line - 1)
        if above is not None and above.kind == kind and above.standalone:
            return above
        return None

    def waiver(self, line: int) -> Optional[Annotation]:
        """The ``# unguarded:`` waiver trailing *line*, if any (the
        registry form never waives — it declares)."""
        found = self.at(line, "unguarded")
        if found is not None and found.names is None:
            return found
        return None

    def in_span(self, start: int, end: int) -> List[Annotation]:
        """Standalone annotations whose line falls in [start, end]."""
        return [
            ann
            for line, ann in sorted(self.by_line.items())
            if start <= line <= end and ann.standalone
        ]
