"""The hot-path purity lint.

Functions annotated ``# hot-path`` (on the ``def`` line or the line
above) are the per-node / per-event inner loops — the arena DFA scan,
the no-op telemetry instruments.  The lint rejects constructs that
allocate or synchronize on every call:

* f-strings and ``str.format`` / ``"%" %`` formatting
* comprehensions (list/set/dict) and generator expressions
* ``yield`` / ``yield from`` (generator creation per call)
* ``getattr`` with a default (allocates the default, hides attribute
  contracts)
* lock acquisition: ``with`` over a lock-looking expression, or any
  ``.acquire()`` call

List/dict/set *literals* are banned only inside ``for``/``while``
loops within the hot function: a one-time accumulator set up before
the loop is the point of these functions; an allocation per iteration
is the bug.

The annotation is inherited lexically: a nested function inside a
``# hot-path`` function is also hot (it runs at least as often).
"""

from __future__ import annotations

import ast
from typing import List, Optional, Tuple

from repro.analysis.annotations import FileAnnotations
from repro.analysis.findings import Finding

__all__ = ["check_hotpaths"]

#: Substrings that make a `with` context expression count as a lock.
_LOCKISH = ("lock", "mutex", "sem", "condition", "rlock")


def _is_lockish(expr: ast.expr) -> bool:
    text = ast.unparse(expr).lower()
    return any(marker in text for marker in _LOCKISH)


class _HotVisitor(ast.NodeVisitor):
    """Checks one hot function's body; ``loop_depth`` scopes the
    container-literal rule to loop bodies."""

    def __init__(self, checker: "_HotChecker", func_name: str):
        self.checker = checker
        self.func_name = func_name
        self.loop_depth = 0

    def _flag(self, node: ast.AST, code: str, construct: str) -> None:
        self.checker.report(
            getattr(node, "lineno", 1), code, self.func_name,
            f"hot-path function {self.func_name!r} uses {construct}",
        )

    # -- formatting ----------------------------------------------------

    def visit_JoinedStr(self, node: ast.JoinedStr) -> None:
        self._flag(node, "hotpath.fstring", "an f-string")
        self.generic_visit(node)

    # -- comprehensions / generators -----------------------------------

    def visit_ListComp(self, node: ast.ListComp) -> None:
        self._flag(node, "hotpath.comprehension", "a list comprehension")
        self.generic_visit(node)

    def visit_SetComp(self, node: ast.SetComp) -> None:
        self._flag(node, "hotpath.comprehension", "a set comprehension")
        self.generic_visit(node)

    def visit_DictComp(self, node: ast.DictComp) -> None:
        self._flag(node, "hotpath.comprehension", "a dict comprehension")
        self.generic_visit(node)

    def visit_GeneratorExp(self, node: ast.GeneratorExp) -> None:
        self._flag(node, "hotpath.generator", "a generator expression")
        self.generic_visit(node)

    def visit_Yield(self, node: ast.Yield) -> None:
        self._flag(node, "hotpath.generator", "yield (generator per call)")
        self.generic_visit(node)

    def visit_YieldFrom(self, node: ast.YieldFrom) -> None:
        self._flag(node, "hotpath.generator", "yield from (generator per call)")
        self.generic_visit(node)

    # -- loop-scoped container literals --------------------------------

    def visit_For(self, node: ast.For) -> None:
        self._loop(node)

    def visit_AsyncFor(self, node: ast.AsyncFor) -> None:
        self._loop(node)

    def visit_While(self, node: ast.While) -> None:
        self._loop(node)

    def _loop(self, node: ast.AST) -> None:
        self.loop_depth += 1
        self.generic_visit(node)
        self.loop_depth -= 1

    def visit_List(self, node: ast.List) -> None:
        if self.loop_depth and not isinstance(node.ctx, ast.Store):
            self._flag(node, "hotpath.literal", "a list literal inside a loop")
        self.generic_visit(node)

    def visit_Set(self, node: ast.Set) -> None:
        if self.loop_depth:
            self._flag(node, "hotpath.literal", "a set literal inside a loop")
        self.generic_visit(node)

    def visit_Dict(self, node: ast.Dict) -> None:
        if self.loop_depth:
            self._flag(node, "hotpath.literal", "a dict literal inside a loop")
        self.generic_visit(node)

    # -- calls: format / getattr-with-default / acquire ----------------

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if isinstance(func, ast.Attribute):
            if func.attr == "format":
                self._flag(node, "hotpath.format", "str.format()")
            elif func.attr == "acquire":
                self._flag(node, "hotpath.lock", ".acquire() (lock acquisition)")
        elif isinstance(func, ast.Name):
            if func.id == "getattr" and len(node.args) >= 3:
                self._flag(
                    node, "hotpath.getattr-default", "getattr() with a default"
                )
        self.generic_visit(node)

    def visit_BinOp(self, node: ast.BinOp) -> None:
        if isinstance(node.op, ast.Mod) and isinstance(node.left, ast.Constant) \
                and isinstance(node.left.value, str):
            self._flag(node, "hotpath.format", "%-formatting")
        self.generic_visit(node)

    # -- lock acquisition via with -------------------------------------

    def visit_With(self, node: ast.With) -> None:
        self._with(node)

    def visit_AsyncWith(self, node: ast.AsyncWith) -> None:
        self._with(node)

    def _with(self, node: "ast.With | ast.AsyncWith") -> None:
        for item in node.items:
            if _is_lockish(item.context_expr):
                self._flag(
                    node, "hotpath.lock",
                    f"'with {ast.unparse(item.context_expr)}:' "
                    "(lock acquisition)",
                )
        self.generic_visit(node)

    # Nested functions inherit hotness; just keep walking.


class _HotChecker:
    def __init__(self, path: str, annotations: FileAnnotations):
        self.path = path
        self.annotations = annotations
        self.findings: List[Finding] = []
        self.hot_functions: List[str] = []

    def report(self, line: int, code: str, subject: str, message: str) -> None:
        waiver = self.annotations.waiver(line)
        self.findings.append(
            Finding(
                "hotpath", self.path, line, code, subject, message,
                waived=waiver is not None,
                reason=waiver.reason if waiver is not None else "",
            )
        )


def check_hotpaths(
    path: str, source: str, tree: Optional[ast.Module] = None
) -> Tuple[List[Finding], List[str]]:
    """Lint every ``# hot-path`` function in one file.

    Returns ``(findings, hot function names)`` — the names feed the
    report's inventory of what the lint actually covers.
    """
    if tree is None:
        tree = ast.parse(source)
    annotations = FileAnnotations(source)
    checker = _HotChecker(path, annotations)

    def walk(node: ast.AST, prefix: str) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                name = f"{prefix}{child.name}" if prefix else child.name
                if annotations.attached(child.lineno, "hot-path") is not None:
                    checker.hot_functions.append(name)
                    visitor = _HotVisitor(checker, name)
                    for stmt in child.body:
                        visitor.visit(stmt)
                else:
                    walk(child, name + ".")
            elif isinstance(child, ast.ClassDef):
                walk(child, f"{prefix}{child.name}.")
            else:
                walk(node=child, prefix=prefix)

    walk(tree, "")
    return checker.findings, checker.hot_functions
