"""Update operations and their parser (Section 2).

The four update forms supported by the paper's transform queries::

    insert e into $a/p    — add e as the last child of every node in r[[p]]
    delete $a/p           — remove every node in r[[p]] with its subtree
    replace $a/p with e   — replace every node in r[[p]] with e
    rename $a/p as l      — relabel every node in r[[p]] to l

Nested-match convention (applied consistently by *every* evaluation
algorithm in this repo, and by the destructive reference): ``r[[p]]``
is computed against the original tree; for ``delete`` and ``replace``
the topmost match wins (matches strictly inside a deleted/replaced
subtree have no observable effect), while ``insert`` and ``rename``
apply at every match, including nested ones.
"""

from __future__ import annotations

from typing import Optional

from repro.xmltree.node import Element, Node, deep_copy
from repro.xmltree.parser import XMLSyntaxError, parse_fragment
from repro.xpath import lexer as lx
from repro.xpath.ast import Path
from repro.xpath.lexer import TokenStream, XPathSyntaxError, tokenize
from repro.xpath.parser import parse_path, validate_path


def path_with_var(path: Path, var: str = "a") -> str:
    """Render ``$a/p`` (no doubled slash when ``p`` starts with //)."""
    text = str(path)
    if text.startswith("//"):
        return f"${var}{text}"
    return f"${var}/{text}"


class Update:
    """Abstract base of the four update operations."""

    #: Set by subclasses: "insert" | "delete" | "replace" | "rename".
    kind = ""

    def __init__(self, path: Path):
        validate_path(path)
        self.path = path

    #: Does the transform keep processing below a matched node?
    #: delete/replace swallow the whole subtree; insert/rename recurse.
    recurses_into_match = True

    def result_for_match(self, rebuilt: Element) -> list[Node]:
        """Output nodes for a matched element.

        *rebuilt* is the element with its (already transformed, for
        recursing updates) children.  Returns the node list that takes
        its place in the parent's child list.
        """
        raise NotImplementedError

    def __str__(self) -> str:
        raise NotImplementedError


class Insert(Update):
    """``insert e into $a/p``."""

    kind = "insert"
    recurses_into_match = True

    def __init__(self, path: Path, content: Element):
        super().__init__(path)
        self.content = content

    def result_for_match(self, rebuilt: Element) -> list[Node]:
        # A fresh copy per match: the result must be a proper tree, not
        # a DAG — node identity matters to downstream queries (document
        # order, duplicate elimination).
        rebuilt.children.append(deep_copy(self.content))
        return [rebuilt]

    def __str__(self) -> str:
        from repro.xmltree.serializer import serialize

        return f"insert {serialize(self.content)} into {path_with_var(self.path)}"


class Delete(Update):
    """``delete $a/p``."""

    kind = "delete"
    recurses_into_match = False

    def result_for_match(self, rebuilt: Element) -> list[Node]:
        return []

    def __str__(self) -> str:
        return f"delete {path_with_var(self.path)}"


class Replace(Update):
    """``replace $a/p with e``."""

    kind = "replace"
    recurses_into_match = False

    def __init__(self, path: Path, content: Element):
        super().__init__(path)
        self.content = content

    def result_for_match(self, rebuilt: Element) -> list[Node]:
        return [deep_copy(self.content)]  # fresh per match (tree, not DAG)

    def __str__(self) -> str:
        from repro.xmltree.serializer import serialize

        return f"replace {path_with_var(self.path)} with {serialize(self.content)}"


class Rename(Update):
    """``rename $a/p as l``."""

    kind = "rename"
    recurses_into_match = True

    def __init__(self, path: Path, new_label: str):
        super().__init__(path)
        self.new_label = new_label

    def result_for_match(self, rebuilt: Element) -> list[Node]:
        rebuilt.label = self.new_label
        return [rebuilt]

    def __str__(self) -> str:
        return f"rename {path_with_var(self.path)} as {self.new_label}"


# ----------------------------------------------------------------------
# Parsing
# ----------------------------------------------------------------------


def _parse_update_path(stream: TokenStream) -> Path:
    """Parse ``$a/p`` (the variable prefix is optional)."""
    if stream.accept(lx.DOLLAR):
        stream.expect(lx.NAME)
        if stream.current.type not in (lx.SLASH, lx.DSLASH):
            raise XPathSyntaxError("expected a path after the variable", stream.current.pos)
    path = parse_path(stream)
    return path


def _parse_content(source: str, offset: int) -> tuple[Element, int]:
    """Parse the constant element ``e``, unifying the error type."""
    try:
        return parse_fragment(source, offset)
    except XMLSyntaxError as exc:
        raise XPathSyntaxError(f"bad XML element literal: {exc}", offset) from exc


def parse_update(source: str) -> Update:
    """Parse an update expression from its textual form."""
    source = source.strip()
    if source.startswith("insert"):
        rest = source[len("insert") :]
        content, end = _parse_content(rest, 0)
        tail = rest[end:]
        tokens = TokenStream(tokenize(tail, keywords={"into"}))
        tokens.expect_name("into")
        path = _parse_update_path(tokens)
        _expect_done(tokens)
        return Insert(path, content)
    if source.startswith("delete"):
        tail = source[len("delete") :]
        tokens = TokenStream(tokenize(tail))
        path = _parse_update_path(tokens)
        _expect_done(tokens)
        return Delete(path)
    if source.startswith("replace"):
        tail = source[len("replace") :]
        with_pos = find_keyword(tail, "with")
        tokens = TokenStream(tokenize(tail[:with_pos]))
        path = _parse_update_path(tokens)
        _expect_done(tokens)
        content, end = _parse_content(tail, with_pos + len("with"))
        trailing = tail[end:].strip()
        if trailing:
            raise XPathSyntaxError(f"unexpected trailing input {trailing!r}", end)
        return Replace(path, content)
    if source.startswith("rename"):
        tail = source[len("rename") :]
        tokens = TokenStream(tokenize(tail, keywords={"as"}))
        path = _parse_update_path(tokens)
        tokens.expect_name("as")
        label = tokens.expect(lx.NAME).value
        _expect_done(tokens)
        return Rename(path, label)
    raise XPathSyntaxError(
        "expected an update (insert/delete/replace/rename)", 0
    )


def find_keyword(source: str, keyword: str) -> int:
    """Find a whitespace-delimited keyword outside any brackets."""
    depth = 0
    in_string: Optional[str] = None
    for i, ch in enumerate(source):
        if in_string:
            if ch == in_string:
                in_string = None
            continue
        if ch in "\"'":
            in_string = ch
        elif ch in "[(":
            depth += 1
        elif ch in "])":
            depth -= 1
        elif depth == 0 and source.startswith(keyword, i):
            before_ok = i == 0 or source[i - 1] in " \t\r\n"
            after = i + len(keyword)
            after_ok = after >= len(source) or source[after] in " \t\r\n<"
            if before_ok and after_ok:
                return i
    raise XPathSyntaxError(f"expected keyword {keyword!r}", 0)


def _expect_done(tokens: TokenStream) -> None:
    if not tokens.done():
        raise XPathSyntaxError(
            f"unexpected trailing input {tokens.current.value!r}", tokens.current.pos
        )
