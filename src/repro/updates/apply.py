"""Destructive, in-place application of an update to a mutable tree.

This is the substrate for the copy-and-update baseline (the paper's
``GalaXUpdate``: "Galax implements transform queries by taking a
snapshot") and the semantic reference that every pure transform
algorithm is tested against:

    ``transform(T)  ≡  apply_update(deep_copy(T))``

The tree model has no parent pointers, so the walk carries the parent
explicitly and edits child lists from the root down.
"""

from __future__ import annotations

from repro.xmltree.node import Element, deep_copy
from repro.updates.ops import Delete, Insert, Rename, Replace, Update
from repro.xpath.evaluator import evaluate


def apply_update(root: Element, update: Update) -> Element:
    """Apply *update* to the tree rooted at *root*, mutating it.

    ``r[[p]]`` is computed first, against the tree as given, then the
    operation is applied at every match (topmost-match-wins for delete
    and replace — see :mod:`repro.updates.ops`).  Returns *root* for
    convenience; the root element itself is never a match in this
    fragment.
    """
    matched = {id(node) for node in evaluate(root, update.path)}
    if not matched:
        return root
    _walk(root, matched, update)
    return root


def _walk(root: Element, matched: set, update: Update) -> None:
    """Rewrite child lists top-down (iterative: safe at any depth)."""
    stack: list[Element] = [root]
    while stack:
        node = stack.pop()
        new_children: list = []
        changed = False
        for child in node.children:
            if not child.is_element or id(child) not in matched:
                if child.is_element:
                    stack.append(child)
                new_children.append(child)
                continue
            changed = True
            if isinstance(update, Delete):
                continue
            if isinstance(update, Replace):
                new_children.append(deep_copy(update.content))
                continue
            if isinstance(update, Rename):
                child.label = update.new_label
                stack.append(child)
                new_children.append(child)
                continue
            if isinstance(update, Insert):
                # Descend first conceptually; appending now is safe since
                # matches are identified by id against the original tree
                # and the appended copy is fresh.
                stack.append(child)
                child.children.append(deep_copy(update.content))
                new_children.append(child)
                continue
            raise TypeError(f"unknown update {update!r}")
        if changed:
            node.children[:] = new_children
