"""XML updates (Section 2): the four operations embedded in transform
queries, their parser, and the destructive in-place application used by
the copy-and-update baseline.

::

    insert e into p      delete p
    replace p with e     rename p as l
"""

from repro.updates.ops import (
    Delete,
    Insert,
    Rename,
    Replace,
    Update,
    parse_update,
)
from repro.updates.apply import apply_update

__all__ = [
    "Delete",
    "Insert",
    "Rename",
    "Replace",
    "Update",
    "apply_update",
    "parse_update",
]
