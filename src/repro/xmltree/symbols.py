"""Interned element-label symbols — the compiled runtime's alphabet.

Every hot loop in the reproduction ultimately compares element labels:
the selecting/filtering NFAs test them on every transition, the SAX
passes test them twice per element, and the lazy DFA of
:mod:`repro.automata.dfa` keys its memoized transition tables by them.
Comparing and hashing strings is measurably slower than ints, so labels
are interned here into dense ids:

* :meth:`SymbolTable.intern` maps a label to a stable ``int`` (and
  ``sys.intern``'s the string, so un-interned call sites still get
  identity-fast dict lookups);
* :meth:`SymbolTable.canonical` returns the shared string object for a
  label, letting parsers deduplicate the many copies of ``"item"`` a
  large document would otherwise allocate.

One process-wide table (:func:`global_symbols`) is the default: ids
only ever grow, an id never changes meaning, and a DFA transition table
keyed by ``(state-set id, symbol id)`` therefore stays valid across
documents, engines and stores for the life of the process.  Both the
tree parser (:mod:`repro.xmltree.parser`) and the SAX scanner
(:mod:`repro.xmltree.sax`) populate it as they read input, so by the
time an automaton runs, its alphabet is already dense ints.

Grow-only is a deliberate trade-off: evicting a symbol would invalidate
every compiled table that mentions it.  Memory is bounded by the number
of *distinct* element labels ever seen — dozens for schema-shaped data
like XMark, and one small entry per label even for pathological
vocabularies (record-names-as-tags documents).  A long-lived process
ingesting unbounded label vocabularies should construct automata with a
private ``SymbolTable`` and drop table and automata together.
"""

from __future__ import annotations

import sys
import threading
from typing import Optional

__all__ = ["SymbolTable", "global_symbols"]


class SymbolTable:
    """A grow-only mapping from element labels to dense int ids.

    Thread-safe: reads are plain dict lookups (safe under the GIL);
    writes take a lock and re-check, so concurrent interning of the
    same label yields one id.
    """

    __slots__ = ("_ids", "strings", "_lock")

    # unguarded[_ids, strings]: grow-only with double-checked locking writes under _lock; an id is appended to strings before it is published into _ids, so lock-free readers never see a dangling id

    def __init__(self):
        self._ids: dict[str, int] = {}
        self.strings: list[str] = []   # id -> canonical label
        self._lock = threading.Lock()

    def intern(self, label: str) -> int:
        """The id of *label*, assigning the next dense id on first use."""
        sym = self._ids.get(label)
        if sym is not None:
            return sym
        with self._lock:
            sym = self._ids.get(label)
            if sym is None:
                label = sys.intern(label)
                sym = len(self.strings)
                self.strings.append(label)
                self._ids[label] = sym
        return sym

    def id_of(self, label: str) -> Optional[int]:  # hot-path
        """The id of *label* if it has been seen, else None."""
        return self._ids.get(label)

    def canonical(self, label: str) -> str:
        """The shared string object for *label* (interning it first)."""
        return self.strings[self.intern(label)]

    def __len__(self) -> int:
        return len(self.strings)

    def __contains__(self, label: str) -> bool:
        return label in self._ids

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SymbolTable({len(self.strings)} symbols)"


#: The process-wide table every parser and automaton shares by default.
_GLOBAL = SymbolTable()


def global_symbols() -> SymbolTable:
    """The process-wide symbol table (see the module docstring)."""
    return _GLOBAL
