"""From-scratch XML substrate: tree model, parser, serializer, SAX layer.

This package provides everything the paper's algorithms need from an XML
library, built without any external dependency:

* :mod:`repro.xmltree.node` — the immutable-by-convention tree model
  (:class:`Element` and :class:`Text` nodes) used by every evaluator.
* :mod:`repro.xmltree.parser` — a recursive-descent XML parser.
* :mod:`repro.xmltree.serializer` — tree → text.
* :mod:`repro.xmltree.sax` — a streaming SAX event scanner (never builds
  a tree) plus tree↔event adapters, used by the ``twoPassSAX`` algorithm.
"""

from repro.xmltree.arena import (
    FrozenBuilder,
    FrozenDocument,
    arena_from_columns,
    arena_to_events,
    events_to_arena,
    freeze,
    thaw,
)
from repro.xmltree.node import (
    Element,
    Node,
    Text,
    deep_copy,
    deep_equal,
    element,
    text,
)
from repro.xmltree.parser import (
    XMLSyntaxError,
    parse,
    parse_file,
    parse_file_to_arena,
    parse_to_arena,
)
from repro.xmltree.sax import (
    EndDocument,
    EndElement,
    SAXEvent,
    StartDocument,
    StartElement,
    TextEvent,
    events_to_text,
    events_to_tree,
    iter_sax_file,
    iter_sax_string,
    tree_to_events,
)
from repro.xmltree.serializer import (
    serialize,
    serialize_arena,
    write_arena_file,
    write_file,
)

__all__ = [
    "Element",
    "EndDocument",
    "EndElement",
    "FrozenBuilder",
    "FrozenDocument",
    "Node",
    "SAXEvent",
    "StartDocument",
    "StartElement",
    "Text",
    "TextEvent",
    "XMLSyntaxError",
    "arena_from_columns",
    "arena_to_events",
    "deep_copy",
    "deep_equal",
    "element",
    "events_to_arena",
    "events_to_text",
    "events_to_tree",
    "freeze",
    "iter_sax_file",
    "iter_sax_string",
    "parse",
    "parse_file",
    "parse_file_to_arena",
    "parse_to_arena",
    "serialize",
    "serialize_arena",
    "text",
    "thaw",
    "tree_to_events",
    "write_arena_file",
    "write_file",
]
