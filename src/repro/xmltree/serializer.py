"""Serialization of the tree model back to XML text."""

from __future__ import annotations

from typing import IO, Optional

from repro.xmltree.node import Element, Node


def escape_text(value: str) -> str:
    """Escape character data for element content."""
    return value.replace("&", "&amp;").replace("<", "&lt;").replace(">", "&gt;")


def escape_attr(value: str) -> str:
    """Escape character data for a double-quoted attribute value."""
    return (
        value.replace("&", "&amp;")
        .replace("<", "&lt;")
        .replace(">", "&gt;")
        .replace('"', "&quot;")
    )


def _write_node(node: Node, out: list, indent: Optional[str], depth: int) -> None:
    pad = "" if indent is None else indent * depth
    newline = "" if indent is None else "\n"
    if node.is_text:
        out.append(pad + escape_text(node.value) + newline)
        return
    attrs = "".join(f' {k}="{escape_attr(v)}"' for k, v in node.attrs.items())
    if not node.children:
        out.append(f"{pad}<{node.label}{attrs}/>{newline}")
        return
    # A single text child stays inline even when pretty-printing, so
    # <price>12</price> does not gain whitespace inside the value.
    if len(node.children) == 1 and node.children[0].is_text:
        value = escape_text(node.children[0].value)
        out.append(f"{pad}<{node.label}{attrs}>{value}</{node.label}>{newline}")
        return
    out.append(f"{pad}<{node.label}{attrs}>{newline}")
    # Iterative serialization would obscure the depth bookkeeping; the
    # recursion here is bounded by document depth, which our data keeps
    # far below the interpreter limit.  serialize() raises it for safety.
    for child in node.children:
        _write_node(child, out, indent, depth + 1)
    out.append(f"{pad}</{node.label}>{newline}")


def serialize(node: Node, indent: Optional[str] = None) -> str:
    """Serialize a subtree to XML text.

    With ``indent`` (e.g. ``"  "``) the output is pretty-printed;
    whitespace-only text nodes are assumed to be absent (the parser
    strips them by default).  The compact form (``indent=None``) is
    iterative and safe for documents of any depth.
    """
    if indent is None:
        out_parts: list[str] = []
        stack: list = [node]
        while stack:
            item = stack.pop()
            if isinstance(item, str):
                out_parts.append(item)
                continue
            if item.is_text:
                out_parts.append(escape_text(item.value))
                continue
            attrs = "".join(f' {k}="{escape_attr(v)}"' for k, v in item.attrs.items())
            if not item.children:
                out_parts.append(f"<{item.label}{attrs}/>")
                continue
            out_parts.append(f"<{item.label}{attrs}>")
            stack.append(f"</{item.label}>")
            stack.extend(reversed(item.children))
        return "".join(out_parts)
    out: list[str] = []
    _write_node(node, out, indent, 0)
    return "".join(out)


def serialize_arena(arena, i: int = 0, indent: Optional[str] = None) -> str:
    """Serialize an arena subtree straight from its columns.

    The fast path of the columnar backend: one pre-order sweep over the
    int columns, no ``thaw`` round-trip, no ``Node`` allocation — an
    untouched subtree is just its contiguous ``[i, end[i])`` index
    range, streamed out as text.  Byte-identical to
    ``serialize(thaw(arena, i))`` (asserted by the arena test suite);
    pretty-printing is rare enough that it simply takes that route.
    """
    if indent is not None:
        from repro.xmltree.arena import thaw

        return serialize(thaw(arena, i), indent=indent)
    parts: list[str] = []
    write_arena_range(arena, i, arena.end[i], parts.append)
    return "".join(parts)


def _flat_attr_text(flat: tuple) -> str:
    """Render an arena flat attribute tuple as serialized attributes."""
    return "".join(
        f' {flat[k]}="{escape_attr(flat[k + 1])}"'
        for k in range(0, len(flat), 2)
    )


def write_arena_range(arena, start: int, limit: int, write) -> None:
    """Emit the (balanced) node range ``[start, limit)`` as compact XML
    through *write* — the shared core of :func:`serialize_arena` and
    the arena-native transform-to-file path."""
    sym = arena.sym
    end = arena.end
    payload = arena.payload
    attr_map = arena.attrs
    strings = arena.symbols.strings
    closes: list[str] = []
    ends: list[int] = []
    j = start
    while j < limit:
        while ends and ends[-1] <= j:
            ends.pop()
            write(closes.pop())
        s = sym[j]
        if s < 0:
            write(escape_text(payload[j]))
            j += 1
            continue
        label = strings[s]
        found = attr_map.get(j)
        attrs = _flat_attr_text(found) if found else ""
        e = end[j]
        if e == j + 1:
            write(f"<{label}{attrs}/>")
        else:
            write(f"<{label}{attrs}>")
            ends.append(e)
            closes.append(f"</{label}>")
        j += 1
    while closes:
        write(closes.pop())


def write_arena_file(
    arena, path: str, i: int = 0, declaration: bool = True
) -> None:
    """Serialize an arena subtree into a file (compact form), straight
    from the columns."""
    with open(path, "w", encoding="utf-8") as handle:
        if declaration:
            handle.write('<?xml version="1.0" encoding="utf-8"?>\n')
        write_arena_range(arena, i, arena.end[i], handle.write)
        handle.write("\n")


def write_file(node: Node, path: str, indent: Optional[str] = None, declaration: bool = True) -> None:
    """Serialize a subtree into a file, optionally with an XML declaration."""
    with open(path, "w", encoding="utf-8") as handle:
        if declaration:
            handle.write('<?xml version="1.0" encoding="utf-8"?>\n')
        handle.write(serialize(node, indent=indent))
        if indent is None:
            handle.write("\n")


def write_stream(node: Node, handle: IO[str]) -> None:
    """Serialize a subtree to an open text stream without pretty-printing.

    Iterative (explicit stack), so it works on documents of any depth;
    used by the data generator when emitting large files.
    """
    # Stack entries are either nodes to open or closing tags to emit.
    stack: list = [node]
    while stack:
        item = stack.pop()
        if isinstance(item, str):
            handle.write(item)
            continue
        if item.is_text:
            handle.write(escape_text(item.value))
            continue
        attrs = "".join(f' {k}="{escape_attr(v)}"' for k, v in item.attrs.items())
        if not item.children:
            handle.write(f"<{item.label}{attrs}/>")
            continue
        handle.write(f"<{item.label}{attrs}>")
        stack.append(f"</{item.label}>")
        stack.extend(reversed(item.children))
