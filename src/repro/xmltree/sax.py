"""SAX event layer: streaming scanner and tree↔event adapters.

Section 6 of the paper integrates the two-pass transform evaluation with
SAX parsing so very large documents are processed with memory bounded by
document depth.  This module provides the substrate:

* the five event types of the paper — ``startDocument()``,
  ``startElement(n)``, ``text(t)``, ``endElement(n)``,
  ``endDocument()`` — as lightweight classes;
* :func:`iter_sax_file` — an incremental scanner that reads the file in
  chunks and **never materializes the document**;
* :func:`iter_sax_string` — the same scanner over an in-memory string;
* :func:`tree_to_events` / :func:`events_to_tree` — adapters between the
  tree model and event streams (the transform result of ``twoPassSAX``
  "may be accessed as a SAX event stream", per the paper);
* :func:`events_to_text` — serialize an event stream to XML text,
  streaming, for writing transform results straight to disk.
"""

from __future__ import annotations

from typing import IO, Callable, Iterable, Iterator, Optional, Union

from repro.xmltree.node import Element, Node, Text
from repro.xmltree.parser import XMLSyntaxError, decode_entities
from repro.xmltree.serializer import escape_attr, escape_text
from repro.xmltree.symbols import global_symbols

#: Element names are canonicalized through the process-wide symbol
#: table as events are produced (see :mod:`repro.xmltree.symbols`):
#: the streaming passes then run the compiled automata over labels
#: whose symbol ids are already interned.
_SYMBOLS = global_symbols()


class SAXEvent:
    """Base class for SAX events."""

    __slots__ = ()


class StartDocument(SAXEvent):
    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover
        return "StartDocument()"

    def __eq__(self, other) -> bool:
        return isinstance(other, StartDocument)

    def __hash__(self) -> int:
        return hash(StartDocument)


class EndDocument(SAXEvent):
    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover
        return "EndDocument()"

    def __eq__(self, other) -> bool:
        return isinstance(other, EndDocument)

    def __hash__(self) -> int:
        return hash(EndDocument)


class StartElement(SAXEvent):
    __slots__ = ("name", "attrs")

    def __init__(self, name: str, attrs: Optional[dict] = None):
        self.name = name
        self.attrs: dict[str, str] = attrs if attrs is not None else {}

    def __repr__(self) -> str:  # pragma: no cover
        return f"StartElement({self.name!r}, {self.attrs!r})"

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, StartElement)
            and self.name == other.name
            and self.attrs == other.attrs
        )

    def __hash__(self) -> int:
        return hash(("start", self.name))


class EndElement(SAXEvent):
    __slots__ = ("name",)

    def __init__(self, name: str):
        self.name = name

    def __repr__(self) -> str:  # pragma: no cover
        return f"EndElement({self.name!r})"

    def __eq__(self, other) -> bool:
        return isinstance(other, EndElement) and self.name == other.name

    def __hash__(self) -> int:
        return hash(("end", self.name))


class TextEvent(SAXEvent):
    __slots__ = ("value",)

    def __init__(self, value: str):
        self.value = value

    def __repr__(self) -> str:  # pragma: no cover
        return f"TextEvent({self.value!r})"

    def __eq__(self, other) -> bool:
        return isinstance(other, TextEvent) and self.value == other.value

    def __hash__(self) -> int:
        return hash(("text", self.value))


# ----------------------------------------------------------------------
# Streaming scanner
# ----------------------------------------------------------------------

_CHUNK = 1 << 16


class _StreamScanner:
    """Incremental XML tokenizer over a text stream.

    Keeps a buffer with a read position; the consumed prefix is dropped
    only when more input is needed, so tokenizing is amortized linear.
    Buffer size stays bounded by the chunk size plus the largest single
    token (tag, comment or text run between tags).
    """

    def __init__(self, stream: IO[str], strip_whitespace: bool):
        self.stream = stream
        self.buf = ""
        self.pos = 0        # read position within buf
        self.base = 0       # absolute offset of buf[0], for errors
        self.eof = False
        self.strip = strip_whitespace

    def _fill(self) -> bool:
        """Compact and read one more chunk; False at end of input."""
        if self.pos:
            self.base += self.pos
            self.buf = self.buf[self.pos :]
            self.pos = 0
        if self.eof:
            return False
        chunk = self.stream.read(_CHUNK)
        if not chunk:
            self.eof = True
            return False
        self.buf += chunk
        return True

    def _find(self, token: str, offset: int) -> int:
        """Find *token* at or after ``pos + offset``; -1 at EOF.

        The returned index stays valid because a successful find never
        compacts; on a miss the buffer is compacted and refilled, and
        the search resumes with a small overlap.
        """
        start = self.pos + offset
        while True:
            idx = self.buf.find(token, start)
            if idx != -1:
                return idx
            start = max(start, len(self.buf) - len(token) + 1)
            before = self.pos
            if not self._fill():
                return -1
            start -= before  # account for the compaction shift

    def _ensure(self, length: int) -> bool:
        """Make at least *length* characters available at ``pos``."""
        while len(self.buf) - self.pos < length:
            if not self._fill():
                return False
        return True

    def events(self) -> Iterator[SAXEvent]:
        yield StartDocument()
        depth = 0
        seen_root = False
        while True:
            # Text (or inter-markup whitespace) up to the next '<'.
            lt = self._find("<", 0)
            if lt == -1:
                if self.buf[self.pos :].strip():
                    raise XMLSyntaxError("text outside the root element", self.base)
                if depth > 0:
                    raise XMLSyntaxError("unexpected end of input", self.base)
                break
            if lt > self.pos:
                raw = self.buf[self.pos : lt]
                self.pos = lt
                if depth > 0:
                    if not self.strip or not raw.isspace():
                        yield TextEvent(
                            decode_entities(raw, self.base) if "&" in raw else raw
                        )
                elif raw.strip():
                    raise XMLSyntaxError("text outside the root element", self.base)
            # Markup starting at buf[pos] == '<'.
            self._ensure(2)
            next_char = self.buf[self.pos + 1] if self.pos + 1 < len(self.buf) else ""
            if next_char == "/":
                end = self._find(">", 2)
                if end == -1:
                    raise XMLSyntaxError("unterminated end tag", self.base)
                name = self.buf[self.pos + 2 : end].strip()
                self.pos = end + 1
                if depth == 0:
                    raise XMLSyntaxError(f"unmatched end tag </{name}>", self.base)
                yield EndElement(name)
                depth -= 1
                if depth == 0:
                    seen_root = True
                continue
            if next_char == "!":
                self._ensure(9)
                head = self.buf[self.pos : self.pos + 9]
                if head.startswith("<!--"):
                    end = self._find("-->", 4)
                    if end == -1:
                        raise XMLSyntaxError("unterminated comment", self.base)
                    self.pos = end + 3
                    continue
                if head == "<![CDATA[":
                    end = self._find("]]>", 9)
                    if end == -1:
                        raise XMLSyntaxError("unterminated CDATA section", self.base)
                    if depth == 0:
                        raise XMLSyntaxError("CDATA outside the root element", self.base)
                    yield TextEvent(self.buf[self.pos + 9 : end])
                    self.pos = end + 3
                    continue
                if head.startswith("<!DOCTYPE"):
                    end = self._find(">", 9)
                    if end == -1:
                        raise XMLSyntaxError("unterminated DOCTYPE", self.base)
                    self.pos = end + 1
                    continue
                raise XMLSyntaxError("unrecognized markup", self.base)
            if next_char == "?":
                end = self._find("?>", 2)
                if end == -1:
                    raise XMLSyntaxError("unterminated processing instruction", self.base)
                self.pos = end + 2
                continue
            # Start tag.
            end = self._find(">", 1)
            if end == -1:
                raise XMLSyntaxError("unterminated start tag", self.base)
            raw_tag = self.buf[self.pos + 1 : end]
            self.pos = end + 1
            self_closing = raw_tag.endswith("/")
            if self_closing:
                raw_tag = raw_tag[:-1]
            name, attrs = _parse_tag_body(raw_tag, self.base)
            if depth == 0 and seen_root:
                raise XMLSyntaxError("multiple root elements", self.base)
            yield StartElement(name, attrs)
            if self_closing:
                yield EndElement(name)
                if depth == 0:
                    seen_root = True
            else:
                depth += 1
        if not seen_root:
            raise XMLSyntaxError("no root element", self.base)
        yield EndDocument()


def _parse_tag_body(raw: str, base: int) -> tuple[str, dict]:
    """Parse ``name a="v" b='w'`` (the inside of a start tag)."""
    if " " not in raw:  # fast path: no attributes (the common case)
        if not raw or "\t" in raw or "\n" in raw or "\r" in raw:
            return _parse_tag_body_slow(raw, base)
        return _SYMBOLS.canonical(raw), {}
    return _parse_tag_body_slow(raw, base)


def _parse_tag_body_slow(raw: str, base: int) -> tuple[str, dict]:
    i = 0
    n = len(raw)
    while i < n and raw[i] not in " \t\r\n":
        i += 1
    name = raw[:i]
    if not name:
        raise XMLSyntaxError("empty tag name", base)
    name = _SYMBOLS.canonical(name)
    attrs: dict[str, str] = {}
    while i < n:
        while i < n and raw[i] in " \t\r\n":
            i += 1
        if i >= n:
            break
        eq = raw.find("=", i)
        if eq == -1:
            raise XMLSyntaxError(f"malformed attribute in <{name}>", base)
        attr_name = raw[i:eq].strip()
        j = eq + 1
        while j < n and raw[j] in " \t\r\n":
            j += 1
        if j >= n or raw[j] not in "\"'":
            raise XMLSyntaxError(f"unquoted attribute value in <{name}>", base)
        quote = raw[j]
        close = raw.find(quote, j + 1)
        if close == -1:
            raise XMLSyntaxError(f"unterminated attribute value in <{name}>", base)
        attrs[attr_name] = decode_entities(raw[j + 1 : close], base)
        i = close + 1
    return name, attrs


def iter_sax_file(
    path: str, strip_whitespace: bool = True, encoding: str = "utf-8"
) -> Iterator[SAXEvent]:
    """Stream SAX events from a file without building a tree."""
    with open(path, "r", encoding=encoding) as handle:
        yield from _StreamScanner(handle, strip_whitespace).events()


def iter_sax_string(source: str, strip_whitespace: bool = True) -> Iterator[SAXEvent]:
    """Stream SAX events from an in-memory string."""
    import io

    yield from _StreamScanner(io.StringIO(source), strip_whitespace).events()


# ----------------------------------------------------------------------
# Two-pass source discipline
# ----------------------------------------------------------------------


class TwoPassSource:
    """Replays an event-source factory for the Section-6 two-pass
    algorithms, enforcing that it really is replayable.

    ``pass1()`` streams the first read; ``pass2()`` calls the factory
    again and raises ``ValueError`` if it hands back the same — now
    exhausted — iterator, or if the second read produces no events at
    all although the first one did (a shared underlying iterator hiding
    behind fresh wrapper objects).  Both ``stream_select`` and
    ``transform_sax_events`` run on this one guard so the detection
    criteria cannot drift apart.
    """

    __slots__ = ("source", "algorithm", "pass1_saw", "_pass1")

    def __init__(self, source: Callable[[], Iterable[SAXEvent]], algorithm: str):
        self.source = source
        self.algorithm = algorithm
        self.pass1_saw = False
        self._pass1 = source()

    def pass1(self) -> Iterator[SAXEvent]:
        for event in self._pass1:
            self.pass1_saw = True
            yield event

    def pass2(self) -> Iterator[SAXEvent]:
        events = self.source()
        if iter(events) is iter(self._pass1):
            raise ValueError(
                f"{self.algorithm} reads the document twice (the Section-6 "
                "two-pass discipline), but the event source returned the "
                "same — now exhausted — iterator for the second pass; pass "
                "a factory that produces a fresh event iterator per call"
            )
        saw = False
        for event in events:
            saw = True
            yield event
        if self.pass1_saw and not saw:
            raise ValueError(
                f"{self.algorithm} reads the document twice, but the event "
                "source produced no events on the second pass — it appears "
                "to wrap a shared, already-exhausted iterator"
            )


# ----------------------------------------------------------------------
# Tree <-> events adapters
# ----------------------------------------------------------------------


def tree_to_events(root: Element, document: bool = True) -> Iterator[SAXEvent]:
    """Generate the SAX event stream of an in-memory tree.

    Iterative, so it handles documents of any depth.  With
    ``document=False`` the surrounding Start/EndDocument pair is omitted
    (useful when splicing a constant subtree into a larger stream).
    """
    if document:
        yield StartDocument()
    stack: list = [root]
    while stack:
        item = stack.pop()
        if isinstance(item, EndElement):
            yield item
            continue
        if item.is_text:
            yield TextEvent(item.value)
            continue
        yield StartElement(item.label, item.attrs)
        stack.append(EndElement(item.label))
        stack.extend(reversed(item.children))
    if document:
        yield EndDocument()


def events_to_tree(events: Iterable[SAXEvent]) -> Element:
    """Build a tree from an event stream; returns the root element."""
    root: Optional[Element] = None
    stack: list[Element] = []
    for event in events:
        if isinstance(event, StartElement):
            node = Element(_SYMBOLS.canonical(event.name), dict(event.attrs), [])
            if stack:
                stack[-1].children.append(node)
            elif root is None:
                root = node
            else:
                raise XMLSyntaxError("multiple root elements in event stream", 0)
            stack.append(node)
        elif isinstance(event, EndElement):
            if not stack:
                raise XMLSyntaxError("unmatched EndElement in event stream", 0)
            stack.pop()
        elif isinstance(event, TextEvent):
            if not stack:
                raise XMLSyntaxError("text outside the root in event stream", 0)
            stack[-1].children.append(Text(event.value))
        # Start/EndDocument carry no content.
    if stack:
        raise XMLSyntaxError("unclosed elements in event stream", 0)
    if root is None:
        raise XMLSyntaxError("empty event stream", 0)
    return root


def events_to_text(events: Iterable[SAXEvent], out: Optional[IO[str]] = None) -> Optional[str]:
    """Serialize an event stream to XML text.

    Streaming: with an ``out`` stream nothing is buffered; without one
    the text is accumulated and returned.
    """
    parts: Optional[list[str]] = None
    if out is None:
        parts = []
        write = parts.append
    else:
        write = out.write
    pending_open: Optional[StartElement] = None

    def flush_open(self_close: bool) -> None:
        nonlocal pending_open
        if pending_open is None:
            return
        attrs = "".join(
            f' {k}="{escape_attr(v)}"' for k, v in pending_open.attrs.items()
        )
        write(f"<{pending_open.name}{attrs}{'/' if self_close else ''}>")
        pending_open = None

    for event in events:
        if isinstance(event, StartElement):
            flush_open(False)
            pending_open = event
        elif isinstance(event, EndElement):
            if pending_open is not None:
                flush_open(True)
            else:
                write(f"</{event.name}>")
        elif isinstance(event, TextEvent):
            flush_open(False)
            write(escape_text(event.value))
    if parts is not None:
        return "".join(parts)
    return None
