"""The columnar document arena: a frozen struct-of-arrays encoding.

After the compiled-runtime refactor the per-node cost of the hot
select/query loops is no longer automaton bookkeeping — it is Python
object traversal: every step chases ``Element`` attributes, allocates
child lists, and thrashes the allocator.  A :class:`FrozenDocument`
stores one document as parallel **columns** over its pre-order node
sequence instead:

* ``sym``     — ``array('i')``: the interned symbol id of an element's
  label (:mod:`repro.xmltree.symbols`), or ``-1`` for a text node —
  the node-kind column and the label column in one;
* ``parent``  — ``array('i')``: the pre-order index of the parent
  (``-1`` at the root);
* ``end``     — ``array('i')``: the **pre-order range** of the
  subtree: node ``i`` spans exactly the contiguous index range
  ``[i, end[i])``.  Child iteration is ``j = i + 1; j = end[j]; …`` —
  no child lists exist at all;
* ``payload`` — one pointer column for the string a node contributes:
  a text node's PCDATA value, or an element's precomputed *own text*
  (the concatenation of its immediate text children — the value
  qualifier comparisons use), so a ``price < 15`` check is one list
  index, not a child scan.  The two never coexist on one node, which
  is why a single column holds both;
* ``attrs``   — a sparse ``{index: (k1, v1, k2, v2, …)}`` map of flat
  attribute tuples; most nodes carry no attributes and pay nothing,
  and a one-attribute node pays a 2-tuple, not a dict.

The pre-order range column is the arena form of the paper's "simply
copied to the result" subtree sharing: a subtree the automaton proves
untouched is a contiguous ``[i, end[i])`` slice that downstream code
(the serializer fast path, the transform-to-file path) copies — or
skips — as a range, without visiting its nodes.

The builder also **deduplicates strings**: XMark-shaped data repeats
text values and attribute names/values heavily, and the Node parser
allocates a fresh copy of each occurrence; the columns share one.
Together with the flat layout this is what buys the ≥3× resident-byte
reduction per loaded document (asserted in ``benchmarks/bench_arena.py``).

A ``FrozenDocument`` is **immutable by contract**: every column is
append-only during construction and never mutated afterwards, which is
what lets :class:`repro.store.documents.StoredDocument` hand the same
arena object to any number of concurrent readers as a zero-copy
snapshot of one committed version.

Construction never builds an intermediate ``Node`` tree: the tree
parser (:func:`repro.xmltree.parser.parse_to_arena`) and the SAX
scanner (:func:`events_to_arena` over :func:`~repro.xmltree.sax.
iter_sax_file`) drive a :class:`FrozenBuilder` directly.
:func:`freeze` / :func:`thaw` bridge to the existing model: ``freeze``
columnarizes a resident tree, ``thaw`` materializes any pre-order range
back into ``Element``/``Text`` nodes (used to hand individual matches
to callers that expect the tree model — only the touched subtrees are
ever thawed).
"""

from __future__ import annotations

import sys
from array import array
from bisect import bisect_right
from typing import Iterable, Iterator, Optional

from repro.xmltree.node import Element, Node, Text
from repro.xmltree.symbols import SymbolTable, global_symbols

__all__ = [
    "FrozenBuilder",
    "FrozenDocument",
    "SpliceSegment",
    "arena_from_columns",
    "arena_to_events",
    "events_to_arena",
    "freeze",
    "freeze_segment",
    "rename_splice",
    "splice",
    "thaw",
]


class FrozenDocument:
    """One document, frozen into parallel pre-order columns.

    Instances come from :class:`FrozenBuilder` (via :func:`freeze`,
    :func:`~repro.xmltree.parser.parse_to_arena` or
    :func:`events_to_arena`) and are immutable: readers share them
    freely.  Index 0 is always the root element.
    """

    __slots__ = (
        "symbols", "sym", "parent", "end", "payload", "attrs",
        "n_elements", "_mean_depth", "_nbytes",
    )

    def __init__(
        self,
        symbols: SymbolTable,
        sym: array,
        parent: array,
        end: array,
        payload: list,
        attrs: dict,
        n_elements: int,
    ):
        self.symbols = symbols
        self.sym = sym
        self.parent = parent
        self.end = end
        self.payload = payload
        self.attrs = attrs
        self.n_elements = n_elements
        self._mean_depth: Optional[float] = None
        self._nbytes: Optional[dict] = None

    # ------------------------------------------------------------------
    # Node access
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        """Total node count (elements and texts), like ``root.size()``."""
        return len(self.sym)

    def is_element(self, i: int) -> bool:
        return self.sym[i] >= 0

    def label(self, i: int) -> str:
        """The canonical (interned) label of element *i*."""
        return self.symbols.strings[self.sym[i]]

    def own_text(self, i: int) -> str:
        """Element *i*'s own text (the qualifier comparison value)."""
        return self.payload[i]

    def text_value(self, i: int) -> str:
        """Text node *i*'s PCDATA value."""
        return self.payload[i]

    def attrs_of(self, i: int) -> dict:
        """Element *i*'s attributes as a fresh dict (the columns store
        them as flat tuples; hot paths iterate those directly)."""
        flat = self.attrs.get(i)
        if not flat:
            return {}
        return {flat[k]: flat[k + 1] for k in range(0, len(flat), 2)}

    def attr(self, i: int, name: str) -> Optional[str]:
        """One attribute value (linear scan of the flat tuple — the
        tuples are tiny, and this beats building a dict)."""
        flat = self.attrs.get(i)
        if flat:
            for k in range(0, len(flat), 2):
                if flat[k] == name:
                    return flat[k + 1]
        return None

    def child_elements(self, i: int) -> Iterator[int]:
        """Pre-order indices of element *i*'s element children."""
        end = self.end
        sym = self.sym
        j = i + 1
        limit = end[i]
        while j < limit:
            if sym[j] >= 0:
                yield j
            j = end[j]

    def iter_elements(self, i: int = 0) -> Iterator[int]:
        """All element indices in the subtree range of *i*, pre-order."""
        sym = self.sym
        for j in range(i, self.end[i]):
            if sym[j] >= 0:
                yield j

    def depth(self, i: int = 0) -> int:
        """Height of the subtree at *i* (a leaf element has depth 1)."""
        end = self.end
        sym = self.sym
        best = 1
        ends: list[int] = []  # open element ranges, nesting = len(ends)
        limit = end[i]
        for j in range(i, limit):
            while ends and ends[-1] <= j:
                ends.pop()
            if sym[j] >= 0:
                nesting = len(ends) + 1
                if nesting > best:
                    best = nesting
                ends.append(end[j])
        return best

    def mean_depth(self) -> float:
        """Mean node depth over the whole document (cached; the term
        the planner's qualifier cost model consumes)."""
        if self._mean_depth is None:
            parent = self.parent
            depths = [0] * len(parent)
            total = 0
            for i in range(len(parent)):
                d = depths[parent[i]] + 1 if i else 1
                depths[i] = d
                total += d
            self._mean_depth = total / max(1, len(parent))
        return self._mean_depth

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def nbytes(self) -> dict:
        """Approximate resident bytes per column group (cached).

        ``columns`` counts the int arrays and the payload pointer
        column; ``strings`` the deduplicated payload strings; ``attrs``
        the flat attribute tuples and their (shared) strings.
        """
        if self._nbytes is None:
            columns = (
                sys.getsizeof(self.sym)
                + sys.getsizeof(self.parent)
                + sys.getsizeof(self.end)
                + sys.getsizeof(self.payload)
            )
            seen: set[int] = set()
            strings = 0
            for value in self.payload:
                if value is not None and id(value) not in seen:
                    seen.add(id(value))
                    strings += sys.getsizeof(value)
            attr_bytes = sys.getsizeof(self.attrs)
            for flat in self.attrs.values():
                attr_bytes += sys.getsizeof(flat)
                for value in flat:
                    if id(value) not in seen:
                        seen.add(id(value))
                        attr_bytes += sys.getsizeof(value)
            self._nbytes = {
                "columns": columns,
                "strings": strings,
                "attrs": attr_bytes,
                "total": columns + strings + attr_bytes,
            }
        return dict(self._nbytes)

    def stats(self) -> dict:
        """Shape and memory summary (what ``repro store stat`` and
        ``Prepared.explain()`` surface)."""
        info = self.nbytes()
        return {
            "nodes": len(self.sym),
            "elements": self.n_elements,
            "texts": len(self.sym) - self.n_elements,
            "attr_nodes": len(self.attrs),
            "column_bytes": info["columns"],
            "total_bytes": info["total"],
        }

    def columns(self) -> dict:
        """The document as a picklable column payload.

        A :class:`FrozenDocument` itself cannot cross a process
        boundary (its :class:`~repro.xmltree.symbols.SymbolTable`
        carries a lock, and its symbol ids are only meaningful against
        that table), but its columns can: the payload ships the raw
        arrays plus the table's id → label strings, and
        :func:`arena_from_columns` rebuilds an equivalent arena on the
        other side by re-interning through the receiving process's own
        table.  This is the substrate of the service's opt-in
        ``multiprocessing`` worker pool.

        Only the prefix of the symbol table this document can actually
        reference ships: the table is usually the process-wide one,
        and a long-lived server must not pay for every label every
        *other* document ever interned on each payload.
        """
        return {
            "sym": self.sym,
            "parent": self.parent,
            "end": self.end,
            "payload": self.payload,
            "attrs": self.attrs,
            "n_elements": self.n_elements,
            "strings": list(self.symbols.strings[: max(self.sym) + 1]),
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"FrozenDocument({len(self.sym)} nodes, "
            f"{self.n_elements} elements)"
        )


class FrozenBuilder:
    """Append-only column builder the load paths drive directly.

    ``start``/``text``/``end`` mirror the SAX discipline; ``finish``
    validates balance, compacts the growable columns to exact size and
    hands back the frozen document.  Strings are deduplicated through a
    build-local cache that dies with the builder.
    """

    __slots__ = (
        "symbols", "_sym", "_parent", "_end", "_payload", "_attrs",
        "_stack", "_own_parts", "_elements", "_strings",
    )

    def __init__(self, symbols: Optional[SymbolTable] = None):
        self.symbols = symbols if symbols is not None else global_symbols()
        self._sym = array("i")
        self._parent = array("i")
        self._end = array("i")
        self._payload: list = []
        self._attrs: dict[int, tuple] = {}
        self._stack: list[int] = []
        self._own_parts: list = []
        self._elements = 0
        self._strings: dict[str, str] = {}

    def start(self, label: str, attrs: Optional[dict] = None) -> int:
        """Open an element; returns its pre-order index."""
        index = len(self._sym)
        if index and not self._stack:
            raise ValueError("multiple root elements in arena input")
        self._sym.append(self.symbols.intern(label))
        self._parent.append(self._stack[-1] if self._stack else -1)
        self._end.append(0)  # patched by end()
        self._payload.append("")  # own text, patched by end()
        if attrs:
            cache = self._strings.setdefault
            self._attrs[index] = tuple(
                cache(part, part) for kv in attrs.items() for part in kv
            )
        self._stack.append(index)
        self._own_parts.append(None)
        self._elements += 1
        return index

    def text(self, value: str) -> int:
        """Append a text node under the open element."""
        if not self._stack:
            raise ValueError("text outside the root element in arena input")
        index = len(self._sym)
        value = self._strings.setdefault(value, value)
        self._sym.append(-1)
        self._parent.append(self._stack[-1])
        self._end.append(index + 1)
        self._payload.append(value)
        parts = self._own_parts[-1]
        if parts is None:
            self._own_parts[-1] = [value]
        else:
            parts.append(value)
        return index

    def end(self) -> None:
        """Close the innermost open element."""
        index = self._stack.pop()
        self._end[index] = len(self._sym)
        parts = self._own_parts.pop()
        if parts is not None:
            if len(parts) == 1:
                self._payload[index] = parts[0]
            else:
                joined = "".join(parts)
                self._payload[index] = self._strings.setdefault(joined, joined)

    def finish(self) -> FrozenDocument:
        if self._stack:
            raise ValueError(
                f"unclosed element at index {self._stack[-1]} in arena input"
            )
        if not self._sym:
            raise ValueError("empty arena input")
        # Compact: growable arrays/lists carry append slack; the frozen
        # copies are exact-size.
        return FrozenDocument(
            self.symbols,
            array("i", self._sym),
            array("i", self._parent),
            array("i", self._end),
            list(self._payload),
            self._attrs,
            self._elements,
        )


# ----------------------------------------------------------------------
# Bridges to the Node model
# ----------------------------------------------------------------------

#: Sentinel marking "close the current element" on the freeze stack.
_END = object()


def freeze(root: Element, symbols: Optional[SymbolTable] = None) -> FrozenDocument:
    """Columnarize a resident tree (iterative; any depth)."""
    builder = FrozenBuilder(symbols)
    stack: list = [root]
    while stack:
        item = stack.pop()
        if item is _END:
            builder.end()
            continue
        if item.is_text:
            builder.text(item.value)
            continue
        builder.start(item.label, item.attrs if item.attrs else None)
        stack.append(_END)
        stack.extend(reversed(item.children))
    return builder.finish()


def thaw(arena: FrozenDocument, i: int = 0) -> Node:
    """Materialize the subtree at pre-order index *i* as Node objects.

    The inverse of :func:`freeze` (round-trip identity is property-
    tested); attribute dicts are fresh, so the thawed tree may be
    mutated without touching the frozen snapshot.
    """
    sym = arena.sym
    if sym[i] < 0:
        return Text(arena.payload[i])
    strings = arena.symbols.strings
    end = arena.end
    payload = arena.payload
    attrs_of = arena.attrs_of
    root = Element(strings[sym[i]], attrs_of(i), [])
    limit = end[i]
    kids = [root.children]
    ends = [limit]
    j = i + 1
    while j < limit:
        if ends[-1] <= j:
            ends.pop()
            kids.pop()
            while ends[-1] <= j:
                ends.pop()
                kids.pop()
        s = sym[j]
        if s < 0:
            kids[-1].append(Text(payload[j]))
            j += 1
            continue
        node = Element(strings[s], attrs_of(j), [])
        kids[-1].append(node)
        e = end[j]
        if e > j + 1:
            kids.append(node.children)
            ends.append(e)
        j += 1
    return root


def arena_from_columns(
    columns: dict, symbols: Optional[SymbolTable] = None
) -> FrozenDocument:
    """Rebuild a :class:`FrozenDocument` from a pickled column payload.

    The inverse of :meth:`FrozenDocument.columns`.  Symbol ids in the
    shipped ``sym`` column index the payload's ``strings`` list; they
    are re-interned through *symbols* (default: the receiving
    process's :func:`~repro.xmltree.symbols.global_symbols`), so the
    rebuilt arena composes with automata compiled in this process.
    When the id assignment already matches — the common case in forked
    workers, which inherit the parent's table — the column is reused
    as-is with no rewrite.
    """
    table = symbols if symbols is not None else global_symbols()
    strings = columns["strings"]
    remap = [table.intern(label) for label in strings]
    sym = columns["sym"]
    if any(remap[i] != i for i in range(len(remap))):
        sym = array("i", (remap[s] if s >= 0 else -1 for s in sym))
    return FrozenDocument(
        table,
        sym,
        columns["parent"],
        columns["end"],
        columns["payload"],
        columns["attrs"],
        columns["n_elements"],
    )


# ----------------------------------------------------------------------
# Splicing: deriving the next frozen version at O(delta) cost
# ----------------------------------------------------------------------


class SpliceSegment:
    """A frozen subtree in *relative* column form, ready to splice.

    Produced by :func:`freeze_segment`.  ``parent`` holds offsets
    relative to the segment's own first node (``-1`` at the segment
    root — rewired to the attach point at splice time) and ``end``
    holds relative pre-order ranges, so one segment can be emitted at
    any output position by adding a base offset.  ``labels`` is the
    set of element labels the segment introduces — what delta-scoped
    cache invalidation intersects against.  Immutable by the same
    contract as :class:`FrozenDocument`; a segment built once from an
    update's constant content is reused across every match and every
    commit of that update.
    """

    __slots__ = (
        "symbols", "sym", "parent", "end", "payload", "attrs",
        "n_elements", "labels",
    )

    def __init__(
        self,
        symbols: SymbolTable,
        sym: array,
        parent: array,
        end: array,
        payload: list,
        attrs: dict,
        n_elements: int,
        labels: frozenset,
    ):
        self.symbols = symbols
        self.sym = sym
        self.parent = parent
        self.end = end
        self.payload = payload
        self.attrs = attrs
        self.n_elements = n_elements
        self.labels = labels

    def __len__(self) -> int:
        return len(self.sym)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SpliceSegment({len(self.sym)} nodes, labels={sorted(self.labels)})"


def freeze_segment(root: Element, symbols: Optional[SymbolTable] = None) -> SpliceSegment:
    """Columnarize a subtree into splice-ready relative columns.

    A :class:`FrozenBuilder` run starting at index 0 already produces
    the relative form — the segment root's parent is ``-1`` and every
    ``end`` is an offset from the segment start — so this is exactly
    :func:`freeze` plus a label census.
    """
    doc = freeze(root, symbols)
    strings = doc.symbols.strings
    labels = frozenset(strings[s] for s in doc.sym if s >= 0)
    return SpliceSegment(
        doc.symbols, doc.sym, doc.parent, doc.end, doc.payload,
        doc.attrs, doc.n_elements, labels,
    )


#: The SWAR fast path in :func:`splice` assumes 4-byte ``array('i')``
#: lanes laid out in native byte order.
_LANES32 = array("i").itemsize == 4


def _shifted_lanes(col: "array[int]", lo: int, hi: int, shift: int) -> bytes:
    """``col[lo:hi]`` with *shift* added to every element, as raw bytes.

    SWAR on one big integer: with ``shift > 0`` and every lane a
    non-negative pre-order index far below ``2**31``, no lane sum can
    carry into its neighbour, so a single big-int addition shifts the
    whole slice at C speed instead of boxing one int per node.
    """
    lanes = hi - lo
    ones = ((1 << (32 * lanes)) - 1) // 0xFFFFFFFF
    big = int.from_bytes(col[lo:hi].tobytes(), sys.byteorder) + shift * ones
    return big.to_bytes(lanes * 4, sys.byteorder)


def splice(base: FrozenDocument, patches: list) -> FrozenDocument:
    """A new :class:`FrozenDocument` with *patches* applied to *base*.

    Each patch is a ``(start, stop, attach, segment)`` tuple against
    *base*'s pre-order indices:

    * a **removal** (``stop > start``) drops exactly one subtree range
      (``stop == base.end[start]``, ``attach == base.parent[start]``)
      and, when *segment* is not ``None``, emits the segment's nodes
      in its place (a replace);
    * an **insertion** (``stop == start``, *segment* required) emits
      the segment at position ``start`` as the new last child of
      element *attach* (which must satisfy ``base.end[attach] ==
      start``).

    Patches must be pairwise disjoint and must never touch the root
    (``start >= 1``).  Untouched regions are copied as bulk column
    slices — payload strings and attribute tuples are **shared by
    reference** with *base* — and only three kinds of pointwise fixups
    run: parent/end shifts right of the first patch, end growth on the
    ancestor chain of each attach point, and attribute-key remapping.
    The returned arena shares *base*'s symbol table; readers holding
    *base* are unaffected.
    """
    if not patches:
        return base
    for patch in patches:
        seg = patch[3]
        if seg is not None and seg.symbols is not base.symbols:
            raise ValueError(
                "splice segment was frozen against a different SymbolTable"
            )
    # At equal positions the deeper attach's content must emit first
    # (it belongs inside the shallower node's subtree): sort by
    # (start, -attach).
    patches = sorted(patches, key=lambda p: (p[0], -p[2]))
    sym0 = base.sym
    par0 = base.parent
    end0 = base.end
    pay0 = base.payload
    n = len(sym0)

    # -- validate, and compute per-patch size deltas ("nets"), the
    #    cumulative shift table, and the ancestor-chain end corrections.
    nets: list[int] = []
    stops: list[int] = []          # per-patch boundary, bisect key for shifts
    removal_starts: list[int] = []
    removal_stops: list[int] = []
    corr: dict[int, int] = {}      # kept index -> end growth (ancestor chains)
    removed_elements = 0
    high_water = 1                 # patches may never touch the root
    for start, stop, attach, seg in patches:
        if start < high_water or stop > n or start < 1:
            raise ValueError(
                f"splice patch [{start}, {stop}) overlaps an earlier patch "
                f"or falls outside the document"
            )
        if stop == start:
            if seg is None:
                raise ValueError("insertion patch requires a segment")
            if not (0 <= attach < start and end0[attach] == start and sym0[attach] >= 0):
                raise ValueError(
                    f"insertion at {start} must attach to the element whose "
                    f"subtree ends there (got attach={attach})"
                )
            idx = bisect_right(removal_starts, attach) - 1
            if idx >= 0 and attach < removal_stops[idx]:
                raise ValueError(
                    f"insertion attach {attach} lies inside a removed range"
                )
        else:
            if end0[start] != stop:
                raise ValueError(
                    f"removal [{start}, {stop}) is not one subtree "
                    f"(end[{start}] == {end0[start]})"
                )
            if attach != par0[start]:
                raise ValueError(
                    f"removal patch attach must be parent[{start}] == "
                    f"{par0[start]}, got {attach}"
                )
            removal_starts.append(start)
            removal_stops.append(stop)
            for j in range(start, stop):
                if sym0[j] >= 0:
                    removed_elements += 1
        net = (len(seg.sym) if seg is not None else 0) - (stop - start)
        nets.append(net)
        stops.append(stop)
        if net:
            # Every kept node whose subtree contains this patch is, by
            # laminarity, an ancestor-or-self of the attach point: walk
            # the chain once and accumulate the end growth.
            c = attach
            while c >= 0:
                corr[c] = corr.get(c, 0) + net
                c = par0[c]
        high_water = stop if stop > start else start

    cum = [0]
    for net in nets:
        cum.append(cum[-1] + net)

    def newpos(p: int) -> int:
        """Output index of kept base node *p* (piecewise shift)."""
        return p + cum[bisect_right(stops, p)]

    first_start = patches[0][0]
    new_sym = array("i")
    new_par = array("i")
    new_end = array("i")
    new_pay: list = []
    new_attrs: dict = {}
    n_elements = base.n_elements - removed_elements

    def emit_kept(lo: int, hi: int, shift: int) -> None:
        if lo >= hi:
            return
        new_sym.extend(sym0[lo:hi])
        new_pay.extend(pay0[lo:hi])
        if shift == 0 and hi <= first_start:
            # The untouched prefix: raw slice copies (ancestor-chain
            # end growth is applied globally afterwards).
            new_par.extend(par0[lo:hi])
            new_end.extend(end0[lo:hi])
            return
        # Bulk-shift the whole piece at C speed, then fix the only
        # nodes whose parent lies *before* the piece: its top-level
        # subtree roots, reached by jumping end-to-end.  (A node
        # strictly inside a subtree rooted in the piece has its parent
        # in the piece, so the uniform shift is already correct.)
        out0 = len(new_par)
        if shift == 0:
            new_par.extend(par0[lo:hi])
            new_end.extend(end0[lo:hi])
        elif shift > 0 and _LANES32:
            new_par.frombytes(_shifted_lanes(par0, lo, hi, shift))
            new_end.frombytes(_shifted_lanes(end0, lo, hi, shift))
        else:
            new_par.extend(map(shift.__add__, par0[lo:hi]))
            new_end.extend(map(shift.__add__, end0[lo:hi]))
        b = lo
        while b < hi:
            p = par0[b]
            new_par[out0 + b - lo] = p if p < first_start else newpos(p)
            b = end0[b]

    prev = 0
    shift = 0
    for k, (start, stop, attach, seg) in enumerate(patches):
        emit_kept(prev, start, shift)
        if seg is not None:
            out0 = len(new_sym)
            attach_new = attach + cum[bisect_right(stops, attach)]
            append_par = new_par.append
            for rel in seg.parent:
                append_par(attach_new if rel < 0 else out0 + rel)
            new_sym.extend(seg.sym)
            new_end.extend(map(out0.__add__, seg.end))
            new_pay.extend(seg.payload)
            for key, flat in seg.attrs.items():
                new_attrs[out0 + key] = flat
            n_elements += seg.n_elements
        prev = stop
        shift += nets[k]
    emit_kept(prev, n, shift)

    # Ancestor-chain end growth: the only kept nodes whose ends move
    # beyond their piece shift.
    for c, growth in corr.items():
        new_end[newpos(c)] += growth

    # Re-key kept attribute tuples (shared by reference); drop removed.
    if removal_starts:
        for k, flat in base.attrs.items():
            idx = bisect_right(removal_starts, k) - 1
            if idx >= 0 and k < removal_stops[idx]:
                continue
            new_attrs[newpos(k)] = flat
    else:
        # Insert-only delta: nothing is dropped, and every key left of
        # the first patch keeps its position.
        for k, flat in base.attrs.items():
            new_attrs[k if k < first_start else newpos(k)] = flat

    return FrozenDocument(
        base.symbols, new_sym, new_par, new_end, new_pay, new_attrs,
        n_elements,
    )


def rename_splice(base: FrozenDocument, indices: list, new_label: str) -> FrozenDocument:
    """A new frozen version with the elements at *indices* relabeled.

    A rename changes exactly one column: ``parent``/``end``/``payload``/
    ``attrs`` are **aliased** from *base* (full structural sharing; both
    arenas are immutable so aliasing is safe), and only ``sym`` is
    copied and point-written.
    """
    sym = array("i", base.sym)
    sid = base.symbols.intern(new_label)
    for i in indices:
        if sym[i] < 0:
            raise ValueError(f"cannot rename text node at index {i}")
        sym[i] = sid
    return FrozenDocument(
        base.symbols, sym, base.parent, base.end, base.payload,
        base.attrs, base.n_elements,
    )


# ----------------------------------------------------------------------
# SAX event adapters (the streaming replay source)
# ----------------------------------------------------------------------


def events_to_arena(
    events: Iterable, symbols: Optional[SymbolTable] = None
) -> FrozenDocument:
    """Build a frozen document straight from a SAX event stream.

    This is the SAX scanner's arena load path —
    ``events_to_arena(iter_sax_file(path))`` columnarizes a file with
    no intermediate ``Node`` tree and memory bounded by the columns
    themselves.
    """
    from repro.xmltree.sax import EndElement, StartElement, TextEvent

    builder = FrozenBuilder(symbols)
    for event in events:
        if isinstance(event, StartElement):
            builder.start(event.name, event.attrs if event.attrs else None)
        elif isinstance(event, EndElement):
            builder.end()
        elif isinstance(event, TextEvent):
            builder.text(event.value)
        # Start/EndDocument carry no content.
    return builder.finish()


def arena_to_events(
    arena: FrozenDocument, i: int = 0, document: bool = True
) -> Iterator:
    """Generate the SAX event stream of an arena subtree.

    An arena is **replayable by construction** — calling this again
    yields an identical fresh stream — so an arena can be handed
    directly to the Section-6 two-pass streaming algorithms as their
    replay source, with no one-shot-iterator hazard.
    """
    from repro.xmltree.sax import (
        EndDocument,
        EndElement,
        StartDocument,
        StartElement,
        TextEvent,
    )

    if document:
        yield StartDocument()
    sym = arena.sym
    end = arena.end
    payload = arena.payload
    strings = arena.symbols.strings
    attrs_of = arena.attrs_of
    limit = end[i]
    closes: list = []
    ends: list[int] = []
    j = i
    while j < limit:
        while ends and ends[-1] <= j:
            ends.pop()
            yield closes.pop()
        s = sym[j]
        if s < 0:
            yield TextEvent(payload[j])
            j += 1
            continue
        label = strings[s]
        yield StartElement(label, attrs_of(j))
        e = end[j]
        if e > j + 1:
            ends.append(e)
            closes.append(EndElement(label))
        else:
            yield EndElement(label)
        j += 1
    while closes:
        yield closes.pop()
    if document:
        yield EndDocument()
