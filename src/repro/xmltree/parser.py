"""A from-scratch recursive-descent XML parser.

Supports the XML subset needed by the reproduction (and then some):

* elements with attributes (single- or double-quoted),
* self-closing tags,
* text with the five predefined entities and numeric character
  references (decimal and hex),
* comments, processing instructions, a DOCTYPE declaration and CDATA
  sections (comments/PIs/DOCTYPE are skipped, CDATA becomes text),
* an optional XML declaration.

By default whitespace-only text between elements is dropped
(``strip_whitespace=True``), which makes pretty-printed documents
round-trip cleanly and matches how the paper's data (XMark) is treated.
"""

from __future__ import annotations

from typing import Optional

from repro.xmltree.node import Element, Node, Text
from repro.xmltree.symbols import global_symbols

#: Labels are canonicalized through the process-wide symbol table as
#: they are parsed: identical labels share one interned string (a large
#: XMark document has millions of label occurrences but a few dozen
#: distinct labels), and the compiled runtime's automata find their
#: whole alphabet pre-interned.
_SYMBOLS = global_symbols()


class XMLSyntaxError(ValueError):
    """Raised on malformed XML input, with position information."""

    def __init__(self, message: str, pos: int):
        super().__init__(f"{message} (at offset {pos})")
        self.pos = pos


_ENTITIES = {
    "amp": "&",
    "lt": "<",
    "gt": ">",
    "quot": '"',
    "apos": "'",
}


def decode_entities(raw: str, pos: int = 0) -> str:
    """Decode predefined entities and character references in *raw*."""
    if "&" not in raw:
        return raw
    out: list[str] = []
    i = 0
    n = len(raw)
    while i < n:
        ch = raw[i]
        if ch != "&":
            out.append(ch)
            i += 1
            continue
        end = raw.find(";", i + 1)
        if end == -1:
            raise XMLSyntaxError("unterminated entity reference", pos + i)
        name = raw[i + 1 : end]
        if name.startswith("#x") or name.startswith("#X"):
            try:
                out.append(chr(int(name[2:], 16)))
            except ValueError:
                raise XMLSyntaxError(f"bad character reference &{name};", pos + i) from None
        elif name.startswith("#"):
            try:
                out.append(chr(int(name[1:])))
            except ValueError:
                raise XMLSyntaxError(f"bad character reference &{name};", pos + i) from None
        elif name in _ENTITIES:
            out.append(_ENTITIES[name])
        else:
            raise XMLSyntaxError(f"unknown entity &{name};", pos + i)
        i = end + 1
    return "".join(out)


_NAME_START_EXTRA = set("_:")
_NAME_EXTRA = set("_:.-")


def _is_name_start(ch: str) -> bool:
    return ch.isalpha() or ch in _NAME_START_EXTRA


def _is_name_char(ch: str) -> bool:
    return ch.isalnum() or ch in _NAME_EXTRA


class _Parser:
    """Single-pass parser over an in-memory string.

    Uses an explicit element stack rather than recursion so arbitrarily
    deep documents parse without hitting the Python recursion limit.
    """

    def __init__(self, source: str, strip_whitespace: bool):
        self.src = source
        self.pos = 0
        self.n = len(source)
        self.strip = strip_whitespace

    # -- small scanning helpers ---------------------------------------

    def _error(self, message: str) -> XMLSyntaxError:
        return XMLSyntaxError(message, self.pos)

    def _skip_ws(self) -> None:
        src, n = self.src, self.n
        i = self.pos
        while i < n and src[i] in " \t\r\n":
            i += 1
        self.pos = i

    def _expect(self, token: str) -> None:
        if not self.src.startswith(token, self.pos):
            raise self._error(f"expected {token!r}")
        self.pos += len(token)

    def _read_name(self) -> str:
        src, n = self.src, self.n
        start = self.pos
        if start >= n or not _is_name_start(src[start]):
            raise self._error("expected a name")
        i = start + 1
        while i < n and _is_name_char(src[i]):
            i += 1
        self.pos = i
        return src[start:i]

    def _read_attr_value(self) -> str:
        src = self.src
        if self.pos >= self.n or src[self.pos] not in "\"'":
            raise self._error("expected a quoted attribute value")
        quote = src[self.pos]
        start = self.pos + 1
        end = src.find(quote, start)
        if end == -1:
            raise self._error("unterminated attribute value")
        self.pos = end + 1
        return decode_entities(src[start:end], start)

    # -- markup constructs ---------------------------------------------

    def _skip_misc(self) -> None:
        """Skip comments, PIs, DOCTYPE and whitespace before/after root."""
        while True:
            self._skip_ws()
            if self.src.startswith("<!--", self.pos):
                self._skip_comment()
            elif self.src.startswith("<?", self.pos):
                self._skip_pi()
            elif self.src.startswith("<!DOCTYPE", self.pos):
                self._skip_doctype()
            else:
                return

    def _skip_comment(self) -> None:
        end = self.src.find("-->", self.pos + 4)
        if end == -1:
            raise self._error("unterminated comment")
        self.pos = end + 3

    def _skip_pi(self) -> None:
        end = self.src.find("?>", self.pos + 2)
        if end == -1:
            raise self._error("unterminated processing instruction")
        self.pos = end + 2

    def _skip_doctype(self) -> None:
        # Handle a possible internal subset in square brackets.
        i = self.pos + len("<!DOCTYPE")
        depth = 0
        src, n = self.src, self.n
        while i < n:
            ch = src[i]
            if ch == "[":
                depth += 1
            elif ch == "]":
                depth -= 1
            elif ch == ">" and depth <= 0:
                self.pos = i + 1
                return
            i += 1
        raise self._error("unterminated DOCTYPE")

    def _read_cdata(self) -> str:
        end = self.src.find("]]>", self.pos + 9)
        if end == -1:
            raise self._error("unterminated CDATA section")
        value = self.src[self.pos + 9 : end]
        self.pos = end + 3
        return value

    def _read_open_tag(self) -> tuple[str, dict, bool]:
        """Parse ``<name a="v" ...>`` after '<'; returns (name, attrs, self_closing)."""
        name = self._read_name()
        attrs: dict[str, str] = {}
        while True:
            self._skip_ws()
            if self.pos >= self.n:
                raise self._error("unterminated start tag")
            ch = self.src[self.pos]
            if ch == ">":
                self.pos += 1
                return name, attrs, False
            if ch == "/":
                self._expect("/>")
                return name, attrs, True
            attr_name = self._read_name()
            self._skip_ws()
            self._expect("=")
            self._skip_ws()
            attrs[attr_name] = self._read_attr_value()

    # -- document ------------------------------------------------------

    def parse_document(self) -> Element:
        self._skip_misc()
        if self.pos >= self.n or self.src[self.pos] != "<":
            raise self._error("expected the root element")
        root = self._parse_root()
        self._skip_misc()
        if self.pos != self.n:
            raise self._error("content after the root element")
        return root

    def _parse_root_arena(self, builder) -> None:
        """The :meth:`_parse_root` loop, driving a
        :class:`~repro.xmltree.arena.FrozenBuilder` directly: the arena
        load path allocates columns, never ``Element``/``Text`` nodes.

        Kept as a separate loop (rather than a builder indirection in
        ``_parse_root``) so the Node path stays allocation-minimal too.
        """
        self._expect("<")
        name, attrs, self_closing = self._read_open_tag()
        builder.start(name, attrs if attrs else None)
        if self_closing:
            builder.end()
            return
        open_labels = [name]
        src = self.src
        while open_labels:
            lt = src.find("<", self.pos)
            if lt == -1:
                raise self._error(f"unterminated element <{open_labels[-1]}>")
            if lt > self.pos:
                raw = src[self.pos : lt]
                if not self.strip or raw.strip():
                    builder.text(decode_entities(raw, self.pos))
                self.pos = lt
            # self.pos is at '<'
            if src.startswith("</", self.pos):
                self.pos += 2
                name = self._read_name()
                self._skip_ws()
                self._expect(">")
                open_label = open_labels.pop()
                if open_label != name:
                    raise self._error(
                        f"mismatched end tag </{name}> for <{open_label}>"
                    )
                builder.end()
            elif src.startswith("<!--", self.pos):
                self._skip_comment()
            elif src.startswith("<![CDATA[", self.pos):
                builder.text(self._read_cdata())
            elif src.startswith("<?", self.pos):
                self._skip_pi()
            else:
                self.pos += 1
                name, attrs, self_closing = self._read_open_tag()
                builder.start(name, attrs if attrs else None)
                if not self_closing:
                    open_labels.append(name)
                else:
                    builder.end()

    def _parse_root(self) -> Element:
        self._expect("<")
        name, attrs, self_closing = self._read_open_tag()
        root = Element(_SYMBOLS.canonical(name), attrs, [])
        if self_closing:
            return root
        stack: list[Element] = [root]
        src = self.src
        while stack:
            lt = src.find("<", self.pos)
            if lt == -1:
                raise self._error(f"unterminated element <{stack[-1].label}>")
            if lt > self.pos:
                raw = src[self.pos : lt]
                if not self.strip or raw.strip():
                    stack[-1].children.append(Text(decode_entities(raw, self.pos)))
                self.pos = lt
            # self.pos is at '<'
            if src.startswith("</", self.pos):
                self.pos += 2
                name = self._read_name()
                self._skip_ws()
                self._expect(">")
                open_element = stack.pop()
                if open_element.label != name:
                    raise self._error(
                        f"mismatched end tag </{name}> for <{open_element.label}>"
                    )
            elif src.startswith("<!--", self.pos):
                self._skip_comment()
            elif src.startswith("<![CDATA[", self.pos):
                stack[-1].children.append(Text(self._read_cdata()))
            elif src.startswith("<?", self.pos):
                self._skip_pi()
            else:
                self.pos += 1
                name, attrs, self_closing = self._read_open_tag()
                child = Element(_SYMBOLS.canonical(name), attrs, [])
                stack[-1].children.append(child)
                if not self_closing:
                    stack.append(child)
        return root


def parse(source: str, strip_whitespace: bool = True) -> Element:
    """Parse an XML document from a string; returns the root element."""
    return _Parser(source, strip_whitespace).parse_document()


def parse_fragment(
    source: str, offset: int = 0, strip_whitespace: bool = True
) -> tuple[Element, int]:
    """Parse a single XML element embedded in surrounding text.

    Starts scanning at *offset* (leading whitespace allowed) and stops
    right after the element's closing tag.  Returns ``(element, end)``
    where ``end`` is the offset just past the element.  Used by the
    update-expression parser for constant element literals
    (``insert <supplier>…</supplier> into …``).
    """
    parser = _Parser(source, strip_whitespace)
    parser.pos = offset
    parser._skip_ws()
    if parser.pos >= parser.n or source[parser.pos] != "<":
        raise XMLSyntaxError("expected an XML element", parser.pos)
    root = parser._parse_root()
    return root, parser.pos


def parse_to_arena(source: str, strip_whitespace: bool = True):
    """Parse straight into a :class:`~repro.xmltree.arena.FrozenDocument`.

    The columnar load path: no intermediate ``Node`` tree is ever
    built — the parser drives the arena's column builder directly, so
    loading a document for the read-mostly serving path costs the
    columns and the text payloads, nothing else.
    """
    from repro.xmltree.arena import FrozenBuilder

    parser = _Parser(source, strip_whitespace)
    parser._skip_misc()
    if parser.pos >= parser.n or source[parser.pos] != "<":
        raise parser._error("expected the root element")
    builder = FrozenBuilder()
    parser._parse_root_arena(builder)
    parser._skip_misc()
    if parser.pos != parser.n:
        raise parser._error("content after the root element")
    return builder.finish()


def parse_file_to_arena(
    path: str, strip_whitespace: bool = True, encoding: str = "utf-8"
):
    """Parse a file straight into a frozen columnar document."""
    with open(path, "r", encoding=encoding) as handle:
        return parse_to_arena(handle.read(), strip_whitespace=strip_whitespace)


def parse_file(path: str, strip_whitespace: bool = True, encoding: str = "utf-8") -> Element:
    """Parse an XML document from a file; returns the root element.

    The whole file is read into memory — this mirrors the DOM-based
    engines the paper contrasts with.  For bounded-memory processing use
    :func:`repro.xmltree.sax.iter_sax_file` instead.
    """
    with open(path, "r", encoding=encoding) as handle:
        return parse(handle.read(), strip_whitespace=strip_whitespace)
