"""The XML tree model used throughout the reproduction.

Design notes (see DESIGN.md §4):

* Nodes carry **no parent pointers**.  The paper's XPath fragment ``X``
  is downward-only, so no evaluator needs to walk upward, and the
  transform algorithms can *share* unchanged subtrees between the input
  and the output tree — exactly the paper's "simply copied to the
  result" without a deep copy.  The destructive update substrate
  (:mod:`repro.updates.apply`) walks from the root carrying the parent
  explicitly instead.
* Transform results are therefore DAG-shaped with respect to the input:
  treat trees handed to the evaluators as immutable.  Code that needs a
  private mutable tree should call :func:`deep_copy` first (this is what
  the copy-and-update baseline does, faithfully reproducing its cost).
* An element's *own text* — the concatenation of its immediate
  :class:`Text` children — is the value used by qualifier comparisons
  (``p = 's'``, ``p < 15`` …).  This matches the streaming algorithm of
  Section 6, whose stack entries store "the PCDATA of text children" of
  the current element, and is applied consistently by every evaluator so
  cross-algorithm equivalence holds.
* Labels are plain ``str`` attributes, but the parsers canonicalize
  them through the process-wide symbol table
  (:mod:`repro.xmltree.symbols`): identical labels share one interned
  string object and a dense int id.  The compiled automaton runtime
  (:mod:`repro.automata.dfa`) keys its memoized transition tables by
  those ids — viable precisely because the paper's NFAs are O(|p|)
  semi-linear, so the per-label transition space stays tiny.
* This object model has a frozen columnar sibling: the read-mostly
  paths run over :class:`repro.xmltree.arena.FrozenDocument`, where a
  subtree is a contiguous pre-order index range instead of a pointer
  graph.  The DAG-shaped sharing above and the arena's range column
  are the same paper idea — a subtree the automaton proves untouched
  is "simply copied to the result" — realized once as a shared
  pointer and once as a raw ``[i, end[i])`` slice; ``freeze``/``thaw``
  convert between the two.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Optional, Union


class Node:
    """Abstract base for tree nodes.  Concrete kinds: Element, Text."""

    __slots__ = ()

    #: Overridden by subclasses.
    is_element = False
    is_text = False


class Text(Node):
    """A text (PCDATA) node."""

    __slots__ = ("value",)

    is_text = True

    def __init__(self, value: str):
        self.value = value

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        shown = self.value if len(self.value) <= 40 else self.value[:37] + "..."
        return f"Text({shown!r})"


class Element(Node):
    """An element node: a label, attributes and an ordered child list."""

    __slots__ = ("label", "attrs", "children")

    is_element = True

    def __init__(
        self,
        label: str,
        attrs: Optional[dict] = None,
        children: Optional[list] = None,
    ):
        self.label = label
        self.attrs: dict[str, str] = attrs if attrs is not None else {}
        self.children: list[Node] = children if children is not None else []

    # ------------------------------------------------------------------
    # Navigation helpers (downward only, matching the fragment X)
    # ------------------------------------------------------------------

    def child_elements(self) -> Iterator["Element"]:
        """Iterate over the element children, in document order."""
        for child in self.children:
            if child.is_element:
                yield child

    def children_labeled(self, label: str) -> Iterator["Element"]:
        """Iterate over element children with the given label."""
        for child in self.children:
            if child.is_element and child.label == label:
                yield child

    def descendants_or_self(self) -> Iterator["Element"]:
        """Iterate over this element and all element descendants, preorder."""
        stack = [self]
        while stack:
            node = stack.pop()
            yield node
            stack.extend(reversed([c for c in node.children if c.is_element]))

    def descendants(self) -> Iterator["Element"]:
        """Iterate over all proper element descendants, preorder."""
        first = True
        for node in self.descendants_or_self():
            if first:
                first = False
                continue
            yield node

    def own_text(self) -> str:
        """Concatenation of the values of immediate text children.

        This is the comparison value used by qualifier tests such as
        ``price < 15`` — see the module docstring for why.
        """
        return "".join(c.value for c in self.children if c.is_text)

    def first(self, label: str) -> Optional["Element"]:
        """The first element child with the given label, or None."""
        for child in self.children_labeled(label):
            return child
        return None

    # ------------------------------------------------------------------
    # Measures
    # ------------------------------------------------------------------

    def size(self) -> int:
        """Total number of nodes (elements and texts) in this subtree."""
        total = 1
        for child in self.children:
            total += child.size() if child.is_element else 1
        return total

    def depth(self) -> int:
        """Height of this subtree (a leaf element has depth 1)."""
        best = 0
        for child in self.children:
            if child.is_element:
                best = max(best, child.depth())
        return best + 1

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Element({self.label!r}, {len(self.attrs)} attrs, {len(self.children)} children)"


# ----------------------------------------------------------------------
# Construction helpers
# ----------------------------------------------------------------------


def element(
    label: str,
    *children: Union[Node, str],
    attrs: Optional[dict] = None,
    **attr_kwargs: str,
) -> Element:
    """Build an :class:`Element` concisely.

    String children become :class:`Text` nodes; keyword arguments become
    attributes (in addition to an optional explicit ``attrs`` dict)::

        element("supplier",
                element("sname", "HP"),
                element("price", "12"),
                country="US")
    """
    merged_attrs = dict(attrs) if attrs else {}
    merged_attrs.update(attr_kwargs)
    kids: list[Node] = []
    for child in children:
        if isinstance(child, str):
            kids.append(Text(child))
        else:
            kids.append(child)
    return Element(label, merged_attrs, kids)


def text(value: str) -> Text:
    """Build a :class:`Text` node."""
    return Text(value)


# ----------------------------------------------------------------------
# Structural operations
# ----------------------------------------------------------------------


def deep_copy(node: Node) -> Node:
    """Return a fully independent copy of the subtree rooted at *node*.

    Implemented iteratively so that very deep documents (the streaming
    experiments generate them) do not hit the recursion limit.
    """
    if node.is_text:
        return Text(node.value)
    root_copy = Element(node.label, dict(node.attrs), [])
    stack: list[tuple[Element, Element]] = [(node, root_copy)]
    while stack:
        source, target = stack.pop()
        for child in source.children:
            if child.is_text:
                target.children.append(Text(child.value))
            else:
                child_copy = Element(child.label, dict(child.attrs), [])
                target.children.append(child_copy)
                stack.append((child, child_copy))
    return root_copy


def deep_equal(a: Node, b: Node) -> bool:
    """Structural equality: same labels, attributes, texts and shape.

    Attribute *order* is irrelevant (attributes are a mapping); child
    order matters (XML is ordered).
    """
    stack = [(a, b)]
    while stack:
        x, y = stack.pop()
        if x.is_text != y.is_text:
            return False
        if x.is_text:
            if x.value != y.value:
                return False
            continue
        if x.label != y.label or x.attrs != y.attrs:
            return False
        if len(x.children) != len(y.children):
            return False
        stack.extend(zip(x.children, y.children))
    return True


def collect_nodes(root: Element) -> list[Element]:
    """All element nodes of the tree in document (preorder) order."""
    return list(root.descendants_or_self())


def node_count(root: Element, label: Optional[str] = None) -> int:
    """Number of element nodes in the tree, optionally of one label."""
    if label is None:
        return sum(1 for _ in root.descendants_or_self())
    return sum(1 for n in root.descendants_or_self() if n.label == label)


def labels_used(root: Element) -> set:
    """The set of element labels occurring in the tree."""
    return {n.label for n in root.descendants_or_self()}


def iter_text_values(root: Element) -> Iterable[str]:
    """All text node values in the subtree, in document order."""
    for node in root.descendants_or_self():
        for child in node.children:
            if child.is_text:
                yield child.value
