"""Reference (specification) semantics for the fragment ``X``.

``evaluate(root, p)`` computes ``r[[p]]`` — the set of element nodes
reachable from the context node via ``p`` — in document order, without
duplicates.  It is deliberately straightforward: this module is the
*oracle* that the selecting/filtering NFAs and every transform algorithm
are validated against, and it doubles as the "native engine" qualifier
backend for ``topDown`` (the role Qizx plays in the paper).

Value semantics for comparisons (``p op c``):

* element nodes contribute their *own text* (concatenated immediate
  text children — see :mod:`repro.xmltree.node`);
* attribute steps contribute the attribute string;
* a string literal compares as a string, a number literal numerically
  (values that do not parse as numbers never match);
* the comparison is existential, as in XPath: true iff *some* selected
  value satisfies it.
"""

from __future__ import annotations

from typing import Iterable, Optional, Union

from repro.xmltree.node import Element
from repro.xpath.ast import (
    AndQual,
    CmpQual,
    LabelQual,
    NotQual,
    OrQual,
    Path,
    PathQual,
    Qual,
    Step,
    TrueQual,
)


def evaluate(context: Element, path: Path) -> list[Element]:
    """Evaluate a selecting path at *context*; document order, deduplicated."""
    frontier: list[Element] = [context]
    for step in path.steps:
        if step.kind == "attr":
            raise ValueError("attribute steps select values, not elements; "
                             "use eval_values() in qualifier context")
        frontier = _apply_step(frontier, step)
    if len(frontier) > 1:
        frontier = _document_order(context, frontier)
    return frontier


def _document_order(context: Element, nodes: list[Element]) -> list[Element]:
    """Sort *nodes* into document (preorder) order below *context*.

    Step application visits parents before expanding them, which is
    set-correct but can interleave branches (e.g. after ``//``); one
    preorder sweep restores the order the spec requires.
    """
    wanted = {id(node) for node in nodes}
    ordered: list[Element] = []
    for candidate in context.descendants_or_self():
        if id(candidate) in wanted:
            ordered.append(candidate)
            if len(ordered) == len(nodes):
                break
    return ordered


def _apply_step(frontier: list[Element], step: Step) -> list[Element]:
    out: list[Element] = []
    seen: set[int] = set()

    def push(node: Element) -> None:
        key = id(node)
        if key not in seen:
            seen.add(key)
            out.append(node)

    if step.kind == "dos":
        for node in frontier:
            for descendant in node.descendants_or_self():
                if _check_quals(descendant, step.quals):
                    push(descendant)
        return out
    if step.kind == "self":
        for node in frontier:
            if _check_quals(node, step.quals):
                push(node)
        return out
    # child axis: label or wildcard
    for node in frontier:
        for child in node.child_elements():
            if step.kind == "label" and child.label != step.name:
                continue
            if _check_quals(child, step.quals):
                push(child)
    return out


def _check_quals(node: Element, quals: Iterable[Qual]) -> bool:
    return all(eval_qualifier(node, q) for q in quals)


def eval_values(context: Element, path: Path) -> list[Union[Element, str]]:
    """Evaluate a qualifier path, which may end in an attribute step.

    Returns element nodes, except that a final ``@a`` step turns each
    reached element into its ``a`` attribute string (elements without
    the attribute contribute nothing).
    """
    steps = path.steps
    attr_name: Optional[str] = None
    if steps and steps[-1].kind == "attr":
        attr_name = steps[-1].name
        path = Path(steps[:-1])
    nodes = evaluate(context, path)
    if attr_name is None:
        return list(nodes)
    return [node.attrs[attr_name] for node in nodes if attr_name in node.attrs]


def compare_value(value: str, op: str, literal: Union[str, float]) -> bool:
    """Compare one node/attribute value against a literal."""
    if isinstance(literal, float):
        try:
            number = float(value)
        except (TypeError, ValueError):
            return False
        left, right = number, literal
    else:
        left, right = value, literal
    if op == "=":
        return left == right
    if op == "!=":
        return left != right
    if op == "<":
        return left < right
    if op == "<=":
        return left <= right
    if op == ">":
        return left > right
    if op == ">=":
        return left >= right
    raise ValueError(f"unknown operator {op!r}")


def eval_qualifier(node: Element, qual: Qual) -> bool:
    """Evaluate a qualifier at a context node (the ``checkp`` oracle)."""
    if isinstance(qual, TrueQual):
        return True
    if isinstance(qual, PathQual):
        return bool(eval_values(node, qual.path))
    if isinstance(qual, CmpQual):
        if qual.path.is_empty():
            return compare_value(node.own_text(), qual.op, qual.value)
        values = eval_values(node, qual.path)
        for value in values:
            text = value if isinstance(value, str) else value.own_text()
            if compare_value(text, qual.op, qual.value):
                return True
        return False
    if isinstance(qual, LabelQual):
        return node.label == qual.label
    if isinstance(qual, AndQual):
        return eval_qualifier(node, qual.left) and eval_qualifier(node, qual.right)
    if isinstance(qual, OrQual):
        return eval_qualifier(node, qual.left) or eval_qualifier(node, qual.right)
    if isinstance(qual, NotQual):
        return not eval_qualifier(node, qual.operand)
    raise TypeError(f"unknown qualifier {qual!r}")
