"""The XPath fragment ``X`` of the paper (Section 2).

Grammar (downward modality only)::

    p ::= ε | l | * | @a | p/p | p//p | p[q]
    q ::= p | p op c | label() = l | q and q | q or q | not(q)

where ``op`` is one of ``= != < <= > >=`` and ``c`` is a string or
number literal.  Attribute steps (``@a``) may appear only as the final
step of a qualifier path — the fragment selects elements, and updates
apply to elements, exactly as in the paper; attributes exist so the
XMark workload qualifiers (``@id = "person10"`` …) are expressible.

Public surface:

* :func:`parse_xpath` — text → :class:`~repro.xpath.ast.Path`.
* :func:`evaluate` / :func:`eval_qualifier` — the reference (spec)
  semantics ``r[[p]]``; this is the oracle every automaton is tested
  against, and the "native engine" qualifier backend for ``topDown``.
* :mod:`repro.xpath.normalize` — the step form ``β1[q1]/…/βk[qk]`` that
  the NFAs are built from, and the Section-5 qualifier normal form that
  ``QualDP`` runs on.
"""

from repro.xpath.ast import (
    AndQual,
    CmpQual,
    LabelQual,
    NotQual,
    OrQual,
    Path,
    PathQual,
    Qual,
    Step,
)
from repro.xpath.evaluator import eval_qualifier, evaluate
from repro.xpath.lexer import XPathSyntaxError
from repro.xpath.parser import parse_xpath

__all__ = [
    "AndQual",
    "CmpQual",
    "LabelQual",
    "NotQual",
    "OrQual",
    "Path",
    "PathQual",
    "Qual",
    "Step",
    "XPathSyntaxError",
    "eval_qualifier",
    "evaluate",
    "parse_xpath",
]
