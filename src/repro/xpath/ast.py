"""AST for the XPath fragment ``X``.

A :class:`Path` is a sequence of :class:`Step` objects.  Step kinds:

=============  =======================================  ===============
kind           surface syntax                           β in the paper
=============  =======================================  ===============
``label``      ``l``                                    label
``wildcard``   ``*``                                    ``*``
``dos``        the gap in ``p1//p2``                    ``//``
``self``       ``.`` (ε)                                (folded away)
``attr``       ``@a`` (qualifier paths only)            —
=============  =======================================  ===============

Each step carries a list of qualifiers (``p[q1][q2]`` parses to one step
with two qualifiers; the normalizer merges them with ``and``).

Qualifier forms mirror the grammar: path existence (:class:`PathQual`),
comparison of a path's value against a constant (:class:`CmpQual`),
``label() = l`` (:class:`LabelQual`) and the boolean connectives.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Union


# ----------------------------------------------------------------------
# Qualifiers
# ----------------------------------------------------------------------


class Qual:
    """Abstract base for qualifier expressions."""

    __slots__ = ()


@dataclass(frozen=True)
class PathQual(Qual):
    """Existence test: the qualifier path selects at least one node."""

    path: "Path"

    def __str__(self) -> str:
        return str(self.path)


#: Comparison operators supported by the fragment.
CMP_OPS = ("=", "!=", "<", "<=", ">", ">=")


@dataclass(frozen=True)
class CmpQual(Qual):
    """``p op c``: some node reached via ``p`` has a value satisfying the
    comparison.  ``path`` may be empty (ε), comparing the context node's
    own text — the normal form ``ε = 's'`` of Section 5.

    ``value`` is a ``str`` (string literal: string comparison) or a
    ``float`` (number literal: numeric comparison, nodes whose text does
    not parse as a number never match).
    """

    path: "Path"
    op: str
    value: Union[str, float]

    def __post_init__(self):
        if self.op not in CMP_OPS:
            raise ValueError(f"unsupported comparison operator {self.op!r}")

    def __str__(self) -> str:
        value = f"'{self.value}'" if isinstance(self.value, str) else f"{self.value:g}"
        prefix = f"{self.path} " if self.path.steps else ". "
        return f"{prefix}{self.op} {value}"


@dataclass(frozen=True)
class LabelQual(Qual):
    """``label() = l``: the context node has label ``l``."""

    label: str

    def __str__(self) -> str:
        return f"label() = {self.label}"


@dataclass(frozen=True)
class AndQual(Qual):
    left: Qual
    right: Qual

    def __str__(self) -> str:
        return f"({self.left} and {self.right})"


@dataclass(frozen=True)
class OrQual(Qual):
    left: Qual
    right: Qual

    def __str__(self) -> str:
        return f"({self.left} or {self.right})"


@dataclass(frozen=True)
class NotQual(Qual):
    operand: Qual

    def __str__(self) -> str:
        return f"not({self.operand})"


#: The always-true qualifier, used for steps without conditions.
@dataclass(frozen=True)
class TrueQual(Qual):
    def __str__(self) -> str:
        return "true"


TRUE = TrueQual()


# ----------------------------------------------------------------------
# Steps and paths
# ----------------------------------------------------------------------

STEP_KINDS = ("label", "wildcard", "dos", "self", "attr")


@dataclass(frozen=True)
class Step:
    """One location step.  ``name`` is set for ``label`` and ``attr``."""

    kind: str
    name: Optional[str] = None
    quals: tuple = field(default_factory=tuple)

    def __post_init__(self):
        if self.kind not in STEP_KINDS:
            raise ValueError(f"unknown step kind {self.kind!r}")
        if self.kind in ("label", "attr") and not self.name:
            raise ValueError(f"{self.kind} step requires a name")

    def with_quals(self, quals: tuple) -> "Step":
        return Step(self.kind, self.name, quals)

    def __str__(self) -> str:
        if self.kind == "label":
            base = self.name
        elif self.kind == "wildcard":
            base = "*"
        elif self.kind == "dos":
            base = "//"  # rendered specially by Path.__str__
        elif self.kind == "self":
            base = "."
        else:
            base = f"@{self.name}"
        return base + "".join(f"[{q}]" for q in self.quals)


@dataclass(frozen=True)
class Path:
    """A sequence of steps.  The empty path is ε (the context node)."""

    steps: tuple = field(default_factory=tuple)

    def is_empty(self) -> bool:
        return not self.steps

    def __str__(self) -> str:
        if not self.steps:
            return "."
        out: list[str] = []
        pending_sep = ""  # separator to place before the next step
        for step in self.steps:
            if step.kind == "dos" and not step.quals:
                pending_sep = "//"
                continue
            out.append(pending_sep + str(step))
            pending_sep = "/"
        if pending_sep == "//":
            # Trailing '//' (path ends in descendant-or-self); render the
            # implicit self step explicitly.
            out.append("//.")
        return "".join(out)


def path(*steps: Step) -> Path:
    """Convenience constructor."""
    return Path(tuple(steps))


def label_step(name: str, *quals: Qual) -> Step:
    return Step("label", name, tuple(quals))


def wildcard_step(*quals: Qual) -> Step:
    return Step("wildcard", None, tuple(quals))


def dos_step() -> Step:
    return Step("dos")


def self_step(*quals: Qual) -> Step:
    return Step("self", None, tuple(quals))


def attr_step(name: str) -> Step:
    return Step("attr", name)
