"""Normalization of ``X`` expressions (Sections 3.4 and 5 of the paper).

Two normal forms are produced here:

**Step form** — every path rewrites to ``β1[q1]/…/βk[qk]`` where each
``βi`` is a label, ``*`` or ``//`` (:func:`normalize_steps`).  Self
steps fold their qualifiers into the preceding step (or into a *context
qualifier* checked at the evaluation root).  The selecting and filtering
NFAs are built from this form, one state per step.

**Qualifier normal form** — every qualifier rewrites so each path step
becomes ``η/p'`` with ``η ∈ {*, //, ε[q]}`` (Section 5's rewriting
rules: ``l → */ε[label()=l]``, ``p[q] → p/ε[q]``,
``p[q1]…[qn] → p[q1∧…∧qn]``, ``p = 's' → p[ε='s']``).  The result is a
DAG of :class:`NQ` expressions, interned in a :class:`QualifierSpace`
so that sub-expressions precede their containing expressions — exactly
the topologically sorted list ``LQ`` that ``QualDP`` (Fig. 7) consumes.

Restrictions enforced here (the paper never exercises these corners and
its NFA construction would mishandle them too): a qualifier attached to
a ``self`` step immediately after ``//`` is rejected for automaton use,
because a qualifier on a looping descendant state would incorrectly
prune continuations at non-matching intermediate nodes.  The reference
evaluator still supports such paths.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Union

from repro.xpath.ast import (
    TRUE,
    AndQual,
    CmpQual,
    LabelQual,
    NotQual,
    OrQual,
    Path,
    PathQual,
    Qual,
    TrueQual,
)


class UnsupportedPathError(ValueError):
    """An ``X`` expression outside the automaton-supported core."""


# ----------------------------------------------------------------------
# Step form
# ----------------------------------------------------------------------

#: β kinds in the step form.
BETA_LABEL = "label"
BETA_WILDCARD = "wildcard"
BETA_DOS = "dos"


@dataclass(frozen=True)
class NormStep:
    """One ``βi[qi]`` of the step form."""

    beta: str                 # BETA_LABEL | BETA_WILDCARD | BETA_DOS
    name: Optional[str]       # label name for BETA_LABEL
    qual: Qual                # merged qualifier (TRUE when absent)

    def matches_label(self, label: str) -> bool:
        """Does this step's test accept a node with the given label?

        ``dos`` steps answer True: their self-loop consumes any label.
        """
        if self.beta == BETA_LABEL:
            return self.name == label
        return True  # wildcard and dos

    def __str__(self) -> str:
        base = {BETA_LABEL: self.name, BETA_WILDCARD: "*", BETA_DOS: "//"}[self.beta]
        if isinstance(self.qual, TrueQual):
            return base
        return f"{base}[{self.qual}]"


def _and(a: Qual, b: Qual) -> Qual:
    if isinstance(a, TrueQual):
        return b
    if isinstance(b, TrueQual):
        return a
    return AndQual(a, b)


def _merge_quals(quals: tuple) -> Qual:
    merged: Qual = TRUE
    for qual in quals:
        merged = _and(merged, qual)
    return merged


def normalize_steps(path: Path) -> tuple:
    """Rewrite *path* to step form.

    Returns ``(context_qual, steps)`` where ``context_qual`` must hold
    at the evaluation root (non-trivial only for paths like
    ``.[q]/a``) and ``steps`` is a list of :class:`NormStep`.

    Raises :class:`UnsupportedPathError` for attribute steps (selecting
    paths never contain them) and for self-step qualifiers directly
    after ``//`` (see the module docstring).
    """
    context_qual: Qual = TRUE
    steps: list[NormStep] = []
    for step in path.steps:
        if step.kind == "attr":
            raise UnsupportedPathError(
                f"attribute step @{step.name} cannot appear in a selecting path"
            )
        if step.kind == "self":
            qual = _merge_quals(step.quals)
            if isinstance(qual, TrueQual):
                continue
            if not steps:
                context_qual = _and(context_qual, qual)
            elif steps[-1].beta == BETA_DOS:
                raise UnsupportedPathError(
                    "a qualifier on '.' directly after '//' is outside the "
                    "automaton-supported core (its truth would be checked on "
                    "the looping descendant state)"
                )
            else:
                last = steps[-1]
                steps[-1] = NormStep(last.beta, last.name, _and(last.qual, qual))
            continue
        if step.kind == "dos":
            if steps and steps[-1].beta == BETA_DOS:
                continue  # '…////…' collapses: // is idempotent
            steps.append(NormStep(BETA_DOS, None, _merge_quals(step.quals)))
            continue
        beta = BETA_LABEL if step.kind == "label" else BETA_WILDCARD
        steps.append(NormStep(beta, step.name, _merge_quals(step.quals)))
    return context_qual, steps


# ----------------------------------------------------------------------
# Qualifier normal form (the NQ expression DAG)
# ----------------------------------------------------------------------


class NQ:
    """Base class of normalized qualifier expressions.

    Instances are interned by :class:`QualifierSpace`; the ``key()``
    of an expression identifies it structurally (children by id).
    """

    __slots__ = ("nq_id",)

    def key(self, ids: tuple) -> tuple:
        return (type(self).__name__, *self._fields(), *ids)

    def _fields(self) -> tuple:
        return ()

    def children(self) -> tuple:
        return ()


class NTrue(NQ):
    """ε — always true (QualDP case 1)."""

    __slots__ = ()


class NLabel(NQ):
    """``label() = l`` (case 6)."""

    __slots__ = ("label",)

    def __init__(self, label: str):
        self.label = label

    def _fields(self) -> tuple:
        return (self.label,)


class NText(NQ):
    """``ε op c`` — compare the context node's own text (case 5)."""

    __slots__ = ("op", "value")

    def __init__(self, op: str, value: Union[str, float]):
        self.op = op
        self.value = value

    def _fields(self) -> tuple:
        return (self.op, self.value)


class NAttr(NQ):
    """``@a`` existence, or ``@a op c`` when ``op`` is set (extension:
    the paper's workload qualifiers use attributes, e.g. U2 and U10)."""

    __slots__ = ("name", "op", "value")

    def __init__(self, name: str, op: Optional[str] = None, value=None):
        self.name = name
        self.op = op
        self.value = value

    def _fields(self) -> tuple:
        return (self.name, self.op, self.value)


class NChild(NQ):
    """``*/p`` — some child satisfies ``p``: ``csat(p)`` (case 3)."""

    __slots__ = ("inner",)

    def __init__(self, inner: NQ):
        self.inner = inner

    def children(self) -> tuple:
        return (self.inner,)


class NDesc(NQ):
    """``//p`` — self or some descendant satisfies ``p`` (case 4)."""

    __slots__ = ("inner",)

    def __init__(self, inner: NQ):
        self.inner = inner

    def children(self) -> tuple:
        return (self.inner,)


class NSeq(NQ):
    """``ε[q]/p`` — both ``q`` and ``p`` hold here (case 2)."""

    __slots__ = ("cond", "rest")

    def __init__(self, cond: NQ, rest: NQ):
        self.cond = cond
        self.rest = rest

    def children(self) -> tuple:
        return (self.cond, self.rest)


class NAnd(NQ):
    __slots__ = ("left", "right")

    def __init__(self, left: NQ, right: NQ):
        self.left = left
        self.right = right

    def children(self) -> tuple:
        return (self.left, self.right)


class NOr(NQ):
    __slots__ = ("left", "right")

    def __init__(self, left: NQ, right: NQ):
        self.left = left
        self.right = right

    def children(self) -> tuple:
        return (self.left, self.right)


class NNot(NQ):
    __slots__ = ("inner",)

    def __init__(self, inner: NQ):
        self.inner = inner

    def children(self) -> tuple:
        return (self.inner,)


class QualifierSpace:
    """Interning table for :class:`NQ` expressions — the list ``LQ``.

    Expressions are interned bottom-up, so a child's ``nq_id`` is always
    smaller than its parent's: iterating ``self.expressions`` in order
    is exactly the topologically sorted traversal QualDP requires.
    Structurally equal sub-expressions are shared (as in Example 5.1,
    where ``supplier`` sub-qualifiers are listed once).
    """

    def __init__(self):
        self.expressions: list[NQ] = []
        self._memo: dict = {}

    def intern(self, expr: NQ) -> NQ:
        child_ids = tuple(c.nq_id for c in expr.children())
        key = expr.key(child_ids)
        found = self._memo.get(key)
        if found is not None:
            return found
        expr.nq_id = len(self.expressions)
        self.expressions.append(expr)
        self._memo[key] = expr
        return expr

    def __len__(self) -> int:
        return len(self.expressions)

    # -- constructors (intern as they build) ---------------------------

    def true(self) -> NQ:
        return self.intern(NTrue())

    def nq_label(self, label: str) -> NQ:
        return self.intern(NLabel(label))

    def nq_text(self, op: str, value) -> NQ:
        return self.intern(NText(op, value))

    def nq_attr(self, name: str, op: Optional[str] = None, value=None) -> NQ:
        return self.intern(NAttr(name, op, value))

    def nq_child(self, inner: NQ) -> NQ:
        return self.intern(NChild(inner))

    def nq_desc(self, inner: NQ) -> NQ:
        return self.intern(NDesc(inner))

    def nq_seq(self, cond: NQ, rest: NQ) -> NQ:
        if isinstance(cond, NTrue):
            return rest
        if isinstance(rest, NTrue):
            return cond
        return self.intern(NSeq(cond, rest))

    def nq_and(self, left: NQ, right: NQ) -> NQ:
        if isinstance(left, NTrue):
            return right
        if isinstance(right, NTrue):
            return left
        return self.intern(NAnd(left, right))

    def nq_or(self, left: NQ, right: NQ) -> NQ:
        return self.intern(NOr(left, right))

    def nq_not(self, inner: NQ) -> NQ:
        return self.intern(NNot(inner))

    # -- translation from the qualifier AST -----------------------------

    def normalize_qual(self, qual: Qual) -> NQ:
        """Translate a qualifier AST into normal form (interned)."""
        if isinstance(qual, TrueQual):
            return self.true()
        if isinstance(qual, LabelQual):
            return self.nq_label(qual.label)
        if isinstance(qual, AndQual):
            return self.nq_and(self.normalize_qual(qual.left), self.normalize_qual(qual.right))
        if isinstance(qual, OrQual):
            return self.nq_or(self.normalize_qual(qual.left), self.normalize_qual(qual.right))
        if isinstance(qual, NotQual):
            return self.nq_not(self.normalize_qual(qual.operand))
        if isinstance(qual, PathQual):
            return self.normalize_path(qual.path, self.true())
        if isinstance(qual, CmpQual):
            steps = qual.path.steps
            if steps and steps[-1].kind == "attr":
                terminal = self.nq_attr(steps[-1].name, qual.op, qual.value)
                return self.normalize_path(Path(steps[:-1]), terminal)
            terminal = self.nq_text(qual.op, qual.value)
            return self.normalize_path(qual.path, terminal)
        raise TypeError(f"unknown qualifier {qual!r}")

    def normalize_path(self, path: Path, terminal: NQ) -> NQ:
        """Normalize a qualifier path, ending in *terminal* at the nodes
        the path reaches.  Processes steps right-to-left, applying the
        Section-5 rewriting rules."""
        expr = terminal
        last_index = len(path.steps) - 1
        for index in range(last_index, -1, -1):
            step = path.steps[index]
            if step.kind == "attr":
                if index != last_index:
                    raise UnsupportedPathError(
                        f"attribute step @{step.name} must be the final step"
                    )
                # A bare attribute existence path (PathQual ending in @a).
                expr = self.nq_seq(self.nq_attr(step.name), expr)
                continue
            quals_nq = self.true()
            for q in step.quals:
                quals_nq = self.nq_and(quals_nq, self.normalize_qual(q))
            if step.kind == "self":
                expr = self.nq_seq(quals_nq, expr)
            elif step.kind == "dos":
                expr = self.nq_desc(self.nq_seq(quals_nq, expr))
            elif step.kind == "wildcard":
                expr = self.nq_child(self.nq_seq(quals_nq, expr))
            else:  # label: l → */ε[label()=l]
                body = self.nq_seq(self.nq_label(step.name), self.nq_seq(quals_nq, expr))
                expr = self.nq_child(body)
        return expr
