"""Recursive-descent parser for the XPath fragment ``X``.

Grammar (see the package docstring)::

    xpath    := ['/' | '//'] relpath | '.'
    relpath  := step (('/' | '//') step)*
    step     := ('.' | '*' | NAME | '@' NAME) qualifier*
    qualifier:= '[' or_expr ']'
    or_expr  := and_expr (('or'|'∨') and_expr)*
    and_expr := unary (('and'|'∧') unary)*
    unary    := ('not'|'¬') '(' or_expr ')' | '(' or_expr ')' | atom
    atom     := 'label' '(' ')' '=' NAME-or-STRING
              | xpath [op literal]
              | literal op xpath        (reversed comparison)
    op       := '=' | '!=' | '<' | '<=' | '>' | '>='
    literal  := STRING | NUMBER

A leading ``/`` is allowed and ignored (paths are evaluated at the
document root in the paper's transform queries); a leading ``//``
contributes a descendant-or-self step.
"""

from __future__ import annotations

from typing import Union

from repro.xpath import lexer as lx
from repro.xpath.ast import (
    AndQual,
    CmpQual,
    LabelQual,
    NotQual,
    OrQual,
    Path,
    PathQual,
    Qual,
    Step,
)
from repro.xpath.lexer import TokenStream, XPathSyntaxError, tokenize


def parse_xpath(source: str) -> Path:
    """Parse an ``X`` expression from text."""
    stream = TokenStream(tokenize(source))
    path = parse_path(stream)
    if not stream.done():
        raise XPathSyntaxError(
            f"unexpected trailing input {stream.current.value!r}", stream.current.pos
        )
    return path


def parse_path(stream: TokenStream) -> Path:
    """Parse a path starting at the current token (shared with the
    update/query parsers, which embed paths in larger syntax)."""
    steps: list[Step] = []

    def consume_separators(required: bool) -> bool:
        """Eat a run of '/' and '//' (runs collapse: '////' ≡ '//').

        Returns True when another step follows; appends at most one
        descendant-or-self pseudo-step.
        """
        saw_any = False
        saw_dos = False
        while True:
            if stream.accept(lx.DSLASH):
                saw_any = saw_dos = True
            elif stream.accept(lx.SLASH):
                saw_any = True
            else:
                break
        if saw_dos:
            steps.append(Step("dos"))
        if required and not saw_any:
            return False
        return True

    consume_separators(required=False)  # tolerated absolute prefix
    steps.extend(_parse_step(stream))
    while consume_separators(required=True):
        steps.extend(_parse_step(stream))
    # Drop no-op self steps without qualifiers (a/./b == a/b).
    cleaned = [s for s in steps if not (s.kind == "self" and not s.quals)]
    return Path(tuple(cleaned))


def _parse_step(stream: TokenStream) -> list[Step]:
    token = stream.current
    if token.type == lx.DOT:
        stream.advance()
        base = Step("self")
    elif token.type == lx.STAR:
        stream.advance()
        base = Step("wildcard")
    elif token.type == lx.AT:
        stream.advance()
        name = stream.expect(lx.NAME).value
        base = Step("attr", name)
    elif token.type == lx.NAME:
        stream.advance()
        base = Step("label", token.value)
    else:
        raise XPathSyntaxError(f"expected a step, found {token.value!r}", token.pos)
    quals: list[Qual] = []
    while stream.current.type == lx.LBRACKET:
        stream.advance()
        quals.append(parse_qualifier(stream))
        stream.expect(lx.RBRACKET)
    if quals:
        base = base.with_quals(tuple(quals))
    return [base]


def parse_qualifier(stream: TokenStream) -> Qual:
    """Parse a qualifier body (the part between ``[`` and ``]``)."""
    return _parse_or(stream)


def _parse_or(stream: TokenStream) -> Qual:
    left = _parse_and(stream)
    while stream.accept(lx.OR):
        right = _parse_and(stream)
        left = OrQual(left, right)
    return left


def _parse_and(stream: TokenStream) -> Qual:
    left = _parse_unary(stream)
    while stream.accept(lx.AND):
        right = _parse_unary(stream)
        left = AndQual(left, right)
    return left


def _parse_unary(stream: TokenStream) -> Qual:
    if stream.accept(lx.NOT):
        stream.expect(lx.LPAREN)
        inner = _parse_or(stream)
        stream.expect(lx.RPAREN)
        return NotQual(inner)
    if stream.current.type == lx.LPAREN:
        stream.advance()
        inner = _parse_or(stream)
        stream.expect(lx.RPAREN)
        return inner
    return _parse_atom(stream)


def _parse_literal(stream: TokenStream) -> Union[str, float]:
    token = stream.current
    if token.type == lx.STRING:
        stream.advance()
        return token.value
    if token.type == lx.NUMBER:
        stream.advance()
        return float(token.value)
    raise XPathSyntaxError(f"expected a literal, found {token.value!r}", token.pos)


_REVERSED_OPS = {"=": "=", "!=": "!=", "<": ">", "<=": ">=", ">": "<", ">=": "<="}


def _parse_atom(stream: TokenStream) -> Qual:
    token = stream.current
    # label() = l
    if token.type == lx.NAME and token.value == "label" and stream.peek().type == lx.LPAREN:
        stream.advance()
        stream.expect(lx.LPAREN)
        stream.expect(lx.RPAREN)
        op = stream.expect(lx.OP)
        if op.value != "=":
            raise XPathSyntaxError("label() supports only '='", op.pos)
        name_token = stream.current
        if name_token.type in (lx.NAME, lx.STRING):
            stream.advance()
        else:
            raise XPathSyntaxError("expected a label after label() =", name_token.pos)
        return LabelQual(name_token.value)
    # Reversed comparison: literal op path.
    if token.type in (lx.STRING, lx.NUMBER):
        value = _parse_literal(stream)
        op = stream.expect(lx.OP).value
        path = parse_path(stream)
        return CmpQual(path, _REVERSED_OPS[op], value)
    # Path, optionally compared against a literal.
    path = parse_path(stream)
    if stream.current.type == lx.OP:
        op = stream.advance().value
        value = _parse_literal(stream)
        return CmpQual(path, op, value)
    return PathQual(path)


def validate_path(path: Path, in_qualifier: bool = False) -> None:
    """Enforce the fragment's shape constraints.

    * ``attr`` steps only in qualifier paths, only as the final step;
    * selecting paths (``in_qualifier=False``) contain no attr steps.

    Raises :class:`XPathSyntaxError` on violation.
    """
    for index, step in enumerate(path.steps):
        if step.kind == "attr":
            if not in_qualifier:
                raise XPathSyntaxError(
                    f"attribute step @{step.name} not allowed in a selecting path", 0
                )
            if index != len(path.steps) - 1:
                raise XPathSyntaxError(
                    f"attribute step @{step.name} must be the final step", 0
                )
        for qual in step.quals:
            _validate_qual(qual)


def _validate_qual(qual: Qual) -> None:
    if isinstance(qual, (PathQual, CmpQual)):
        validate_path(qual.path, in_qualifier=True)
    elif isinstance(qual, (AndQual, OrQual)):
        _validate_qual(qual.left)
        _validate_qual(qual.right)
    elif isinstance(qual, NotQual):
        _validate_qual(qual.operand)
