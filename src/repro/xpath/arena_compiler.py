"""Qualifier compilation for the columnar arena: a ``Qual`` AST becomes
a closure ``fn(arena, i) -> bool`` over pre-order indices.

The arena twin of :mod:`repro.xpath.compiler`, with identical semantics
(the arena property tests hold the three evaluators —
``eval_qualifier``, the Node closures, and these — together on random
documents):

* element values are the arena's precomputed **own-text column** — a
  ``price < 15`` check is one list index plus a comparison, no child
  scan;
* a child step scans the element's children by hopping pre-order
  ranges (``j = end[j]``); a descendant step scans the contiguous
  ``range(i, end[i])`` slice — both are int loops with no per-node
  allocation;
* label tests compare interned **symbol ids**, never strings;
* number literals never match non-numeric text, comparisons are
  existential, attribute steps are final-only.

The one intentional divergence mirrors the Node compiler's: a
mid-path attribute step (which the reference evaluator rejects *at
check time*) compiles to a closure that thaws the context node and
defers to ``eval_qualifier``, so the error surfaces at the same moment
with the same message.
"""

from __future__ import annotations

from typing import Callable

from repro.xmltree.arena import FrozenDocument
from repro.xmltree.symbols import SymbolTable, global_symbols
from repro.xpath.ast import (
    AndQual,
    CmpQual,
    LabelQual,
    NotQual,
    OrQual,
    PathQual,
    Qual,
    TrueQual,
)
from repro.xpath.compiler import _compile_compare
from repro.xpath.evaluator import eval_qualifier

__all__ = ["compile_qualifier_arena"]

#: A compiled arena qualifier: truth at pre-order index *i*.
ArenaCheck = Callable[[FrozenDocument, int], bool]


def _always(arena: FrozenDocument, i: int) -> bool:
    return True


def compile_qualifier_arena(
    qual: Qual, symbols: SymbolTable = None
) -> ArenaCheck:
    """Compile *qual* to an arena closure with ``eval_qualifier``
    semantics.  *symbols* must be the table the target arenas intern
    through (the process-wide default for every built-in load path)."""
    if symbols is None:
        symbols = global_symbols()
    if isinstance(qual, TrueQual):
        return _always
    if isinstance(qual, LabelQual):
        label_sym = symbols.intern(qual.label)

        def check_label(arena, i, label_sym=label_sym):
            return arena.sym[i] == label_sym

        return check_label
    if isinstance(qual, AndQual):
        left = compile_qualifier_arena(qual.left, symbols)
        right = compile_qualifier_arena(qual.right, symbols)
        return lambda arena, i: left(arena, i) and right(arena, i)
    if isinstance(qual, OrQual):
        left = compile_qualifier_arena(qual.left, symbols)
        right = compile_qualifier_arena(qual.right, symbols)
        return lambda arena, i: left(arena, i) or right(arena, i)
    if isinstance(qual, NotQual):
        inner = compile_qualifier_arena(qual.operand, symbols)
        return lambda arena, i: not inner(arena, i)
    if isinstance(qual, PathQual):
        return _compile_path_qual(qual, symbols)
    if isinstance(qual, CmpQual):
        return _compile_cmp_qual(qual, symbols)
    raise TypeError(f"unknown qualifier {qual!r}")


# ----------------------------------------------------------------------
# Path existence and comparisons
# ----------------------------------------------------------------------


def _compile_path_qual(qual: PathQual, symbols: SymbolTable) -> ArenaCheck:
    steps = qual.path.steps
    if steps and steps[-1].kind == "attr":
        name = steps[-1].name

        def terminal(arena, i, name=name):
            return arena.attr(i, name) is not None

        steps = steps[:-1]
    else:
        terminal = _always
    return _compile_steps(steps, terminal, qual, symbols)


def _compile_cmp_qual(qual: CmpQual, symbols: SymbolTable) -> ArenaCheck:
    cmp_text = _compile_compare(qual.op, qual.value)
    steps = qual.path.steps
    if not steps:
        return lambda arena, i: cmp_text(arena.payload[i])
    if steps[-1].kind == "attr":
        name = steps[-1].name

        def terminal(arena, i, name=name, cmp_text=cmp_text):
            value = arena.attr(i, name)
            return value is not None and cmp_text(value)

        steps = steps[:-1]
    else:
        terminal = lambda arena, i, cmp_text=cmp_text: cmp_text(arena.payload[i])  # noqa: E731
    return _compile_steps(steps, terminal, qual, symbols)


# ----------------------------------------------------------------------
# Step chains (right-to-left, existential)
# ----------------------------------------------------------------------


def _compile_steps(
    steps: tuple, terminal: ArenaCheck, origin: Qual, symbols: SymbolTable
) -> ArenaCheck:
    """Existence of an index reachable via *steps* satisfying
    *terminal* (order and duplicates are irrelevant for existence)."""
    fn = terminal
    for step in reversed(steps):
        if step.kind == "attr":
            # Mid-path attribute step: keep the reference evaluator's
            # check-time error, message and all, by deferring to it on
            # the thawed context node.
            def check_deferred(arena, i, origin=origin):
                from repro.xmltree.arena import thaw

                return eval_qualifier(thaw(arena, i), origin)

            return check_deferred
        quals = tuple(compile_qualifier_arena(q, symbols) for q in step.quals)
        fn = _compile_step(step.kind, step.name, quals, fn, symbols)
    return fn


def _compile_step(
    kind: str, name, quals: tuple, rest: ArenaCheck, symbols: SymbolTable
) -> ArenaCheck:
    if kind == "self":
        if not quals:
            return rest

        def check_self(arena, i, quals=quals, rest=rest):
            for q in quals:
                if not q(arena, i):
                    return False
            return rest(arena, i)

        return check_self
    if kind == "dos":
        if not quals:

            def check_dos_fast(arena, i, rest=rest):
                sym = arena.sym
                for j in range(i, arena.end[i]):
                    if sym[j] >= 0 and rest(arena, j):
                        return True
                return False

            return check_dos_fast

        def check_dos(arena, i, quals=quals, rest=rest):
            sym = arena.sym
            for j in range(i, arena.end[i]):
                if sym[j] < 0:
                    continue
                for q in quals:
                    if not q(arena, j):
                        break
                else:
                    if rest(arena, j):
                        return True
            return False

        return check_dos
    if kind == "label":
        label_sym = symbols.intern(name)

        def check_label(arena, i, label_sym=label_sym, quals=quals, rest=rest):
            sym = arena.sym
            end = arena.end
            j = i + 1
            limit = end[i]
            while j < limit:
                if sym[j] == label_sym:
                    for q in quals:
                        if not q(arena, j):
                            break
                    else:
                        if rest(arena, j):
                            return True
                j = end[j]
            return False

        return check_label
    # wildcard

    def check_wild(arena, i, quals=quals, rest=rest):
        sym = arena.sym
        end = arena.end
        j = i + 1
        limit = end[i]
        while j < limit:
            if sym[j] >= 0:
                for q in quals:
                    if not q(arena, j):
                        break
                else:
                    if rest(arena, j):
                        return True
            j = end[j]
        return False

    return check_wild
