"""Qualifier compilation: turn a :class:`~repro.xpath.ast.Qual` AST
into a plain Python closure ``fn(node) -> bool``.

The reference :func:`~repro.xpath.evaluator.eval_qualifier` re-dispatches
on AST node types and re-interprets the qualifier path on every call —
fine for an oracle, wasteful for the native ``checkp`` that ``topDown``
may invoke at every candidate node.  The compiled form does the
dispatch once, at automaton-build time: each AST node becomes one
closure, paths become nested existential scans built right-to-left, and
comparisons specialize on the literal's type up front.  The lazy DFA
(:mod:`repro.automata.dfa`) compiles every qualifier-bearing state's
``Qual`` exactly once and reuses the closure for the life of the
automaton.

Semantics are *identical* to ``eval_qualifier`` (the property tests in
``tests/test_dfa_properties.py`` hold them together): existential
comparisons over the nodes a qualifier path reaches, element values are
own-text, attribute steps are final-only, number literals never match
non-numeric text.  The one intentional difference: qualifier paths that
the reference evaluator would reject *at check time* (an attribute step
in the middle of a path) compile to a closure that defers to the
reference evaluator, so the error surfaces at the same moment it always
did.
"""

from __future__ import annotations

from typing import Callable

from repro.xmltree.node import Element
from repro.xpath.ast import (
    AndQual,
    CmpQual,
    LabelQual,
    NotQual,
    OrQual,
    Path,
    PathQual,
    Qual,
    TrueQual,
)
from repro.xpath.evaluator import compare_value, eval_qualifier

__all__ = ["compile_qualifier"]

#: A compiled qualifier: the truth of the qualifier at a context node.
QualCheck = Callable[[Element], bool]


def _always(node: Element) -> bool:
    return True


def compile_qualifier(qual: Qual) -> QualCheck:
    """Compile *qual* to a closure with ``eval_qualifier`` semantics."""
    if isinstance(qual, TrueQual):
        return _always
    if isinstance(qual, LabelQual):
        label = qual.label

        def check_label(node: Element, label=label) -> bool:
            return node.label == label

        return check_label
    if isinstance(qual, AndQual):
        left, right = compile_qualifier(qual.left), compile_qualifier(qual.right)
        return lambda node: left(node) and right(node)
    if isinstance(qual, OrQual):
        left, right = compile_qualifier(qual.left), compile_qualifier(qual.right)
        return lambda node: left(node) or right(node)
    if isinstance(qual, NotQual):
        inner = compile_qualifier(qual.operand)
        return lambda node: not inner(node)
    if isinstance(qual, PathQual):
        return _compile_path_qual(qual)
    if isinstance(qual, CmpQual):
        return _compile_cmp_qual(qual)
    raise TypeError(f"unknown qualifier {qual!r}")


# ----------------------------------------------------------------------
# Path existence and comparisons
# ----------------------------------------------------------------------


def _compile_path_qual(qual: PathQual) -> QualCheck:
    steps = qual.path.steps
    if steps and steps[-1].kind == "attr":
        name = steps[-1].name
        terminal = lambda node, name=name: name in node.attrs  # noqa: E731
        steps = steps[:-1]
    else:
        terminal = _always
    return _compile_steps(steps, terminal, qual)


def _compile_cmp_qual(qual: CmpQual) -> QualCheck:
    cmp_text = _compile_compare(qual.op, qual.value)
    steps = qual.path.steps
    if not steps:
        return lambda node: cmp_text(node.own_text())
    if steps[-1].kind == "attr":
        name = steps[-1].name

        def terminal(node: Element, name=name, cmp_text=cmp_text) -> bool:
            value = node.attrs.get(name)
            return value is not None and cmp_text(value)

        steps = steps[:-1]
    else:
        terminal = lambda node, cmp_text=cmp_text: cmp_text(node.own_text())  # noqa: E731
    return _compile_steps(steps, terminal, qual)


def _compile_compare(op: str, literal) -> Callable[[str], bool]:
    """Specialize ``compare_value`` on the literal's type and operator."""
    if isinstance(literal, float):
        if op == "=":
            return lambda text: _as_float(text) == literal
        if op == "!=":
            num_ne = lambda text: _as_float(text) is not None and _as_float(text) != literal  # noqa: E731
            return num_ne
        if op == "<":
            return lambda text: _lt(_as_float(text), literal)
        if op == "<=":
            return lambda text: _le(_as_float(text), literal)
        if op == ">":
            return lambda text: _lt_rev(literal, _as_float(text))
        if op == ">=":
            return lambda text: _le_rev(literal, _as_float(text))
    else:
        if op == "=":
            return lambda text: text == literal
        if op == "!=":
            return lambda text: text != literal
        if op == "<":
            return lambda text: text < literal
        if op == "<=":
            return lambda text: text <= literal
        if op == ">":
            return lambda text: text > literal
        if op == ">=":
            return lambda text: text >= literal
    # Unknown operators are rejected at AST construction; fall back for
    # exotic hand-built values.
    return lambda text: compare_value(text, op, literal)


def _as_float(text):
    try:
        return float(text)
    except (TypeError, ValueError):
        return None


def _lt(num, literal) -> bool:
    return num is not None and num < literal


def _le(num, literal) -> bool:
    return num is not None and num <= literal


def _lt_rev(literal, num) -> bool:
    return num is not None and literal < num


def _le_rev(literal, num) -> bool:
    return num is not None and literal <= num


# ----------------------------------------------------------------------
# Step chains (right-to-left, existential)
# ----------------------------------------------------------------------


def _compile_steps(steps: tuple, terminal: QualCheck, origin: Qual) -> QualCheck:
    """Existence of a node reachable via *steps* satisfying *terminal*.

    Order and duplicates are irrelevant for existence, so no
    document-order pass or dedup is compiled in.
    """
    fn = terminal
    for step in reversed(steps):
        if step.kind == "attr":
            # A mid-path attribute step: the reference evaluator raises
            # when (and only when) the qualifier is actually checked —
            # defer to it so the error keeps its timing.
            return lambda node, origin=origin: eval_qualifier(node, origin)
        quals = tuple(compile_qualifier(q) for q in step.quals)
        fn = _compile_step(step.kind, step.name, quals, fn)
    return fn


def _compile_step(kind: str, name, quals: tuple, rest: QualCheck) -> QualCheck:
    if kind == "self":
        if not quals:
            return rest

        def check_self(node: Element, quals=quals, rest=rest) -> bool:
            for q in quals:
                if not q(node):
                    return False
            return rest(node)

        return check_self
    if kind == "dos":

        def check_dos(node: Element, quals=quals, rest=rest) -> bool:
            for cand in node.descendants_or_self():
                for q in quals:
                    if not q(cand):
                        break
                else:
                    if rest(cand):
                        return True
            return False

        return check_dos
    if kind == "label":

        def check_label(node: Element, name=name, quals=quals, rest=rest) -> bool:
            for child in node.children:
                if not child.is_element or child.label != name:
                    continue
                for q in quals:
                    if not q(child):
                        break
                else:
                    if rest(child):
                        return True
            return False

        return check_label
    # wildcard

    def check_wild(node: Element, quals=quals, rest=rest) -> bool:
        for child in node.children:
            if not child.is_element:
                continue
            for q in quals:
                if not q(child):
                    break
            else:
                if rest(child):
                    return True
        return False

    return check_wild
