"""Tokenizer for the XPath fragment ``X`` (and update/transform syntax).

Also used by the update-expression and transform-query parsers, which
share the same token alphabet plus a few keywords.

The paper writes boolean connectives as ``∧ ∨ ¬``; queries in Fig. 11
use ``and``/``not(…)``.  Both spellings are accepted.
"""

from __future__ import annotations

from typing import Optional


class XPathSyntaxError(ValueError):
    """Raised on malformed XPath / update / transform-query text."""

    def __init__(self, message: str, pos: int):
        super().__init__(f"{message} (at offset {pos})")
        self.pos = pos


# Token types.
NAME = "NAME"
STRING = "STRING"
NUMBER = "NUMBER"
SLASH = "SLASH"          # /
DSLASH = "DSLASH"        # //
LBRACKET = "LBRACKET"    # [
RBRACKET = "RBRACKET"    # ]
LPAREN = "LPAREN"
RPAREN = "RPAREN"
AT = "AT"                # @
DOT = "DOT"              # .
STAR = "STAR"            # *
OP = "OP"                # = != < <= > >=
AND = "AND"
OR = "OR"
NOT = "NOT"
COMMA = "COMMA"
DOLLAR = "DOLLAR"        # $ (used by the transform/user-query parsers)
ASSIGN = "ASSIGN"        # :=
LBRACE = "LBRACE"        # { (element templates in user queries)
RBRACE = "RBRACE"        # }
SEMICOLON = "SEMICOLON"  # ; (XQuery function declarations)
EOF = "EOF"


class Token:
    __slots__ = ("type", "value", "pos")

    def __init__(self, type_: str, value: str, pos: int):
        self.type = type_
        self.value = value
        self.pos = pos

    def __repr__(self) -> str:  # pragma: no cover
        return f"Token({self.type}, {self.value!r})"


_SYMBOL_ALIASES = {"∧": AND, "∨": OR, "¬": NOT}
_WORD_TOKENS = {"and": AND, "or": OR, "not": NOT}


def _is_name_start(ch: str) -> bool:
    return ch.isalpha() or ch == "_"


def _is_name_char(ch: str) -> bool:
    return ch.isalnum() or ch in "_-"


def _scan_name(source: str, start: int) -> int:
    """End offset of a name starting at *start*.

    Names may contain ``:`` (namespace-style prefixes: ``local:apply``,
    ``fn:doc``) — but a ``:`` followed by ``=`` belongs to the ``:=``
    token, and a trailing ``:`` is never part of the name.
    """
    n = len(source)
    i = start + 1
    while i < n:
        ch = source[i]
        if _is_name_char(ch):
            i += 1
            continue
        if (
            ch == ":"
            and i + 1 < n
            and source[i + 1] != "="
            and _is_name_char(source[i + 1])
        ):
            i += 2  # the ':' and the first char after it
            continue
        break
    return i


def tokenize(source: str, keywords: Optional[set] = None) -> list[Token]:
    """Tokenize *source*; ``keywords`` names stay NAME tokens but the
    caller may match on their value (used by the query parsers).
    """
    tokens: list[Token] = []
    i = 0
    n = len(source)
    while i < n:
        ch = source[i]
        if ch in " \t\r\n":
            i += 1
            continue
        if ch in _SYMBOL_ALIASES:
            tokens.append(Token(_SYMBOL_ALIASES[ch], ch, i))
            i += 1
            continue
        if ch == "/":
            if source.startswith("//", i):
                tokens.append(Token(DSLASH, "//", i))
                i += 2
            else:
                tokens.append(Token(SLASH, "/", i))
                i += 1
            continue
        if ch == "[":
            tokens.append(Token(LBRACKET, ch, i))
            i += 1
            continue
        if ch == "]":
            tokens.append(Token(RBRACKET, ch, i))
            i += 1
            continue
        if ch == "(":
            tokens.append(Token(LPAREN, ch, i))
            i += 1
            continue
        if ch == ")":
            tokens.append(Token(RPAREN, ch, i))
            i += 1
            continue
        if ch == "@":
            tokens.append(Token(AT, ch, i))
            i += 1
            continue
        if ch == ",":
            tokens.append(Token(COMMA, ch, i))
            i += 1
            continue
        if ch == "$":
            tokens.append(Token(DOLLAR, ch, i))
            i += 1
            continue
        if ch == "{":
            tokens.append(Token(LBRACE, ch, i))
            i += 1
            continue
        if ch == "}":
            tokens.append(Token(RBRACE, ch, i))
            i += 1
            continue
        if ch == ";":
            tokens.append(Token(SEMICOLON, ch, i))
            i += 1
            continue
        if ch == "*":
            tokens.append(Token(STAR, ch, i))
            i += 1
            continue
        if ch == ".":
            tokens.append(Token(DOT, ch, i))
            i += 1
            continue
        if source.startswith(":=", i):
            tokens.append(Token(ASSIGN, ":=", i))
            i += 2
            continue
        if ch in "=<>!":
            if source.startswith(("<=", ">=", "!="), i):
                tokens.append(Token(OP, source[i : i + 2], i))
                i += 2
            elif ch == "!":
                raise XPathSyntaxError("expected '!='", i)
            else:
                tokens.append(Token(OP, ch, i))
                i += 1
            continue
        if ch in "\"'":
            end = source.find(ch, i + 1)
            if end == -1:
                raise XPathSyntaxError("unterminated string literal", i)
            tokens.append(Token(STRING, source[i + 1 : end], i))
            i = end + 1
            continue
        if ch.isdigit():
            j = i + 1
            while j < n and (source[j].isdigit() or source[j] == "."):
                j += 1
            tokens.append(Token(NUMBER, source[i:j], i))
            i = j
            continue
        if _is_name_start(ch):
            j = _scan_name(source, i)
            word = source[i:j]
            word_type = _WORD_TOKENS.get(word)
            if word_type is not None and not (keywords and word in keywords):
                tokens.append(Token(word_type, word, i))
            else:
                tokens.append(Token(NAME, word, i))
            i = j
            continue
        raise XPathSyntaxError(f"unexpected character {ch!r}", i)
    tokens.append(Token(EOF, "", n))
    return tokens


class TokenStream:
    """Cursor over a token list with the usual helpers."""

    def __init__(self, tokens: list[Token]):
        self.tokens = tokens
        self.index = 0

    @property
    def current(self) -> Token:
        return self.tokens[self.index]

    def peek(self, offset: int = 1) -> Token:
        idx = min(self.index + offset, len(self.tokens) - 1)
        return self.tokens[idx]

    def advance(self) -> Token:
        token = self.tokens[self.index]
        if token.type != EOF:
            self.index += 1
        return token

    def accept(self, type_: str, value: Optional[str] = None) -> Optional[Token]:
        token = self.current
        if token.type == type_ and (value is None or token.value == value):
            return self.advance()
        return None

    def expect(self, type_: str, value: Optional[str] = None) -> Token:
        token = self.accept(type_, value)
        if token is None:
            want = value or type_
            raise XPathSyntaxError(
                f"expected {want!r}, found {self.current.value!r}", self.current.pos
            )
        return token

    def expect_name(self, value: str) -> Token:
        token = self.current
        if token.type == NAME and token.value == value:
            return self.advance()
        raise XPathSyntaxError(
            f"expected keyword {value!r}, found {token.value!r}", token.pos
        )

    def at_name(self, value: str) -> bool:
        return self.current.type == NAME and self.current.value == value

    def done(self) -> bool:
        return self.current.type == EOF
