"""The metrics registry: named counters, gauges and fixed-bucket
latency histograms under one ``layer.component.metric`` naming scheme.

Three instrument kinds, one discipline:

* :class:`Counter` — a monotonically increasing tally (``inc``).
* :class:`Gauge` — a point-in-time value (``set``).
* :class:`Histogram` — fixed log-spaced buckets with exact count/sum
  and estimated p50/p95/p99 (each percentile is interpolated inside
  its bucket, clamped to the observed min/max, so the error is bounded
  by one bucket width — buckets double, so at most ~2x).

Instruments are created through the registry (:meth:`MetricsRegistry.
counter` …) and memoized by name; asking twice returns the same
object, so hot paths hold a direct reference and pay one lock-guarded
integer bump per event.  A **disabled** registry hands out shared
no-op singletons instead: the hot path degenerates to a method call
on a preallocated object — nothing is allocated, nothing is locked
(the ``tests/test_obs.py`` zero-allocation hammer pins this down).

Existing attribute counters (``ViewStore.arena_reads``, the LRU
caches' hit/miss tallies, the planner's strategy counters, the lazy
DFA's table sizes) migrate onto the registry as **probes**: callables
sampled lazily at :meth:`MetricsRegistry.snapshot` time, so the hot
paths that bump them stay untouched while the snapshot presents every
layer under the one normalized naming scheme.

Metric names are validated: lowercase dot-separated segments of
``[a-z0-9_]``, at least ``layer.component.metric`` deep — the scheme
that replaces the seed's ad-hoc ``scan[arena]`` / ``arena_reads``
divergence.
"""

from __future__ import annotations

import re
import threading
from bisect import bisect_left
from typing import Any, Callable, Dict, Optional, Sequence, Type, Union, cast

__all__ = [
    "Counter",
    "DEFAULT_LATENCY_BUCKETS",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "check_metric_name",
]

_NAME_RE = re.compile(r"^[a-z0-9_]+(?:\.[a-z0-9_]+){2,}$")


def check_metric_name(name: str) -> str:
    """Validate (and return) a ``layer.component.metric`` name."""
    if not isinstance(name, str) or not _NAME_RE.match(name):
        raise ValueError(
            f"metric name {name!r} does not follow the "
            "layer.component.metric scheme (lowercase dot-separated "
            "segments of [a-z0-9_], at least three deep)"
        )
    return name


#: Default histogram buckets for latencies, in seconds: log-spaced
#: (doubling) from 100 µs to ~26 s, with an overflow bucket above.
DEFAULT_LATENCY_BUCKETS = tuple(0.0001 * (2 ** i) for i in range(19))

#: Default buckets for size-shaped histograms (batch sizes, counts).
COUNT_BUCKETS = tuple(float(2 ** i) for i in range(13))


class Counter:
    """A named monotonic counter (thread-safe)."""

    __slots__ = ("name", "_lock", "_value")

    # guarded-by[_value]: self._lock

    def __init__(self, name: str):
        self.name = name
        self._lock = threading.Lock()
        self._value = 0

    def inc(self, amount: int = 1) -> None:
        with self._lock:
            self._value += amount

    @property
    def value(self) -> int:
        with self._lock:
            return self._value

    def snapshot(self) -> int:
        return self.value

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Counter({self.name}={self.value})"


class Gauge:
    """A named point-in-time value (thread-safe)."""

    __slots__ = ("name", "_lock", "_value")

    # guarded-by[_value]: self._lock

    def __init__(self, name: str):
        self.name = name
        self._lock = threading.Lock()
        self._value = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self._value = value

    def inc(self, amount: float = 1) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1) -> None:
        with self._lock:
            self._value -= amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value

    def snapshot(self) -> float:
        return self.value

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Gauge({self.name}={self.value})"


class Histogram:
    """A fixed-bucket histogram with exact count/sum and estimated
    percentiles (thread-safe).

    ``bounds`` are the inclusive upper edges of each bucket; one
    overflow bucket catches everything above the last edge.  Fixed
    buckets keep ``observe`` O(log buckets) with constant memory, the
    property that makes per-request latency capture affordable.
    """

    __slots__ = (
        "name", "bounds", "_counts", "_lock", "_count", "_sum", "_min", "_max",
    )

    # guarded-by[_counts, _count, _sum, _min, _max]: self._lock

    def __init__(self, name: str, buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS):
        if not buckets or list(buckets) != sorted(buckets):
            raise ValueError("histogram buckets must be a sorted non-empty sequence")
        self.name = name
        self.bounds = tuple(float(b) for b in buckets)
        self._counts = [0] * (len(self.bounds) + 1)
        self._lock = threading.Lock()
        self._count = 0
        self._sum = 0.0
        self._min: Optional[float] = None
        self._max: Optional[float] = None

    def observe(self, value: float) -> None:
        index = bisect_left(self.bounds, value)
        with self._lock:
            self._counts[index] += 1
            self._count += 1
            self._sum += value
            if self._min is None or value < self._min:
                self._min = value
            if self._max is None or value > self._max:
                self._max = value

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    def percentile(self, q: float) -> Optional[float]:
        """The estimated *q*-th percentile (``q`` in 0..100), or None
        while empty."""
        with self._lock:
            return self._percentile_locked(q)

    def _percentile_locked(self, q: float) -> Optional[float]:  # holds: self._lock
        if self._count == 0:
            return None
        rank = q / 100.0 * self._count
        seen = 0
        for index, bucket_count in enumerate(self._counts):
            if bucket_count == 0:
                continue
            if seen + bucket_count >= rank:
                low = self.bounds[index - 1] if index > 0 else 0.0
                high = (
                    self.bounds[index]
                    if index < len(self.bounds)
                    else (self._max if self._max is not None else low)
                )
                # Interpolate inside the bucket, then clamp to the
                # observed extremes so a single-value histogram reports
                # that value, not a bucket edge.
                fraction = (rank - seen) / bucket_count
                estimate = low + (high - low) * min(1.0, max(0.0, fraction))
                if self._max is not None:
                    estimate = min(estimate, self._max)
                if self._min is not None:
                    estimate = max(estimate, self._min)
                return estimate
            seen += bucket_count
        return self._max

    def snapshot(self) -> Dict[str, Any]:
        with self._lock:
            if self._count == 0:
                return {"count": 0, "sum": 0.0}
            return {
                "count": self._count,
                "sum": self._sum,
                "min": self._min,
                "max": self._max,
                "mean": self._sum / self._count,
                "p50": self._percentile_locked(50.0),
                "p95": self._percentile_locked(95.0),
                "p99": self._percentile_locked(99.0),
            }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Histogram({self.name}, n={self.count})"


class _NullInstrument:
    """The shared no-op instrument a disabled registry hands out.

    One preallocated singleton serves every name and every kind: the
    methods take anything and touch nothing, so the instrumented hot
    paths cost a plain method call and allocate nothing.
    """

    __slots__ = ()

    name = "disabled"
    bounds: "tuple[float, ...]" = ()
    value = 0
    count = 0

    def inc(self, amount: float = 1) -> None:  # hot-path
        pass

    def dec(self, amount: float = 1) -> None:  # hot-path
        pass

    def set(self, value: float) -> None:  # hot-path
        pass

    def observe(self, value: float) -> None:  # hot-path
        pass

    def percentile(self, q: float) -> None:
        return None

    def snapshot(self) -> int:
        return 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "<disabled instrument>"


NULL_INSTRUMENT = _NullInstrument()

Instrument = Union[Counter, Gauge, Histogram, _NullInstrument]


class MetricsRegistry:
    """The process's (or one service's) named instruments and probes.

    * ``enabled=False`` turns the whole registry off: every ``counter``
      /``gauge``/``histogram`` call returns :data:`NULL_INSTRUMENT`,
      probes are dropped on registration, and :meth:`snapshot` is
      empty — the disabled fast path the ≤3 % overhead bar in
      ``benchmarks/bench_service.py`` is measured against.
    * Instruments are memoized by (validated) name; re-registering a
      name as a different kind raises.
    * Probes (:meth:`probe`) are sampled only at snapshot time.  A
      probe may return a number or a (nested) dict, which the snapshot
      flattens into dotted names — that is how pre-existing attribute
      counters and ``stats()`` dicts join the unified namespace
      without touching their hot paths.  Re-registering a probe name
      replaces it (a store and an engine sharing one planner bind the
      same probe twice, harmlessly).
    """

    # guarded-by[_instruments, _probes]: self._lock

    def __init__(self, enabled: bool = True):
        self.enabled = enabled  # immutable after construction
        self._lock = threading.Lock()
        self._instruments: Dict[str, Instrument] = {}
        self._probes: Dict[str, Callable[[], Any]] = {}

    # ------------------------------------------------------------------
    # Instrument creation (memoized by name)
    # ------------------------------------------------------------------

    def _instrument(
        self, name: str, kind: Type[Instrument], factory: Callable[[], Instrument]
    ) -> Instrument:
        if not self.enabled:
            return NULL_INSTRUMENT
        check_metric_name(name)
        with self._lock:
            found = self._instruments.get(name)
            if found is not None:
                if not isinstance(found, kind):
                    raise ValueError(
                        f"metric {name!r} already registered as "
                        f"{type(found).__name__}, not {kind.__name__}"
                    )
                return found
            made = factory()
            self._instruments[name] = made
            return made

    def counter(self, name: str) -> Counter:
        # The disabled registry returns the null singleton, which
        # quacks like every instrument kind; the cast keeps call sites
        # typed against the real one.
        return cast(Counter, self._instrument(name, Counter, lambda: Counter(name)))

    def gauge(self, name: str) -> Gauge:
        return cast(Gauge, self._instrument(name, Gauge, lambda: Gauge(name)))

    def histogram(
        self, name: str, buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS
    ) -> Histogram:
        return cast(
            Histogram,
            self._instrument(name, Histogram, lambda: Histogram(name, buckets)),
        )

    def probe(self, name: str, fn: Callable[[], Any]) -> None:
        """Register a lazily-sampled metric source under *name*: a
        callable returning a number or a nested dict (flattened into
        ``name.key…`` at snapshot time)."""
        if not self.enabled:
            return
        check_metric_name(name)
        with self._lock:
            self._probes[name] = fn

    # ------------------------------------------------------------------
    # Snapshots
    # ------------------------------------------------------------------

    def snapshot(self) -> Dict[str, Any]:
        """Every instrument and probe, flattened to ``{name: value}``
        (histograms appear as their summary dicts), sorted by name."""
        if not self.enabled:
            return {}
        with self._lock:
            instruments = list(self._instruments.items())
            probes = list(self._probes.items())
        out: Dict[str, Any] = {}
        for name, instrument in instruments:
            out[name] = instrument.snapshot()
        for name, fn in probes:
            _flatten_into(out, name, fn())
        return dict(sorted(out.items()))

    def get(self, name: str) -> Any:
        """The current snapshot value of one metric (or None)."""
        return self.snapshot().get(name)

    def __contains__(self, name: str) -> bool:
        with self._lock:
            return name in self._instruments or name in self._probes


def _flatten_into(out: Dict[str, Any], prefix: str, value: Any) -> None:
    if isinstance(value, dict):
        for key, sub in value.items():
            _flatten_into(out, f"{prefix}.{_sanitize(str(key))}", sub)
    else:
        out[prefix] = value


def _sanitize(key: str) -> str:
    """Coerce a dict key from a probe (a document name, a cache label)
    into legal metric segments.  Dots are respected as separators — a
    probe returning an already-normalized ``scan.arena`` key lands as
    two segments, not ``scan_arena``."""
    segments = [
        re.sub(r"[^a-z0-9_]", "_", segment.lower()) or "_"
        for segment in key.split(".")
        if segment != ""
    ]
    return ".".join(segments) or "_"
