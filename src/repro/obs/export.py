"""Text exposition of the metrics registry: Prometheus text format
plus JSON-lines structured events, and a tiny stdlib HTTP server that
serves both.

:func:`render_prometheus` turns a :meth:`MetricsRegistry.snapshot`
into the Prometheus text exposition format (version 0.0.4): dotted
metric names become underscore-joined names under a ``repro_`` prefix,
histogram summary dicts become ``summary`` families with ``quantile``
labels plus exact ``_min``/``_max`` series (bucket-interpolated
percentiles clamp, so the true tails are only visible here), and
non-numeric or non-finite values are skipped rather than emitted as
unparseable text.

:func:`render_events` turns any list of JSON-serializable records
(trace records, slow-query entries) into newline-delimited JSON.

:class:`ExpositionServer` is the scrape surface ``repro serve
--expose`` binds: ``GET /metrics`` (text format), ``GET /events``
(JSONL trace records), ``GET /healthz``.  It is deliberately
dependency-free (``http.server`` from the stdlib) and read-only —
the JSON-line TCP protocol stays the only way to *change* anything.
"""

from __future__ import annotations

import json
import math
import threading
from http.server import BaseHTTPRequestHandler, HTTPServer
from socketserver import ThreadingMixIn
from typing import Any, Callable, Dict, List, Optional, Tuple

__all__ = [
    "ExpositionServer",
    "render_events",
    "render_prometheus",
]

#: The summary-percentile keys a histogram snapshot carries, mapped to
#: Prometheus ``quantile`` label values.
_QUANTILES: Tuple[Tuple[str, str], ...] = (
    ("p50", "0.5"),
    ("p95", "0.95"),
    ("p99", "0.99"),
)

CONTENT_TYPE_TEXT = "text/plain; version=0.0.4; charset=utf-8"
CONTENT_TYPE_JSONL = "application/x-ndjson; charset=utf-8"


def _metric_name(dotted: str, prefix: str) -> str:
    return prefix + dotted.replace(".", "_")


def _format_value(value: float) -> str:
    if value != value:  # NaN
        return "NaN"
    if value == float("inf"):
        return "+Inf"
    if value == float("-inf"):
        return "-Inf"
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, int):
        return str(value)
    return repr(float(value))


def _is_numeric(value: Any) -> bool:
    return isinstance(value, (int, float)) and math.isfinite(float(value))


def render_prometheus(snapshot: Dict[str, Any], prefix: str = "repro_") -> str:
    """The registry snapshot as Prometheus text exposition format.

    Scalars (counters, gauges, flattened probe leaves) become untyped
    single series; histogram summary dicts become one ``summary``
    family with quantile labels plus ``_count``/``_sum``/``_min``/
    ``_max``/``_mean`` series.  Booleans render as 0/1; anything
    non-numeric or non-finite is skipped.
    """
    lines: List[str] = []
    for dotted in sorted(snapshot):
        value = snapshot[dotted]
        name = _metric_name(dotted, prefix)
        if isinstance(value, dict):
            if "count" not in value:
                continue  # not a histogram summary; flattened probes never land here
            lines.append(f"# TYPE {name} summary")
            for key, quantile in _QUANTILES:
                q_value = value.get(key)
                if _is_numeric(q_value):
                    lines.append(
                        f'{name}{{quantile="{quantile}"}} {_format_value(q_value)}'
                    )
            lines.append(f"{name}_count {_format_value(value.get('count', 0))}")
            lines.append(f"{name}_sum {_format_value(value.get('sum', 0.0))}")
            for key in ("min", "max", "mean"):
                sub = value.get(key)
                if _is_numeric(sub):
                    lines.append(f"{name}_{key} {_format_value(sub)}")
        elif isinstance(value, bool):
            lines.append(f"# TYPE {name} gauge")
            lines.append(f"{name} {_format_value(value)}")
        elif _is_numeric(value):
            lines.append(f"# TYPE {name} untyped")
            lines.append(f"{name} {_format_value(value)}")
    return "\n".join(lines) + "\n" if lines else ""


def render_events(records: List[Dict[str, Any]]) -> str:
    """Records (trace records, slow-query entries) as JSON lines."""
    if not records:
        return ""
    return "\n".join(
        json.dumps(record, separators=(",", ":"), default=str) for record in records
    ) + "\n"


class _ThreadingHTTPServer(ThreadingMixIn, HTTPServer):
    daemon_threads = True
    allow_reuse_address = True


class ExpositionServer:
    """Read-only HTTP scrape surface over callables.

    *snapshot_fn* returns the registry snapshot dict (``/metrics``);
    *events_fn*, when given, returns the trace/event records
    (``/events``).  ``port=0`` binds an ephemeral port; read
    :attr:`address` after :meth:`start`.
    """

    def __init__(
        self,
        snapshot_fn: Callable[[], Dict[str, Any]],
        events_fn: Optional[Callable[[], List[Dict[str, Any]]]] = None,
        host: str = "127.0.0.1",
        port: int = 0,
    ):
        outer = self

        class _Handler(BaseHTTPRequestHandler):
            def do_GET(self) -> None:
                path = self.path.split("?", 1)[0]
                if path == "/metrics":
                    body = render_prometheus(outer.snapshot_fn())
                    self._reply(200, CONTENT_TYPE_TEXT, body)
                elif path == "/events" and outer.events_fn is not None:
                    body = render_events(outer.events_fn())
                    self._reply(200, CONTENT_TYPE_JSONL, body)
                elif path == "/healthz":
                    self._reply(200, CONTENT_TYPE_TEXT, "ok\n")
                else:
                    self._reply(404, CONTENT_TYPE_TEXT, "not found\n")

            def _reply(self, status: int, content_type: str, body: str) -> None:
                data = body.encode("utf-8")
                self.send_response(status)
                self.send_header("Content-Type", content_type)
                self.send_header("Content-Length", str(len(data)))
                self.end_headers()
                self.wfile.write(data)

            def log_message(self, format: str, *args: Any) -> None:
                pass  # scrapes must not spam the serve log

        self.snapshot_fn = snapshot_fn
        self.events_fn = events_fn
        self._server = _ThreadingHTTPServer((host, port), _Handler)
        bound = self._server.server_address
        self.address: Tuple[str, int] = (str(bound[0]), int(bound[1]))
        self._thread: Optional[threading.Thread] = None

    def start(self) -> "ExpositionServer":
        thread = threading.Thread(
            target=self._server.serve_forever,
            name="repro-expose",
            daemon=True,
        )
        thread.start()
        self._thread = thread
        return self

    def stop(self) -> None:
        self._server.shutdown()
        self._server.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None
