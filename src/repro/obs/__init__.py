"""``repro.obs`` — the unified telemetry substrate.

Every layer of the reproduction (store, engine, planner, automata,
service, CLI) reports through the two primitives here:

* :class:`~repro.obs.registry.MetricsRegistry` — named counters,
  gauges and fixed-bucket latency histograms (p50/p95/p99 snapshots),
  plus *probes* that sample existing attribute counters lazily at
  snapshot time, all under one ``layer.component.metric`` naming
  scheme.  Thread-safe; near-zero overhead when disabled (every
  instrument collapses to a shared no-op singleton).
* :class:`~repro.obs.trace.Tracer` — per-request traces of nested
  spans (``span("plan")``, ``span("compile")``, ``span("scan")``,
  ``span("serialize")``), sampled, kept in a ring buffer, dumpable as
  JSON-line records.  A thread-local *active trace* lets deep engine
  code emit spans without threading a trace object through every
  signature: :func:`~repro.obs.trace.span` is a no-op unless a trace
  is active on the calling thread.  Trace/span ids carry a
  per-process token, so records minted in different processes merge
  (:func:`~repro.obs.trace.stitch`) into one cross-process tree.

Built on those two primitives:

* :class:`~repro.obs.profile.Profile` — per-run plan-vs-actual
  execution profiles (nodes visited, subtrees pruned, DFA transitions
  and table growth, cache class, serialize bytes), thread-locally
  activated like traces.
* :class:`~repro.obs.slowlog.SlowQueryLog` — a bounded ring of
  over-threshold requests, each with its trace, profile, queue wait
  and snapshot version.
* :mod:`~repro.obs.export` — the registry snapshot rendered in
  Prometheus text format plus JSON-line events, and the stdlib HTTP
  scrape surface ``repro serve --expose`` binds.

This package is dependency-free and imports nothing from the rest of
``repro`` — it sits below :mod:`repro.lru` in the layering so every
other layer may use it.
"""

from repro.obs.export import ExpositionServer, render_events, render_prometheus
from repro.obs.profile import Profile, current_profile, profiled
from repro.obs.registry import (
    DEFAULT_LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    check_metric_name,
)
from repro.obs.slowlog import SlowQueryLog
from repro.obs.trace import (
    NULL_SPAN,
    NULL_TRACE,
    Trace,
    Tracer,
    current_trace,
    new_span_id,
    process_token,
    span,
    stitch,
)

__all__ = [
    "Counter",
    "DEFAULT_LATENCY_BUCKETS",
    "ExpositionServer",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_SPAN",
    "NULL_TRACE",
    "Profile",
    "SlowQueryLog",
    "Trace",
    "Tracer",
    "check_metric_name",
    "current_profile",
    "current_trace",
    "new_span_id",
    "process_token",
    "profiled",
    "render_events",
    "render_prometheus",
    "span",
    "stitch",
]
