"""``repro.obs`` — the unified telemetry substrate.

Every layer of the reproduction (store, engine, planner, automata,
service, CLI) reports through the two primitives here:

* :class:`~repro.obs.registry.MetricsRegistry` — named counters,
  gauges and fixed-bucket latency histograms (p50/p95/p99 snapshots),
  plus *probes* that sample existing attribute counters lazily at
  snapshot time, all under one ``layer.component.metric`` naming
  scheme.  Thread-safe; near-zero overhead when disabled (every
  instrument collapses to a shared no-op singleton).
* :class:`~repro.obs.trace.Tracer` — per-request traces of nested
  spans (``span("plan")``, ``span("compile")``, ``span("scan")``,
  ``span("serialize")``), sampled, kept in a ring buffer, dumpable as
  JSON-line records.  A thread-local *active trace* lets deep engine
  code emit spans without threading a trace object through every
  signature: :func:`~repro.obs.trace.span` is a no-op unless a trace
  is active on the calling thread.

This package is dependency-free and imports nothing from the rest of
``repro`` — it sits below :mod:`repro.lru` in the layering so every
other layer may use it.
"""

from repro.obs.registry import (
    DEFAULT_LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    check_metric_name,
)
from repro.obs.trace import (
    NULL_SPAN,
    NULL_TRACE,
    Trace,
    Tracer,
    current_trace,
    span,
)

__all__ = [
    "Counter",
    "DEFAULT_LATENCY_BUCKETS",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_SPAN",
    "NULL_TRACE",
    "Trace",
    "Tracer",
    "check_metric_name",
    "current_trace",
    "span",
]
