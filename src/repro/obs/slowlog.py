"""Slow-query log: a bounded ring of requests that blew the latency
threshold, each carrying enough context to diagnose it after the fact.

The service records an entry whenever a request finishes slower than
the configured threshold (default 250 ms).  Each entry is one
JSON-serializable dict::

    {"ts": 1754650000.123, "target": "xmark", "query": "for $x in …",
     "dur_ms": 412.7, "queue_ms": 210.0, "outcome": "ok",
     "snapshot_version": 17, "coalesced": 3,
     "trace": {...} | None,      # the full stitched trace record, when sampled
     "profile": {...} | None}    # the execution profile, when collected

The ring is bounded (old entries fall off; ``dropped`` counts them)
and drained over the wire by the ``slowlog`` op / ``repro store
slowlog``.  An optional *sink* callable receives every entry as it is
recorded — the serve CLI points it at a ``slowlog.jsonl``
write-through file so slow queries survive the process.
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Any, Callable, Deque, Dict, List, Optional

__all__ = ["SlowQueryLog"]


class SlowQueryLog:
    """Bounded ring of slow-request entries (see module docstring).

    ``threshold`` is in seconds; ``0`` captures everything (useful in
    tests), a negative threshold disables capture entirely.
    """

    # guarded-by[_ring, _recorded, _dropped]: self._lock

    def __init__(
        self,
        threshold: float = 0.25,
        ring: int = 128,
        sink: Optional[Callable[[Dict[str, Any]], None]] = None,
    ):
        if ring < 1:
            raise ValueError(f"ring must be positive, got {ring}")
        self.threshold = threshold
        self.sink = sink
        self._lock = threading.Lock()
        self._ring: Deque[Dict[str, Any]] = deque(maxlen=ring)
        self._recorded = 0
        self._dropped = 0

    @property
    def enabled(self) -> bool:
        return self.threshold >= 0.0

    # hot-path
    def should_record(self, dur: float) -> bool:
        """Cheap pre-check call sites use before assembling an entry."""
        return self.threshold >= 0.0 and dur >= self.threshold

    def record(self, entry: Dict[str, Any]) -> None:
        """Push one already-assembled entry (callers gate on
        :meth:`should_record` so fast requests never build the dict)."""
        sink = self.sink
        with self._lock:
            if len(self._ring) == self._ring.maxlen:
                self._dropped += 1
            self._ring.append(entry)
            self._recorded += 1
        if sink is not None:
            try:
                sink(entry)
            except OSError:
                pass  # a full disk must not fail the request

    # ------------------------------------------------------------------

    def entries(self, drain: bool = False) -> List[Dict[str, Any]]:
        """Buffered entries, oldest first; ``drain=True`` also clears."""
        with self._lock:
            out = list(self._ring)
            if drain:
                self._ring.clear()
            return out

    def stats(self) -> Dict[str, Any]:
        with self._lock:
            return {
                "threshold_ms": round(self.threshold * 1000.0, 3),
                "recorded": self._recorded,
                "buffered": len(self._ring),
                "dropped": self._dropped,
            }
