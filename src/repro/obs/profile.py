"""Per-run execution profiles: what the scan *actually* did.

The planner picks a strategy from **estimates** (node counts scaled by
cost constants).  A :class:`Profile` rides along with one run and
collects the measured side — nodes visited, subtrees pruned, DFA
transitions taken and transition-table growth, whether the prepared
program was compiled cold or reused warm, and how many bytes the
serializer produced — so the estimate can be confronted with reality
(``explain_analyze``, the slow-query log, and the planner's drift
probe all read the same object).

Like tracing, activation is thread-local and optional: deep engine
code calls :func:`current_profile` (one thread-local read when no
profile is active — the overwhelmingly common case) and adds its
counts only when a profile is attached.  The hot scan loop does not
touch the profile per node; it counts into locals and deposits once
per scan (:meth:`Profile.add_scan`).

A profile is **thread-confined by contract**: it is activated, filled
and read on the thread that runs the query.  No lock.
"""

from __future__ import annotations

import threading
import time
from typing import Any, Dict, Optional

__all__ = [
    "Profile",
    "current_profile",
    "profiled",
]

_active_profile = threading.local()


# hot-path
def current_profile() -> Optional["Profile"]:
    """The profile active on the calling thread, or None."""
    return getattr(_active_profile, "profile", None)  # unguarded: one thread-local read is the documented cost of the off path


class profiled:
    """Context manager that makes *profile* the calling thread's active
    profile, restoring whatever was active before on exit (and stamping
    the profile's duration)."""

    __slots__ = ("profile", "_previous")

    def __init__(self, profile: "Profile"):
        self.profile = profile
        self._previous: Optional[Profile] = None

    def __enter__(self) -> "Profile":
        self._previous = getattr(_active_profile, "profile", None)
        _active_profile.profile = self.profile
        return self.profile

    def __exit__(self, *exc_info: object) -> bool:
        _active_profile.profile = self._previous
        self.profile.finish()
        return False


class Profile:
    """Measured counters for one query/transform run.

    Thread-confined (see module docstring): no lock, plain int fields.
    ``cache`` starts ``"warm"`` and flips to ``"cold"`` if a prepared
    program is compiled while this profile is active — the run paid
    the compile, every later run with the same key will not.
    """

    __slots__ = (
        "nodes_visited", "subtrees_pruned", "dfa_transitions",
        "table_sets_added", "table_moves_added", "serialize_bytes",
        "results", "cache", "strategy", "backend", "est_cost",
        "est_nodes", "_t0", "dur_us",
    )

    def __init__(self) -> None:
        self.nodes_visited = 0
        self.subtrees_pruned = 0
        self.dfa_transitions = 0
        self.table_sets_added = 0
        self.table_moves_added = 0
        self.serialize_bytes = 0
        self.results = 0
        self.cache = "warm"
        self.strategy: Optional[str] = None
        self.backend: Optional[str] = None
        self.est_cost: Optional[float] = None
        self.est_nodes: Optional[int] = None
        self._t0 = time.perf_counter()
        self.dur_us = 0

    # ------------------------------------------------------------------
    # Deposits (called at most a handful of times per run)
    # ------------------------------------------------------------------

    def add_scan(self, nodes: int = 0, pruned: int = 0, transitions: int = 0) -> None:
        """One scan's worth of counts, deposited after the loop."""
        self.nodes_visited += nodes
        self.subtrees_pruned += pruned
        self.dfa_transitions += transitions

    def add_table_growth(self, sets: int = 0, moves: int = 0) -> None:
        """DFA transition-table growth observed across one scan
        (``dfa.stats()`` deltas): non-zero means this run paid lazy
        subset construction that later runs will not."""
        self.table_sets_added += sets
        self.table_moves_added += moves

    def add_serialize_bytes(self, count: int) -> None:
        self.serialize_bytes += count

    def note_compile(self) -> None:
        """A prepared program was compiled during this run."""
        self.cache = "cold"

    def set_plan(
        self,
        strategy: str,
        backend: str,
        est_cost: float,
        est_nodes: Optional[int] = None,
    ) -> None:
        """The planner's chosen strategy and its estimate for this run
        (called by the planner when a profile is active)."""
        self.strategy = strategy
        self.backend = backend
        self.est_cost = est_cost
        self.est_nodes = est_nodes

    def set_results(self, count: int) -> None:
        self.results = count

    def add_results(self, count: int) -> None:
        self.results += count

    def finish(self) -> None:
        """Stamp the run duration (idempotent enough: last call wins)."""
        self.dur_us = int((time.perf_counter() - self._t0) * 1e6)

    # ------------------------------------------------------------------

    def visit_ratio(self) -> Optional[float]:
        """Actual nodes visited over the planner's estimate (None when
        either side is missing/zero) — the drift a cost model accrues."""
        if not self.est_nodes or self.nodes_visited <= 0:
            return None
        return self.nodes_visited / float(self.est_nodes)

    def snapshot(self) -> Dict[str, Any]:
        """The profile as one JSON-serializable dict (the shape the
        slow-query log and ``explain_analyze`` embed)."""
        out: Dict[str, Any] = {
            "strategy": self.strategy,
            "backend": self.backend,
            "est_cost": self.est_cost,
            "est_nodes": self.est_nodes,
            "nodes_visited": self.nodes_visited,
            "subtrees_pruned": self.subtrees_pruned,
            "dfa_transitions": self.dfa_transitions,
            "table_sets_added": self.table_sets_added,
            "table_moves_added": self.table_moves_added,
            "serialize_bytes": self.serialize_bytes,
            "results": self.results,
            "cache": self.cache,
            "dur_us": self.dur_us,
        }
        ratio = self.visit_ratio()
        if ratio is not None:
            out["visit_ratio"] = round(ratio, 4)
        return out
