"""Query-lifecycle tracing: per-request traces of nested spans.

A :class:`Trace` is one request's timeline.  Code inside the request
opens **spans** — ``span("plan")``, ``span("compile")``,
``span("scan")``, ``span("serialize")`` — and each records its start
offset, duration and nesting depth.  When the trace finishes, its
record (a plain JSON-serializable dict) lands in the owning
:class:`Tracer`'s ring buffer, from which it can be dumped as JSON
lines (:meth:`Tracer.dump_jsonl`) or fetched over the service's wire
protocol (the ``traces`` op).

Two ways to open a span:

* ``trace.span("scan")`` — explicit, when the trace object is at hand.
* :func:`span` (module level) — resolves the calling thread's *active*
  trace.  Deep engine code (the planner, prepared statements, the
  arena serializer) uses this form so tracing needs no signature
  changes: when no trace is active — the overwhelmingly common case —
  it returns a shared no-op singleton and costs one thread-local read.

Activation: ``with trace:`` activates on the current thread and
finishes on exit (the request-scoped form); ``with trace.activate():``
activates without finishing (how the service's worker threads attach
their evaluation spans to a trace created on the submitting thread).

Sampling is deterministic — every *N*-th trace records, the rest are
the shared :data:`NULL_TRACE` — so overhead scales down without a
random-number draw on the hot path.

Trace ids are **process-unique strings** ``"<token>-<seq>"`` where the
token mixes the pid with random bytes drawn at import: two tracers in
different processes (the service and its multiprocessing workers, a
client and its server) can never mint the same id, so records from
every process of one request merge into a single tree.  A trace
created with an explicit ``trace_id`` (propagated over the wire)
*adopts* it — the upstream sampling decision travels with the id.
Every trace also carries a ``span_id`` and optional ``parent_span``,
which is what :func:`stitch` uses to reassemble the cross-process
parent/child tree.

Trace record schema (one JSON line each)::

    {"trace": "3f2a1b-7", "name": "service.query",
     "span_id": "3f2a1b-s9", "parent_span": "91c4e0-s2",
     "start": 1754650000.123, "dur_us": 1834,
     "meta": {"target": "xmark"},
     "spans": [{"name": "queue", "start_us": 0, "dur_us": 210, "depth": 0},
               {"name": "scan",  "start_us": 215, "dur_us": 1500, "depth": 0},
               {"name": "plan",  "start_us": 220, "dur_us": 12,  "depth": 1}]}

Spans are listed in *completion* order; sort by ``start_us`` for the
timeline, use ``depth`` for nesting.
"""

from __future__ import annotations

import json
import os
import threading
import time
from collections import deque
from typing import Any, Deque, Dict, List, Optional, Set, Union

__all__ = [
    "NULL_SPAN",
    "NULL_TRACE",
    "Trace",
    "Tracer",
    "current_trace",
    "new_span_id",
    "process_token",
    "span",
    "stitch",
]

_active = threading.local()

#: Per-process token prefixed onto every trace/span id.  pid alone is
#: not enough (pids recycle across respawned pool workers); the random
#: suffix makes collisions across any two live or dead processes
#: vanishingly unlikely.
_PROCESS_TOKEN = f"{os.getpid():x}{os.urandom(3).hex()}"

_span_seq_lock = threading.Lock()
_span_seq = 0


def process_token() -> str:
    """This process's id-prefix token (stable for the process lifetime)."""
    return _PROCESS_TOKEN


def new_span_id() -> str:
    """Mint a process-unique span id (``"<token>-s<seq>"``)."""
    global _span_seq
    with _span_seq_lock:
        _span_seq += 1
        return f"{_PROCESS_TOKEN}-s{_span_seq}"


def current_trace() -> Optional["Trace"]:
    """The trace active on the calling thread, or None."""
    return getattr(_active, "trace", None)


# hot-path
def span(name: str) -> "Union[_SpanContext, _NullSpan]":
    """A span on the calling thread's active trace (no-op without one).

    The form deep engine code uses: ``with span("plan"): …`` costs one
    thread-local read when tracing is off.
    """
    trace = getattr(_active, "trace", None)  # unguarded: one thread-local read is the documented cost of the off path
    if trace is None:
        return NULL_SPAN
    return trace.span(name)


class _NullSpan:
    """Shared no-op span: entering and exiting touches nothing."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":  # hot-path
        return self

    def __exit__(self, *exc_info: object) -> bool:  # hot-path
        return False


NULL_SPAN = _NullSpan()


class _NullTrace:
    """Shared no-op trace handed out for unsampled requests: every
    operation is accepted and discarded, so call sites never branch on
    whether their request was sampled."""

    __slots__ = ()

    sampled = False
    trace_id: Optional[str] = None
    span_id: Optional[str] = None
    parent_span: Optional[str] = None
    record: Optional[Dict[str, Any]] = None

    def span(self, name: str) -> _NullSpan:  # hot-path
        return NULL_SPAN

    def record_span(self, name: str, dur: float, start: Optional[float] = None, depth: int = 0) -> None:  # hot-path
        pass

    def note(self, **meta: Any) -> None:  # hot-path
        pass

    def add_spans(self, records: List[Dict[str, Any]]) -> None:  # hot-path
        pass

    def activate(self) -> _NullSpan:  # hot-path
        return NULL_SPAN  # enter/exit no-op, reused as a null context

    def finish(self, **meta: Any) -> None:  # hot-path
        pass

    def __enter__(self) -> "_NullTrace":  # hot-path
        return self

    def __exit__(self, *exc_info: object) -> bool:  # hot-path
        return False


NULL_TRACE = _NullTrace()


class _SpanContext:
    """One open span; appends its record to the trace on exit."""

    __slots__ = ("trace", "name", "_start", "_depth")

    def __init__(self, trace: "Trace", name: str):
        self.trace = trace
        self.name = name

    def __enter__(self) -> "_SpanContext":
        self._depth = self.trace._enter_span()
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info: object) -> bool:
        end = time.perf_counter()
        self.trace._exit_span(self.name, self._start, end, self._depth)
        return False


class _Activation:
    """Context manager that makes a trace the thread's active trace,
    restoring whatever was active before on exit."""

    __slots__ = ("trace", "_previous")

    def __init__(self, trace: "Trace"):
        self.trace = trace

    def __enter__(self) -> "Trace":
        self._previous = getattr(_active, "trace", None)
        _active.trace = self.trace
        return self.trace

    def __exit__(self, *exc_info: object) -> bool:
        _active.trace = self._previous
        return False


class Trace:
    """One request's timeline of spans (see the module docstring)."""

    __slots__ = (
        "tracer", "name", "trace_id", "span_id", "parent_span", "meta",
        "started_at", "_t0", "_lock", "_spans", "_depth", "_finished",
        "_record_out", "_activations",
    )

    # guarded-by[meta, _spans, _depth, _finished, _record_out]: self._lock
    # unguarded[_activations]: only touched by __enter__/__exit__ on the thread using the trace as a context manager (thread-confined by contract)

    sampled = True

    def __init__(
        self,
        tracer: Optional["Tracer"],
        name: str,
        trace_id: str,
        meta: Dict[str, Any],
        parent_span: Optional[str] = None,
    ):
        self.tracer = tracer
        self.name = name
        self.trace_id = trace_id
        self.span_id = new_span_id()
        self.parent_span = parent_span
        self.meta = dict(meta)
        self.started_at = time.time()
        self._t0 = time.perf_counter()
        self._lock = threading.Lock()
        self._spans: List[Dict[str, Any]] = []
        self._depth = 0
        self._finished = False
        self._record_out: Optional[Dict[str, Any]] = None
        self._activations: List[_Activation] = []

    # ------------------------------------------------------------------
    # Spans
    # ------------------------------------------------------------------

    def span(self, name: str) -> _SpanContext:
        return _SpanContext(self, name)

    def _enter_span(self) -> int:
        with self._lock:
            depth = self._depth
            self._depth += 1
            return depth

    def _exit_span(self, name: str, start: float, end: float, depth: int) -> None:
        record: Dict[str, Any] = {
            "name": name,
            "start_us": int((start - self._t0) * 1e6),
            "dur_us": int((end - start) * 1e6),
            "depth": depth,
        }
        with self._lock:
            self._depth = depth
            self._spans.append(record)

    def record_span(
        self,
        name: str,
        dur: float,
        start: Optional[float] = None,
        depth: int = 0,
    ) -> None:
        """Record a span measured externally: *dur* seconds, starting
        at *start* (a ``time.perf_counter()`` instant; default: *dur*
        seconds ago).  How the service accounts queue wait measured on
        a different thread than the one that evaluates."""
        now = time.perf_counter()
        begin = start if start is not None else now - dur
        record: Dict[str, Any] = {
            "name": name,
            "start_us": int((begin - self._t0) * 1e6),
            "dur_us": int(dur * 1e6),
            "depth": depth,
        }
        with self._lock:
            self._spans.append(record)

    def note(self, **meta: Any) -> None:
        """Attach metadata to the trace record (merged on finish)."""
        with self._lock:
            self.meta.update(meta)

    def add_spans(self, records: List[Dict[str, Any]]) -> None:
        """Splice in span records minted in *another* process (the
        worker halves of a cross-process request).  Records are taken
        as-is — their ``start_us`` offsets are relative to the remote
        clock, but their ``span_id``/``parent_span`` links are globally
        unique, which is what stitching keys on."""
        if not records:
            return
        with self._lock:
            self._spans.extend(records)

    @property
    def record(self) -> Optional[Dict[str, Any]]:
        """The finished trace record, or None while still open.  Lets
        the slow-query log embed the full trace without re-fetching it
        from the tracer's ring."""
        with self._lock:
            return self._record_out

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def activate(self) -> _Activation:
        """Make this trace the calling thread's active trace (without
        finishing it on exit)."""
        return _Activation(self)

    def finish(self, **meta: Any) -> None:
        """Close the trace and push its record to the tracer's ring.
        Idempotent — only the first call records."""
        end = time.perf_counter()
        with self._lock:
            if self._finished:
                return
            self._finished = True
            if meta:
                self.meta.update(meta)
            record: Dict[str, Any] = {
                "trace": self.trace_id,
                "name": self.name,
                "span_id": self.span_id,
                "start": self.started_at,
                "dur_us": int((end - self._t0) * 1e6),
                "meta": dict(self.meta),
                "spans": list(self._spans),
            }
            if self.parent_span is not None:
                record["parent_span"] = self.parent_span
            self._record_out = record
        if self.tracer is not None:
            self.tracer._record(record)

    def __enter__(self) -> "Trace":
        activation = _Activation(self)
        activation.__enter__()
        self._activations.append(activation)
        return self

    def __exit__(self, exc_type: object, exc: Optional[BaseException], tb: object) -> bool:
        if self._activations:
            self._activations.pop().__exit__(exc_type, exc, tb)
        if exc is not None:
            self.note(error=str(exc))
        self.finish()
        return False


class Tracer:
    """Creates traces, samples them, and keeps finished records in a
    bounded ring buffer.

    * ``sample_every=N`` records every N-th trace (1 = all); ``0`` or
      ``enabled=False`` disables tracing entirely — every request gets
      the shared :data:`NULL_TRACE`.
    * ``ring`` bounds the record buffer; old records fall off the far
      end (``dropped`` counts them).
    """

    # guarded-by[_ring, _seq, _recorded, _dropped]: self._lock

    def __init__(self, ring: int = 256, sample_every: int = 1, enabled: bool = True):
        if ring < 1:
            raise ValueError(f"ring must be positive, got {ring}")
        if sample_every < 0:
            raise ValueError(f"sample_every must be >= 0, got {sample_every}")
        self.enabled = enabled and sample_every > 0
        self.sample_every = max(1, sample_every)
        self._lock = threading.Lock()
        self._ring: Deque[Dict[str, Any]] = deque(maxlen=ring)
        self._seq = 0
        self._recorded = 0
        self._dropped = 0

    # ------------------------------------------------------------------

    def trace(
        self,
        name: str,
        trace_id: Optional[str] = None,
        parent_span: Optional[str] = None,
        **meta: Any,
    ) -> Trace:
        """Begin a trace (or hand back :data:`NULL_TRACE` when this one
        is not sampled).

        An explicit *trace_id* is a **propagated** context: some
        upstream process already decided to sample this request, so the
        local sampling counter is bypassed and the new trace adopts the
        id (its record will stitch into the upstream tree through
        *parent_span*).  Tracing disabled outright still wins.
        """
        if not self.enabled:
            return NULL_TRACE  # type: ignore[return-value]
        if trace_id is not None:
            return Trace(self, name, trace_id, meta, parent_span=parent_span)
        with self._lock:
            self._seq += 1
            seq = self._seq
        if (seq - 1) % self.sample_every:
            return NULL_TRACE  # type: ignore[return-value]
        return Trace(self, name, f"{_PROCESS_TOKEN}-{seq}", meta)

    def _record(self, record: Dict[str, Any]) -> None:
        with self._lock:
            if len(self._ring) == self._ring.maxlen:
                self._dropped += 1
            self._ring.append(record)
            self._recorded += 1

    # ------------------------------------------------------------------
    # Reading the ring
    # ------------------------------------------------------------------

    def records(self) -> List[Dict[str, Any]]:
        """The buffered trace records, oldest first (non-destructive)."""
        with self._lock:
            return list(self._ring)

    def drain(self) -> List[Dict[str, Any]]:
        """Pop and return every buffered record."""
        with self._lock:
            out = list(self._ring)
            self._ring.clear()
            return out

    def dump_jsonl(self) -> str:
        """The buffered records as newline-delimited JSON."""
        return "\n".join(json.dumps(r, separators=(",", ":")) for r in self.records())

    def stats(self) -> Dict[str, Any]:
        with self._lock:
            return {
                "enabled": self.enabled,
                "sample_every": self.sample_every,
                "started": self._seq,
                "recorded": self._recorded,
                "buffered": len(self._ring),
                "dropped": self._dropped,
            }


def stitch(records: List[Dict[str, Any]]) -> List[Dict[str, Any]]:
    """Reassemble flat trace records (possibly from several processes)
    into per-trace stitched summaries.

    Records sharing a ``trace`` id — the client's root record, the
    service's child record, worker span records embedded in either —
    become one entry::

        {"trace": "<id>",
         "records": [...],            # finished records, oldest first
         "root": {...} | None,        # the record with no parent_span
         "span_count": 17,
         "orphan_spans": [...],       # parent_span points nowhere
         "well_formed": True}         # exactly one root, no orphans

    A record in the ring is finished by construction, so ``root is not
    None`` doubles as "the root finished".  Orphans are spans (or whole
    records) whose ``parent_span`` names a span id that appears nowhere
    in the trace — the signature of a parent that died before
    finishing, e.g. a worker killed mid-group.
    """
    by_trace: Dict[str, List[Dict[str, Any]]] = {}
    for rec in records:
        tid = str(rec.get("trace"))
        by_trace.setdefault(tid, []).append(rec)
    out: List[Dict[str, Any]] = []
    for tid in sorted(by_trace):
        recs = sorted(by_trace[tid], key=lambda r: float(r.get("start", 0.0)))
        known: Set[str] = set()
        for rec in recs:
            if rec.get("span_id"):
                known.add(rec["span_id"])
            for sp in rec.get("spans", ()):
                if sp.get("span_id"):
                    known.add(sp["span_id"])
        roots = [r for r in recs if not r.get("parent_span")]
        orphans: List[Dict[str, Any]] = []
        for rec in recs:
            parent = rec.get("parent_span")
            if parent and parent not in known:
                orphans.append({"name": rec.get("name"), "parent_span": parent})
            for sp in rec.get("spans", ()):
                sp_parent = sp.get("parent_span")
                if sp_parent and sp_parent not in known:
                    orphans.append(dict(sp))
        span_count = sum(len(rec.get("spans", ())) for rec in recs)
        out.append(
            {
                "trace": tid,
                "records": recs,
                "root": roots[0] if len(roots) == 1 else None,
                "span_count": span_count,
                "orphan_spans": orphans,
                "well_formed": len(roots) == 1 and not orphans,
            }
        )
    return out
