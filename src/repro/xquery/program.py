"""An XQuery *program* layer: recursive user-defined functions.

The Naive Method (Section 3.1, Fig. 2) rewrites a transform query into
standard XQuery whose heart is a recursive function (``local:insert``)
rebuilding the document.  The Section-4 user-query core cannot express
recursion, so this module extends it:

* a :class:`Program` = function declarations + a body expression;
* :class:`FunctionCall` / recursive evaluation with an explicit call
  budget guard;
* the extra expression forms Fig. 2 needs — ``element {name} {…}``
  computed constructors, ``some $x in … satisfies …`` with node
  identity (``is``), ``if/then/else`` over effective boolean values,
  and the builtins ``children($n)``, ``attributes($n)``,
  ``local-name($n)``, ``is-element($n)``, ``empty(…)``.

Values extend the core's items with :class:`AttrItem` (an attribute as
an item, so ``for $c in (children($n), attributes($n))`` can rebuild an
element faithfully) — mirroring Fig. 2's ``$n/(∗|@∗)``.

:mod:`repro.transform.rewrite` generates Fig. 2-style programs from
transform queries; evaluating them on this layer is the
``transform_naive_xquery`` evaluator — the paper's "no change to
existing XQuery processors" pathway, demonstrated end to end.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.xmltree.node import Element, Node, Text
from repro.xquery.ast import BoolExpr, Expr
from repro.xquery.evaluator import Environment, eval_bool, eval_expr


class XQueryRuntimeError(RuntimeError):
    """Raised for dynamic errors in program evaluation."""


@dataclass(frozen=True)
class AttrItem:
    """An attribute as a sequence item (name/value pair)."""

    name: str
    value: str

    def __str__(self) -> str:
        return f'attribute {self.name} {{"{self.value}"}}'


# ----------------------------------------------------------------------
# Expression forms beyond the Section-4 core
# ----------------------------------------------------------------------


@dataclass
class FunctionCall(Expr):
    """``local:name(arg, …)``."""

    name: str
    args: list

    def __str__(self) -> str:
        inner = ", ".join(str(a) for a in self.args)
        return f"local:{self.name}({inner})"


@dataclass
class ComputedElement(Expr):
    """``element {name-expr} {content-expr}``.

    Attribute items in the content become attributes; everything else
    becomes children (literals as text), exactly the constructor
    semantics Fig. 2 relies on.
    """

    name: Expr
    content: Expr

    def __str__(self) -> str:
        return f"element {{{self.name}}} {{ {self.content} }}"


@dataclass
class BuiltinCall(Expr):
    """One of the supported builtin functions (value position)."""

    name: str
    args: list

    def __str__(self) -> str:
        inner = ", ".join(str(a) for a in self.args)
        return f"fn:{self.name}({inner})"


@dataclass
class SomeSatisfies(BoolExpr):
    """``some $var in source satisfies cond``."""

    var: str
    source: Expr
    cond: "BoolExpr"

    def __str__(self) -> str:
        return f"some ${self.var} in {self.source} satisfies {self.cond}"


@dataclass
class IsSame(BoolExpr):
    """Node identity: ``$x is $y``."""

    left: Expr
    right: Expr

    def __str__(self) -> str:
        return f"{self.left} is {self.right}"


@dataclass
class EffectiveBool(BoolExpr):
    """Effective boolean value of a sequence (non-empty ⇒ true)."""

    expr: Expr

    def __str__(self) -> str:
        return str(self.expr)


@dataclass
class FunctionDecl:
    """``declare function local:name($p1, …) { body }``."""

    name: str
    params: list
    body: Expr

    def __str__(self) -> str:
        params = ", ".join(f"${p}" for p in self.params)
        return (
            f"declare function local:{self.name}({params})\n"
            f"{{ {self.body} }};"
        )


@dataclass
class Program:
    """Declarations plus the main expression."""

    declarations: list = field(default_factory=list)
    body: Expr = None

    def function(self, name: str) -> FunctionDecl:
        for decl in self.declarations:
            if decl.name == name:
                return decl
        raise XQueryRuntimeError(f"undeclared function local:{name}")

    def __str__(self) -> str:
        parts = [str(d) for d in self.declarations]
        parts.append(str(self.body))
        return "\n\n".join(parts)


# ----------------------------------------------------------------------
# Evaluation
# ----------------------------------------------------------------------

#: Recursion guard: programs over trees recurse once per node, so this
#: bounds the *depth*; Fig. 2-style programs use O(depth) frames.
MAX_CALL_DEPTH = 100_000


class ProgramEvaluator:
    """Evaluates programs; plugs into the core evaluator's dispatch via
    the extension hooks below."""

    def __init__(self, program: Program, root: Element):
        self.program = program
        self.root = root
        self.depth = 0

    def run(self) -> list:
        return self.eval(self.program.body, Environment())

    # -- value expressions ---------------------------------------------

    def eval(self, expr: Expr, env: Environment) -> list:
        if isinstance(expr, FunctionCall):
            return self._call(expr, env)
        if isinstance(expr, ComputedElement):
            return [self._construct(expr, env)]
        if isinstance(expr, BuiltinCall):
            return self._builtin(expr, env)
        if isinstance(expr, _CoreBridge):
            raise XQueryRuntimeError("internal: bridge must not be evaluated")
        # Defer to the Section-4 core for its own forms, threading this
        # evaluator through so nested extended forms still work.
        from repro.xquery import ast as core

        if isinstance(expr, core.For):
            items: list = []
            for item in self.eval(expr.source, env):
                items.extend(self.eval(expr.body, env.bound(expr.var, [item])))
            return items
        if isinstance(expr, core.Let):
            value = self.eval(expr.value, env)
            return self.eval(expr.body, env.bound(expr.var, value))
        if isinstance(expr, core.Conditional):
            branch = expr.then if self.eval_bool(expr.cond, env) else expr.orelse
            return self.eval(branch, env)
        if isinstance(expr, core.Sequence):
            items = []
            for part in expr.parts:
                items.extend(self.eval(part, env))
            return items
        # Leaf forms have no nested extended expressions: the plain
        # core evaluator handles them (PathFrom, VarRef, Literal, …).
        return eval_expr(expr, env, self.root)

    def eval_bool(self, expr: BoolExpr, env: Environment) -> bool:
        if isinstance(expr, SomeSatisfies):
            for item in self.eval(expr.source, env):
                if self.eval_bool(expr.cond, env.bound(expr.var, [item])):
                    return True
            return False
        if isinstance(expr, IsSame):
            left = self.eval(expr.left, env)
            right = self.eval(expr.right, env)
            return any(l is r for l in left for r in right)
        if isinstance(expr, EffectiveBool):
            items = self.eval(expr.expr, env)
            if len(items) == 1 and isinstance(items[0], bool):
                return items[0]
            return bool(items)
        from repro.xquery import ast as core

        if isinstance(expr, core.BoolAnd):
            return self.eval_bool(expr.left, env) and self.eval_bool(expr.right, env)
        if isinstance(expr, core.BoolOr):
            return self.eval_bool(expr.left, env) or self.eval_bool(expr.right, env)
        if isinstance(expr, core.BoolNot):
            return not self.eval_bool(expr.operand, env)
        if isinstance(expr, core.Exists):
            return bool(self.eval(expr.expr, env))
        return eval_bool(expr, env, self.root)

    # -- extended forms --------------------------------------------------

    def _call(self, call: FunctionCall, env: Environment) -> list:
        decl = self.program.function(call.name)
        if len(decl.params) != len(call.args):
            raise XQueryRuntimeError(
                f"local:{call.name} expects {len(decl.params)} arguments, "
                f"got {len(call.args)}"
            )
        self.depth += 1
        if self.depth > MAX_CALL_DEPTH:
            raise XQueryRuntimeError("function call depth exceeded")
        try:
            frame = Environment()
            for param, arg in zip(decl.params, call.args):
                frame = frame.bound(param, self.eval(arg, env))
            return self.eval(decl.body, frame)
        finally:
            self.depth -= 1

    def _construct(self, ctor: ComputedElement, env: Environment) -> Element:
        name_items = self.eval(ctor.name, env)
        if len(name_items) != 1 or not isinstance(name_items[0], str):
            raise XQueryRuntimeError("element{} requires exactly one string name")
        fresh = Element(name_items[0], {}, [])
        for item in self.eval(ctor.content, env):
            if isinstance(item, AttrItem):
                fresh.attrs[item.name] = item.value
            elif isinstance(item, Element):
                fresh.children.append(item)
            elif isinstance(item, Text):
                fresh.children.append(item)
            else:
                fresh.children.append(Text(str(item)))
        return fresh

    def _builtin(self, call: BuiltinCall, env: Environment) -> list:
        args = [self.eval(a, env) for a in call.args]
        name = call.name
        if name == "doc":
            return [self.root]
        if name == "children":
            return [child for item in args[0]
                    if isinstance(item, Element) for child in item.children]
        if name == "attributes":
            out: list = []
            for item in args[0]:
                if isinstance(item, Element):
                    out.extend(AttrItem(k, v) for k, v in item.attrs.items())
            return out
        if name == "local-name":
            return [item.label for item in args[0] if isinstance(item, Element)]
        if name == "is-element":
            return [bool(args[0]) and all(isinstance(i, Element) for i in args[0])]
        if name == "empty":
            return [not args[0]]
        if name == "copy":
            from repro.xmltree.node import deep_copy

            return [deep_copy(item) if isinstance(item, (Element, Text)) else item
                    for item in args[0]]
        if name == "string":
            return [
                item.own_text() if isinstance(item, Element)
                else item.value if isinstance(item, Text)
                else str(item)
                for item in args[0]
            ]
        raise XQueryRuntimeError(f"unknown builtin fn:{name}")


class _CoreBridge(Expr):  # pragma: no cover - documentation marker
    """Placeholder type documenting that extended forms are evaluated
    only through :class:`ProgramEvaluator`, never the core evaluator."""


def evaluate_program(program: Program, root: Element) -> list:
    """Evaluate a program against a document root."""
    return ProgramEvaluator(program, root).run()
