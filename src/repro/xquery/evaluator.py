"""Evaluator for the XQuery expression core.

Items are Elements, attribute strings, or literals.  Comparison
semantics mirror the qualifier comparisons of the ``X`` fragment:
elements atomize to their own text, a float on either side forces a
numeric comparison (unparseable values never match), and general
comparisons are existential.
"""

from __future__ import annotations

from typing import Optional

from repro.transform.topdown import topdown_subtree
from repro.xmltree.node import Element
from repro.xpath.ast import Path
from repro.xpath.evaluator import compare_value, eval_qualifier, eval_values
from repro.xquery.ast import (
    BoolAnd,
    BoolConst,
    BoolExpr,
    BoolNot,
    BoolOr,
    Compare,
    Conditional,
    ConstTree,
    ElementTemplate,
    EmptySeq,
    Exists,
    Expr,
    For,
    Let,
    Literal,
    PathFrom,
    QualCheck,
    Sequence,
    TransformedSubtree,
    UserQuery,
    VarRef,
)


class Environment:
    """Immutable-by-convention variable bindings (var → item list)."""

    __slots__ = ("bindings",)

    def __init__(self, bindings: Optional[dict] = None):
        self.bindings = bindings or {}

    def bound(self, var: str, items: list) -> "Environment":
        fresh = dict(self.bindings)
        fresh[var] = items
        return Environment(fresh)

    def lookup(self, var: str) -> list:
        try:
            return self.bindings[var]
        except KeyError:
            raise NameError(f"unbound query variable ${var}") from None


def evaluate_query(root: Element, query) -> list:
    """Evaluate a :class:`UserQuery` or core expression at *root*."""
    expr = query.core() if isinstance(query, UserQuery) else query
    return eval_expr(expr, Environment(), root)


def eval_expr(expr: Expr, env: Environment, root: Element) -> list:
    """Evaluate a value expression to an item list."""
    if isinstance(expr, PathFrom):
        if expr.var is None:
            return _eval_path(root, expr.path)
        items: list = []
        for item in env.lookup(expr.var):
            if isinstance(item, Element):
                items.extend(_eval_path(item, expr.path))
        return items
    if isinstance(expr, VarRef):
        return list(env.lookup(expr.var))
    if isinstance(expr, Literal):
        return [expr.value]
    if isinstance(expr, EmptySeq):
        return []
    if isinstance(expr, ConstTree):
        return [expr.root]
    if isinstance(expr, Sequence):
        items = []
        for part in expr.parts:
            items.extend(eval_expr(part, env, root))
        return items
    if isinstance(expr, ElementTemplate):
        children: list = []
        for part in expr.parts:
            for item in eval_expr(part, env, root):
                if isinstance(item, Element):
                    children.append(item)
                else:
                    from repro.xmltree.node import Text

                    children.append(Text(str(item)))
        return [Element(expr.label, dict(expr.attrs), children)]
    if isinstance(expr, For):
        items = []
        for item in eval_expr(expr.source, env, root):
            items.extend(eval_expr(expr.body, env.bound(expr.var, [item]), root))
        return items
    if isinstance(expr, Let):
        value = eval_expr(expr.value, env, root)
        return eval_expr(expr.body, env.bound(expr.var, value), root)
    if isinstance(expr, Conditional):
        branch = expr.then if eval_bool(expr.cond, env, root) else expr.orelse
        return eval_expr(branch, env, root)
    if isinstance(expr, TransformedSubtree):
        return _eval_transformed(expr, env)
    raise TypeError(f"unknown expression {expr!r}")


def eval_bool(expr: BoolExpr, env: Environment, root: Element) -> bool:
    """Evaluate a boolean expression."""
    if isinstance(expr, BoolConst):
        return expr.value
    if isinstance(expr, Exists):
        return bool(eval_expr(expr.expr, env, root))
    if isinstance(expr, Compare):
        left = _atomize(eval_expr(expr.left, env, root))
        right = _atomize(eval_expr(expr.right, env, root))
        return _general_compare(left, expr.op, right)
    if isinstance(expr, BoolAnd):
        return eval_bool(expr.left, env, root) and eval_bool(expr.right, env, root)
    if isinstance(expr, BoolOr):
        return eval_bool(expr.left, env, root) or eval_bool(expr.right, env, root)
    if isinstance(expr, BoolNot):
        return not eval_bool(expr.operand, env, root)
    if isinstance(expr, QualCheck):
        for item in env.lookup(expr.var):
            if isinstance(item, Element) and eval_qualifier(item, expr.qual):
                return True
        return False
    raise TypeError(f"unknown boolean expression {expr!r}")


def _eval_path(context: Element, path: Path) -> list:
    """Path evaluation that also supports a trailing attribute step."""
    return eval_values(context, path)


def _eval_transformed(expr: TransformedSubtree, env: Environment) -> list:
    """The embedded topDown call of composed queries."""
    items = env.lookup(expr.var)
    out: list = []
    for item in items:
        if not isinstance(item, Element):
            out.append(item)
            continue
        if expr.from_parent:
            out.extend(topdown_subtree(expr.nfa, expr.states, expr.update, item))
            continue
        rebuilt = Element(item.label if expr.relabel is None else expr.relabel,
                          dict(item.attrs), [])
        for child in item.children:
            rebuilt.children.extend(
                topdown_subtree(expr.nfa, expr.states, expr.update, child)
            )
        if expr.patched:
            from repro.xmltree.node import deep_copy

            rebuilt.children.append(deep_copy(expr.update.content))
        out.append(rebuilt)
    return out


def _atomize(items: list) -> list:
    out = []
    for item in items:
        if isinstance(item, Element):
            out.append(item.own_text())
        else:
            out.append(item)
    return out


def _general_compare(left: list, op: str, right: list) -> bool:
    for lv in left:
        for rv in right:
            if _pair_compare(lv, op, rv):
                return True
    return False


def _pair_compare(lv, op: str, rv) -> bool:
    if isinstance(lv, float) or isinstance(rv, float):
        try:
            return _numeric(float(lv), op, float(rv))
        except (TypeError, ValueError):
            return False
    return compare_value(str(lv), op, str(rv))


def _numeric(ln: float, op: str, rn: float) -> bool:
    if op == "=":
        return ln == rn
    if op == "!=":
        return ln != rn
    if op == "<":
        return ln < rn
    if op == "<=":
        return ln <= rn
    if op == ">":
        return ln > rn
    if op == ">=":
        return ln >= rn
    raise ValueError(f"unknown operator {op!r}")
