"""Expression core for the XQuery subset.

Value model: every expression evaluates to a *sequence of items*, where
an item is an :class:`~repro.xmltree.node.Element`, an attribute string,
or a literal (str/float).  Variables bind sequences; ``for`` iterates
item by item.  Boolean expressions evaluate to Python bools; a sequence
used as a condition is truthy when non-empty (XQuery's ``empty()``).

Two members exist purely for composed queries (Section 4):

* :class:`QualCheck` — evaluate an ``X`` qualifier at the node bound to
  a variable *in the original document* (the automaton's qualifiers are
  defined against the pre-update tree).
* :class:`TransformedSubtree` — the embedded ``topDown(Mp, S, Qt, $x)``
  call of Example 4.3/Q3: transform just the subtree under a bound
  node, given the automaton states reached at it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Union

from repro.xmltree.node import Element
from repro.xpath.ast import Path, Qual


class Expr:
    """Base class of value expressions (evaluate to item sequences)."""

    __slots__ = ()


class BoolExpr:
    """Base class of boolean expressions."""

    __slots__ = ()


# ----------------------------------------------------------------------
# Value expressions
# ----------------------------------------------------------------------


@dataclass
class PathFrom(Expr):
    """``$var/path`` (or ``path`` from the query root when var is None).

    A trailing attribute step yields attribute strings.
    """

    var: Optional[str]
    path: Path

    def __str__(self) -> str:
        base = f"${self.var}" if self.var else "doc()"
        text = str(self.path)
        if not self.path.steps:
            return base
        sep = "" if text.startswith("//") else "/"
        return f"{base}{sep}{text}"


@dataclass
class VarRef(Expr):
    """``$var`` — the variable's bound sequence."""

    var: str

    def __str__(self) -> str:
        return f"${self.var}"


@dataclass
class Literal(Expr):
    """A string or number constant."""

    value: Union[str, float]

    def __str__(self) -> str:
        return f"'{self.value}'" if isinstance(self.value, str) else f"{self.value:g}"


@dataclass
class EmptySeq(Expr):
    """``()`` — the empty sequence."""

    def __str__(self) -> str:
        return "()"


@dataclass
class ConstTree(Expr):
    """A constant XML subtree (the update's ``e`` spliced into a
    composed query)."""

    root: Element

    def __str__(self) -> str:
        from repro.xmltree.serializer import serialize

        return serialize(self.root)


@dataclass
class Sequence(Expr):
    """Concatenation of sub-sequences."""

    parts: list

    def __str__(self) -> str:
        return "(" + ", ".join(str(p) for p in self.parts) + ")"


@dataclass
class ElementTemplate(Expr):
    """``<label>{ part, … }</label>`` — an element constructor."""

    label: str
    attrs: dict = field(default_factory=dict)
    parts: list = field(default_factory=list)

    def __str__(self) -> str:
        inner = ", ".join(str(p) for p in self.parts)
        return f"<{self.label}>{{ {inner} }}</{self.label}>"


@dataclass
class For(Expr):
    """``for $var in source return body`` (body once per item)."""

    var: str
    source: Expr
    body: Expr

    def __str__(self) -> str:
        return f"for ${self.var} in {self.source} return {self.body}"


@dataclass
class Let(Expr):
    """``let $var := value return body``."""

    var: str
    value: Expr
    body: Expr

    def __str__(self) -> str:
        return f"let ${self.var} := {self.value} return {self.body}"


@dataclass
class Conditional(Expr):
    """``if (cond) then … else …``."""

    cond: "BoolExpr"
    then: Expr
    orelse: Expr

    def __str__(self) -> str:
        return f"if ({self.cond}) then {self.then} else {self.orelse}"


@dataclass
class TransformedSubtree(Expr):
    """``topDown(Mp, S, Qt, $var)`` — the embedded topDown call.

    Two modes:

    * ``from_parent=False`` (default): *states* are the automaton states
      **at the bound node**; its children are transformed and the node
      rebuilt.  ``patched`` appends the update's constant element (an
      insert that selected the node itself); ``relabel`` renames the
      rebuilt node (a rename that selected it).
    * ``from_parent=True``: *states* are the states **at the parent**;
      the node itself is run through ``topdown_subtree`` (re-deciding
      its own qualifiers/selection at runtime) and the resulting node
      list — possibly empty (delete) or the replacement — is returned.

    The selecting NFA and update are attached by the composer.
    """

    var: str
    states: frozenset
    patched: bool = False
    relabel: Optional[str] = None
    from_parent: bool = False
    nfa: object = None      # SelectingNFA
    update: object = None   # Update

    def __str__(self) -> str:
        return f"topDown(Mp, S{set(self.states)}, Qt, ${self.var})"


# ----------------------------------------------------------------------
# Boolean expressions
# ----------------------------------------------------------------------


@dataclass
class BoolConst(BoolExpr):
    value: bool

    def __str__(self) -> str:
        return "true()" if self.value else "false()"


@dataclass
class Exists(BoolExpr):
    """``not(empty(expr))``."""

    expr: Expr

    def __str__(self) -> str:
        return f"exists({self.expr})"


@dataclass
class Compare(BoolExpr):
    """Existential (general) comparison of two sequences."""

    left: Expr
    op: str
    right: Expr

    def __str__(self) -> str:
        return f"{self.left} {self.op} {self.right}"


@dataclass
class BoolAnd(BoolExpr):
    left: BoolExpr
    right: BoolExpr

    def __str__(self) -> str:
        return f"({self.left} and {self.right})"


@dataclass
class BoolOr(BoolExpr):
    left: BoolExpr
    right: BoolExpr

    def __str__(self) -> str:
        return f"({self.left} or {self.right})"


@dataclass
class BoolNot(BoolExpr):
    operand: BoolExpr

    def __str__(self) -> str:
        return f"not({self.operand})"


@dataclass
class QualCheck(BoolExpr):
    """Evaluate an ``X`` qualifier at the node bound to *var* (against
    the original document — see the module docstring)."""

    var: str
    qual: Qual

    def __str__(self) -> str:
        return f"${self.var}[{self.qual}]"


# ----------------------------------------------------------------------
# The surface user query
# ----------------------------------------------------------------------


@dataclass
class UserQuery:
    """The parsed surface form of a Section-4 user query.

    Kept alongside its desugared core expression so the composer can
    work on the structured form while evaluation uses the core.
    """

    var: str
    path: Path
    conditions: list          # list[BoolExpr] (conjunction)
    template: Expr            # the return expression
    source_text: str = ""

    def core(self) -> Expr:
        """Desugar to the expression core."""
        body: Expr = self.template
        if self.conditions:
            cond: BoolExpr = self.conditions[0]
            for extra in self.conditions[1:]:
                cond = BoolAnd(cond, extra)
            body = Conditional(cond, body, EmptySeq())
        return For(self.var, PathFrom(None, self.path), body)

    def __str__(self) -> str:
        return self.source_text or str(self.core())
