"""An XQuery subset: the user queries of Section 4 and the expression
core that composed queries are built from.

The paper's user queries have the shape::

    for $x in ρ
    where ρ'1 = ρ''1 and … and ρ'k = ρ''k
    return exp(ϱ1, …, ϱm)

with ``ρ`` an ``X`` path and the ``ρ'``/``ϱ`` operands either constants
or ``$x/ρ`` paths; ``exp`` is an XML element template.  The parser
(:func:`parse_user_query`) turns this into the expression core of
:mod:`repro.xquery.ast` — the same core the Compose Method emits, which
additionally uses ``let``, conditionals, qualifier checks and embedded
``topDown`` calls (Example 4.2/4.3).
"""

from repro.xquery.ast import (
    Compare,
    Conditional,
    ConstTree,
    ElementTemplate,
    EmptySeq,
    Exists,
    Expr,
    For,
    Let,
    Literal,
    PathFrom,
    QualCheck,
    Sequence,
    TransformedSubtree,
    UserQuery,
    VarRef,
)
from repro.xquery.evaluator import evaluate_query
from repro.xquery.parser import parse_user_query

__all__ = [
    "Compare",
    "Conditional",
    "ConstTree",
    "ElementTemplate",
    "EmptySeq",
    "Exists",
    "Expr",
    "For",
    "Let",
    "Literal",
    "PathFrom",
    "QualCheck",
    "Sequence",
    "TransformedSubtree",
    "UserQuery",
    "VarRef",
    "evaluate_query",
    "parse_user_query",
]
