"""Parser for XQuery *programs* — the textual form of Fig. 2.

Reads the language :mod:`repro.xquery.program` evaluates (function
declarations, FLWR, computed element constructors, ``some … satisfies``
with node identity, builtins), so the Fig. 2 rewriting round-trips::

    program  = rewrite_to_xquery(qt)
    reparsed = parse_xquery_program(str(program))
    evaluate_program(reparsed, T)  ==  evaluate_program(program, T)

Grammar (names may carry ``local:``/``fn:`` prefixes)::

    program   := declaration* expr
    declaration := 'declare' 'function' NAME '(' [$v (',' $v)*] ')'
                   '{' expr '}' [';']
    expr      := flwr | if | ctor | primary
    flwr      := (('for' $v 'in' expr) | ('let' $v ':=' expr))+
                 ['where' bool] 'return' expr
    if        := 'if' '(' bool ')' 'then' expr 'else' expr
    ctor      := 'element' '{' expr '}' '{' [expr (',' expr)*] '}'
    primary   := '(' [expr (',' expr)*] ')' | STRING | NUMBER
               | $v ['/' relpath] | NAME '(' args ')' ['/' relpath]
               | relpath
    bool      := bool_and ('or' bool_and)*
    bool_and  := bool_not ('and' bool_not)*
    bool_not  := 'not' '(' bool ')' | 'some' $v 'in' expr 'satisfies' bool
               | 'empty' '(' expr ')' | cmp
    cmp       := expr [('is' | OP) expr]      (bare expr ⇒ effective boolean)

Direct element constructors (``<x>…</x>``) are re-scanned from the raw
source with the XML parser; their text content must stay within the
query lexer's alphabet (no bare ``&`` or ``#``) — entity-escape
anything unusual, as the rewriting's own output does.
"""

from __future__ import annotations

from repro.xpath import lexer as lx
from repro.xpath.ast import Path
from repro.xpath.lexer import TokenStream, XPathSyntaxError, tokenize
from repro.xpath.parser import parse_path
from repro.xquery.ast import (
    BoolAnd,
    BoolExpr,
    BoolNot,
    BoolOr,
    Compare,
    Conditional,
    EmptySeq,
    Expr,
    For,
    Let,
    Literal,
    PathFrom,
    Sequence,
    VarRef,
)
from repro.xquery.program import (
    BuiltinCall,
    ComputedElement,
    EffectiveBool,
    FunctionCall,
    FunctionDecl,
    IsSame,
    Program,
    SomeSatisfies,
)

_KEYWORDS = {
    "declare", "function", "for", "let", "in", "return", "where",
    "if", "then", "else", "element", "some", "satisfies", "is",
    "empty", "document",
}

#: Builtins the program evaluator provides (without the fn: prefix).
BUILTINS = {
    "doc", "children", "attributes", "local-name", "is-element",
    "empty", "string", "copy",
}


def parse_xquery_program(source: str) -> Program:
    """Parse a program from text."""
    stream = TokenStream(tokenize(source, keywords=_KEYWORDS))
    stream.source = source  # for inline XML literals (direct constructors)
    declarations = []
    while stream.at_name("declare"):
        declarations.append(_parse_declaration(stream))
    body = _parse_expr(stream)
    if not stream.done():
        raise XPathSyntaxError(
            f"unexpected trailing input {stream.current.value!r}", stream.current.pos
        )
    return Program(declarations=declarations, body=body)


def _strip_prefix(name: str) -> str:
    if ":" in name:
        return name.split(":", 1)[1]
    return name


def _parse_declaration(stream: TokenStream) -> FunctionDecl:
    stream.expect_name("declare")
    stream.expect_name("function")
    name = _strip_prefix(stream.expect(lx.NAME).value)
    stream.expect(lx.LPAREN)
    params = []
    if stream.current.type == lx.DOLLAR:
        stream.advance()
        params.append(stream.expect(lx.NAME).value)
        while stream.accept(lx.COMMA):
            stream.expect(lx.DOLLAR)
            params.append(stream.expect(lx.NAME).value)
    stream.expect(lx.RPAREN)
    stream.expect(lx.LBRACE)
    body = _parse_expr(stream)
    stream.expect(lx.RBRACE)
    stream.accept(lx.SEMICOLON)  # conventional terminator, optional
    return FunctionDecl(name, params, body)


def _parse_expr(stream: TokenStream) -> Expr:
    token = stream.current
    if token.type == lx.NAME:
        if token.value in ("for", "let"):
            return _parse_flwr(stream)
        if token.value == "if":
            return _parse_if(stream)
        if token.value == "element":
            return _parse_ctor(stream)
    return _parse_primary(stream)


def _parse_flwr(stream: TokenStream) -> Expr:
    clauses = []  # ("for"|"let", var, expr)
    while stream.at_name("for") or stream.at_name("let"):
        kind = stream.advance().value
        stream.expect(lx.DOLLAR)
        var = stream.expect(lx.NAME).value
        if kind == "for":
            stream.expect_name("in")
        else:
            stream.expect(lx.ASSIGN)
        clauses.append((kind, var, _parse_expr(stream)))
    condition = None
    if stream.at_name("where"):
        stream.advance()
        condition = _parse_bool(stream)
    stream.expect_name("return")
    body = _parse_expr(stream)
    if condition is not None:
        body = Conditional(condition, body, EmptySeq())
    for kind, var, source in reversed(clauses):
        body = For(var, source, body) if kind == "for" else Let(var, source, body)
    return body


def _parse_if(stream: TokenStream) -> Conditional:
    stream.expect_name("if")
    stream.expect(lx.LPAREN)
    condition = _parse_bool(stream)
    stream.expect(lx.RPAREN)
    stream.expect_name("then")
    then = _parse_expr(stream)
    stream.expect_name("else")
    orelse = _parse_expr(stream)
    return Conditional(condition, then, orelse)


def _parse_ctor(stream: TokenStream) -> ComputedElement:
    stream.expect_name("element")
    stream.expect(lx.LBRACE)
    name = _parse_expr(stream)
    stream.expect(lx.RBRACE)
    stream.expect(lx.LBRACE)
    content = _parse_sequence_until(stream, lx.RBRACE)
    stream.expect(lx.RBRACE)
    return ComputedElement(name, content)


def _parse_sequence_until(stream: TokenStream, end_type: str) -> Expr:
    if stream.current.type == end_type:
        return EmptySeq()
    parts = [_parse_expr(stream)]
    while stream.accept(lx.COMMA):
        parts.append(_parse_expr(stream))
    if len(parts) == 1:
        return parts[0]
    return Sequence(parts)


def _parse_primary(stream: TokenStream) -> Expr:
    token = stream.current
    if token.type == lx.OP and token.value == "<":
        return _parse_xml_literal(stream)
    if token.type == lx.LPAREN:
        stream.advance()
        inner = _parse_sequence_until(stream, lx.RPAREN)
        stream.expect(lx.RPAREN)
        return inner
    if token.type == lx.STRING:
        stream.advance()
        return Literal(token.value)
    if token.type == lx.NUMBER:
        stream.advance()
        return Literal(float(token.value))
    if token.type == lx.DOLLAR:
        stream.advance()
        var = stream.expect(lx.NAME).value
        if stream.current.type in (lx.SLASH, lx.DSLASH):
            return PathFrom(var, parse_path(stream))
        return VarRef(var)
    if token.type == lx.NAME and stream.peek().type == lx.LPAREN:
        return _parse_call(stream)
    # A bare path from the document root.
    return PathFrom(None, parse_path(stream))


def _parse_xml_literal(stream: TokenStream) -> Expr:
    """A direct element constructor: re-scan the raw source as XML from
    the current token's offset, then resynchronize the token cursor."""
    from repro.xmltree.parser import XMLSyntaxError, parse_fragment
    from repro.xquery.ast import ConstTree

    source = getattr(stream, "source", None)
    start = stream.current.pos
    if source is None:
        raise XPathSyntaxError("XML literals need the raw source", start)
    try:
        element, end = parse_fragment(source, start)
    except XMLSyntaxError as exc:
        raise XPathSyntaxError(f"bad XML literal: {exc}", start) from exc
    while stream.current.type != lx.EOF and stream.current.pos < end:
        stream.advance()
    return ConstTree(element)


def _parse_call(stream: TokenStream) -> Expr:
    raw_name = stream.expect(lx.NAME).value
    name = _strip_prefix(raw_name)
    stream.expect(lx.LPAREN)
    args = []
    if stream.current.type != lx.RPAREN:
        args.append(_parse_expr(stream))
        while stream.accept(lx.COMMA):
            args.append(_parse_expr(stream))
    stream.expect(lx.RPAREN)
    if raw_name.startswith("local:"):
        call: Expr = FunctionCall(name, args)
    elif name in BUILTINS:
        call = BuiltinCall(name, args)
    else:
        raise XPathSyntaxError(f"unknown function {raw_name!r}", stream.current.pos)
    # doc()/path — a path applied to a call only makes sense for doc().
    if stream.current.type in (lx.SLASH, lx.DSLASH):
        if name != "doc":
            raise XPathSyntaxError(
                "a path step may only follow doc()", stream.current.pos
            )
        return PathFrom(None, parse_path(stream))
    return call


def _parse_bool(stream: TokenStream) -> BoolExpr:
    left = _parse_bool_and(stream)
    while stream.accept(lx.OR):
        left = BoolOr(left, _parse_bool_and(stream))
    return left


def _parse_bool_and(stream: TokenStream) -> BoolExpr:
    left = _parse_bool_not(stream)
    while stream.accept(lx.AND):
        left = BoolAnd(left, _parse_bool_not(stream))
    return left


def _parse_bool_not(stream: TokenStream) -> BoolExpr:
    if stream.current.type == lx.LPAREN:
        # In boolean position parentheses group booleans: '(b1 or b2)'.
        # (Comparisons are part of the boolean grammar, so parenthesized
        # comparisons parse here too.)
        stream.advance()
        inner = _parse_bool(stream)
        stream.expect(lx.RPAREN)
        return inner
    if stream.accept(lx.NOT):
        stream.expect(lx.LPAREN)
        inner = _parse_bool(stream)
        stream.expect(lx.RPAREN)
        return BoolNot(inner)
    if stream.at_name("some"):
        stream.advance()
        stream.expect(lx.DOLLAR)
        var = stream.expect(lx.NAME).value
        stream.expect_name("in")
        source = _parse_expr(stream)
        stream.expect_name("satisfies")
        condition = _parse_bool(stream)
        return SomeSatisfies(var, source, condition)
    return _parse_cmp(stream)


def _parse_cmp(stream: TokenStream) -> BoolExpr:
    left = _parse_expr(stream)
    if stream.at_name("is"):
        stream.advance()
        right = _parse_expr(stream)
        return IsSame(left, right)
    if stream.current.type == lx.OP:
        op = stream.advance().value
        right = _parse_expr(stream)
        return Compare(left, op, right)
    return EffectiveBool(left)
