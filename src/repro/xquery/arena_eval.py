"""Arena-backed evaluation of the XQuery core: the read path of the
columnar backend.

The Node evaluator (:mod:`repro.xquery.evaluator`) walks ``Element``
objects; this one walks a :class:`~repro.xmltree.arena.FrozenDocument`
and represents element items as **pre-order indices** (plain ``int``;
unambiguous, since literals are only ``str``/``float``).  Path
expressions run the selecting NFA's arena walk
(:func:`repro.automata.arena_run.select_indices`) over contiguous
index ranges; qualifier checks and atomization read the own-text
column.  Only the items a caller actually materializes are ever
thawed — a query that selects 12 nodes out of a million-node arena
allocates 12 subtrees, nothing else.

Semantics are pinned to ``evaluate_query`` (the arena property tests
run both over random documents):

* a path whose steps are all descendant/self steps can select its own
  context (the oracle's ``descendants_or_self`` includes self; the NFA
  run convention never selects the evaluation root, so the context is
  checked — and prepended — separately);
* constructs outside the arena fast path (paths the selecting NFA
  rejects, embedded ``topDown`` calls of composed queries, element
  templates) fall back to the Node evaluator on thawed items, so every
  query evaluates — the fast path just covers the hot shapes.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.automata.arena_run import select_indices
from repro.automata.selecting import SelectingNFA, build_selecting_nfa
from repro.xmltree.arena import FrozenDocument, thaw
from repro.xmltree.node import Element, Text
from repro.xpath.ast import Path
from repro.xpath.evaluator import compare_value, eval_qualifier, eval_values
from repro.xpath.normalize import UnsupportedPathError
from repro.xquery.ast import (
    BoolAnd,
    BoolConst,
    BoolExpr,
    BoolNot,
    BoolOr,
    Compare,
    Conditional,
    ConstTree,
    ElementTemplate,
    EmptySeq,
    Exists,
    Expr,
    For,
    Let,
    Literal,
    PathFrom,
    QualCheck,
    Sequence,
    TransformedSubtree,
    UserQuery,
    VarRef,
)

__all__ = ["ArenaEvaluator", "evaluate_query_arena"]

#: Resolves a parsed Path to a (cached) selecting NFA.
NFAFor = Callable[[Path], SelectingNFA]


def evaluate_query_arena(arena: FrozenDocument, query, nfa_for: Optional[NFAFor] = None) -> list:
    """Evaluate a :class:`UserQuery` (or core expression) over the
    arena; element results are thawed, so the output is exactly what
    ``evaluate_query`` on the thawed document would return."""
    return ArenaEvaluator(arena, nfa_for).evaluate(query)


class ArenaEvaluator:
    """One query evaluation context over one frozen document.

    *nfa_for* lets a resident engine or store share its compiled
    automata cache; without it, NFAs built for this evaluator's paths
    are memoized per instance.
    """

    __slots__ = ("arena", "_nfa_for", "_nfas", "_quals", "_thawed_root")

    def __init__(self, arena: FrozenDocument, nfa_for: Optional[NFAFor] = None):
        self.arena = arena
        self._nfa_for = nfa_for
        self._nfas: dict = {}
        self._quals: dict = {}
        self._thawed_root: Optional[Element] = None

    # ------------------------------------------------------------------
    # Entry points
    # ------------------------------------------------------------------

    def evaluate(self, query) -> list:
        """Evaluate and materialize: indices thaw to fresh subtrees."""
        return [self.materialize(item) for item in self.evaluate_refs(query)]

    def evaluate_refs(self, query) -> list:
        """Evaluate to raw items: ``int`` arena indices for element
        results (the zero-thaw form the serialized read path and the
        benchmarks consume), strings/floats/Elements otherwise."""
        expr = query.core() if isinstance(query, UserQuery) else query
        return self._eval(expr, {})

    def materialize(self, item):
        if isinstance(item, int):
            return thaw(self.arena, item)
        return item

    # ------------------------------------------------------------------
    # Compiled-artifact memos
    # ------------------------------------------------------------------

    def _nfa(self, path: Path) -> SelectingNFA:
        if self._nfa_for is not None:
            return self._nfa_for(path)
        found = self._nfas.get(path)
        if found is None:
            found = self._nfas[path] = build_selecting_nfa(path)
        return found

    def _qual_check(self, qual):
        found = self._quals.get(id(qual))
        if found is None:
            from repro.xpath.arena_compiler import compile_qualifier_arena

            found = compile_qualifier_arena(qual, self.arena.symbols)
            self._quals[id(qual)] = (found, qual)  # keep the AST alive
        else:
            found = found[0]
        return found

    def _root_tree(self) -> Element:
        """The fully thawed document — only built when a query shape
        falls outside the arena fast path."""
        if self._thawed_root is None:
            self._thawed_root = thaw(self.arena, 0)
        return self._thawed_root

    # ------------------------------------------------------------------
    # Path evaluation over index ranges
    # ------------------------------------------------------------------

    def _eval_path(self, context: int, path: Path) -> list:
        """``eval_values`` over the arena: indices (plus attribute
        strings for a final ``@a`` step), in document order."""
        arena = self.arena
        original = path
        steps = path.steps
        attr_name = None
        if steps and steps[-1].kind == "attr":
            attr_name = steps[-1].name
            path = Path(steps[:-1])
            steps = path.steps
        if not steps:
            nodes = [context]
        else:
            try:
                nfa = self._nfa(path)
            except (UnsupportedPathError, ValueError):
                # Outside the NFA fragment (e.g. a bare self step):
                # the oracle on the thawed context subtree.
                return self._eval_path_fallback(context, original)
            nodes = select_indices(nfa, arena, context)
            if self._context_matches(context, steps):
                nodes.insert(0, context)
        if attr_name is None:
            return nodes
        out = []
        attr = arena.attr
        for i in nodes:
            value = attr(i, attr_name)
            if value is not None:
                out.append(value)
        return out

    def _context_matches(self, context: int, steps) -> bool:
        """Does the path select its own context node?  Only possible
        when every step is a descendant/self step (the oracle's
        ``descendants_or_self`` keeps the context in the frontier) and
        each step's qualifiers hold at the context."""
        for step in steps:
            if step.kind not in ("dos", "self"):
                return False
        arena = self.arena
        for step in steps:
            for qual in step.quals:
                if not self._qual_check(qual)(arena, context):
                    return False
        return True

    def _eval_path_fallback(self, context: int, path: Path) -> list:
        node = self._root_tree() if context == 0 else thaw(self.arena, context)
        return eval_values(node, path)

    # ------------------------------------------------------------------
    # Expression dispatch (mirrors repro.xquery.evaluator.eval_expr)
    # ------------------------------------------------------------------

    def _eval(self, expr: Expr, env: dict) -> list:
        if isinstance(expr, PathFrom):
            if expr.var is None:
                return self._eval_path(0, expr.path)
            items: list = []
            for item in _lookup(env, expr.var):
                if isinstance(item, int):
                    items.extend(self._eval_path(item, expr.path))
                elif isinstance(item, Element):
                    items.extend(eval_values(item, expr.path))
            return items
        if isinstance(expr, VarRef):
            return list(_lookup(env, expr.var))
        if isinstance(expr, Literal):
            return [expr.value]
        if isinstance(expr, EmptySeq):
            return []
        if isinstance(expr, ConstTree):
            return [expr.root]
        if isinstance(expr, Sequence):
            items = []
            for part in expr.parts:
                items.extend(self._eval(part, env))
            return items
        if isinstance(expr, ElementTemplate):
            children: list = []
            for part in expr.parts:
                for item in self._eval(part, env):
                    if isinstance(item, int):
                        children.append(thaw(self.arena, item))
                    elif isinstance(item, Element):
                        children.append(item)
                    else:
                        children.append(Text(str(item)))
            return [Element(expr.label, dict(expr.attrs), children)]
        if isinstance(expr, For):
            items = []
            env_for = dict(env)
            for item in self._eval(expr.source, env):
                env_for[expr.var] = [item]
                items.extend(self._eval(expr.body, env_for))
            return items
        if isinstance(expr, Let):
            env_let = dict(env)
            env_let[expr.var] = self._eval(expr.value, env)
            return self._eval(expr.body, env_let)
        if isinstance(expr, Conditional):
            branch = expr.then if self._eval_bool(expr.cond, env) else expr.orelse
            return self._eval(branch, env)
        if isinstance(expr, TransformedSubtree):
            return self._eval_transformed(expr, env)
        raise TypeError(f"unknown expression {expr!r}")

    def _eval_bool(self, expr: BoolExpr, env: dict) -> bool:
        if isinstance(expr, BoolConst):
            return expr.value
        if isinstance(expr, Exists):
            return bool(self._eval(expr.expr, env))
        if isinstance(expr, Compare):
            left = self._atomize(self._eval(expr.left, env))
            right = self._atomize(self._eval(expr.right, env))
            for lv in left:
                for rv in right:
                    if _pair_compare(lv, expr.op, rv):
                        return True
            return False
        if isinstance(expr, BoolAnd):
            return self._eval_bool(expr.left, env) and self._eval_bool(expr.right, env)
        if isinstance(expr, BoolOr):
            return self._eval_bool(expr.left, env) or self._eval_bool(expr.right, env)
        if isinstance(expr, BoolNot):
            return not self._eval_bool(expr.operand, env)
        if isinstance(expr, QualCheck):
            arena = self.arena
            for item in _lookup(env, expr.var):
                if isinstance(item, int):
                    if self._qual_check(expr.qual)(arena, item):
                        return True
                elif isinstance(item, Element):
                    if eval_qualifier(item, expr.qual):
                        return True
            return False
        raise TypeError(f"unknown boolean expression {expr!r}")

    def _eval_transformed(self, expr: TransformedSubtree, env: dict) -> list:
        """Composed queries embed ``topDown`` calls over Node subtrees:
        thaw the bound items and delegate to the Node evaluator."""
        from repro.xquery.evaluator import Environment, _eval_transformed

        items = [self.materialize(item) for item in _lookup(env, expr.var)]
        return _eval_transformed(expr, Environment({expr.var: items}))

    def _atomize(self, items: list) -> list:
        own = self.arena.payload
        out = []
        for item in items:
            if isinstance(item, int):
                out.append(own[item])
            elif isinstance(item, Element):
                out.append(item.own_text())
            else:
                out.append(item)
        return out


def _lookup(env: dict, var: str) -> list:
    try:
        return env[var]
    except KeyError:
        raise NameError(f"unbound query variable ${var}") from None


def _pair_compare(lv, op: str, rv) -> bool:
    if isinstance(lv, float) or isinstance(rv, float):
        try:
            return _numeric(float(lv), op, float(rv))
        except (TypeError, ValueError):
            return False
    return compare_value(str(lv), op, str(rv))


def _numeric(ln: float, op: str, rn: float) -> bool:
    if op == "=":
        return ln == rn
    if op == "!=":
        return ln != rn
    if op == "<":
        return ln < rn
    if op == "<=":
        return ln <= rn
    if op == ">":
        return ln > rn
    if op == ">=":
        return ln >= rn
    raise ValueError(f"unknown operator {op!r}")
