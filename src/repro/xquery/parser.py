"""Parser for the Section-4 user-query surface form.

::

    for $x in ρ
    [where operand op operand [and …]]
    return retexpr

    operand  := literal | $x/ρ' | $x
    retexpr  := $x | $x/ρ' | literal
              | <label> { retexpr, … } </label>     (element template)

The ``where`` operands and the template parameters are exactly the
``ρ'``/``ϱ`` expressions of the paper (constants or paths from the
bound variable); comparison operators beyond ``=`` are allowed since
the workload queries use them.
"""

from __future__ import annotations

from repro.xpath import lexer as lx
from repro.xpath.ast import Path
from repro.xpath.lexer import Token, TokenStream, XPathSyntaxError, tokenize
from repro.xpath.parser import parse_path
from repro.xquery.ast import (
    Compare,
    ElementTemplate,
    Expr,
    Literal,
    PathFrom,
    UserQuery,
    VarRef,
)

_KEYWORDS = {"for", "in", "where", "return"}


def parse_user_query(source: str) -> UserQuery:
    """Parse a user query from text."""
    stream = TokenStream(tokenize(source, keywords=_KEYWORDS))
    stream.expect_name("for")
    stream.expect(lx.DOLLAR)
    var = stream.expect(lx.NAME).value
    stream.expect_name("in")
    path = _parse_source_path(stream, var)
    conditions = []
    if stream.at_name("where"):
        stream.advance()
        conditions.append(_parse_condition(stream, var))
        while stream.accept(lx.AND):
            conditions.append(_parse_condition(stream, var))
    stream.expect_name("return")
    template = _parse_return_expr(stream, var)
    if not stream.done():
        raise XPathSyntaxError(
            f"unexpected trailing input {stream.current.value!r}", stream.current.pos
        )
    return UserQuery(var, path, conditions, template, source_text=source.strip())


def _parse_source_path(stream: TokenStream, var: str) -> Path:
    """The for-source: an X path, optionally ``$n/…`` rooted (the paper
    writes view queries against a bound document variable; we treat any
    leading variable as the document root)."""
    if stream.current.type == lx.DOLLAR:
        stream.advance()
        stream.expect(lx.NAME)
        if stream.current.type not in (lx.SLASH, lx.DSLASH):
            raise XPathSyntaxError("expected a path after the variable", stream.current.pos)
    return parse_path(stream)


def _parse_operand(stream: TokenStream, var: str) -> Expr:
    token = stream.current
    if token.type == lx.STRING:
        stream.advance()
        return Literal(token.value)
    if token.type == lx.NUMBER:
        stream.advance()
        return Literal(float(token.value))
    if token.type == lx.DOLLAR:
        stream.advance()
        name = stream.expect(lx.NAME).value
        if name != var:
            raise XPathSyntaxError(f"unknown variable ${name}", token.pos)
        if stream.current.type in (lx.SLASH, lx.DSLASH):
            return PathFrom(var, parse_path(stream))
        return VarRef(var)
    # A bare path is evaluated from the bound variable, XPath-style.
    return PathFrom(var, parse_path(stream))


def _parse_condition(stream: TokenStream, var: str):
    """``not(cond)``, ``(cond)``, a comparison, or a path existence."""
    from repro.xquery.ast import BoolNot, Exists

    if stream.accept(lx.NOT):
        stream.expect(lx.LPAREN)
        inner = _parse_condition(stream, var)
        stream.expect(lx.RPAREN)
        return BoolNot(inner)
    if stream.accept(lx.LPAREN):
        inner = _parse_condition(stream, var)
        stream.expect(lx.RPAREN)
        return inner
    left = _parse_operand(stream, var)
    if stream.current.type == lx.OP:
        op = stream.advance().value
        right = _parse_operand(stream, var)
        return Compare(left, op, right)
    return Exists(left)


def _parse_return_expr(stream: TokenStream, var: str) -> Expr:
    token = stream.current
    if token.type == lx.OP and token.value == "<":
        return _parse_template(stream, var)
    return _parse_operand(stream, var)


def _parse_template(stream: TokenStream, var: str) -> ElementTemplate:
    """``<label> { expr, … } </label>`` — tokens, not raw XML, since the
    braces contain query expressions."""
    stream.expect(lx.OP, "<")
    label = stream.expect(lx.NAME).value
    stream.expect(lx.OP, ">")
    parts: list = []
    if stream.accept(lx.LBRACE):
        parts.append(_parse_return_expr(stream, var))
        while stream.accept(lx.COMMA):
            parts.append(_parse_return_expr(stream, var))
        stream.expect(lx.RBRACE)
    stream.expect(lx.OP, "<")
    stream.expect(lx.SLASH)
    closing = stream.expect(lx.NAME).value
    if closing != label:
        raise XPathSyntaxError(f"mismatched template tag </{closing}>", stream.current.pos)
    stream.expect(lx.OP, ">")
    return ElementTemplate(label, {}, parts)
