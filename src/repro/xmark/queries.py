"""The Fig. 11 workload: embedded XPath queries U1-U10 and the
transform/user queries built from them.

Adaptation note: the paper writes paths from the document node
(``/site/people/person``); our evaluation root *is* the ``site``
element, so the leading ``site`` step is dropped (U1 becomes
``people/person``).  U10's leading ``//`` is kept for the transform
workload; :func:`user_query_for` uses the direct path since
``open_auctions`` only occurs at the top level (the composition
benchmark measures rewriting, not the descendant axis).
"""

from __future__ import annotations

from repro.transform.query import TransformQuery
from repro.updates.ops import parse_update
from repro.xquery.ast import UserQuery
from repro.xquery.parser import parse_user_query

#: The ten embedded XPath expressions of Fig. 11 (adapted as above).
EMBEDDED_PATHS = {
    "U1": "people/person",
    "U2": "people/person[@id = 'person10']",
    "U3": "people/person[profile/age > 20]",
    "U4": "regions//item",
    "U5": "//description",
    "U6": "closed_auctions/closed_auction/annotation/description"
          "/parlist/listitem/parlist/listitem/text/emph/keyword",
    "U7": "open_auctions/open_auction[bidder/increase > 5]"
          "/annotation[happiness < 20]/description//text",
    "U8": "open_auctions/open_auction[initial > 10 and reserve > 50]/bidder",
    "U9": "regions//item[location = 'United States']",
    "U10": "//open_auctions/open_auction[not(@id = 'open_auction2')]"
           "/bidder[increase > 10]",
}

QUERY_IDS = sorted(EMBEDDED_PATHS, key=lambda u: int(u[1:]))

#: Direct (no leading //) variants where the descendant axis is
#: redundant, used for user queries in the composition experiment.
_DIRECT_PATHS = dict(EMBEDDED_PATHS)
_DIRECT_PATHS["U10"] = (
    "open_auctions/open_auction[not(@id = 'open_auction2')]"
    "/bidder[increase > 10]"
)

#: The constant element inserted by insert transform queries.
INSERT_CONTENT = "<new_annotation><note>inserted by Qt</note></new_annotation>"


def _target(uid: str) -> str:
    path = EMBEDDED_PATHS[uid]
    return f"$a{path}" if path.startswith("//") else f"$a/{path}"


def insert_transform(uid: str) -> TransformQuery:
    """The insert transform query embedding Ui (the Fig. 12/13 workload)."""
    update = parse_update(f"insert {INSERT_CONTENT} into {_target(uid)}")
    return TransformQuery(update, doc="xmark")


def delete_transform(uid: str) -> TransformQuery:
    """The delete transform query embedding Ui."""
    update = parse_update(f"delete {_target(uid)}")
    return TransformQuery(update, doc="xmark")


def replace_transform(uid: str) -> TransformQuery:
    """A replace transform embedding Ui (cross-checks, ablations)."""
    update = parse_update(f"replace {_target(uid)} with {INSERT_CONTENT}")
    return TransformQuery(update, doc="xmark")


def rename_transform(uid: str, new_label: str = "renamed") -> TransformQuery:
    """A rename transform embedding Ui (cross-checks, ablations)."""
    update = parse_update(f"rename {_target(uid)} as {new_label}")
    return TransformQuery(update, doc="xmark")


def user_query_for(uid: str) -> UserQuery:
    """``for $x in Ui return $x`` — the user queries of Section 7.2."""
    return parse_user_query(f"for $x in {_DIRECT_PATHS[uid]} return $x")


def composition_pairs() -> list:
    """The four (transform, user) pairs of Fig. 15.

    U1 and U9 act as insert transforms in the first two pairs; U9 and
    U8 as delete transforms in the last two; U2, U1, U4 and U10 are the
    respective user queries.
    """
    return [
        ("U1", "U2", insert_transform("U1"), user_query_for("U2")),
        ("U9", "U1", insert_transform("U9"), user_query_for("U1")),
        ("U9", "U4", delete_transform("U9"), user_query_for("U4")),
        ("U8", "U10", delete_transform("U8"), user_query_for("U10")),
    ]
