"""Deterministic XMark-shaped document generator.

Scaling follows XMark's conventions: factor 1.0 ≈ 21750 items, 25500
persons, 12000 open and 9750 closed auctions (proportions from the
original benchmark); our per-entity text is leaner than xmlgen's
Shakespeare-sampled prose, so absolute file sizes are smaller at equal
factors — the experiments report actual byte sizes.

Structural guarantees the Fig. 11 workload relies on:

* ``person`` ids are ``person0…personN`` (U2 targets ``person10``);
* profile ages span 18-65 (U3's ``age > 20`` selects most, not all);
* ~40 % of item locations are "United States" (U9), as in xmlgen;
* closed-auction descriptions nest ``parlist/listitem`` two levels deep
  with ``text/emph/keyword`` inside (U6's 12-step path);
* open auctions have bidders with numeric ``increase`` (U7, U10),
  ``initial``/``reserve`` (U8) and annotations with ``happiness`` (U7).
"""

from __future__ import annotations

import random
from typing import IO, Optional

from repro.xmltree.node import Element, Text, element
from repro.xmltree.serializer import write_stream

#: Entity counts at factor 1.0 (XMark proportions).
ITEMS_AT_1 = 21750
PERSONS_AT_1 = 25500
OPEN_AUCTIONS_AT_1 = 12000
CLOSED_AUCTIONS_AT_1 = 9750

REGIONS = ["africa", "asia", "australia", "europe", "namerica", "samerica"]

COUNTRIES = [
    "United States", "Germany", "France", "Japan", "China",
    "Brazil", "Kenya", "Australia", "India", "Canada",
]

WORDS = (
    "auction item quality vintage rare antique collectible mint boxed "
    "original limited edition signed certified authentic pristine "
    "refurbished working tested complete bundle estate clearance"
).split()

NAMES = (
    "Alice Bob Carol Dave Erin Frank Grace Heidi Ivan Judy "
    "Mallory Niaj Olivia Peggy Rupert Sybil Trent Victor Walter Yolanda"
).split()

CITIES = "Edinburgh Beijing London Tokyo Berlin Paris Boston Sydney".split()


class XMarkGenerator:
    """Generates one document; all randomness flows from the seed."""

    def __init__(self, factor: float, seed: int = 42):
        if factor <= 0:
            raise ValueError("the scaling factor must be positive")
        self.factor = factor
        self.rng = random.Random(seed)
        self.item_count = max(4, int(ITEMS_AT_1 * factor))
        self.person_count = max(12, int(PERSONS_AT_1 * factor))
        self.open_count = max(4, int(OPEN_AUCTIONS_AT_1 * factor))
        self.closed_count = max(4, int(CLOSED_AUCTIONS_AT_1 * factor))

    # -- small value helpers -------------------------------------------

    def _words(self, low: int, high: int) -> str:
        count = self.rng.randint(low, high)
        return " ".join(self.rng.choice(WORDS) for _ in range(count))

    def _money(self, low: float, high: float) -> str:
        return f"{self.rng.uniform(low, high):.2f}"

    def _date(self) -> str:
        return (
            f"{self.rng.randint(1, 12):02d}/"
            f"{self.rng.randint(1, 28):02d}/"
            f"{self.rng.randint(1998, 2001)}"
        )

    # -- entity builders -----------------------------------------------

    def description(self, depth: int = 2) -> Element:
        """A description: plain text, or a parlist nested to *depth*.

        At depth ≥ 2 the structure contains the full
        ``parlist/listitem/parlist/listitem/text/emph/keyword`` spine
        that U6 navigates.
        """
        if depth <= 0 or self.rng.random() < 0.35:
            return element("description", self.text_block())
        return element("description", self.parlist(depth))

    def parlist(self, depth: int) -> Element:
        items = []
        for _ in range(self.rng.randint(1, 3)):
            if depth > 1:
                inner = self.parlist(depth - 1)
            else:
                inner = self.text_block()
            items.append(element("listitem", inner))
        return element("parlist", *items)

    def text_block(self) -> Element:
        lead = self._words(3, 8)
        with_emph = self.rng.random() < 0.7
        with_tail = self.rng.random() < 0.3
        tail = " " + self._words(2, 5) if with_tail else ""
        if not with_emph:
            # Keep text runs as single nodes so the tree round-trips
            # through serialization (adjacent text would merge).
            return Element("text", {}, [Text(lead + tail)])
        parts: list = [
            Text(lead + " "),
            element("emph", element("keyword", self.rng.choice(WORDS))),
        ]
        if with_tail:
            parts.append(Text(tail))
        return Element("text", {}, parts)

    def item(self, index: int, region: str) -> Element:
        location = (
            "United States" if self.rng.random() < 0.4 else self.rng.choice(COUNTRIES[1:])
        )
        mails = []
        for _mail_index in range(self.rng.randint(0, 2)):
            mails.append(
                element(
                    "mail",
                    element("from", self.rng.choice(NAMES)),
                    element("to", self.rng.choice(NAMES)),
                    element("date", self._date()),
                    self.text_block(),
                )
            )
        return element(
            "item",
            element("location", location),
            element("quantity", str(self.rng.randint(1, 10))),
            element("name", self._words(1, 3)),
            element("payment", "Creditcard"),
            self.description(depth=1),
            element("shipping", "Will ship internationally"),
            element("incategory", category=f"category{self.rng.randint(0, 20)}"),
            element("mailbox", *mails),
            attrs={"id": f"item{index}"},
        )

    def person(self, index: int) -> Element:
        name = self.rng.choice(NAMES)
        children = [
            element("name", f"{name} {self.rng.choice(NAMES)}"),
            element("emailaddress", f"mailto:{name.lower()}{index}@example.com"),
            element("phone", f"+{self.rng.randint(1, 99)} ({self.rng.randint(10, 999)}) {self.rng.randint(1000000, 9999999)}"),
        ]
        if self.rng.random() < 0.6:
            children.append(
                element(
                    "address",
                    element("street", f"{self.rng.randint(1, 99)} {self.rng.choice(WORDS).title()} St"),
                    element("city", self.rng.choice(CITIES)),
                    element("country", self.rng.choice(COUNTRIES)),
                    element("zipcode", str(self.rng.randint(10000, 99999))),
                )
            )
        if self.rng.random() < 0.4:
            children.append(element("homepage", f"http://example.com/~{name.lower()}{index}"))
        if self.rng.random() < 0.5:
            children.append(element("creditcard", " ".join(str(self.rng.randint(1000, 9999)) for _ in range(4))))
        profile = [
            element("interest", category=f"category{self.rng.randint(0, 20)}")
            for _ in range(self.rng.randint(0, 2))
        ]
        profile.extend(
            [
                element("education", self.rng.choice(["High School", "College", "Graduate School"])),
                element("gender", self.rng.choice(["male", "female"])),
                element("business", self.rng.choice(["Yes", "No"])),
                element("age", str(self.rng.randint(18, 65))),
            ]
        )
        children.append(
            element("profile", *profile, income=self._money(9876, 92345))
        )
        return element("person", *children, attrs={"id": f"person{index}"})

    def bidder(self) -> Element:
        return element(
            "bidder",
            element("date", self._date()),
            element("time", f"{self.rng.randint(0, 23):02d}:{self.rng.randint(0, 59):02d}:00"),
            element("personref", person=f"person{self.rng.randrange(self.person_count)}"),
            element("increase", self._money(1.5, 30.0)),
        )

    def annotation(self) -> Element:
        return element(
            "annotation",
            element("author", person=f"person{self.rng.randrange(self.person_count)}"),
            self.description(depth=2),
            element("happiness", str(self.rng.randint(1, 40))),
        )

    def open_auction(self, index: int) -> Element:
        bidders = [self.bidder() for _ in range(self.rng.randint(0, 4))]
        return element(
            "open_auction",
            element("initial", self._money(5, 300)),
            element("reserve", self._money(10, 800)),
            *bidders,
            element("current", self._money(10, 900)),
            element("privacy", self.rng.choice(["Yes", "No"])),
            element("itemref", item=f"item{self.rng.randrange(self.item_count)}"),
            element("seller", person=f"person{self.rng.randrange(self.person_count)}"),
            self.annotation(),
            element("quantity", str(self.rng.randint(1, 5))),
            element("type", self.rng.choice(["Regular", "Featured", "Dutch"])),
            element(
                "interval",
                element("start", self._date()),
                element("end", self._date()),
            ),
            attrs={"id": f"open_auction{index}"},
        )

    def closed_auction(self, index: int) -> Element:
        return element(
            "closed_auction",
            element("seller", person=f"person{self.rng.randrange(self.person_count)}"),
            element("buyer", person=f"person{self.rng.randrange(self.person_count)}"),
            element("itemref", item=f"item{self.rng.randrange(self.item_count)}"),
            element("price", self._money(5, 900)),
            element("date", self._date()),
            element("quantity", str(self.rng.randint(1, 5))),
            element("type", self.rng.choice(["Regular", "Featured"])),
            self.annotation(),
        )

    # -- whole documents -----------------------------------------------

    def generate(self) -> Element:
        """Build the whole document as an in-memory tree."""
        regions = element(
            "regions",
            *[
                element(
                    region,
                    *[
                        self.item(index, region)
                        for index in range(self.item_count)
                        if index % len(REGIONS) == region_index
                    ],
                )
                for region_index, region in enumerate(REGIONS)
            ],
        )
        people = element("people", *[self.person(i) for i in range(self.person_count)])
        open_auctions = element(
            "open_auctions", *[self.open_auction(i) for i in range(self.open_count)]
        )
        closed_auctions = element(
            "closed_auctions",
            *[self.closed_auction(i) for i in range(self.closed_count)],
        )
        return element("site", regions, people, open_auctions, closed_auctions)

    def write(self, handle: IO[str]) -> None:
        """Stream the document to *handle* without holding it in memory
        (used to produce the large files of the Fig. 14 experiment)."""
        handle.write('<?xml version="1.0" encoding="utf-8"?>\n<site><regions>')
        for region_index, region in enumerate(REGIONS):
            handle.write(f"<{region}>")
            for index in range(self.item_count):
                if index % len(REGIONS) == region_index:
                    write_stream(self.item(index, region), handle)
            handle.write(f"</{region}>")
        handle.write("</regions><people>")
        for index in range(self.person_count):
            write_stream(self.person(index), handle)
        handle.write("</people><open_auctions>")
        for index in range(self.open_count):
            write_stream(self.open_auction(index), handle)
        handle.write("</open_auctions><closed_auctions>")
        for index in range(self.closed_count):
            write_stream(self.closed_auction(index), handle)
        handle.write("</closed_auctions></site>\n")


def generate(factor: float, seed: int = 42) -> Element:
    """Generate an XMark-shaped document tree at the given factor."""
    return XMarkGenerator(factor, seed).generate()


def write_xmark_file(path: str, factor: float, seed: int = 42) -> int:
    """Stream-generate a document into a file; returns its byte size."""
    import os

    with open(path, "w", encoding="utf-8") as handle:
        XMarkGenerator(factor, seed).write(handle)
    return os.path.getsize(path)


def document_stats(root: Element) -> dict:
    """Quick structural statistics used by tests and experiment logs."""
    counts: dict[str, int] = {}
    for node in root.descendants_or_self():
        counts[node.label] = counts.get(node.label, 0) + 1
    return {
        "elements": sum(counts.values()),
        "items": counts.get("item", 0),
        "persons": counts.get("person", 0),
        "open_auctions": counts.get("open_auction", 0),
        "closed_auctions": counts.get("closed_auction", 0),
        "by_label": counts,
    }
