"""XMark-shaped data generator and the Fig. 11 workload.

The paper evaluates on XMark [Schmidt et al., VLDB'02] documents.  The
original generator (xmlgen, C) is not available offline, so this
package provides a deterministic, seeded, scale-factor-driven generator
producing documents with the same structural features the workload
exercises: auction sites with regions/items (``location``), people with
profiles (``@id``, ``age``), open auctions with bidders
(``initial``/``reserve``/``increase``), and closed auctions with the
deeply nested ``parlist``/``listitem`` description structure that U6
navigates.  See DESIGN.md §2 for the substitution rationale.
"""

from repro.xmark.generator import (
    XMarkGenerator,
    document_stats,
    generate,
    write_xmark_file,
)
from repro.xmark.queries import (
    EMBEDDED_PATHS,
    QUERY_IDS,
    composition_pairs,
    delete_transform,
    insert_transform,
    user_query_for,
)

__all__ = [
    "EMBEDDED_PATHS",
    "QUERY_IDS",
    "XMarkGenerator",
    "composition_pairs",
    "delete_transform",
    "document_stats",
    "generate",
    "insert_transform",
    "user_query_for",
    "write_xmark_file",
]
