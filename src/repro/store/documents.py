"""Resident documents: named, versioned, lock-protected parse trees.

A :class:`StoredDocument` owns its tree — the store parses documents
itself (or deep-copies what callers hand in is *not* done; callers that
keep mutating a tree after :meth:`DocumentStore.put` get what they
asked for).  The version counter starts at 1 and is bumped by every
committed update; caches key on it, so "invalidate" is mostly "the old
version number never matches again".

Concurrency model: one :class:`threading.Lock` per document.  Queries
and commits against the same document serialize on it; different
documents never contend.  The store-level dict has its own lock for
name-table mutation only.
"""

from __future__ import annotations

import itertools
import re
import threading
from typing import Optional

from repro.store.chain import ChainVersion, VersionChain
from repro.store.errors import (
    DuplicateNameError,
    InvalidNameError,
    StoreError,
    UnknownNameError,
)
from repro.xmltree.node import Element
from repro.xmltree.parser import parse, parse_file

#: Names double as state-directory file stems, so keep them path-safe.
_NAME_RE = re.compile(r"^[A-Za-z0-9_.-]+$")

#: Process-unique ids stamped on every arena build.  (name, version)
#: alone is ambiguous — a dropped-then-reloaded document restarts at
#: version 1 — so snapshot-keyed caches (the service's memo, the
#: process workers' arena caches) key on the uid, which no two arenas
#: in this process ever share.
_ARENA_UIDS = itertools.count(1)


class Snapshot:
    """A pinned MVCC read snapshot: one committed document version.

    Produced by :meth:`StoredDocument.pin` (under the document lock)
    and consumed entirely *outside* any lock: the arena is immutable,
    so any number of readers evaluate against it while writers stage
    and commit new versions — single-writer, many-reader discipline
    with no reader-side blocking.  ``version`` is the per-document
    counter the snapshot was frozen from; a reader can compare it to
    the document's current version afterwards to tell whether its
    answer was already stale by the time it finished.  ``uid`` is the
    arena build's process-unique id — the unambiguous cache key where
    ``(name, version)`` could alias across a drop-and-reload (a
    reloaded document restarts at version 1).
    """

    __slots__ = ("name", "version", "arena", "uid")

    def __init__(self, name: str, version: int, arena, uid: int):
        self.name = name
        self.version = version
        self.arena = arena
        self.uid = uid

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Snapshot({self.name!r}, v{self.version}, uid={self.uid})"


def validate_name(name: str) -> str:
    if not _NAME_RE.match(name):
        raise InvalidNameError(name)
    return name


class StoredDocument:
    """One resident document: tree, version, its lock — and, on the
    read path, a frozen columnar snapshot of the committed version.

    The arena (:class:`~repro.xmltree.arena.FrozenDocument`) is built
    lazily on first read and pinned to the version it was frozen from:
    every query against that version shares the **same immutable
    object** — a zero-copy snapshot (``arena_builds`` counts rebuilds,
    so "N reads, 1 build" is an assertable contract).  A commit bumps
    the version and drops the store's reference; readers still holding
    the old arena keep a consistent pre-commit view for free, and the
    next read freezes the new version.
    """

    __slots__ = (
        "name", "_root", "version", "lock", "source", "dirty",
        "_arena", "_arena_version", "_arena_uid", "arena_builds",
        "chain", "commit_lock", "splices", "state_file",
    )

    # guarded-by[_root, version, dirty, arena_builds, splices, state_file]: self.lock
    # guarded-by[_arena, _arena_version, _arena_uid]: self.lock

    def __init__(
        self,
        name: str,
        root: Element,
        version: int = 1,
        source: Optional[str] = None,
    ):
        self.name = name
        # Invariant: at least one of _root / _arena is always set.  A
        # spliced commit installs only the arena (_root is thawed back
        # lazily if a destructive fallback later needs the Node tree).
        self._root: Optional[Element] = root
        self.version = version
        self.lock = threading.Lock()
        #: Serializes whole commits (stage-take → splice → install) so
        #: the splice itself runs *outside* :attr:`lock` without two
        #: writers deriving from the same base.  Ordering: commit_lock
        #: is taken strictly before (never under) :attr:`lock`.
        self.commit_lock = threading.Lock()
        self.source = source  # file path it was loaded from, informational
        #: Tree changed since it was last persisted (commit, fresh put).
        #: The state layer clears it after writing the document file.
        self.dirty = True
        #: State-dir filename this tree was last loaded from / saved to
        #: (set by the state layer; ``None`` for in-memory documents).
        self.state_file: Optional[str] = None
        self._arena = None
        self._arena_version = 0
        self._arena_uid = 0
        self.arena_builds = 0
        #: Structurally-shared recent frozen versions (assign-once
        #: reference; the chain carries its own leaf lock).
        self.chain = VersionChain()
        self.splices = 0

    @property
    def root(self) -> Element:  # holds: self.lock
        """The mutable Node tree of the current version, thawed back
        from the arena if the last commit was a splice."""
        if self._root is None:
            from repro.xmltree.arena import thaw

            self._root = thaw(self._arena)
        return self._root

    def bump(self) -> int:  # holds: self.lock
        """Advance the version (callers hold :attr:`lock`); the frozen
        snapshot of the old version is released (readers holding it
        are unaffected — it is immutable)."""
        self.version += 1
        self._arena = None
        return self.version

    def arena(self):  # holds: self.lock
        """The frozen columnar snapshot of the current version,
        building it on first access (callers hold :attr:`lock`)."""
        if self._arena is None or self._arena_version != self.version:
            from repro.xmltree.arena import freeze

            self._arena = freeze(self.root)
            self._arena_version = self.version
            self._arena_uid = next(_ARENA_UIDS)
            self.arena_builds += 1
            kind = "load" if self.arena_builds == 1 else "rebuild"
            self.chain.record(
                ChainVersion(self.version, self._arena_uid, self._arena, kind)
            )
        return self._arena

    def current_uid(self) -> int:  # holds: self.lock
        """The uid of the current version's arena (callers hold
        :attr:`lock`); 0 when no arena is resident for this version."""
        if self._arena is not None and self._arena_version == self.version:
            return self._arena_uid
        return 0

    def install_spliced(self, arena, touched_nodes: int) -> int:  # holds: self.lock
        """Install a spliced arena as the next committed version
        (callers hold :attr:`lock`).  The Node tree is dropped and
        thawed back lazily only if a later fallback commit needs it."""
        self.version += 1
        self._root = None
        self._arena = arena
        self._arena_version = self.version
        self._arena_uid = next(_ARENA_UIDS)
        self.dirty = True
        self.splices += 1
        self.chain.record(
            ChainVersion(
                self.version, self._arena_uid, arena, "splice", touched_nodes
            )
        )
        return self.version

    def pin(self, version: Optional[int] = None) -> Snapshot:
        """Pin a committed version for an MVCC reader.

        With no argument: the current version, taking the document lock
        just long enough to read the version and (re)freeze its arena;
        the returned :class:`Snapshot` is then consumed lock-free.  A
        concurrent commit bumps the version and builds a new arena —
        this snapshot keeps observing the old one, fully consistent,
        until the reader drops it.

        With ``version=N``: a time-travel pin onto the version chain.
        Spliced versions share untouched columns, so recent history
        stays resident nearly for free; pinning a version that has
        fallen off the chain raises :class:`StoreError`.
        """
        with self.lock:
            if version is None or version == self.version:
                arena = self.arena()
                return Snapshot(self.name, self.version, arena, self._arena_uid)
            entry = self.chain.find(version)
        if entry is None:
            resident = self.chain.versions()
            raise StoreError(
                f"document {self.name!r} has no resident version {version} "
                f"(chain holds {resident})"
            )
        return Snapshot(self.name, entry.version, entry.arena, entry.uid)

    def stats(self) -> dict:
        # Taken under the document lock: a commit in flight could
        # otherwise tear version/tree/arena into an inconsistent row.
        with self.lock:
            arena = self._arena
            arena_current = arena is not None and self._arena_version == self.version
            if self._root is not None:
                nodes = self._root.size()
                depth = self._root.depth()
            else:
                # Spliced document with no thawed tree: answer from the
                # arena rather than forcing an O(n) thaw.
                nodes = len(arena)
                depth = arena.depth()
            info = {
                "version": self.version,
                "nodes": nodes,
                "depth": depth,
                "source": self.source,
                "arena_builds": self.arena_builds,
                "splices": self.splices,
                "chain_length": len(self.chain),
            }
            if arena_current:
                arena_stats = arena.stats()
                info["arena_bytes"] = arena_stats["total_bytes"]
                info["arena_column_bytes"] = arena_stats["column_bytes"]
            return info

    def chain_info(self) -> dict:
        """Chain shape for ``store stat``: resident versions plus the
        shared/owned byte split across consecutive entries."""
        from repro.store.chain import sharing_stats

        with self.lock:
            splices = self.splices
        entries = self.chain.snapshot()
        info = {
            "length": len(entries),
            "versions": [entry.version for entry in entries],
            "splices": splices,
        }
        info.update(sharing_stats(entries))
        return info

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"StoredDocument({self.name!r}, v{self.version})"  # unguarded: debug repr; a torn version read is harmless


class DocumentStore:
    """The name → :class:`StoredDocument` table."""

    # guarded-by[_docs]: self._lock

    def __init__(self):
        self._docs: dict[str, StoredDocument] = {}
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    # Admission
    # ------------------------------------------------------------------

    def load(self, name: str, path: str, *, replace: bool = False) -> StoredDocument:
        """Parse the file at *path* and store it under *name*."""
        root = parse_file(path)
        return self.put(name, root, source=path, replace=replace)

    def put(
        self,
        name: str,
        document,
        *,
        source: Optional[str] = None,
        replace: bool = False,
    ) -> StoredDocument:
        """Store a parsed tree (or XML source text) under *name*.

        With ``replace=True`` an existing document is superseded but its
        version counter carries over (+1), so stale cache entries keyed
        on the old version stay dead.
        """
        validate_name(name)
        if isinstance(document, str):
            document = parse(document)
        if not isinstance(document, Element):
            raise TypeError(f"expected an Element or XML text, got {document!r}")
        with self._lock:
            existing = self._docs.get(name)
            if existing is not None and not replace:
                raise DuplicateNameError(name)
            version = existing.version + 1 if existing is not None else 1
            doc = StoredDocument(name, document, version=version, source=source)
            self._docs[name] = doc
            return doc

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------

    def get(self, name: str) -> StoredDocument:
        with self._lock:
            try:
                return self._docs[name]
            except KeyError:
                raise UnknownNameError(name) from None

    def drop(self, name: str) -> None:
        with self._lock:
            if name not in self._docs:
                raise UnknownNameError(name)
            del self._docs[name]

    def names(self) -> list[str]:
        with self._lock:
            return sorted(self._docs)

    def __contains__(self, name: str) -> bool:
        with self._lock:
            return name in self._docs

    def __len__(self) -> int:
        with self._lock:
            return len(self._docs)

    def stats(self) -> dict:
        return {name: self.get(name).stats() for name in self.names()}
