"""The store facade: documents + views + caches + update log.

Evaluation strategy for ``query(target, q)``:

* *target* is a document → evaluate ``q`` directly on its tree.
* *target* is a view stack ``t1 … tn`` over document ``T`` → the
  outermost transform ``tn`` is **composed** with ``q`` (Section 4's
  Compose Method: the rewrite prunes the transform to the subtrees the
  query visits and skips it entirely where it provably cannot matter),
  and the composed plan is evaluated over ``t_{n-1}(… t1(T))``.  The
  inner layers are chained as pure, structure-sharing transforms —
  untouched subtrees are *shared* with the stored document, never
  copied — and their trees are discarded after the query unless the
  materialization policy has marked a layer hot, in which case its tree
  is kept until the next commit invalidates it.  The evaluation starts
  from the deepest still-valid materialization, so a hot middle layer
  shortcuts the whole prefix below it.

Strategy choice: every transform evaluation (view layers, staged-update
previews, the reference path) goes through the store's cost-based
:class:`~repro.engine.planner.Planner`, which picks among the five
algorithms per (query shape, current tree) — nothing here hardcodes a
strategy, and a custom planner can be injected at construction.

Caching: compiled artifacts (parses, NFAs, composed plans) live in a
:class:`~repro.store.cache.CompiledCache` and never go stale; query
*results* are cached under ``(target, document version, query text)``
and die wholesale when a commit bumps the version.

Concurrency: every evaluation and commit runs under the target
document's lock; name-table mutations take the store lock.  Results
are returned as-is (they may share structure with the stored tree) —
treat them as immutable snapshots, and serialize them if they must
survive a later commit.
"""

from __future__ import annotations

import threading
from typing import Optional, Union

from repro.engine.planner import Planner
from repro.faults import fault_point
from repro.obs import span
from repro.store.cache import CompiledCache, LRUCache
from repro.store.chain import CommitDelta
from repro.store.delta import (
    DeltaUnsupported,
    apply_entries_spliced,
    query_labels,
    ranges_swallowed_by,
    transform_labels,
)
from repro.store.documents import DocumentStore, Snapshot, StoredDocument
from repro.store.errors import DuplicateNameError, StoreError, UnknownNameError
from repro.store.log import UpdateLog
from repro.store.views import MaterializationPolicy, View, ViewRegistry
from repro.transform.naive import transform_naive
from repro.transform.query import TransformQuery
from repro.updates.apply import apply_update
from repro.xmltree.node import Element
from repro.xmltree.serializer import serialize
from repro.xquery.evaluator import evaluate_query
from repro.xquery.parser import parse_user_query


class ViewStore:
    """A resident multi-document store with stacked virtual views."""

    # guarded-by[arena_reads, snapshot_pins]: self._counter_lock
    # guarded-by[commit_splices, commit_rebuilds, commit_noops]: self._counter_lock
    # guarded-by[delta_touched_nodes, delta_results_kept, delta_results_dropped]: self._counter_lock
    # guarded-by[delta_mats_kept, delta_mats_dropped, last_delta]: self._counter_lock

    def __init__(
        self,
        policy: Optional[MaterializationPolicy] = None,
        compiled_cache_size: int = 256,
        result_cache_size: int = 512,
        planner: Optional[Planner] = None,
        incremental_commits: bool = True,
    ):
        self.documents = DocumentStore()
        self.views = ViewRegistry(policy)
        self.compiled = CompiledCache(compiled_cache_size)
        self.results = LRUCache(result_cache_size)
        self.planner = planner if planner is not None else Planner()
        self.log = UpdateLog(planner=self.planner)
        #: Commit fast path: derive the next frozen arena by splicing
        #: (O(delta)) instead of mutating the tree and rebuilding
        #: (O(document)).  ``False`` forces the destructive rebuild
        #: path everywhere — the benchmark baseline.
        self.incremental_commits = incremental_commits
        #: Reads served from a frozen columnar snapshot (the zero-copy
        #: fast path for plain-document targets).
        self.arena_reads = 0
        #: MVCC snapshots handed out via :meth:`pin`.
        self.snapshot_pins = 0
        #: Commit-path outcome counters (``store.commit.delta.*``).
        self.commit_splices = 0
        self.commit_rebuilds = 0
        self.commit_noops = 0
        self.delta_touched_nodes = 0
        self.delta_results_kept = 0
        self.delta_results_dropped = 0
        self.delta_mats_kept = 0
        self.delta_mats_dropped = 0
        #: Receipt of the most recent commit (``store stat`` surfaces
        #: its retention ratio).
        self.last_delta: Optional[CommitDelta] = None
        #: Write-ahead log writer; ``open_store`` attaches one (after
        #: replay) when the store is backed by a state directory.
        #: ``None`` → commits are in-memory only, nothing is logged.
        self.wal = None
        #: Recovery receipts from the last ``open_store`` replay.
        self.wal_replayed = 0
        self.wal_truncated_tail = 0
        # Store-wide counters are bumped from many documents' read
        # paths at once — one lock keeps their tallies exact (the
        # per-document lock only serializes one document's readers).
        self._counter_lock = threading.Lock()
        # Conservative label analyses keyed on source text; values are
        # wrapped in 1-tuples because ``None`` ("unanalyzable") is a
        # legitimate cached answer.
        self._query_label_cache = LRUCache(compiled_cache_size)
        self._transform_label_cache = LRUCache(compiled_cache_size)

    def _transform(self, root: Element, transform: TransformQuery) -> Element:
        """Evaluate one transform layer with the planner-chosen
        strategy, reusing compiled automata.

        The NFAs are built from (and cached under) the parsed path
        itself — rendering the AST to text does not round-trip string
        literals containing quotes, so the text form is never re-parsed.
        """
        path = transform.path
        return self.planner.transform(
            root,
            transform,
            selecting=self.compiled.selecting_nfa_for(path),
            filtering_factory=lambda: self.compiled.filtering_nfa_for(path),
        )

    # ------------------------------------------------------------------
    # Documents
    # ------------------------------------------------------------------

    def load(self, name: str, path: str, *, replace: bool = False) -> StoredDocument:
        """Parse the file at *path* into the store under *name*."""
        self._check_free(name, replace_document=replace)
        return self.documents.load(name, path, replace=replace)

    def put(
        self,
        name: str,
        document: Union[Element, str],
        *,
        replace: bool = False,
    ) -> StoredDocument:
        """Store a parsed tree or XML source text under *name*."""
        self._check_free(name, replace_document=replace)
        return self.documents.put(name, document, replace=replace)

    def _check_free(self, name: str, *, replace_document: bool = False) -> None:
        if name in self.views:
            raise DuplicateNameError(name)
        if not replace_document and name in self.documents:
            raise DuplicateNameError(name)

    # ------------------------------------------------------------------
    # Views
    # ------------------------------------------------------------------

    def define_view(self, name: str, base: str, transform_text: str) -> View:
        """Define *name* as *base* (a document or a view) seen through
        the given transform query."""
        if name in self.documents or name in self.views:
            raise DuplicateNameError(name)
        if base not in self.documents and base not in self.views:
            raise UnknownNameError(base)
        transform = self.compiled.transform(transform_text)
        return self.views.define(name, base, transform, transform_text)

    def drop(self, name: str) -> None:
        """Drop a view, or a document no view depends on."""
        if name in self.views:
            self.views.drop(name)
            self.results.invalidate(lambda key: key[0] == name)
            return
        if name in self.documents:
            dependents = self.views.dependents_of_document(name)
            if dependents:
                raise StoreError(
                    f"cannot drop document {name!r}: views "
                    f"{sorted(v.name for v in dependents)} are defined over it"
                )
            self.documents.drop(name)
            self.results.invalidate(lambda key: key[0] == name)
            return
        raise UnknownNameError(name)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def query(
        self, target: str, query_text: str, *, include_staged: bool = False
    ) -> list:
        """Answer a user query against a document or a view.

        ``include_staged=True`` evaluates against the hypothetical tree
        the staged-but-uncommitted updates would produce (bypassing the
        result cache and the materializations, which reflect committed
        state only).
        """
        doc, stack = self._resolve(target)
        staged = include_staged and self.log.has_staged(doc.name)
        with doc.lock:
            # The version read and the cache probe happen under the
            # document lock: a concurrent commit mutates the tree in
            # place, so a hit must never be served mid-commit.
            key = (target, doc.version, query_text)
            if not staged:
                cached = self.results.get(key)
                if cached is not None:
                    return cached
            root = doc.root
            if staged:
                # Route the preview chain through _transform so each
                # staged layer reuses the compiled automata.  The
                # preview is a structure-sharing topDown result: only
                # the subtrees the staged updates touch are rebuilt.
                root = self.log.preview(root, doc.name, transform=self._transform)
                result = self._answer(
                    root, stack, query_text, doc.version,
                    use_materializations=False,
                )
            elif not stack:
                # Plain document target: the columnar read fast path —
                # evaluate over the version's frozen arena snapshot
                # (zero-copy: every read of this version shares one
                # immutable object) and thaw only the matches.
                result = self._answer_arena(doc, query_text)
            else:
                result = self._answer(
                    root, stack, query_text, doc.version,
                    use_materializations=True,
                )
            if not staged:
                self.results.put(key, result)
        return result

    def _arena_refs(self, doc: StoredDocument, query_text: str) -> tuple:
        """One columnar read: ``(arena, evaluator, raw ref items)``
        (caller holds the document lock).  The single place the
        snapshot is taken, counted and planned — both the thawing and
        the serializing reads finish from these refs."""
        from repro.xquery.arena_eval import ArenaEvaluator

        user_query = self.compiled.user_query(query_text)
        arena = doc.arena()
        with self._counter_lock:
            self.arena_reads += 1
        self.planner.plan_read(arena)
        evaluator = ArenaEvaluator(arena, self.compiled.selecting_nfa_for)
        with span("scan"):
            return arena, evaluator, evaluator.evaluate_refs(user_query)

    def _answer_arena(self, doc: StoredDocument, query_text: str) -> list:
        """Answer a user query from the document's frozen snapshot
        (caller holds the document lock)."""
        _, evaluator, refs = self._arena_refs(doc, query_text)
        return [evaluator.materialize(item) for item in refs]

    def query_serialized(
        self, target: str, query_text: str, *, include_staged: bool = False
    ) -> list:
        """Answer a user query as serialized XML/text strings.

        For a plain document target this is the end-to-end columnar
        read: matches found by the arena DFA walk are serialized
        **straight from the columns** (:func:`~repro.xmltree.
        serializer.serialize_arena`) — no ``thaw`` round-trip, no Node
        allocation anywhere on the path.  Views and staged previews
        serialize their Node results as before.
        """
        doc, stack = self._resolve(target)
        staged = include_staged and self.log.has_staged(doc.name)
        if staged or stack:
            return [
                serialize(item) if isinstance(item, Element) else str(item)
                for item in self.query(
                    target, query_text, include_staged=include_staged
                )
            ]
        from repro.automata.arena_run import serialize_arena_items

        with doc.lock:
            # The target stays in position 0: every invalidation
            # predicate in this store (drop, commit) matches on
            # ``key[0]``, and a dropped-then-reloaded document restarts
            # at version 1 — only the name predicate protects that case.
            key = (target, doc.version, query_text, "serialized")
            cached = self.results.get(key)
            if cached is not None:
                return cached
            arena, _, refs = self._arena_refs(doc, query_text)
            with span("serialize"):
                result = serialize_arena_items(arena, refs)
            self.results.put(key, result)
        return result

    def query_naive(
        self, target: str, query_text: str, *, include_staged: bool = False
    ) -> list:
        """Reference evaluation: materialize every layer of the stack
        with :func:`transform_naive`, then run the user query — no
        composition, no caches, no planner.  Deliberately independent
        of every production code path so tests and benchmarks can use
        it as the oracle ``Q(tn(…t1(T)))``."""
        doc, stack = self._resolve(target)
        with doc.lock:
            root = doc.root
            if include_staged:
                root = self.log.preview(root, doc.name, transform=transform_naive)
            for view in stack:
                root = transform_naive(root, view.transform)
            return evaluate_query(root, parse_user_query(query_text))

    def _resolve(self, target: str) -> tuple[StoredDocument, list[View]]:
        if target in self.views:
            doc_name, stack = self.views.stack(target)
            return self.documents.get(doc_name), stack
        return self.documents.get(target), []

    def pin(self, name: str, version: Optional[int] = None) -> Snapshot:
        """Pin an MVCC read snapshot of document *name*.

        The document lock is held only for the version read (and a
        lazy arena freeze); evaluation against the returned immutable
        snapshot happens entirely outside the store's locks, so staged
        or committing writers never block pinned readers.  Views cannot
        be pinned — their layers evaluate over the live tree under the
        document lock; pin the underlying document instead.

        ``version=N`` is a time-travel pin onto the document's version
        chain: spliced commits keep recent versions resident (sharing
        untouched columns with their successors), so pinned readers can
        keep answering against pre-commit state long after the commit.
        """
        if name in self.views:
            raise StoreError(
                f"{name!r} is a view and cannot be pinned for snapshot "
                f"reads; pin its document "
                f"{self.views.document_of(name)!r} instead"
            )
        snapshot = self.documents.get(name).pin(version)
        with self._counter_lock:
            self.snapshot_pins += 1
        return snapshot

    def _answer(
        self,
        root: Element,
        stack: list[View],
        query_text: str,
        version: int,
        use_materializations: bool = True,
    ) -> list:
        user_query = self.compiled.user_query(query_text)
        if not stack:
            return evaluate_query(root, user_query)
        base = root
        start = 0
        if use_materializations:
            # Shortcut to the deepest layer whose tree is still valid.
            for index, view in enumerate(stack):
                cached = view.materialization_for(version)
                if cached is not None:
                    base, start = cached, index + 1
        for view in stack[start:-1]:
            view.query_count += 1
            tree = self._transform(base, view.transform)
            if use_materializations and self.views.policy.should_materialize(view):
                view.set_materialized(tree, version)
            base = tree
        outer = stack[-1]
        if start == len(stack):
            # The outermost view itself is materialized: query it plainly.
            outer.query_count += 1
            return evaluate_query(base, user_query)
        outer.query_count += 1
        if use_materializations and self.views.policy.should_materialize(outer):
            tree = self._transform(base, outer.transform)
            outer.set_materialized(tree, version)
            return evaluate_query(tree, user_query)
        composed = self.compiled.composed(query_text, outer.transform_text)
        return evaluate_query(base, composed)

    # ------------------------------------------------------------------
    # Updates: stage / commit / rollback
    # ------------------------------------------------------------------

    def _require_document(self, name: str) -> StoredDocument:
        """A *document* for update operations — views are read-only, so
        point the caller at the document their stack bottoms out in."""
        if name in self.views:
            raise StoreError(
                f"{name!r} is a view and cannot be updated; stage/commit/"
                f"rollback target its document {self.views.document_of(name)!r}"
            )
        return self.documents.get(name)

    def stage(self, doc_name: str, transform_text: str) -> int:
        """Stage a hypothetical transform against a document; returns
        the staging-area depth."""
        doc = self._require_document(doc_name)  # raises on unknown names
        transform = self.compiled.transform(transform_text)
        return self.log.stage(doc.name, transform, transform_text)

    def rollback(self, doc_name: str, count: Optional[int] = None) -> int:
        """Discard staged updates (default: all); the document was never
        touched.  Returns how many entries were dropped."""
        self._require_document(doc_name)
        return self.log.rollback(doc_name, count)

    def commit(self, doc_name: str, transform_text: Optional[str] = None) -> int:
        """Apply the staged updates, in staging order; returns the new
        version (the current version when nothing was staged — an empty
        commit is a true no-op).  *transform_text*, if given, is staged
        first (the one-shot ``stage + commit`` convenience the CLI
        uses).  See :meth:`commit_delta` for the full receipt."""
        return self.commit_delta(doc_name, transform_text).new_version

    def commit_delta(
        self, doc_name: str, transform_text: Optional[str] = None
    ) -> CommitDelta:
        """Commit the staged updates and return the receipt.

        Fast path (``incremental_commits``): the staged updates'
        select results become splice patches, and the next frozen
        arena is **spliced** from the current one at O(delta) cost
        (untouched columns and the payload pool are shared — see
        :func:`repro.xmltree.arena.splice`); cached results and
        materializations provably untouched by the delta label set are
        carried forward to the new version instead of purged.  The
        splice runs *outside* the document lock (readers keep pinning
        snapshots meanwhile) under the per-document commit lock.

        Fallback (:class:`~repro.store.delta.DeltaUnsupported`:
        unsupported selector, root-spanning delta — or
        ``incremental_commits=False``): the destructive rebuild path —
        mutate the tree in place, bump the version, blanket-purge the
        document's caches and materializations.
        """
        doc = self._require_document(doc_name)
        if transform_text is not None:
            self.stage(doc_name, transform_text)
        with doc.commit_lock:
            with doc.lock:
                entries = self.log.take_any(doc.name)
                old_version = doc.version
                if not entries:
                    uid = doc.current_uid()
                    delta = CommitDelta(
                        doc_name=doc.name,
                        old_version=old_version,
                        new_version=old_version,
                        old_uid=uid,
                        new_uid=uid,
                        spliced=False,
                        entries=0,
                    )
                    with self._counter_lock:
                        self.commit_noops += 1
                        self.last_delta = delta
                    return delta
                base_arena = doc.arena() if self.incremental_commits else None
                old_uid = doc.current_uid()
            # Write-ahead: the staged texts and the version they will
            # produce are durable before the document is touched.  The
            # append runs outside doc.lock (readers keep pinning
            # snapshots while the record fsyncs) but inside the commit
            # lock, so records reach the log in version order.
            wal = self.wal
            if wal is not None:
                wal.append({
                    "kind": "commit",
                    "doc": doc.name,
                    "version": old_version + 1,
                    "texts": [entry.text for entry in entries],
                })
            try:
                outcome = None
                if base_arena is not None:
                    fault_point("store.commit.mid_splice")
                    try:
                        with span("splice"):
                            outcome = apply_entries_spliced(
                                base_arena, entries, self.compiled
                            )
                    except DeltaUnsupported:
                        outcome = None
                if outcome is None:
                    with doc.lock:
                        for entry in entries:
                            apply_update(doc.root, entry.transform.update)
                        self.log.record_commit(doc.name, entries)
                        doc.dirty = True
                        version = doc.bump()
                        with span("invalidate"):
                            self._invalidate_for(doc.name)
                    delta = CommitDelta(
                        doc_name=doc.name,
                        old_version=old_version,
                        new_version=version,
                        old_uid=old_uid,
                        new_uid=0,
                        spliced=False,
                        entries=len(entries),
                    )
                    with self._counter_lock:
                        self.commit_rebuilds += 1
                        self.last_delta = delta
                    return delta
                with doc.lock:
                    self.log.record_commit(doc.name, entries)
                    version = doc.install_spliced(
                        outcome.arena, outcome.touched_nodes
                    )
                    new_uid = doc.current_uid()
                    with span("invalidate"):
                        kept_r, dropped_r, kept_m, dropped_m = self._invalidate_delta(
                            doc, outcome, old_version, version
                        )
            except BaseException:
                # The commit did not install: put the consumed entries
                # back so a retry commits the same sequence, and cancel
                # the already-durable WAL record — without the abort,
                # recovery would apply the failed attempt and the
                # retry's record (same version) would be skipped.
                self.log.restore(doc.name, entries)
                if wal is not None:
                    wal.append({
                        "kind": "abort",
                        "doc": doc.name,
                        "version": old_version + 1,
                    })
                raise
        delta = CommitDelta(
            doc_name=doc.name,
            old_version=old_version,
            new_version=version,
            old_uid=old_uid,
            new_uid=new_uid,
            spliced=True,
            entries=len(entries),
            patches=outcome.patches,
            touched_nodes=outcome.touched_nodes,
            labels=outcome.labels,
            results_kept=kept_r,
            results_dropped=dropped_r,
            mats_kept=kept_m,
            mats_dropped=dropped_m,
        )
        with self._counter_lock:
            self.commit_splices += 1
            self.delta_touched_nodes += outcome.touched_nodes
            self.delta_results_kept += kept_r
            self.delta_results_dropped += dropped_r
            self.delta_mats_kept += kept_m
            self.delta_mats_dropped += dropped_m
            self.last_delta = delta
        return delta

    def _invalidate_for(self, doc_name: str) -> None:
        self.views.invalidate_document(doc_name)
        affected = {doc_name}
        affected.update(v.name for v in self.views.dependents_of_document(doc_name))
        self.results.invalidate(lambda key: key[0] in affected)

    # ------------------------------------------------------------------
    # Delta-scoped invalidation
    # ------------------------------------------------------------------

    def _query_label_set(self, query_text: str):
        """Labels the query's answer can depend on; ``None`` when
        unanalyzable.  Cached by source text (wrapped in a 1-tuple so a
        cached ``None`` still hits)."""
        return self._query_label_cache.get_or_compute(
            query_text,
            lambda: (query_labels(self.compiled.user_query(query_text)),),
        )[0]

    def _transform_label_set(self, transform_text: str, transform: TransformQuery):
        return self._transform_label_cache.get_or_compute(
            transform_text, lambda: (transform_labels(transform),)
        )[0]

    def commit_unaffected(self, delta: CommitDelta, query_text: str) -> bool:
        """Can a cached answer to *query_text* over the committed
        document survive this commit?  The label-disjointness test the
        service's memo re-keying uses: the query is analyzable and
        mentions no label in the commit's delta set."""
        if not delta.spliced or delta.labels is None:
            return False
        labels = self._query_label_set(query_text)
        return labels is not None and not (labels & delta.labels)

    def _invalidate_delta(
        self, doc: StoredDocument, outcome, old_version: int, new_version: int
    ) -> tuple[int, int, int, int]:  # holds: doc.lock
        """Carry provably-unaffected cache entries across a spliced
        commit; drop the rest.  Returns ``(results kept, results
        dropped, materializations kept, materializations dropped)``.

        A result over the document survives when its query's label set
        is disjoint from the delta's.  A result over a view also needs
        every stack layer analyzable and label-disjoint — or the whole
        stack **swallowed**: every patch strictly inside a subtree the
        innermost transform deletes/replaces, making the view output
        byte-identical.  Materializations are exact trees, so only the
        swallow test (not label disjointness) can keep them.
        """
        doc_name = doc.name
        delta_labels = outcome.labels
        dependents = self.views.dependents_of_document(doc_name)
        swallowed: dict[str, bool] = {}
        stack_labels: dict[str, Optional[frozenset]] = {}
        for view in dependents:
            _, stack = self.views.stack(view.name)
            extra: set = set()
            analyzable = True
            for layer in stack:
                layer_labels = self._transform_label_set(
                    layer.transform_text, layer.transform
                )
                if layer_labels is None:
                    analyzable = False
                    break
                extra |= layer_labels
            stack_labels[view.name] = frozenset(extra) if analyzable else None
            swallowed[view.name] = bool(outcome.ranges) and ranges_swallowed_by(
                stack[0].transform, outcome.base_arena, outcome.ranges, self.compiled
            )
        affected = {doc_name}
        affected.update(swallowed)

        def map_key(key):
            target = key[0]
            if target not in affected:
                return key
            if key[1] != old_version:
                return None  # stale leftovers from an even older version
            if target != doc_name and swallowed[target]:
                return (target, new_version) + key[2:]
            needed = self._query_label_set(key[2])
            if needed is None or delta_labels is None:
                return None
            if target != doc_name:
                extra = stack_labels[target]
                if extra is None:
                    return None
                needed = needed | extra
            if needed & delta_labels:
                return None
            return (target, new_version) + key[2:]

        results_kept, results_dropped = self.results.rekey(map_key)
        mats_kept = 0
        mats_dropped = 0
        for view in dependents:
            if view.materialized_root is None:
                continue
            if swallowed[view.name] and view.materialized_version == old_version:
                view.rebase_materialization(new_version)
                mats_kept += 1
            else:
                view.invalidate()
                mats_dropped += 1
        return results_kept, results_dropped, mats_kept, mats_dropped

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def _counter_values(self) -> tuple[int, int]:
        """One consistent ``(arena_reads, snapshot_pins)`` row — the
        only sanctioned way to read the store-wide counters (the seed
        read them bare from stats() and the metric probes, which could
        observe a torn pair mid-increment)."""
        with self._counter_lock:
            return self.arena_reads, self.snapshot_pins

    def _commit_counter_values(self) -> dict:
        """One consistent snapshot of the commit-path counters."""
        with self._counter_lock:
            return {
                "spliced": self.commit_splices,
                "rebuilds": self.commit_rebuilds,
                "noops": self.commit_noops,
                "touched_nodes": self.delta_touched_nodes,
                "results_kept": self.delta_results_kept,
                "results_dropped": self.delta_results_dropped,
                "mats_kept": self.delta_mats_kept,
                "mats_dropped": self.delta_mats_dropped,
            }

    def bind_metrics(self, registry) -> None:
        """Expose the store's counters through a
        :class:`~repro.obs.registry.MetricsRegistry`, all as lazily
        sampled probes under the ``layer.component.metric`` scheme
        (``store.arena.reads`` next to the planner's
        ``engine.planner.chosen.scan.arena`` — one spelling for the
        arena read path, ending the seed's ``arena_reads`` vs
        ``scan[arena]`` divergence).  The read/commit hot paths keep
        their plain attribute bumps; nothing here adds per-request
        cost."""
        registry.probe("store.arena.reads", lambda: self._counter_values()[0])
        registry.probe("store.snapshot.pins", lambda: self._counter_values()[1])
        registry.probe("store.cache.results", self.results.stats)
        self.compiled.bind_metrics(registry, prefix="store.cache.compiled")
        registry.probe("store.documents.count", lambda: len(self.documents))
        registry.probe(
            "store.arena.builds",
            lambda: sum(
                info["arena_builds"] for info in self.documents.stats().values()
            ),
        )
        registry.probe("store.views.count", lambda: len(self.views))
        for metric in (
            "spliced", "rebuilds", "noops", "touched_nodes",
            "results_kept", "results_dropped", "mats_kept", "mats_dropped",
        ):
            registry.probe(
                f"store.commit.delta.{metric}",
                lambda metric=metric: self._commit_counter_values()[metric],
            )
        registry.probe(
            "store.wal.appends",
            lambda: self.wal.stats()["appends"] if self.wal is not None else 0,
        )
        registry.probe(
            "store.wal.fsyncs",
            lambda: self.wal.stats()["fsyncs"] if self.wal is not None else 0,
        )
        registry.probe("store.wal.replayed", lambda: self.wal_replayed)
        registry.probe(
            "store.wal.truncated_tail", lambda: self.wal_truncated_tail
        )
        self.planner.bind_metrics(registry)

    def stats(self) -> dict:
        arena_reads, snapshot_pins = self._counter_values()
        log_stats = self.log.stats()
        documents = {}
        for name, info in self.documents.stats().items():
            info = dict(info)
            info.update(log_stats.get(name, {"staged": 0, "committed": 0}))
            documents[name] = info
        commits = self._commit_counter_values()
        retained = commits["results_kept"] + commits["mats_kept"]
        purged = commits["results_dropped"] + commits["mats_dropped"]
        commits["retention_ratio"] = (
            retained / (retained + purged) if retained + purged else None
        )
        with self._counter_lock:
            last = self.last_delta
        if last is not None:
            last_kept = last.results_kept + last.mats_kept
            last_purged = last.results_dropped + last.mats_dropped
            commits["last"] = {
                "doc": last.doc_name,
                "version": last.new_version,
                "spliced": last.spliced,
                "entries": last.entries,
                "touched_nodes": last.touched_nodes,
                "results_kept": last.results_kept,
                "results_dropped": last.results_dropped,
                "retention_ratio": (
                    last_kept / (last_kept + last_purged)
                    if last_kept + last_purged
                    else None
                ),
            }
        wal = {
            "attached": self.wal is not None,
            "replayed": self.wal_replayed,
            "truncated_tail": self.wal_truncated_tail,
        }
        if self.wal is not None:
            wal.update(self.wal.stats())
        return {
            "documents": documents,
            "views": self.views.stats(),
            "caches": {
                "compiled": self.compiled.stats(),
                "results": self.results.stats(),
            },
            "planner": self.planner.stats(),
            "commits": commits,
            "wal": wal,
            "arena_reads": arena_reads,
            "snapshot_pins": snapshot_pins,
        }

    def chain_info(self, doc_name: str) -> dict:
        """Version-chain shape and shared/owned byte split for one
        document (``repro store stat`` surfaces this)."""
        return self._require_document(doc_name).chain_info()
