"""The store facade: documents + views + caches + update log.

Evaluation strategy for ``query(target, q)``:

* *target* is a document → evaluate ``q`` directly on its tree.
* *target* is a view stack ``t1 … tn`` over document ``T`` → the
  outermost transform ``tn`` is **composed** with ``q`` (Section 4's
  Compose Method: the rewrite prunes the transform to the subtrees the
  query visits and skips it entirely where it provably cannot matter),
  and the composed plan is evaluated over ``t_{n-1}(… t1(T))``.  The
  inner layers are chained as pure, structure-sharing transforms —
  untouched subtrees are *shared* with the stored document, never
  copied — and their trees are discarded after the query unless the
  materialization policy has marked a layer hot, in which case its tree
  is kept until the next commit invalidates it.  The evaluation starts
  from the deepest still-valid materialization, so a hot middle layer
  shortcuts the whole prefix below it.

Strategy choice: every transform evaluation (view layers, staged-update
previews, the reference path) goes through the store's cost-based
:class:`~repro.engine.planner.Planner`, which picks among the five
algorithms per (query shape, current tree) — nothing here hardcodes a
strategy, and a custom planner can be injected at construction.

Caching: compiled artifacts (parses, NFAs, composed plans) live in a
:class:`~repro.store.cache.CompiledCache` and never go stale; query
*results* are cached under ``(target, document version, query text)``
and die wholesale when a commit bumps the version.

Concurrency: every evaluation and commit runs under the target
document's lock; name-table mutations take the store lock.  Results
are returned as-is (they may share structure with the stored tree) —
treat them as immutable snapshots, and serialize them if they must
survive a later commit.
"""

from __future__ import annotations

import threading
from typing import Optional, Union

from repro.engine.planner import Planner
from repro.obs import span
from repro.store.cache import CompiledCache, LRUCache
from repro.store.documents import DocumentStore, Snapshot, StoredDocument
from repro.store.errors import DuplicateNameError, StoreError, UnknownNameError
from repro.store.log import UpdateLog
from repro.store.views import MaterializationPolicy, View, ViewRegistry
from repro.transform.naive import transform_naive
from repro.transform.query import TransformQuery
from repro.updates.apply import apply_update
from repro.xmltree.node import Element
from repro.xmltree.serializer import serialize
from repro.xquery.evaluator import evaluate_query
from repro.xquery.parser import parse_user_query


class ViewStore:
    """A resident multi-document store with stacked virtual views."""

    # guarded-by[arena_reads, snapshot_pins]: self._counter_lock

    def __init__(
        self,
        policy: Optional[MaterializationPolicy] = None,
        compiled_cache_size: int = 256,
        result_cache_size: int = 512,
        planner: Optional[Planner] = None,
    ):
        self.documents = DocumentStore()
        self.views = ViewRegistry(policy)
        self.compiled = CompiledCache(compiled_cache_size)
        self.results = LRUCache(result_cache_size)
        self.planner = planner if planner is not None else Planner()
        self.log = UpdateLog(planner=self.planner)
        #: Reads served from a frozen columnar snapshot (the zero-copy
        #: fast path for plain-document targets).
        self.arena_reads = 0
        #: MVCC snapshots handed out via :meth:`pin`.
        self.snapshot_pins = 0
        # Store-wide counters are bumped from many documents' read
        # paths at once — one lock keeps their tallies exact (the
        # per-document lock only serializes one document's readers).
        self._counter_lock = threading.Lock()

    def _transform(self, root: Element, transform: TransformQuery) -> Element:
        """Evaluate one transform layer with the planner-chosen
        strategy, reusing compiled automata.

        The NFAs are built from (and cached under) the parsed path
        itself — rendering the AST to text does not round-trip string
        literals containing quotes, so the text form is never re-parsed.
        """
        path = transform.path
        return self.planner.transform(
            root,
            transform,
            selecting=self.compiled.selecting_nfa_for(path),
            filtering_factory=lambda: self.compiled.filtering_nfa_for(path),
        )

    # ------------------------------------------------------------------
    # Documents
    # ------------------------------------------------------------------

    def load(self, name: str, path: str, *, replace: bool = False) -> StoredDocument:
        """Parse the file at *path* into the store under *name*."""
        self._check_free(name, replace_document=replace)
        return self.documents.load(name, path, replace=replace)

    def put(
        self,
        name: str,
        document: Union[Element, str],
        *,
        replace: bool = False,
    ) -> StoredDocument:
        """Store a parsed tree or XML source text under *name*."""
        self._check_free(name, replace_document=replace)
        return self.documents.put(name, document, replace=replace)

    def _check_free(self, name: str, *, replace_document: bool = False) -> None:
        if name in self.views:
            raise DuplicateNameError(name)
        if not replace_document and name in self.documents:
            raise DuplicateNameError(name)

    # ------------------------------------------------------------------
    # Views
    # ------------------------------------------------------------------

    def define_view(self, name: str, base: str, transform_text: str) -> View:
        """Define *name* as *base* (a document or a view) seen through
        the given transform query."""
        if name in self.documents or name in self.views:
            raise DuplicateNameError(name)
        if base not in self.documents and base not in self.views:
            raise UnknownNameError(base)
        transform = self.compiled.transform(transform_text)
        return self.views.define(name, base, transform, transform_text)

    def drop(self, name: str) -> None:
        """Drop a view, or a document no view depends on."""
        if name in self.views:
            self.views.drop(name)
            self.results.invalidate(lambda key: key[0] == name)
            return
        if name in self.documents:
            dependents = self.views.dependents_of_document(name)
            if dependents:
                raise StoreError(
                    f"cannot drop document {name!r}: views "
                    f"{sorted(v.name for v in dependents)} are defined over it"
                )
            self.documents.drop(name)
            self.results.invalidate(lambda key: key[0] == name)
            return
        raise UnknownNameError(name)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def query(
        self, target: str, query_text: str, *, include_staged: bool = False
    ) -> list:
        """Answer a user query against a document or a view.

        ``include_staged=True`` evaluates against the hypothetical tree
        the staged-but-uncommitted updates would produce (bypassing the
        result cache and the materializations, which reflect committed
        state only).
        """
        doc, stack = self._resolve(target)
        staged = include_staged and self.log.has_staged(doc.name)
        with doc.lock:
            # The version read and the cache probe happen under the
            # document lock: a concurrent commit mutates the tree in
            # place, so a hit must never be served mid-commit.
            key = (target, doc.version, query_text)
            if not staged:
                cached = self.results.get(key)
                if cached is not None:
                    return cached
            root = doc.root
            if staged:
                # Route the preview chain through _transform so each
                # staged layer reuses the compiled automata.  The
                # preview is a structure-sharing topDown result: only
                # the subtrees the staged updates touch are rebuilt.
                root = self.log.preview(root, doc.name, transform=self._transform)
                result = self._answer(
                    root, stack, query_text, doc.version,
                    use_materializations=False,
                )
            elif not stack:
                # Plain document target: the columnar read fast path —
                # evaluate over the version's frozen arena snapshot
                # (zero-copy: every read of this version shares one
                # immutable object) and thaw only the matches.
                result = self._answer_arena(doc, query_text)
            else:
                result = self._answer(
                    root, stack, query_text, doc.version,
                    use_materializations=True,
                )
            if not staged:
                self.results.put(key, result)
        return result

    def _arena_refs(self, doc: StoredDocument, query_text: str) -> tuple:
        """One columnar read: ``(arena, evaluator, raw ref items)``
        (caller holds the document lock).  The single place the
        snapshot is taken, counted and planned — both the thawing and
        the serializing reads finish from these refs."""
        from repro.xquery.arena_eval import ArenaEvaluator

        user_query = self.compiled.user_query(query_text)
        arena = doc.arena()
        with self._counter_lock:
            self.arena_reads += 1
        self.planner.plan_read(arena)
        evaluator = ArenaEvaluator(arena, self.compiled.selecting_nfa_for)
        with span("scan"):
            return arena, evaluator, evaluator.evaluate_refs(user_query)

    def _answer_arena(self, doc: StoredDocument, query_text: str) -> list:
        """Answer a user query from the document's frozen snapshot
        (caller holds the document lock)."""
        _, evaluator, refs = self._arena_refs(doc, query_text)
        return [evaluator.materialize(item) for item in refs]

    def query_serialized(
        self, target: str, query_text: str, *, include_staged: bool = False
    ) -> list:
        """Answer a user query as serialized XML/text strings.

        For a plain document target this is the end-to-end columnar
        read: matches found by the arena DFA walk are serialized
        **straight from the columns** (:func:`~repro.xmltree.
        serializer.serialize_arena`) — no ``thaw`` round-trip, no Node
        allocation anywhere on the path.  Views and staged previews
        serialize their Node results as before.
        """
        doc, stack = self._resolve(target)
        staged = include_staged and self.log.has_staged(doc.name)
        if staged or stack:
            return [
                serialize(item) if isinstance(item, Element) else str(item)
                for item in self.query(
                    target, query_text, include_staged=include_staged
                )
            ]
        from repro.automata.arena_run import serialize_arena_items

        with doc.lock:
            # The target stays in position 0: every invalidation
            # predicate in this store (drop, commit) matches on
            # ``key[0]``, and a dropped-then-reloaded document restarts
            # at version 1 — only the name predicate protects that case.
            key = (target, doc.version, query_text, "serialized")
            cached = self.results.get(key)
            if cached is not None:
                return cached
            arena, _, refs = self._arena_refs(doc, query_text)
            with span("serialize"):
                result = serialize_arena_items(arena, refs)
            self.results.put(key, result)
        return result

    def query_naive(
        self, target: str, query_text: str, *, include_staged: bool = False
    ) -> list:
        """Reference evaluation: materialize every layer of the stack
        with :func:`transform_naive`, then run the user query — no
        composition, no caches, no planner.  Deliberately independent
        of every production code path so tests and benchmarks can use
        it as the oracle ``Q(tn(…t1(T)))``."""
        doc, stack = self._resolve(target)
        with doc.lock:
            root = doc.root
            if include_staged:
                root = self.log.preview(root, doc.name, transform=transform_naive)
            for view in stack:
                root = transform_naive(root, view.transform)
            return evaluate_query(root, parse_user_query(query_text))

    def _resolve(self, target: str) -> tuple[StoredDocument, list[View]]:
        if target in self.views:
            doc_name, stack = self.views.stack(target)
            return self.documents.get(doc_name), stack
        return self.documents.get(target), []

    def pin(self, name: str) -> Snapshot:
        """Pin an MVCC read snapshot of document *name*.

        The document lock is held only for the version read (and a
        lazy arena freeze); evaluation against the returned immutable
        snapshot happens entirely outside the store's locks, so staged
        or committing writers never block pinned readers.  Views cannot
        be pinned — their layers evaluate over the live tree under the
        document lock; pin the underlying document instead.
        """
        if name in self.views:
            raise StoreError(
                f"{name!r} is a view and cannot be pinned for snapshot "
                f"reads; pin its document "
                f"{self.views.document_of(name)!r} instead"
            )
        snapshot = self.documents.get(name).pin()
        with self._counter_lock:
            self.snapshot_pins += 1
        return snapshot

    def _answer(
        self,
        root: Element,
        stack: list[View],
        query_text: str,
        version: int,
        use_materializations: bool = True,
    ) -> list:
        user_query = self.compiled.user_query(query_text)
        if not stack:
            return evaluate_query(root, user_query)
        base = root
        start = 0
        if use_materializations:
            # Shortcut to the deepest layer whose tree is still valid.
            for index, view in enumerate(stack):
                cached = view.materialization_for(version)
                if cached is not None:
                    base, start = cached, index + 1
        for view in stack[start:-1]:
            view.query_count += 1
            tree = self._transform(base, view.transform)
            if use_materializations and self.views.policy.should_materialize(view):
                view.set_materialized(tree, version)
            base = tree
        outer = stack[-1]
        if start == len(stack):
            # The outermost view itself is materialized: query it plainly.
            outer.query_count += 1
            return evaluate_query(base, user_query)
        outer.query_count += 1
        if use_materializations and self.views.policy.should_materialize(outer):
            tree = self._transform(base, outer.transform)
            outer.set_materialized(tree, version)
            return evaluate_query(tree, user_query)
        composed = self.compiled.composed(query_text, outer.transform_text)
        return evaluate_query(base, composed)

    # ------------------------------------------------------------------
    # Updates: stage / commit / rollback
    # ------------------------------------------------------------------

    def _require_document(self, name: str) -> StoredDocument:
        """A *document* for update operations — views are read-only, so
        point the caller at the document their stack bottoms out in."""
        if name in self.views:
            raise StoreError(
                f"{name!r} is a view and cannot be updated; stage/commit/"
                f"rollback target its document {self.views.document_of(name)!r}"
            )
        return self.documents.get(name)

    def stage(self, doc_name: str, transform_text: str) -> int:
        """Stage a hypothetical transform against a document; returns
        the staging-area depth."""
        doc = self._require_document(doc_name)  # raises on unknown names
        transform = self.compiled.transform(transform_text)
        return self.log.stage(doc.name, transform, transform_text)

    def rollback(self, doc_name: str, count: Optional[int] = None) -> int:
        """Discard staged updates (default: all); the document was never
        touched.  Returns how many entries were dropped."""
        self._require_document(doc_name)
        return self.log.rollback(doc_name, count)

    def commit(self, doc_name: str, transform_text: Optional[str] = None) -> int:
        """Apply the staged updates destructively, in staging order.

        *transform_text*, if given, is staged first (the one-shot
        ``stage + commit`` convenience the CLI uses).  Bumps the
        document version, drops every cached result for the document
        and its views, and invalidates their materializations.  Returns
        the new version.
        """
        doc = self._require_document(doc_name)
        if transform_text is not None:
            self.stage(doc_name, transform_text)
        with doc.lock:
            entries = self.log.take(doc_name)
            for entry in entries:
                apply_update(doc.root, entry.transform.update)
            self.log.record_commit(doc_name, entries)
            doc.dirty = True
            version = doc.bump()
            self._invalidate_for(doc_name)
        return version

    def _invalidate_for(self, doc_name: str) -> None:
        self.views.invalidate_document(doc_name)
        affected = {doc_name}
        affected.update(v.name for v in self.views.dependents_of_document(doc_name))
        self.results.invalidate(lambda key: key[0] in affected)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def _counter_values(self) -> tuple[int, int]:
        """One consistent ``(arena_reads, snapshot_pins)`` row — the
        only sanctioned way to read the store-wide counters (the seed
        read them bare from stats() and the metric probes, which could
        observe a torn pair mid-increment)."""
        with self._counter_lock:
            return self.arena_reads, self.snapshot_pins

    def bind_metrics(self, registry) -> None:
        """Expose the store's counters through a
        :class:`~repro.obs.registry.MetricsRegistry`, all as lazily
        sampled probes under the ``layer.component.metric`` scheme
        (``store.arena.reads`` next to the planner's
        ``engine.planner.chosen.scan.arena`` — one spelling for the
        arena read path, ending the seed's ``arena_reads`` vs
        ``scan[arena]`` divergence).  The read/commit hot paths keep
        their plain attribute bumps; nothing here adds per-request
        cost."""
        registry.probe("store.arena.reads", lambda: self._counter_values()[0])
        registry.probe("store.snapshot.pins", lambda: self._counter_values()[1])
        registry.probe("store.cache.results", self.results.stats)
        self.compiled.bind_metrics(registry, prefix="store.cache.compiled")
        registry.probe("store.documents.count", lambda: len(self.documents))
        registry.probe(
            "store.arena.builds",
            lambda: sum(
                info["arena_builds"] for info in self.documents.stats().values()
            ),
        )
        registry.probe("store.views.count", lambda: len(self.views))
        self.planner.bind_metrics(registry)

    def stats(self) -> dict:
        arena_reads, snapshot_pins = self._counter_values()
        log_stats = self.log.stats()
        documents = {}
        for name, info in self.documents.stats().items():
            info = dict(info)
            info.update(log_stats.get(name, {"staged": 0, "committed": 0}))
            documents[name] = info
        return {
            "documents": documents,
            "views": self.views.stats(),
            "caches": {
                "compiled": self.compiled.stats(),
                "results": self.results.stats(),
            },
            "planner": self.planner.stats(),
            "arena_reads": arena_reads,
            "snapshot_pins": snapshot_pins,
        }
