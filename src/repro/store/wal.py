"""The store's write-ahead log: checksummed JSON lines, fsync'd per
commit.

Every ``commit_delta`` on a state-dir-backed store first appends one
record describing the staged update texts it is about to apply —
*before* the splice/rebuild touches the document — and fsyncs it.  A
checkpoint (:func:`~repro.store.state.save_store`) then truncates the
log: the manifest now covers every record.  Recovery
(:func:`~repro.store.state.open_store`) replays the surviving tail
through the ordinary commit path.

Record format — one JSON object per line::

    {"crc": <crc32 of the canonical body>, "seq": N, "rec": {...}}

The body is the canonical (sorted-keys, no-whitespace) JSON of
``{"seq": N, "rec": record}``; ``crc`` is ``zlib.crc32`` over its UTF-8
bytes.  Sequence numbers are contiguous from 1 within one checkpoint
epoch.  ``rec`` kinds:

* ``{"kind": "commit", "doc": name, "version": V, "texts": [...]}`` —
  the staged transform texts a commit consumed, and the version the
  document will hold once they apply.
* ``{"kind": "abort", "doc": name, "version": V}`` — the commit whose
  record was already durable failed before installing; its record is
  cancelled (see :func:`effective_commits`).

Damage policy: a torn or checksum-failing **final** line is the
expected crash artifact — :func:`read_wal` reports it so the opener can
physically truncate to the last good record and warn.  Anything wrong
*before* the final line (bad line, bad crc, sequence gap) raises the
typed :class:`~repro.store.errors.WalCorruptError`: records past the
damage cannot be trusted, and replaying around a hole would fabricate
history.
"""

from __future__ import annotations

import json
import os
import threading
import zlib
from typing import IO, Any, Dict, List, Optional

from repro.faults import fault_point
from repro.store.errors import WalCorruptError

__all__ = [
    "WAL_NAME",
    "WalReadResult",
    "WalWriter",
    "effective_commits",
    "encode_record",
    "read_wal",
    "truncate_torn_tail",
    "wal_path",
]

WAL_NAME = "wal.jsonl"


def wal_path(state_dir: str) -> str:
    return os.path.join(state_dir, WAL_NAME)


def encode_record(seq: int, record: Dict[str, Any]) -> bytes:
    """One checksummed WAL line (terminating newline included)."""
    body = json.dumps(
        {"seq": seq, "rec": record}, sort_keys=True, separators=(",", ":")
    )
    crc = zlib.crc32(body.encode("utf-8")) & 0xFFFFFFFF
    line = json.dumps(
        {"crc": crc, "seq": seq, "rec": record},
        sort_keys=True,
        separators=(",", ":"),
    )
    return line.encode("utf-8") + b"\n"


def _decode_line(raw: bytes) -> Optional[Dict[str, Any]]:
    """One parsed-and-verified line, or ``None`` when torn/corrupt."""
    try:
        obj = json.loads(raw.decode("utf-8"))
    except (ValueError, UnicodeDecodeError):
        return None
    if not isinstance(obj, dict):
        return None
    crc = obj.get("crc")
    seq = obj.get("seq")
    rec = obj.get("rec")
    if not isinstance(crc, int) or not isinstance(seq, int) or not isinstance(rec, dict):
        return None
    body = json.dumps(
        {"seq": seq, "rec": rec}, sort_keys=True, separators=(",", ":")
    )
    if zlib.crc32(body.encode("utf-8")) & 0xFFFFFFFF != crc:
        return None
    return obj


class WalReadResult:
    """What :func:`read_wal` recovered from one log file."""

    __slots__ = ("records", "last_seq", "truncated_tail", "valid_bytes")

    def __init__(
        self,
        records: List[Dict[str, Any]],
        last_seq: int,
        truncated_tail: bool,
        valid_bytes: int,
    ) -> None:
        self.records = records
        self.last_seq = last_seq
        self.truncated_tail = truncated_tail
        self.valid_bytes = valid_bytes


def read_wal(path: str) -> WalReadResult:
    """Read and verify a WAL file.

    Returns the good records in order.  ``truncated_tail`` is set when
    the final line was torn (the caller should physically truncate the
    file to ``valid_bytes`` before appending again — a later append
    after a torn line would turn tail damage into mid-log damage).
    Mid-log damage raises :class:`WalCorruptError`.
    """
    if not os.path.exists(path):
        return WalReadResult([], 0, False, 0)
    with open(path, "rb") as handle:
        data = handle.read()
    records: List[Dict[str, Any]] = []
    last_seq = 0
    offset = 0
    valid_bytes = 0
    n = len(data)
    line_no = 0
    while offset < n:
        end = data.find(b"\n", offset)
        torn_line = end < 0  # no terminating newline: the write was cut
        if torn_line:
            end = n
        raw = data[offset:end]
        line_no += 1
        obj = None if torn_line else _decode_line(raw)
        if obj is None:
            if end >= n or not data[end + 1:].strip():
                # Damage confined to the tail: report, let the caller
                # truncate to the last good record.
                return WalReadResult(records, last_seq, True, valid_bytes)
            raise WalCorruptError(
                path, "bad record before the final line", line_no
            )
        seq = obj["seq"]
        if seq != last_seq + 1:
            raise WalCorruptError(
                path,
                f"sequence gap: expected {last_seq + 1}, found {seq}",
                line_no,
            )
        records.append(obj["rec"])
        last_seq = seq
        offset = end + 1
        valid_bytes = offset
    return WalReadResult(records, last_seq, False, valid_bytes)


def truncate_torn_tail(path: str, valid_bytes: int) -> None:
    """Physically cut a torn tail so future appends start clean."""
    with open(path, "rb+") as handle:
        handle.truncate(valid_bytes)
        handle.flush()
        os.fsync(handle.fileno())


def effective_commits(records: List[Dict[str, Any]]) -> List[Dict[str, Any]]:
    """Commit records that still count, in order.

    An ``abort`` record cancels the **latest prior uncancelled**
    commit record with the same ``(doc, version)`` — the commit whose
    record made it to disk but whose apply failed in-process (the store
    restored its staged entries, so a retry writes a fresh record with
    the same version; without cancellation the replay would apply the
    failed attempt and skip the real one).
    """
    commits: List[Optional[Dict[str, Any]]] = []
    for rec in records:
        kind = rec.get("kind")
        if kind == "commit":
            commits.append(rec)
        elif kind == "abort":
            for index in range(len(commits) - 1, -1, -1):
                prior = commits[index]
                if (
                    prior is not None
                    and prior.get("doc") == rec.get("doc")
                    and prior.get("version") == rec.get("version")
                ):
                    commits[index] = None
                    break
        # Unknown kinds are skipped: a newer writer may add record
        # kinds an older reader can ignore safely.
    return [rec for rec in commits if rec is not None]


class WalWriter:
    """Appends checksummed, fsync'd records to one WAL file.

    Attached to a :class:`~repro.store.store.ViewStore` by
    ``open_store`` *after* replay (so replayed commits are not
    re-logged), continuing the surviving sequence.  ``fsync=False``
    exists for the benchmark baseline only — it forfeits the
    durability guarantee.
    """

    # guarded-by[seq, appends, fsyncs, _handle]: self._lock

    def __init__(self, path: str, start_seq: int = 0, fsync: bool = True) -> None:
        self.path = path
        self.fsync_enabled = fsync
        self._lock = threading.Lock()
        self.seq = start_seq
        self.appends = 0
        self.fsyncs = 0
        self._handle: Optional[IO[bytes]] = None

    def append(self, record: Dict[str, Any]) -> int:
        """Durably append one record; returns its sequence number.

        The record is on disk (written, flushed, fsync'd) before this
        returns — the commit it describes may then proceed.
        """
        with self._lock:
            handle = self._handle
            if handle is None:
                handle = open(self.path, "ab")
                self._handle = handle
            seq = self.seq + 1
            handle.write(encode_record(seq, record))
            handle.flush()
            fault_point("wal.append.pre_fsync")
            if self.fsync_enabled:
                os.fsync(handle.fileno())
                self.fsyncs += 1
            fault_point("wal.append.post_fsync")
            self.seq = seq
            self.appends += 1
            return seq

    def truncate(self) -> None:
        """Reset the log after a checkpoint covered every record."""
        with self._lock:
            if self._handle is not None:
                self._handle.close()
                self._handle = None
            with open(self.path, "wb") as handle:
                handle.flush()
                os.fsync(handle.fileno())
            self.seq = 0

    def close(self) -> None:
        with self._lock:
            if self._handle is not None:
                self._handle.close()
                self._handle = None

    def stats(self) -> Dict[str, int]:
        with self._lock:
            return {
                "seq": self.seq,
                "appends": self.appends,
                "fsyncs": self.fsyncs,
            }
