"""Durable state for the ``repro store`` CLI: a directory holding one
XML file per document plus a JSON manifest.

Layout of a state directory::

    store.json        — versions, view definitions, staged updates
    doc-<name>.xml    — one serialized tree per document

The CLI is one process per command, so each invocation rebuilds a
:class:`~repro.store.store.ViewStore` from the directory, applies its
command, and writes the directory back.  Compiled caches are in-memory
only (they are cheap to rebuild and never stale); what persists is
exactly the stateful part: documents, their versions, the view
definitions in dependency order, and the staged-update texts.

The manifest is written atomically (temp file + ``os.replace``) so an
interrupted command never leaves a half-written manifest behind.
"""

from __future__ import annotations

import json
import os
from typing import Optional

from repro.store.store import ViewStore
from repro.store.views import MaterializationPolicy
from repro.xmltree.serializer import write_file

MANIFEST_NAME = "store.json"
_FORMAT = 1


def _manifest_path(state_dir: str) -> str:
    return os.path.join(state_dir, MANIFEST_NAME)


def _document_file(name: str) -> str:
    return f"doc-{name}.xml"


def open_store(
    state_dir: str, policy: Optional[MaterializationPolicy] = None
) -> ViewStore:
    """Build a :class:`ViewStore` from a state directory.

    A missing directory (or one without a manifest) yields an empty
    store — ``repro store load`` bootstraps it on first save.
    """
    store = ViewStore(policy=policy)
    manifest_path = _manifest_path(state_dir)
    if not os.path.exists(manifest_path):
        return store
    with open(manifest_path, "r", encoding="utf-8") as handle:
        manifest = json.load(handle)
    if manifest.get("format") != _FORMAT:
        raise ValueError(
            f"unsupported store state format {manifest.get('format')!r} "
            f"in {manifest_path}"
        )
    for name, info in manifest.get("documents", {}).items():
        path = os.path.join(state_dir, info["file"])
        doc = store.load(name, path)
        doc.version = int(info.get("version", 1))
        doc.dirty = False  # the tree came from the state file itself
        for text in info.get("staged", []):
            store.stage(name, text)
        store.log.restore_history(name, info.get("history", []))
    # Views were saved in definition order, so bases always exist.
    for entry in manifest.get("views", []):
        store.define_view(entry["name"], entry["base"], entry["transform"])
    return store


def save_store(store: ViewStore, state_dir: str) -> str:
    """Write the store's durable state into *state_dir*; returns the
    manifest path."""
    os.makedirs(state_dir, exist_ok=True)
    documents = {}
    for name in store.documents.names():
        doc = store.documents.get(name)
        filename = _document_file(name)
        path = os.path.join(state_dir, filename)
        with doc.lock:
            # Only rewrite trees that changed (commit / fresh load): a
            # manifest-only command on a store of large documents must
            # not pay — or risk — a full re-serialization of each one.
            if doc.dirty or not os.path.exists(path):
                temp = path + ".tmp"
                write_file(doc.root, temp)
                os.replace(temp, path)
                doc.dirty = False
            documents[name] = {
                "file": filename,
                "version": doc.version,
                "staged": [entry.text for entry in store.log.staged(name)],
                "history": store.log.history(name),
            }
    views = [
        {"name": view.name, "base": view.base, "transform": view.transform_text}
        for view in store.views.in_definition_order()
    ]
    manifest = {"format": _FORMAT, "documents": documents, "views": views}
    manifest_path = _manifest_path(state_dir)
    temp_path = manifest_path + ".tmp"
    with open(temp_path, "w", encoding="utf-8") as handle:
        json.dump(manifest, handle, indent=2, sort_keys=True)
        handle.write("\n")
    os.replace(temp_path, manifest_path)
    return manifest_path
