"""Durable state for the ``repro store`` CLI: a directory holding one
XML file per document plus a JSON manifest.

Layout of a state directory::

    store.json        — versions, view definitions, staged updates
    doc-<name>.xml    — one serialized tree per document

The CLI is one process per command, so each invocation rebuilds a
:class:`~repro.store.store.ViewStore` from the directory, applies its
command, and writes the directory back.  Compiled caches are in-memory
only (they are cheap to rebuild and never stale); what persists is
exactly the stateful part: documents, their versions, the view
definitions in dependency order, and the staged-update texts.

The manifest is written atomically (temp file + ``os.replace``) so an
interrupted command never leaves a half-written manifest behind.

Cross-process exclusion: a ``state.lock`` file in the directory is
``flock``-ed for the duration of every read-modify-write cycle
(:class:`StateLock` / :func:`locked_state`), so two CLI invocations —
or a CLI invocation and a running ``repro serve`` — cannot interleave
their commits.  A held lock surfaces as the typed
:class:`~repro.store.errors.StateLockedError`; an unreadable manifest
as :class:`~repro.store.errors.CorruptStateError` — both map to one
``repro: …`` line and exit code 2 at the CLI boundary.
"""

from __future__ import annotations

import contextlib
import json
import os
import time
from typing import Iterator, Optional

from repro.store.errors import CorruptStateError, StateLockedError
from repro.store.store import ViewStore
from repro.store.views import MaterializationPolicy
from repro.xmltree.serializer import write_file

try:  # POSIX; on platforms without fcntl the lock degrades to advisory-only
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX fallback
    fcntl = None

MANIFEST_NAME = "store.json"
LOCK_NAME = "state.lock"
_FORMAT = 1


def _manifest_path(state_dir: str) -> str:
    return os.path.join(state_dir, MANIFEST_NAME)


def _document_file(name: str) -> str:
    return f"doc-{name}.xml"


class StateLock:
    """An exclusive ``flock`` on a state directory's ``state.lock``.

    Advisory but sufficient: every code path that reads or writes the
    directory (the CLI commands via :func:`locked_state`, ``repro
    serve`` for its whole lifetime) takes it first.  Read-only cycles
    acquire it **shared** (``LOCK_SH``) — any number of concurrent
    readers, excluded only while a writer holds it exclusively.
    Acquisition polls with a short timeout rather than blocking
    forever, so a command racing a long-running holder fails fast with
    the typed :class:`StateLockedError` instead of hanging.
    """

    def __init__(self, state_dir: str):
        self.state_dir = state_dir
        self.path = os.path.join(state_dir, LOCK_NAME)
        self._handle = None

    def acquire(
        self, timeout: float = 5.0, poll: float = 0.05, shared: bool = False
    ) -> "StateLock":
        if self._handle is not None:
            return self
        os.makedirs(self.state_dir, exist_ok=True)
        handle = open(self.path, "a+", encoding="utf-8")
        if fcntl is None:  # pragma: no cover - non-POSIX fallback
            self._handle = handle
            return self
        mode = fcntl.LOCK_SH if shared else fcntl.LOCK_EX
        deadline = time.monotonic() + timeout
        while True:
            try:
                fcntl.flock(handle.fileno(), mode | fcntl.LOCK_NB)
                break
            except OSError:
                if time.monotonic() >= deadline:
                    holder = ""
                    with contextlib.suppress(OSError):
                        handle.seek(0)
                        holder = handle.read(128).strip()
                    handle.close()
                    raise StateLockedError(self.state_dir, holder) from None
                time.sleep(poll)
        if not shared:
            # Only the exclusive holder stamps its identity; shared
            # readers must not scribble over each other.
            with contextlib.suppress(OSError):
                handle.seek(0)
                handle.truncate()
                handle.write(f"pid {os.getpid()}\n")
                handle.flush()
        self._handle = handle
        return self

    def release(self) -> None:
        handle, self._handle = self._handle, None
        if handle is None:
            return
        if fcntl is not None:
            with contextlib.suppress(OSError):
                fcntl.flock(handle.fileno(), fcntl.LOCK_UN)
        handle.close()

    def __enter__(self) -> "StateLock":
        return self.acquire()

    def __exit__(self, *exc_info) -> None:
        self.release()


@contextlib.contextmanager
def locked_state(
    state_dir: str,
    policy: Optional[MaterializationPolicy] = None,
    *,
    save: bool = True,
    timeout: float = 5.0,
) -> Iterator[ViewStore]:
    """One locked read-modify-write cycle on a state directory.

    Opens the store under the directory's :class:`StateLock`, yields
    it, and (by default) saves it back before the lock is released —
    the unit every ``repro store`` CLI command runs as.  With
    ``save=False`` the cycle is read-only: nothing is written back,
    and the lock is taken *shared*, so concurrent readers never
    exclude each other (only a writer's exclusive hold does).
    """
    with StateLock(state_dir).acquire(timeout=timeout, shared=not save):
        store = open_store(state_dir, policy)
        yield store
        if save:
            save_store(store, state_dir)


def open_store(
    state_dir: str, policy: Optional[MaterializationPolicy] = None
) -> ViewStore:
    """Build a :class:`ViewStore` from a state directory.

    A missing directory (or one without a manifest) yields an empty
    store — ``repro store load`` bootstraps it on first save.  An
    unreadable or unsupported manifest raises the typed
    :class:`CorruptStateError` rather than a raw traceback.
    """
    store = ViewStore(policy=policy)
    manifest_path = _manifest_path(state_dir)
    if not os.path.exists(manifest_path):
        return store
    with open(manifest_path, "r", encoding="utf-8") as handle:
        try:
            manifest = json.load(handle)
        except json.JSONDecodeError as exc:
            raise CorruptStateError(manifest_path, f"not valid JSON ({exc})") from None
    if not isinstance(manifest, dict):
        raise CorruptStateError(manifest_path, "manifest is not a JSON object")
    if manifest.get("format") != _FORMAT:
        raise CorruptStateError(
            manifest_path,
            f"unsupported format {manifest.get('format')!r} "
            f"(this build reads format {_FORMAT})",
        )
    try:
        for name, info in manifest.get("documents", {}).items():
            path = os.path.join(state_dir, info["file"])
            doc = store.load(name, path)
            doc.version = int(info.get("version", 1))
            doc.dirty = False  # the tree came from the state file itself
            for text in info.get("staged", []):
                store.stage(name, text)
            store.log.restore_history(name, info.get("history", []))
        # Views were saved in definition order, so bases always exist.
        for entry in manifest.get("views", []):
            store.define_view(entry["name"], entry["base"], entry["transform"])
    except (KeyError, TypeError, AttributeError) as exc:
        raise CorruptStateError(
            manifest_path, f"malformed manifest entry ({exc!r})"
        ) from None
    return store


def save_store(store: ViewStore, state_dir: str) -> str:
    """Write the store's durable state into *state_dir*; returns the
    manifest path."""
    os.makedirs(state_dir, exist_ok=True)
    documents = {}
    for name in store.documents.names():
        doc = store.documents.get(name)
        filename = _document_file(name)
        path = os.path.join(state_dir, filename)
        with doc.lock:
            # Only rewrite trees that changed (commit / fresh load): a
            # manifest-only command on a store of large documents must
            # not pay — or risk — a full re-serialization of each one.
            if doc.dirty or not os.path.exists(path):
                temp = path + ".tmp"
                write_file(doc.root, temp)
                os.replace(temp, path)
                doc.dirty = False
            documents[name] = {
                "file": filename,
                "version": doc.version,
                "staged": [entry.text for entry in store.log.staged(name)],
                "history": store.log.history(name),
            }
    views = [
        {"name": view.name, "base": view.base, "transform": view.transform_text}
        for view in store.views.in_definition_order()
    ]
    manifest = {"format": _FORMAT, "documents": documents, "views": views}
    manifest_path = _manifest_path(state_dir)
    temp_path = manifest_path + ".tmp"
    with open(temp_path, "w", encoding="utf-8") as handle:
        json.dump(manifest, handle, indent=2, sort_keys=True)
        handle.write("\n")
    os.replace(temp_path, manifest_path)
    return manifest_path
