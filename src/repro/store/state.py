"""Durable state for the ``repro store`` CLI: a directory holding one
XML file per document plus a JSON manifest.

Layout of a state directory::

    store.json           — versions, view definitions, staged updates
    doc-<name>-vN.xml    — one serialized tree per document, named by
                           the version it holds (the manifest records
                           the exact filename)
    wal.jsonl            — write-ahead log of commits past the checkpoint

Document files are **never overwritten**: a checkpoint writes changed
trees under fresh versioned names and the manifest replace is the
single atomic commit point — a crash anywhere before it leaves the old
manifest referencing the old (untouched) files.  Files no checkpoint
references any longer are garbage-collected after the WAL truncate.

The CLI is one process per command, so each invocation rebuilds a
:class:`~repro.store.store.ViewStore` from the directory, applies its
command, and writes the directory back.  Compiled caches are in-memory
only (they are cheap to rebuild and never stale); what persists is
exactly the stateful part: documents, their versions, the view
definitions in dependency order, and the staged-update texts.

The manifest is written atomically (temp file + ``os.replace``) so an
interrupted command never leaves a half-written manifest behind.

Durability: :func:`save_store` is an atomic **checkpoint** — every
temp file is fsync'd before its rename, the directory entry is fsync'd
after, and only then is the write-ahead log truncated.
:func:`open_store` **recovers**: after the manifest loads, any WAL tail
the last checkpoint did not cover is replayed through the ordinary
commit path (idempotently — each record carries the version it
produces, so records the checkpoint already covers are skipped).  A
torn final record is the expected crash artifact and is truncated away
with a warning; damage anywhere else raises the typed
:class:`~repro.store.errors.WalCorruptError`.

Cross-process exclusion: a ``state.lock`` file in the directory is
``flock``-ed for the duration of every read-modify-write cycle
(:class:`StateLock` / :func:`locked_state`), so two CLI invocations —
or a CLI invocation and a running ``repro serve`` — cannot interleave
their commits.  A held lock surfaces as the typed
:class:`~repro.store.errors.StateLockedError`; an unreadable manifest
as :class:`~repro.store.errors.CorruptStateError` — both map to one
``repro: …`` line and exit code 2 at the CLI boundary.
"""

from __future__ import annotations

import contextlib
import json
import os
import time
import warnings
from typing import Iterator, Optional

from repro.faults import fault_point
from repro.store.errors import CorruptStateError, StateLockedError, WalCorruptError
from repro.store.store import ViewStore
from repro.store.views import MaterializationPolicy
from repro.store.wal import (
    WalWriter,
    effective_commits,
    read_wal,
    truncate_torn_tail,
    wal_path,
)
from repro.xmltree.serializer import write_file

try:  # POSIX; on platforms without fcntl the lock degrades to advisory-only
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX fallback
    fcntl = None

MANIFEST_NAME = "store.json"
LOCK_NAME = "state.lock"
_FORMAT = 1


def _manifest_path(state_dir: str) -> str:
    return os.path.join(state_dir, MANIFEST_NAME)


def _document_file(name: str, version: int, attempt: int = 0) -> str:
    if attempt:
        return f"doc-{name}-v{version}.{attempt}.xml"
    return f"doc-{name}-v{version}.xml"


class StateLock:
    """An exclusive ``flock`` on a state directory's ``state.lock``.

    Advisory but sufficient: every code path that reads or writes the
    directory (the CLI commands via :func:`locked_state`, ``repro
    serve`` for its whole lifetime) takes it first.  Read-only cycles
    acquire it **shared** (``LOCK_SH``) — any number of concurrent
    readers, excluded only while a writer holds it exclusively.
    Acquisition polls with a short timeout rather than blocking
    forever, so a command racing a long-running holder fails fast with
    the typed :class:`StateLockedError` instead of hanging.
    """

    def __init__(self, state_dir: str):
        self.state_dir = state_dir
        self.path = os.path.join(state_dir, LOCK_NAME)
        self._handle = None

    def acquire(
        self, timeout: float = 5.0, poll: float = 0.05, shared: bool = False
    ) -> "StateLock":
        if self._handle is not None:
            return self
        os.makedirs(self.state_dir, exist_ok=True)
        handle = open(self.path, "a+", encoding="utf-8")
        if fcntl is None:  # pragma: no cover - non-POSIX fallback
            self._handle = handle
            return self
        mode = fcntl.LOCK_SH if shared else fcntl.LOCK_EX
        deadline = time.monotonic() + timeout
        while True:
            try:
                fcntl.flock(handle.fileno(), mode | fcntl.LOCK_NB)
                break
            except OSError:
                if time.monotonic() >= deadline:
                    holder = ""
                    with contextlib.suppress(OSError):
                        handle.seek(0)
                        holder = handle.read(128).strip()
                    handle.close()
                    raise StateLockedError(self.state_dir, holder) from None
                time.sleep(poll)
        if not shared:
            # Only the exclusive holder stamps its identity; shared
            # readers must not scribble over each other.
            with contextlib.suppress(OSError):
                handle.seek(0)
                handle.truncate()
                handle.write(f"pid {os.getpid()}\n")
                handle.flush()
        self._handle = handle
        return self

    def release(self) -> None:
        handle, self._handle = self._handle, None
        if handle is None:
            return
        if fcntl is not None:
            with contextlib.suppress(OSError):
                fcntl.flock(handle.fileno(), fcntl.LOCK_UN)
        handle.close()

    def __enter__(self) -> "StateLock":
        return self.acquire()

    def __exit__(self, *exc_info) -> None:
        self.release()


@contextlib.contextmanager
def locked_state(
    state_dir: str,
    policy: Optional[MaterializationPolicy] = None,
    *,
    save: bool = True,
    timeout: float = 5.0,
) -> Iterator[ViewStore]:
    """One locked read-modify-write cycle on a state directory.

    Opens the store under the directory's :class:`StateLock`, yields
    it, and (by default) saves it back before the lock is released —
    the unit every ``repro store`` CLI command runs as.  With
    ``save=False`` the cycle is read-only: nothing is written back,
    and the lock is taken *shared*, so concurrent readers never
    exclude each other (only a writer's exclusive hold does).
    """
    with StateLock(state_dir).acquire(timeout=timeout, shared=not save):
        store = open_store(state_dir, policy)
        yield store
        if save:
            save_store(store, state_dir)


def open_store(
    state_dir: str, policy: Optional[MaterializationPolicy] = None
) -> ViewStore:
    """Build a :class:`ViewStore` from a state directory.

    A missing directory (or one without a manifest) yields an empty
    store — ``repro store load`` bootstraps it on first save.  An
    unreadable or unsupported manifest raises the typed
    :class:`CorruptStateError` rather than a raw traceback.
    """
    store = ViewStore(policy=policy)
    manifest_path = _manifest_path(state_dir)
    if not os.path.exists(manifest_path):
        return store
    with open(manifest_path, "r", encoding="utf-8") as handle:
        try:
            manifest = json.load(handle)
        except json.JSONDecodeError as exc:
            raise CorruptStateError(manifest_path, f"not valid JSON ({exc})") from None
    if not isinstance(manifest, dict):
        raise CorruptStateError(manifest_path, "manifest is not a JSON object")
    if manifest.get("format") != _FORMAT:
        raise CorruptStateError(
            manifest_path,
            f"unsupported format {manifest.get('format')!r} "
            f"(this build reads format {_FORMAT})",
        )
    staged_texts = {}
    try:
        for name, info in manifest.get("documents", {}).items():
            path = os.path.join(state_dir, info["file"])
            doc = store.load(name, path)
            doc.version = int(info.get("version", 1))
            doc.dirty = False  # the tree came from the state file itself
            doc.state_file = info["file"]
            staged_texts[name] = list(info.get("staged", []))
            store.log.restore_history(name, info.get("history", []))
        # Views were saved in definition order, so bases always exist.
        for entry in manifest.get("views", []):
            store.define_view(entry["name"], entry["base"], entry["transform"])
    except (KeyError, TypeError, AttributeError) as exc:
        raise CorruptStateError(
            manifest_path, f"malformed manifest entry ({exc!r})"
        ) from None
    replayed_docs, last_seq = _replay_wal(store, state_dir)
    # Checkpoint-time staged texts are restored only for documents with
    # no replayed commit: a commit consumes the *whole* staging area,
    # so any replayed commit's record already contains (or supersedes)
    # everything the checkpoint had staged for that document.  This
    # must run after replay — replay's commits would otherwise consume
    # the restored entries as their own.
    for name, texts in staged_texts.items():
        if name in replayed_docs:
            continue
        for text in texts:
            store.stage(name, text)
    # The writer attaches only now: replayed commits must not be
    # re-appended, and fresh appends continue the surviving sequence.
    store.wal = WalWriter(wal_path(state_dir), start_seq=last_seq)
    return store


def _replay_wal(store: ViewStore, state_dir: str) -> "tuple[set, int]":
    """Replay the WAL tail past the checkpoint into *store*.

    Returns ``(documents that received a replayed commit, last good
    sequence number)``.  Each effective commit record is re-staged and
    committed through the ordinary path; records whose version the
    checkpoint already covers are skipped (the idempotence that makes a
    crash *between* manifest replace and WAL truncate harmless).  A
    version past ``doc.version + 1`` means a record the log should hold
    is missing — that is mid-log damage, not a tolerable tail.
    """
    path = wal_path(state_dir)
    result = read_wal(path)
    if result.truncated_tail:
        truncate_torn_tail(path, result.valid_bytes)
        store.wal_truncated_tail = 1
        warnings.warn(
            f"write-ahead log {path!r}: torn final record truncated "
            f"(expected after a crash mid-append)",
            RuntimeWarning,
            stacklevel=3,
        )
    replayed_docs: set = set()
    replayed = 0
    for rec in effective_commits(result.records):
        name = rec.get("doc")
        version = rec.get("version")
        texts = rec.get("texts")
        if not isinstance(name, str) or not isinstance(version, int) \
                or not isinstance(texts, list) or not texts:
            raise WalCorruptError(path, f"malformed commit record {rec!r}")
        if name not in store.documents:
            warnings.warn(
                f"write-ahead log {path!r}: commit for unknown document "
                f"{name!r} skipped (dropped after the record was written?)",
                RuntimeWarning,
                stacklevel=3,
            )
            continue
        doc = store.documents.get(name)
        if version <= doc.version:
            continue  # the checkpoint already covers this record
        if version != doc.version + 1:
            raise WalCorruptError(
                path,
                f"version gap for {name!r}: document at {doc.version}, "
                f"next record claims {version}",
            )
        for text in texts:
            store.stage(name, text)
        store.commit(name)
        replayed += 1
        replayed_docs.add(name)
    store.wal_replayed = replayed
    return replayed_docs, result.last_seq


def _fsync_path(path: str) -> None:
    """fsync a file *or directory* by path (O_RDONLY suffices for both
    on POSIX — directories cannot be opened for writing at all)."""
    fd = os.open(path, os.O_RDONLY)
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


def save_store(store: ViewStore, state_dir: str) -> str:
    """Checkpoint the store's durable state into *state_dir*; returns
    the manifest path.

    Atomic and durable: changed trees are written under **fresh
    versioned filenames** (flushed and fsync'd — rename alone only
    orders the directory entry, not the data), never over a file the
    on-disk manifest may still reference; the manifest's own
    temp-write/fsync/``os.replace`` is then the single commit point.
    The directory entry is fsync'd after the renames, and only then is
    the write-ahead log truncated (and unreferenced document files
    collected).  A crash at any point leaves either the old checkpoint
    — its files untouched — plus a full WAL, or the new checkpoint
    plus a WAL whose records replay idempotently: never a state that
    loses a logged commit or replays one onto the wrong tree.
    """
    os.makedirs(state_dir, exist_ok=True)
    documents = {}
    wrote_files = False
    for name in store.documents.names():
        doc = store.documents.get(name)
        with doc.lock:
            filename = doc.state_file
            # Only rewrite trees that changed (commit / fresh load): a
            # manifest-only command on a store of large documents must
            # not pay — or risk — a full re-serialization of each one.
            if doc.dirty or filename is None or not os.path.exists(
                os.path.join(state_dir, filename)
            ):
                # First free versioned name: a replace-put can reuse a
                # version number whose file an older checkpoint still
                # references, and that file must survive a crash here.
                attempt = 0
                filename = _document_file(name, doc.version)
                path = os.path.join(state_dir, filename)
                while os.path.exists(path):
                    attempt += 1
                    filename = _document_file(name, doc.version, attempt)
                    path = os.path.join(state_dir, filename)
                temp = path + ".tmp"
                write_file(doc.root, temp)
                _fsync_path(temp)
                fault_point("checkpoint.fsync.file")
                os.replace(temp, path)
                doc.state_file = filename
                doc.dirty = False
                wrote_files = True
            documents[name] = {
                "file": filename,
                "version": doc.version,
                "staged": [entry.text for entry in store.log.staged(name)],
                "history": store.log.history(name),
            }
    if wrote_files:
        # New document entries must be durable before a manifest that
        # names them can be: otherwise a power loss could persist the
        # manifest rename but not a file it references.
        _fsync_path(state_dir)
    views = [
        {"name": view.name, "base": view.base, "transform": view.transform_text}
        for view in store.views.in_definition_order()
    ]
    manifest = {"format": _FORMAT, "documents": documents, "views": views}
    manifest_path = _manifest_path(state_dir)
    temp_path = manifest_path + ".tmp"
    with open(temp_path, "w", encoding="utf-8") as handle:
        json.dump(manifest, handle, indent=2, sort_keys=True)
        handle.write("\n")
        handle.flush()
        os.fsync(handle.fileno())
    fault_point("checkpoint.fsync.file")
    fault_point("wal.checkpoint.mid")
    os.replace(temp_path, manifest_path)
    # The renames are durable only once the directory entries are:
    # fsync the directory before the WAL is touched, or a crash could
    # pair the *old* manifest with an already-emptied log.
    _fsync_path(state_dir)
    fault_point("checkpoint.fsync.dir")
    fault_point("wal.checkpoint.pre_truncate")
    if store.wal is not None:
        store.wal.truncate()
    else:
        # A store built in memory and saved over an existing state dir:
        # a stale log from the previous store must not replay over this
        # checkpoint.
        stale = wal_path(state_dir)
        if os.path.exists(stale):
            with open(stale, "wb") as handle:
                os.fsync(handle.fileno())
    # The new checkpoint is durable: document files it no longer
    # references (superseded versions, dropped documents, orphans from
    # an interrupted earlier checkpoint) are garbage.
    referenced = {info["file"] for info in documents.values()}
    for entry in os.listdir(state_dir):
        stale_doc = (
            entry.startswith("doc-")
            and entry.endswith(".xml")
            and entry not in referenced
        )
        # A .tmp can only be the leftover of an interrupted checkpoint:
        # the exclusive state lock means no concurrent save owns one.
        if stale_doc or entry.endswith(".tmp"):
            with contextlib.suppress(OSError):
                os.remove(os.path.join(state_dir, entry))
    return manifest_path
