"""``repro.store`` — a resident multi-document store with stacked
virtual views, compiled-query caches, and commit/rollback.

The rest of the package evaluates one query over one freshly parsed
document; this subsystem keeps documents resident and routes queries
through *view stacks*::

    from repro import ViewStore

    store = ViewStore()
    store.put("catalog", "<db><part><pname>kb</pname>"
                         "<supplier><sname>HP</sname><price>12</price>"
                         "<country>A</country></supplier></part></db>")
    store.define_view(
        "public", "catalog",
        'transform copy $a := doc("catalog") modify do '
        "delete $a//supplier[country = 'A']/price return $a",
    )
    store.define_view(
        "emea", "public",
        'transform copy $a := doc("public") modify do '
        "rename $a//sname as vendor return $a",
    )
    rows = store.query("emea", "for $x in part/supplier return $x")

A view is its transform query — no tree is materialized for it unless
the :class:`MaterializationPolicy` declares it hot.  Queries against a
view are answered with the Compose Method over the stack (see
:mod:`repro.store.store` for the exact strategy), compiled artifacts
are cached in an LRU :class:`CompiledCache`, and results are cached per
document version.  Staged updates commit destructively (bumping the
version and invalidating dependent views and results) or roll back.

:mod:`repro.store.state` gives the ``repro store`` CLI durable state:
one directory with a JSON manifest plus one XML file per document.
"""

from repro.store.cache import CompiledCache, LRUCache
from repro.store.documents import DocumentStore, Snapshot, StoredDocument
from repro.store.errors import (
    CorruptStateError,
    DuplicateNameError,
    InvalidNameError,
    NothingStagedError,
    StateLockedError,
    StoreError,
    UnknownNameError,
)
from repro.store.log import StagedUpdate, UpdateLog
from repro.store.state import locked_state, open_store, save_store
from repro.store.store import ViewStore
from repro.store.views import MaterializationPolicy, View, ViewRegistry

__all__ = [
    "CompiledCache",
    "CorruptStateError",
    "DocumentStore",
    "DuplicateNameError",
    "InvalidNameError",
    "LRUCache",
    "MaterializationPolicy",
    "NothingStagedError",
    "Snapshot",
    "StagedUpdate",
    "StateLockedError",
    "StoreError",
    "StoredDocument",
    "UnknownNameError",
    "UpdateLog",
    "View",
    "ViewRegistry",
    "ViewStore",
    "locked_state",
    "open_store",
    "save_store",
]
