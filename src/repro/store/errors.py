"""Store-layer exceptions.

Every store error is a :class:`ValueError` subclass so the CLI boundary
(which already maps ``ValueError``/``OSError`` to a one-line message and
exit code 2) covers the store without special cases.
"""

from __future__ import annotations


class StoreError(ValueError):
    """Base class for every error raised by :mod:`repro.store`."""


class UnknownNameError(StoreError):
    """A document or view name that the store does not know."""

    def __init__(self, name: str):
        super().__init__(f"unknown document or view {name!r}")
        self.name = name


class DuplicateNameError(StoreError):
    """A name already taken by a document or a view.

    Documents and views share one namespace: a query names its target
    without saying which kind it is, so the store keeps them disjoint.
    """

    def __init__(self, name: str):
        super().__init__(f"name {name!r} is already in use")
        self.name = name


class NothingStagedError(StoreError):
    """Commit or rollback on a document with an empty staging area."""

    def __init__(self, name: str):
        super().__init__(f"no staged updates for document {name!r}")
        self.name = name


class StateLockedError(StoreError):
    """Another process holds the durable state directory's lock.

    Two CLI invocations (or a CLI invocation and a running ``repro
    serve``) must not interleave reads and writes of one state
    directory — the second comer gets this error instead of a
    half-merged store.
    """

    def __init__(self, state_dir: str, holder: str = ""):
        detail = f" (held by {holder})" if holder else ""
        super().__init__(
            f"store state directory {state_dir!r} is locked by another "
            f"process{detail}; retry when it finishes"
        )
        self.state_dir = state_dir


class CorruptStateError(StoreError):
    """The durable state directory's manifest cannot be read.

    Raised for unparseable JSON, a missing required field, or an
    unsupported format number — anything where proceeding would
    silently drop or mangle stored documents.
    """

    def __init__(self, manifest_path: str, reason: str):
        super().__init__(f"corrupt store state {manifest_path!r}: {reason}")
        self.manifest_path = manifest_path


class WalCorruptError(StoreError):
    """The write-ahead log is damaged somewhere other than its tail.

    A torn *final* record is the expected crash artifact and is
    tolerated (truncate-and-warn); a bad checksum, unparseable line, or
    sequence gap **mid-log** means records after the damage cannot be
    trusted, so recovery refuses to replay past it.
    """

    def __init__(self, wal_path: str, reason: str, line: int = 0) -> None:
        detail = f" (line {line})" if line else ""
        super().__init__(
            f"corrupt write-ahead log {wal_path!r}{detail}: {reason}"
        )
        self.wal_path = wal_path
        self.line = line


class InvalidNameError(StoreError):
    """A name the store refuses (it must be a plain identifier-ish
    token: letters, digits, ``_``, ``.`` and ``-`` — names double as
    state-directory file names)."""

    def __init__(self, name: str):
        super().__init__(
            f"invalid name {name!r}: use letters, digits, '_', '.' or '-'"
        )
        self.name = name
