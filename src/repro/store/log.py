"""The update log: staged hypothetical transforms, commit and rollback.

The paper's transform queries are *hypothetical* — they answer "what
would the document look like if…" without touching it.  The log turns
that into a two-phase workflow per document:

* :meth:`UpdateLog.stage` records a transform against a document.  The
  document is untouched; :meth:`UpdateLog.preview` builds the
  hypothetical tree (a pure, structure-sharing transform chain — the
  semantics of stacked transform queries) for what-if queries.  Each
  chain stage is evaluated by the cost-based
  :class:`~repro.engine.planner.Planner`, which picks a strategy from
  the staged query's shape and the current tree — no strategy is
  hardcoded here.
* **Commit** (driven by the store facade, which owns the document lock
  and the caches) replays the staged updates destructively via
  :func:`repro.updates.apply.apply_update` and bumps the version.
* **Rollback** simply discards staged entries — nothing was ever
  applied, so there is nothing to undo.

Sequential semantics: staged update *i+1* sees update *i*'s result,
exactly like :class:`repro.transform.chain.TransformChain`.
"""

from __future__ import annotations

import threading
from typing import Callable, Optional

from repro.engine.planner import Planner
from repro.store.errors import NothingStagedError
from repro.transform.query import TransformQuery
from repro.xmltree.node import Element


class StagedUpdate:
    """One staged transform: the parsed query plus its source text."""

    __slots__ = ("transform", "text")

    def __init__(self, transform: TransformQuery, text: str):
        self.transform = transform
        self.text = text

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"StagedUpdate({self.text!r})"


class UpdateLog:
    """Per-document staging areas and commit history."""

    # guarded-by[_staged, _history]: self._lock

    def __init__(self, planner: Optional[Planner] = None):
        self._staged: dict[str, list[StagedUpdate]] = {}
        self._history: dict[str, list[str]] = {}
        self._lock = threading.Lock()
        #: Chooses the evaluation strategy for preview chains; shared
        #: with the owning store when one exists.
        self.planner = planner if planner is not None else Planner()

    # ------------------------------------------------------------------
    # Staging
    # ------------------------------------------------------------------

    def stage(self, doc_name: str, transform: TransformQuery, text: str) -> int:
        """Stage a transform against *doc_name*; returns the new depth
        of the staging area."""
        entry = StagedUpdate(transform, text)
        with self._lock:
            queue = self._staged.setdefault(doc_name, [])
            queue.append(entry)
            return len(queue)

    def staged(self, doc_name: str) -> list[StagedUpdate]:
        with self._lock:
            return list(self._staged.get(doc_name, []))

    def has_staged(self, doc_name: str) -> bool:
        with self._lock:
            return bool(self._staged.get(doc_name))

    # ------------------------------------------------------------------
    # Hypothetical evaluation
    # ------------------------------------------------------------------

    def preview(
        self,
        root: Element,
        doc_name: str,
        transform: Optional[Callable] = None,
    ) -> Element:
        """The tree the staged updates *would* produce.  Pure: shares
        every untouched subtree with *root*; *root* is not modified.

        Each stage's evaluation strategy is chosen by the planner from
        the query's shape and the current tree; pass *transform* (a
        ``(root, query) -> root`` callable) to force one instead.
        """
        current = root
        for entry in self.staged(doc_name):
            if transform is not None:
                current = transform(current, entry.transform)
            else:
                current = self.planner.transform(current, entry.transform)
        return current

    # ------------------------------------------------------------------
    # Resolution
    # ------------------------------------------------------------------

    def take(self, doc_name: str) -> list[StagedUpdate]:
        """Remove and return every staged update (the commit path).

        Raises :class:`NothingStagedError` on an empty staging area —
        an empty commit is almost always a workflow bug.
        """
        with self._lock:
            queue = self._staged.get(doc_name)
            if not queue:
                raise NothingStagedError(doc_name)
            self._staged[doc_name] = []
            return queue

    def take_any(self, doc_name: str) -> list[StagedUpdate]:
        """Remove and return the staged updates, empty list included.

        The incremental commit path treats an empty staging area as a
        no-op commit rather than an error, so it needs the non-raising
        variant of :meth:`take`.
        """
        with self._lock:
            queue = self._staged.get(doc_name)
            if not queue:
                return []
            self._staged[doc_name] = []
            return queue

    def restore(self, doc_name: str, entries: list[StagedUpdate]) -> None:
        """Put consumed entries back at the *front* of the staging area.

        The failed-commit path: ``take_any`` already drained the queue
        when the apply raised, so the entries go back where they were —
        ahead of anything staged meanwhile — and a retry commits the
        same sequence.
        """
        if not entries:
            return
        with self._lock:
            queue = self._staged.setdefault(doc_name, [])
            queue[:0] = entries

    def rollback(self, doc_name: str, count: Optional[int] = None) -> int:
        """Discard the last *count* staged updates (default: all);
        returns how many were dropped."""
        with self._lock:
            queue = self._staged.get(doc_name)
            if not queue:
                raise NothingStagedError(doc_name)
            dropped = len(queue) if count is None else max(0, min(count, len(queue)))
            if dropped:
                del queue[len(queue) - dropped:]
            return dropped

    def record_commit(self, doc_name: str, entries: list[StagedUpdate]) -> None:
        with self._lock:
            self._history.setdefault(doc_name, []).extend(e.text for e in entries)

    def history(self, doc_name: str) -> list[str]:
        """Source texts of every committed transform, oldest first."""
        with self._lock:
            return list(self._history.get(doc_name, []))

    def restore_history(self, doc_name: str, texts: list[str]) -> None:
        """Replace the commit history (state-directory restore path)."""
        with self._lock:
            self._history[doc_name] = list(texts)

    def stats(self) -> dict:
        with self._lock:
            names = set(self._staged) | set(self._history)
            return {
                name: {
                    "staged": len(self._staged.get(name, [])),
                    "committed": len(self._history.get(name, [])),
                }
                for name in sorted(names)
            }
