"""Compiled-artifact caches: a thread-safe LRU and the store's
:class:`CompiledCache` of parsed queries, automata and composed plans.

Parsing a transform query, building its selecting NFA and composing a
user query against it are all pure functions of the source text, so a
resident store should pay for them once per distinct text, not once per
request.  The result cache (which *does* depend on document state) lives
in :class:`repro.store.store.ViewStore` and is keyed by document
version; this module only caches artifacts that never go stale.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Callable, Optional

from repro.automata.filtering import FilteringNFA, build_filtering_nfa
from repro.automata.selecting import SelectingNFA, build_selecting_nfa
from repro.compose.compose import compose
from repro.transform.query import TransformQuery, parse_transform_query
from repro.xpath.ast import Path
from repro.xpath.parser import parse_xpath
from repro.xquery.ast import Expr, UserQuery
from repro.xquery.parser import parse_user_query

_MISSING = object()


class LRUCache:
    """A bounded mapping with least-recently-used eviction.

    Thread-safe: lookups and insertions take an internal lock, and
    :meth:`get_or_compute` runs the factory *outside* the lock so a slow
    parse never blocks unrelated readers (two threads may then compute
    the same value once each; the cache stays consistent either way).
    """

    def __init__(self, maxsize: int = 128):
        if maxsize < 1:
            raise ValueError(f"maxsize must be positive, got {maxsize}")
        self.maxsize = maxsize
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self._data: OrderedDict = OrderedDict()
        self._lock = threading.Lock()

    def get(self, key, default=None):
        with self._lock:
            value = self._data.get(key, _MISSING)
            if value is _MISSING:
                self.misses += 1
                return default
            self._data.move_to_end(key)
            self.hits += 1
            return value

    def put(self, key, value) -> None:
        with self._lock:
            if key in self._data:
                self._data.move_to_end(key)
            self._data[key] = value
            while len(self._data) > self.maxsize:
                self._data.popitem(last=False)
                self.evictions += 1

    def get_or_compute(self, key, factory: Callable):
        value = self.get(key, _MISSING)
        if value is _MISSING:
            value = factory()
            self.put(key, value)
        return value

    def invalidate(self, predicate: Optional[Callable] = None) -> int:
        """Drop every entry (or those whose *key* satisfies *predicate*);
        returns the number of entries removed."""
        with self._lock:
            if predicate is None:
                dropped = len(self._data)
                self._data.clear()
                return dropped
            doomed = [key for key in self._data if predicate(key)]
            for key in doomed:
                del self._data[key]
            return len(doomed)

    def __len__(self) -> int:
        with self._lock:
            return len(self._data)

    def __contains__(self, key) -> bool:
        with self._lock:
            return key in self._data

    def stats(self) -> dict:
        with self._lock:
            return {
                "size": len(self._data),
                "maxsize": self.maxsize,
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
            }


class CompiledCache:
    """LRU caches for every compiled artifact the store reuses:

    * parsed X paths and their selecting/filtering NFAs,
    * parsed transform and user queries,
    * composed plans — the Compose Method's output for one
      (user query, transform query) pair of source texts.
    """

    def __init__(self, maxsize: int = 256):
        self.paths = LRUCache(maxsize)
        self.transforms = LRUCache(maxsize)
        self.user_queries = LRUCache(maxsize)
        self.selecting = LRUCache(maxsize)
        self.filtering = LRUCache(maxsize)
        self.plans = LRUCache(maxsize)

    # ------------------------------------------------------------------
    # Parsers
    # ------------------------------------------------------------------

    def xpath(self, text: str) -> Path:
        return self.paths.get_or_compute(text, lambda: parse_xpath(text))

    def transform(self, text: str) -> TransformQuery:
        return self.transforms.get_or_compute(
            text, lambda: parse_transform_query(text)
        )

    def user_query(self, text: str) -> UserQuery:
        return self.user_queries.get_or_compute(
            text, lambda: parse_user_query(text)
        )

    # ------------------------------------------------------------------
    # Automata and plans
    # ------------------------------------------------------------------

    def selecting_nfa(self, path_text: str) -> SelectingNFA:
        return self.selecting.get_or_compute(
            path_text, lambda: build_selecting_nfa(self.xpath(path_text))
        )

    def filtering_nfa(self, path_text: str) -> FilteringNFA:
        return self.filtering.get_or_compute(
            path_text, lambda: build_filtering_nfa(self.xpath(path_text))
        )

    def composed(self, user_text: str, transform_text: str) -> Expr:
        """The composed plan for the pair of source texts."""
        return self.plans.get_or_compute(
            (user_text, transform_text),
            lambda: compose(
                self.user_query(user_text), self.transform(transform_text)
            ),
        )

    # ------------------------------------------------------------------

    def clear(self) -> None:
        for cache in self._caches().values():
            cache.invalidate()

    def _caches(self) -> dict:
        return {
            "paths": self.paths,
            "transforms": self.transforms,
            "user_queries": self.user_queries,
            "selecting_nfas": self.selecting,
            "filtering_nfas": self.filtering,
            "plans": self.plans,
        }

    def stats(self) -> dict:
        return {name: cache.stats() for name, cache in self._caches().items()}
