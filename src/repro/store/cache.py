"""Compatibility re-exports: the compiled-artifact cache machinery now
lives at the package root (:mod:`repro.compiled`, :mod:`repro.lru`) so
the engine can use it without importing from the store package (which
itself imports the engine's planner — the layering stays
one-directional).  This module keeps the historical import path
``repro.store.cache`` working.
"""

from repro.compiled import CompiledCache, CompiledPath
from repro.lru import LRUCache

__all__ = ["CompiledCache", "CompiledPath", "LRUCache"]
